"""Setuptools shim for legacy editable installs (offline environments
without the ``wheel`` package; metadata lives in pyproject.toml)."""

from setuptools import setup

setup()
