# Developer entry points.  `make check` is the one-stop gate: tier-1 tests,
# the smoke-mode micro-benchmark regression check (refuses a >20%
# throughput regression against benchmarks/BENCH_micro_coding.json; falls
# back to the machine-independent speedup column on a different host), the
# simulator macro-benchmark gate (events/sec + engine speedup against
# benchmarks/BENCH_sim_eventloop.json, same host-fingerprint policy), and
# a live-cluster smoke run (4 asyncio TCP replicas + 1 client committing
# real requests on localhost).

PYTHON ?= python
export PYTHONPATH := src

.PHONY: test bench-micro bench-micro-full bench-sim bench-sim-full \
	live-smoke check

test:
	$(PYTHON) -m pytest -x -q

bench-micro:
	$(PYTHON) benchmarks/run_micro.py --mode smoke --check

bench-micro-full:
	$(PYTHON) benchmarks/run_micro.py --mode full \
		--output benchmarks/BENCH_micro_coding.json

bench-sim:
	$(PYTHON) benchmarks/run_sim_bench.py --mode smoke --check

bench-sim-full:
	$(PYTHON) benchmarks/run_sim_bench.py --mode full \
		--output benchmarks/BENCH_sim_eventloop.json

live-smoke:
	$(PYTHON) -m repro.harness.cli run-live --replicas 4 --clients 1 \
		--duration 5 --min-committed 1

check: test bench-micro bench-sim live-smoke
