# Developer entry points.  `make check` is the one-stop gate: tier-1 tests
# plus the smoke-mode micro-benchmark regression check (refuses a >20%
# throughput regression against benchmarks/BENCH_micro_coding.json).

PYTHON ?= python
export PYTHONPATH := src

.PHONY: test bench-micro bench-micro-full check

test:
	$(PYTHON) -m pytest -x -q

bench-micro:
	$(PYTHON) benchmarks/run_micro.py --mode smoke --check

bench-micro-full:
	$(PYTHON) benchmarks/run_micro.py --mode full \
		--output benchmarks/BENCH_micro_coding.json

check: test bench-micro
