# Developer entry points.  `make check` is the one-stop gate: lint (when
# ruff is installed), tier-1 tests, the smoke-mode micro-benchmark
# regression check (refuses a >20% throughput regression against
# benchmarks/BENCH_micro_coding.json; falls back to the
# machine-independent speedup column on a different host), the simulator
# macro-benchmark gate (events/sec + engine speedup against
# benchmarks/BENCH_sim_eventloop.json, same host-fingerprint policy), the
# live-smoke matrix (all three protocols, in-process AND one OS process
# per replica, each committing real requests on localhost TCP), the
# live-vs-sim calibration smoke (one reconciled point per protocol), and
# the chaos smoke (a scripted partition/heal/crash/restart scenario per
# protocol plus one faulted live-vs-sim degradation-gap point), the
# trace smoke (request lifecycles recorded on both backends, exported as
# validated Chrome trace_event JSON), the experiment-service smoke
# (the committed 6-trial matrix through `expt run`, legacy artifacts
# ingested into the longitudinal store, cross-protocol report rendered),
# and the recovery smoke (crash + restart per protocol on both
# deployment modes, gated on verified catch-up and ledger-prefix
# re-convergence; the --processes legs must restore from the durable
# on-disk snapshot).
# Reports land in artifacts/ (CI uploads them on every run).

PYTHON ?= python
export PYTHONPATH := src

LIVE_PROTOCOLS := leopard pbft hotstuff
SMOKE_ARGS := --duration 3 --rate 2000 --bundle-size 100 --min-committed 1
# The crash-recover scenario restarts the victim at t=2.2; it needs a
# longer run than the other smokes to complete a verified catch-up.
RECOVERY_ARGS := --duration 4 --rate 2000 --bundle-size 100 \
	--min-committed 1

.PHONY: lint test bench-micro bench-micro-full bench-sim bench-sim-full \
	live-smoke live-smoke-all calibrate-smoke chaos-smoke \
	calibrate-faulted trace-smoke expt-smoke recovery-smoke check

lint:
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check src tests benchmarks; \
	else \
		echo "ruff not installed; skipping lint (CI enforces it)"; \
	fi

test:
	$(PYTHON) -m pytest -x -q

bench-micro:
	$(PYTHON) benchmarks/run_micro.py --mode smoke --check

bench-micro-full:
	$(PYTHON) benchmarks/run_micro.py --mode full \
		--output benchmarks/BENCH_micro_coding.json

bench-sim:
	$(PYTHON) benchmarks/run_sim_bench.py --mode smoke --check

bench-sim-full:
	$(PYTHON) benchmarks/run_sim_bench.py --mode full \
		--output benchmarks/BENCH_sim_eventloop.json

live-smoke:
	$(PYTHON) -m repro.harness.cli run-live --replicas 4 --clients 1 \
		--duration 5 --min-committed 1

live-smoke-all:
	@mkdir -p artifacts
	@for proto in $(LIVE_PROTOCOLS); do \
		echo "== live-smoke $$proto (in-process) =="; \
		$(PYTHON) -m repro.harness.cli run-live --protocol $$proto \
			$(SMOKE_ARGS) \
			--output artifacts/live_$${proto}_in-process.json \
			|| exit 1; \
		echo "== live-smoke $$proto (processes) =="; \
		$(PYTHON) -m repro.harness.cli run-live --protocol $$proto \
			--processes $(SMOKE_ARGS) \
			--output artifacts/live_$${proto}_processes.json \
			|| exit 1; \
	done

calibrate-smoke:
	@mkdir -p artifacts
	@for proto in $(LIVE_PROTOCOLS); do \
		echo "== calibrate $$proto =="; \
		$(PYTHON) -m repro.harness.cli calibrate --protocol $$proto \
			--duration 1.5 --rate 2000 --bundle-size 100 \
			--min-committed 1 \
			--output artifacts/calibration_$$proto.json \
			|| exit 1; \
	done

# Chaos smoke: the scripted "smoke" scenario (WAN-shape the leader link,
# partition the victim, heal, crash it, restart it) must still commit
# requests on every protocol, live in-process.  One extra leg exercises
# the crash/restart path against real OS processes (SIGKILL + respawn).
chaos-smoke:
	@mkdir -p artifacts
	@for proto in $(LIVE_PROTOCOLS); do \
		echo "== chaos-smoke $$proto (in-process) =="; \
		$(PYTHON) -m repro.harness.cli run-live --protocol $$proto \
			--scenario smoke $(SMOKE_ARGS) \
			--output artifacts/chaos_$${proto}_in-process.json \
			|| exit 1; \
	done
	@echo "== chaos-smoke leopard (processes, crash-restart) =="
	@$(PYTHON) -m repro.harness.cli run-live --protocol leopard \
		--processes --scenario crash-restart $(SMOKE_ARGS) \
		--output artifacts/chaos_leopard_processes.json

# Faulted live-vs-sim gate: both backends execute the same crash/restart
# timeline; the degradation ratios (faulted/clean throughput) must agree
# within the gap bound.
calibrate-faulted:
	@mkdir -p artifacts
	$(PYTHON) -m repro.harness.cli calibrate --protocol leopard \
		--scenario crash-restart --duration 1.5 --rate 2000 \
		--bundle-size 100 --min-committed 1 \
		--max-degradation-gap 3.0 \
		--output artifacts/calibration_faulted_leopard.json

# Trace smoke: record request lifecycles on both backends — one
# simulated run and one live run with one OS process per replica — and
# export Chrome trace_event JSON.  --require-request fails the target
# unless at least one committed request produced a complete
# submit->batch->propose->commit lifecycle; the chrome export is
# structurally validated before it is written.
trace-smoke:
	@mkdir -p artifacts
	@echo "== trace-smoke leopard (sim) =="
	$(PYTHON) -m repro.harness.cli trace --backend sim \
		--duration 2 --rate 2000 --bundle-size 100 \
		--require-request \
		--chrome artifacts/trace_leopard_sim.trace.json \
		--output artifacts/trace_leopard_sim.json
	@echo "== trace-smoke leopard (live, processes) =="
	$(PYTHON) -m repro.harness.cli trace --backend live --processes \
		--duration 2 --rate 2000 --bundle-size 100 \
		--require-request \
		--chrome artifacts/trace_leopard_processes.trace.json \
		--output artifacts/trace_leopard_processes.json

# Experiment-service smoke: run the committed 6-trial matrix (3
# protocols x {sim, live}) through `expt run` — parallel, resumable —
# ingest the committed BENCH_*/CALIBRATION_* artifacts into the same
# longitudinal store, and render the cross-protocol report.  Artifacts
# land under artifacts/expt-smoke/ (CI uploads store + report).
expt-smoke:
	@mkdir -p artifacts/expt-smoke
	$(PYTHON) -m repro.harness.cli expt run \
		--config benchmarks/experiments/smoke.yaml \
		--results-dir artifacts/expt-smoke/results \
		--store artifacts/expt-smoke/store.jsonl --retries 1
	$(PYTHON) -m repro.harness.cli expt ingest \
		--store artifacts/expt-smoke/store.jsonl \
		benchmarks/BENCH_micro_coding.json \
		benchmarks/BENCH_sim_eventloop.json \
		benchmarks/CALIBRATION_presets.json
	$(PYTHON) -m repro.harness.cli expt report \
		--store artifacts/expt-smoke/store.jsonl \
		--markdown artifacts/expt-smoke/report.md \
		--html artifacts/expt-smoke/report.html

# Recovery smoke: SIGKILL-equivalent crash + restart per protocol on
# both deployment modes; --require-recovery fails the target unless the
# restarted replica completed a verified catch-up (non-zero ledger
# segments fetched) and its executed prefix re-converged with the
# quorum.  The --processes legs additionally require the respawned
# child to restore from its durable on-disk snapshot rather than
# seed-rebuilding.
recovery-smoke:
	@mkdir -p artifacts
	@for proto in $(LIVE_PROTOCOLS); do \
		echo "== recovery-smoke $$proto (in-process) =="; \
		$(PYTHON) -m repro.harness.cli run-live --protocol $$proto \
			--scenario crash-recover --require-recovery \
			$(RECOVERY_ARGS) \
			--output artifacts/recovery_$${proto}_in-process.json \
			|| exit 1; \
		echo "== recovery-smoke $$proto (processes) =="; \
		$(PYTHON) -m repro.harness.cli run-live --protocol $$proto \
			--processes --scenario crash-recover --require-recovery \
			$(RECOVERY_ARGS) \
			--output artifacts/recovery_$${proto}_processes.json \
			|| exit 1; \
	done

# (n, rate, payload) reconciliation grid; --apply-presets folds the
# combined cost scale back into benchmarks/CALIBRATION_presets.json,
# keyed by this host's fingerprint (commit the file to re-baseline).
calibrate-sweep:
	@mkdir -p artifacts
	$(PYTHON) -m repro.harness.cli calibrate --sweep --apply-presets \
		--duration 1.0 --min-committed 1 \
		--output artifacts/calibration_sweep_leopard.json

check: lint test bench-micro bench-sim live-smoke-all calibrate-smoke \
	chaos-smoke calibrate-faulted trace-smoke expt-smoke recovery-smoke
