"""Benchmark-suite configuration.

Each benchmark regenerates one of the paper's tables or figures and prints
the rows (set ``REPRO_FULL=1`` for the paper-scale grids).  Wall-clock
timings reported by pytest-benchmark measure the full experiment sweep.
"""

from __future__ import annotations

import pytest


def run_and_render(benchmark, experiment, capsys):
    """Run ``experiment`` once under the benchmark timer and print it."""
    result = benchmark.pedantic(experiment, rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print(result.render())
    assert result.rows, f"experiment {result.name} produced no rows"
    return result


@pytest.fixture
def render(capsys):
    def _render(benchmark, experiment):
        return run_and_render(benchmark, experiment, capsys)
    return _render
