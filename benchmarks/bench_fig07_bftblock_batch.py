"""Paper Fig. 7: Leopard throughput on varying BFTblock sizes (τ).

Expected shape: throughput climbs as more datablock links are batched per
BFTblock (amortizing vote processing) and stabilizes; larger scales need
larger batches.
"""

from __future__ import annotations

from repro.harness.experiments import fig7_bftblock_batch


def test_fig7_bftblock_batch(benchmark, render):
    result = render(benchmark, fig7_bftblock_batch)
    by_n: dict[int, list[tuple[int, float]]] = {}
    for n, links, rps in result.rows:
        by_n.setdefault(n, []).append((links, rps))
    for n, series in by_n.items():
        series.sort()
        assert max(rps for _, rps in series) >= series[0][1], \
            f"batching should help at n={n}"
        # Stabilized at the large end.
        assert series[-1][1] >= 0.7 * max(rps for _, rps in series)
