"""Paper Fig. 6: HotStuff throughput on varying batch sizes.

Expected shape: throughput rises with the batch size and then flattens
once the leader's NIC/CPU ceiling is reached.
"""

from __future__ import annotations

from repro.harness.experiments import fig6_hotstuff_batch


def test_fig6_hotstuff_batch(benchmark, render):
    result = render(benchmark, fig6_hotstuff_batch)
    by_n: dict[int, list[tuple[int, float]]] = {}
    for n, batch, rps in result.rows:
        by_n.setdefault(n, []).append((batch, rps))
    for n, series in by_n.items():
        series.sort()
        smallest_batch_rps = series[0][1]
        best_rps = max(rps for _, rps in series)
        assert best_rps >= smallest_batch_rps, \
            f"larger batches should not hurt at n={n}"
        # The curve flattens: the last doubling gains little.
        assert series[-1][1] >= 0.7 * best_rps
