"""Paper Fig. 12 + Table V: datablock-retrieval cost and time.

Expected shape: the cost of recovering a 2000-request datablock stays
roughly flat as n grows (≈ the datablock size, 325→356 KB in the paper),
while the per-responder cost collapses (163→8 KB) thanks to the (f+1, n)
erasure code; the time cost stays in the tens-to-hundreds of milliseconds.
"""

from __future__ import annotations

import math

from repro.harness.experiments import fig12_retrieval


def test_fig12_retrieval(benchmark, render):
    result = render(benchmark, fig12_retrieval)
    rows = {n: (recover, respond, time_ms)
            for n, recover, respond, time_ms in result.rows
            if not math.isnan(recover)}
    assert len(rows) >= 3
    ns = sorted(rows)
    datablock_kb = 2000 * 128 / 1e3
    smallest, largest = ns[0], ns[-1]
    # Recovering costs about one datablock regardless of n.
    assert rows[largest][0] < 2.5 * datablock_kb
    assert rows[largest][0] > 0.5 * datablock_kb
    # Responding cost collapses as f grows.
    assert rows[largest][1] < 0.5 * rows[smallest][1]
    # Time cost stays sub-second.
    assert all(time_ms < 1000.0 for _, _, time_ms in rows.values())
