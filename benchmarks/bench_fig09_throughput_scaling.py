"""Paper Fig. 9 — the headline result: Leopard vs HotStuff at scale.

Expected shape: Leopard stays ~flat in the 10^5 requests/second regime as n
grows, while HotStuff declines roughly as 1/(n-1); the gap reaches ~5x by
n = 300 and keeps widening.
"""

from __future__ import annotations

from repro.harness.experiments import fig9_throughput_scaling


def test_fig9_throughput_scaling(benchmark, render):
    result = render(benchmark, fig9_throughput_scaling)
    leopard = {r[1]: r[2] for r in result.rows if r[0] == "leopard"}
    hotstuff = {r[1]: r[2] for r in result.rows if r[0] == "hotstuff"}
    ns = sorted(leopard)
    # Leopard preserves throughput: the largest scale keeps >= 60% of the
    # smallest scale's throughput and stays in the 1e5 regime.
    assert leopard[ns[-1]] >= 0.6 * leopard[ns[0]]
    assert leopard[ns[-1]] > 5e4
    # HotStuff declines monotonically (within simulation noise).
    hs_ns = sorted(hotstuff)
    assert hotstuff[hs_ns[-1]] < 0.5 * hotstuff[hs_ns[0]]
    # The paper's 5x at n = 300 (model-extended in quick mode).
    if 300 in leopard and 300 in hotstuff:
        assert leopard[300] / hotstuff[300] > 3.0
    # And the crossover: Leopard wins at the largest common scale.
    common = max(set(leopard) & set(hotstuff))
    assert leopard[common] > hotstuff[common]
