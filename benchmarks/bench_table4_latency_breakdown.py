"""Paper Table IV: latency breakdown of Leopard (n = 32).

Expected shape: datablock preparation (generation + dissemination)
dominates end-to-end latency — dissemination alone was ~50% in the paper —
while responding to the client is well under a few percent.
"""

from __future__ import annotations

from repro.harness.experiments import table4_latency_breakdown


def test_table4_latency_breakdown(benchmark, render):
    result = render(benchmark, table4_latency_breakdown)
    shares = {phase: pct for phase, pct in result.rows}
    preparation = shares["generation"] + shares["dissemination"]
    assert preparation > shares["agreement"] * 0.8
    assert shares["dissemination"] > 20.0
    assert shares["response"] < 10.0
    total = sum(shares.values())
    assert 99.0 < total < 101.0
