"""Ablation: the three retrieval designs of §IV-A2.

The paper rejects the "intuitive solution" (ask the leader) analytically:
under the selective attack a leader could be forced to re-send O(n) whole
datablocks, eliminating the workload-balancing benefit.  This benchmark
measures exactly that, comparing:

* ``erasure`` — the shipped design: committee of holders, one (f+1, n)
  Reed-Solomon chunk + Merkle proof each;
* ``full``    — committee of holders, whole copies (no coding);
* ``leader``  — only the leader re-sends whole copies.
"""

from __future__ import annotations

from repro.core.config import LeopardConfig
from repro.harness import build_leopard_cluster
from repro.harness.tables import ExperimentResult
from repro.sim.faults import SelectiveDisseminator


def ablation_retrieval_modes(n: int = 16, seed: int = 33
                             ) -> ExperimentResult:
    """Selective attack under each retrieval mode; who carries the bytes."""
    result = ExperimentResult(
        "ablation-retrieval",
        "retrieval designs under the selective attack (who pays)",
        ["mode", "victim_recovered", "victim_ingress_kb",
         "leader_resend_kb", "max_responder_kb"])
    victim, faulty, leader = 2, 3, 1
    for mode in ("erasure", "full", "leader"):
        config = LeopardConfig(
            n=n, datablock_size=500, bftblock_max_links=10,
            max_batch_delay=0.05, max_proposal_delay=0.05,
            retrieval_timeout=0.1, retrieval_mode=mode,
            progress_timeout=30.0)
        targets = frozenset(
            r for r in range(n) if r not in (victim, faulty))
        cluster = build_leopard_cluster(
            n=n, seed=seed, config=config, warmup=0.5, total_rate=30_000,
            faults={faulty: SelectiveDisseminator(targets)})
        cluster.run(5.0)
        victim_replica = cluster.replicas[victim]
        victim_stats = cluster.network.stats(victim)
        ingress = (victim_stats.recv_bytes.get("resp", 0)
                   + victim_stats.recv_bytes.get("datablock", 0))
        leader_resend = cluster.network.stats(leader).sent_bytes.get(
            "datablock", 0)
        responder_bytes = []
        for node in range(n):
            if node in (victim, faulty):
                continue
            stats = cluster.network.stats(node)
            resp = stats.sent_bytes.get("resp", 0)
            responder_bytes.append(resp)
        result.rows.append((
            mode, victim_replica.retrieval.recovered_count,
            ingress / 1e3, leader_resend / 1e3,
            max(responder_bytes) / 1e3))
    result.notes.append(
        "expected: only the `leader` mode re-centralises recovery bytes "
        "on the leader; `erasure` responders each ship ~alpha/(f+1)")
    return result


def test_ablation_retrieval_modes(benchmark, render):
    result = render(benchmark, ablation_retrieval_modes)
    rows = {row[0]: row for row in result.rows}
    assert rows["leader"][3] > 0          # leader re-sends whole blocks
    assert rows["erasure"][3] == 0        # never in the shipped design
    assert rows["erasure"][4] > 0         # committee chunks flow instead
