"""Micro-benchmark: coding/hashing data-plane throughput (see run_micro).

Unlike the figure/table benchmarks (which reproduce the *paper*), this one
tracks the *implementation*: seed-style scalar loops vs the vectorized
kernels across a (k, n, block-size) grid, for encode / decode / datablock
digest / merkle build.  Set ``REPRO_FULL=1`` to include the paper-scale
configuration (k=101, n=301, ~500 KB datablocks), against which the
acceptance bar is >=5x encode and decode throughput; the smoke grid
asserts a softer floor since tiny codes amortize less.  (n is capped at
256 — the most shards a GF(256) code supports, same as klauspost's
library — so "paper scale" here is k=101, n=256.)

Emits ``benchmarks/BENCH_micro_coding.json`` (the regression baseline for
``make bench-micro``) when run with ``REPRO_WRITE_BASELINE=1``.
"""

from __future__ import annotations

import os
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

import run_micro  # noqa: E402


def _mode() -> str:
    return "full" if os.environ.get("REPRO_FULL") else "smoke"


def test_micro_coding(benchmark, capsys):
    mode = _mode()
    grid = run_micro.FULL_GRID if mode == "full" else run_micro.SMOKE_GRID
    rows = benchmark.pedantic(
        lambda: run_micro.run_grid(grid), rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print(run_micro.render_rows(rows))
    assert rows, "benchmark produced no rows"

    if os.environ.get("REPRO_WRITE_BASELINE"):
        from repro.perf import write_report
        write_report(run_micro.DEFAULT_BASELINE, name="micro_coding",
                     mode=mode, results=rows)

    by_op = {}
    for row in rows:
        by_op.setdefault(row["op"], []).append(row)
    # The digest cache should win big everywhere; merkle must not regress.
    assert all(r["speedup"] >= 2.0 for r in by_op["digest"])
    assert all(r["speedup"] >= 0.5 for r in by_op["merkle"])
    if mode == "full":
        # Acceptance bar at paper scale: >=5x encode and decode.
        paper = [r for r in rows
                 if (r["k"], r["n"]) == run_micro.PAPER_SCALE[:2]]
        assert paper, "full grid must include the paper-scale config"
        for row in paper:
            if row["op"] in ("encode", "decode"):
                assert row["speedup"] >= 5.0, row
    else:
        # Smoke floor: the vectorized path must never be slower overall.
        for op in ("encode", "decode"):
            speedups = [r["speedup"] for r in by_op[op]]
            assert max(speedups) >= 1.5, (op, speedups)
            assert min(speedups) >= 0.8, (op, speedups)
