"""Paper Fig. 11: leader bandwidth usage in Leopard vs HotStuff.

Expected shape: HotStuff's leader climbs into the Gbps range as n grows;
Leopard's leader stays under ~0.5 Gbps at every scale.
"""

from __future__ import annotations

from repro.harness.experiments import fig11_leader_bandwidth


def test_fig11_leader_bandwidth(benchmark, render):
    result = render(benchmark, fig11_leader_bandwidth)
    leopard = {n: mbps for proto, n, mbps in result.rows
               if proto == "leopard"}
    hotstuff = {n: mbps for proto, n, mbps in result.rows
                if proto == "hotstuff"}
    assert max(leopard.values()) < 500.0  # < 0.5 Gbps at all scales
    top_n = max(hotstuff)
    assert hotstuff[top_n] > 1000.0  # > 1 Gbps once n is large
    assert hotstuff[top_n] > 3 * leopard[max(leopard)]
