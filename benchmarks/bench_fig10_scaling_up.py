"""Paper Fig. 10: effectiveness of scaling up (20-200 Mbps per replica).

Expected shape: goodput grows linearly with the provisioned bandwidth in
both systems; Leopard converts ~half the added capacity into throughput at
every scale (γ -> 1/2, Eq. (4)) while HotStuff's slope collapses as
1/(n-1); Leopard's latency sits above HotStuff's and narrows as bandwidth
grows.
"""

from __future__ import annotations

from repro.harness.experiments import fig10_scaling_up


def test_fig10_scaling_up(benchmark, render):
    result = render(benchmark, fig10_scaling_up)
    series: dict[tuple[str, int], dict[float, tuple[float, float]]] = {}
    for protocol, n, bw, goodput, latency in result.rows:
        series.setdefault((protocol, n), {})[bw] = (goodput, latency)
    for (protocol, n), points in series.items():
        bws = sorted(points)
        # Linear growth: 10x bandwidth -> at least 4x goodput.
        assert points[bws[-1]][0] > 4 * points[bws[0]][0], \
            f"{protocol} n={n} goodput should grow with bandwidth"
    # Leopard's γ ~ 1/2 at every n; HotStuff's collapses with n.
    for (protocol, n), points in series.items():
        top_bw = max(points)
        gamma = points[top_bw][0] / top_bw
        if protocol == "leopard":
            assert gamma > 0.25, f"Leopard γ at n={n} too low: {gamma}"
        elif n >= 16:
            assert gamma < 0.25, f"HotStuff γ at n={n} too high: {gamma}"
