"""Paper Fig. 1: HotStuff and BFT-SMaRt throughput vs n (128 B / 1024 B).

Expected shape: both baselines peak at small scales and decline steeply as
n grows; the 1024-byte-payload curves sit well below the 128-byte ones.
"""

from __future__ import annotations

from repro.harness.experiments import fig1_baseline_scaling


def test_fig1_baseline_scaling(benchmark, render):
    result = render(benchmark, fig1_baseline_scaling)
    by_key = {(r[0], r[1], r[2]): r[3] for r in result.rows}
    # Declining in n for each (protocol, payload) series.
    for protocol in ("hotstuff", "bft-smart"):
        for payload in (128, 1024):
            series = sorted(
                (n, rps) for (p, pl, n), rps in by_key.items()
                if p == protocol and pl == payload)
            assert series[0][1] > series[-1][1], \
                f"{protocol}/{payload} should decline with n"
    # Larger payloads mean fewer requests/second at the same scale.
    assert by_key[("hotstuff", 1024, 64)] < by_key[("hotstuff", 128, 64)]
