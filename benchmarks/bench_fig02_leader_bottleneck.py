"""Paper Fig. 2: HotStuff throughput vs the leader's bandwidth utilization.

Expected shape: as n grows the throughput falls while the leader's NIC
utilization climbs toward saturation — the leader bottleneck that motivates
Leopard (§I).
"""

from __future__ import annotations

from repro.harness.experiments import fig2_leader_bottleneck


def test_fig2_leader_bottleneck(benchmark, render):
    result = render(benchmark, fig2_leader_bottleneck)
    rows = sorted(result.rows)
    throughputs = [row[1] for row in rows]
    bandwidths = [row[2] for row in rows]
    assert throughputs[0] > throughputs[-1]
    assert bandwidths[-1] > bandwidths[0]
    # The leader ends up pushing multiple Gbps while confirming fewer
    # requests: the core pathology of Fig. 2.
    assert bandwidths[-1] > 1.0
