"""Paper Fig. 13: view-change time and communication cost.

Expected shape: both grow with n, but the time stays in (low) seconds even
at hundreds of replicas, and the total communication is dominated by the
new leader's O(n) new-view multicast.
"""

from __future__ import annotations

import math

from repro.harness.experiments import fig13_viewchange


def test_fig13_viewchange(benchmark, render):
    result = render(benchmark, fig13_viewchange)
    rows = {row[0]: row for row in result.rows
            if not math.isnan(row[1])}
    assert len(rows) >= 3
    ns = sorted(rows)
    largest = ns[-1]
    # Seconds-scale view-change even at the largest tested n.
    assert all(rows[n][1] < 8.0 for n in ns)
    # Communication grows with scale...
    assert rows[largest][2] > rows[ns[0]][2]
    # ...and the new leader's send dominates the per-replica costs.
    _, _, total_mb, leader_send_mb, _, replica_send_kb, _ = rows[largest]
    assert leader_send_mb * 1e3 > replica_send_kb
    # The paper's n=400 bound: total < 100 MB (we check our largest n).
    assert total_mb < 100.0
