#!/usr/bin/env python
"""Micro-benchmarks for the coding/hashing data plane, with a regression gate.

Measures encode / decode / digest / merkle throughput across a
(k, n, block-size) grid, comparing the **seed implementation** (row-by-row
scalar loops, pure-Python Gauss--Jordan, uncached digests — reconstructed
here from the still-present scalar APIs) against the **vectorized** path
(fused gather kernels, decode-plan LRU, digest memoization).

Usage::

    PYTHONPATH=src python benchmarks/run_micro.py                # smoke grid
    PYTHONPATH=src python benchmarks/run_micro.py --mode full    # + paper scale
    PYTHONPATH=src python benchmarks/run_micro.py --check        # regression gate
    PYTHONPATH=src python benchmarks/run_micro.py --mode full \
        --output benchmarks/BENCH_micro_coding.json              # new baseline

``--check`` compares the current run against the committed baseline JSON
and exits non-zero if any matching row's vectorized throughput regressed
more than the tolerance (default 20 %).  Absolute MB/s is machine-dependent;
the committed baseline doubles as the before/after record for this repo's
perf trajectory (the ``speedup`` column is machine-independent-ish).

Gate policy: on the baseline's own host an absolute dip must be
*confirmed* by the speedup column before failing (shared-runner load can
swing absolute MB/s well past 20 % run-to-run; speedup measures both
implementations in one process, so load cancels).  Deliberate tradeoff:
a change that slows the seed-reference and vectorized paths *equally*
(shared helper, numpy config) is waived by this gate — it still prints
the dips with a ``~`` marker, so it is visible, not silent.  On any
other host the gate uses speedup alone.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

import numpy as np

from repro.crypto import gf256
from repro.crypto.merkle import MerkleTree, _leaf_hash, _node_hash
from repro.crypto.reed_solomon import Chunk, ReedSolomonCode
from repro.messages.leopard import Datablock
from repro.perf import (
    Timer,
    build_report,
    find_regressions,
    load_report,
    select_gate_metric,
    throughput_mbps,
    write_report,
)

DEFAULT_BASELINE = Path(__file__).parent / "BENCH_micro_coding.json"

#: (k, n, message_size) grids.  The full grid ends with the paper-scale
#: configuration: f = 100 -> k = f+1 = 101 and ~500 KB datablocks, with n
#: capped at 256 because a GF(256) code has at most 256 distinct shards
#: (``klauspost/reedsolomon`` enforces the identical limit; the paper's
#: n = 301 deployment would need a wider field for one-chunk-per-replica).
SMOKE_GRID = [(3, 10, 64_000), (11, 31, 128_000)]
PAPER_SCALE = (101, 256, 500_000)
FULL_GRID = SMOKE_GRID + [(34, 100, 256_000), PAPER_SCALE]


# ---------------------------------------------------------------------------
# Seed-implementation references (the pre-vectorization hot loops).
# ---------------------------------------------------------------------------


def reference_encode(code: ReedSolomonCode, matrix_rows: list[list[int]],
                     message: bytes) -> list[Chunk]:
    """The seed encoder: one scalar addmul_vector call per matrix cell."""
    framed = len(message).to_bytes(4, "big") + message
    size = code.shard_size(len(framed))
    padded = framed + b"\x00" * (size * code.data_shards - len(framed))
    data = np.frombuffer(padded, dtype=np.uint8).reshape(
        code.data_shards, size)
    chunks = [Chunk(i, data[i].tobytes()) for i in range(code.data_shards)]
    for row_index in range(code.data_shards, code.total_shards):
        row = matrix_rows[row_index]
        acc = np.zeros(size, dtype=np.uint8)
        for col, coeff in enumerate(row):
            gf256.addmul_vector(acc, coeff, data[col])
        chunks.append(Chunk(row_index, acc.tobytes()))
    return chunks


def reference_decode(code: ReedSolomonCode, matrix_rows: list[list[int]],
                     chunks: list[Chunk]) -> bytes:
    """The seed decoder: pure-Python inversion plus scalar row loops."""
    unique: dict[int, Chunk] = {}
    for chunk in chunks:
        unique.setdefault(chunk.index, chunk)
    selected = sorted(unique.values(), key=lambda c: c.index)[
        : code.data_shards]
    size = len(selected[0].data)
    submatrix = [matrix_rows[c.index] for c in selected]
    inverse = gf256.matrix_invert(submatrix)
    rows = [np.frombuffer(c.data, dtype=np.uint8) for c in selected]
    out = np.empty(code.data_shards * size, dtype=np.uint8)
    for i in range(code.data_shards):
        acc = np.zeros(size, dtype=np.uint8)
        for j, coeff in enumerate(inverse[i]):
            gf256.addmul_vector(acc, coeff, rows[j])
        out[i * size: (i + 1) * size] = acc
    framed = out.tobytes()
    length = int.from_bytes(framed[:4], "big")
    return framed[4: 4 + length]


def reference_merkle(leaves: list[bytes]) -> bytes:
    """The seed tree build: per-node helper calls in a Python loop."""
    level = [_leaf_hash(x) for x in leaves]
    while len(level) > 1:
        nxt = []
        for i in range(0, len(level) - 1, 2):
            nxt.append(_node_hash(level[i], level[i + 1]))
        if len(level) % 2 == 1:
            nxt.append(level[-1])
        level = nxt
    return level[0]


# ---------------------------------------------------------------------------
# Measurement.
# ---------------------------------------------------------------------------


def _measure(fn, min_seconds: float = 0.2, max_iters: int = 50) -> float:
    """Per-call seconds: repeat ``fn`` until ``min_seconds`` of runtime."""
    iters = 0
    total = 0.0
    while total < min_seconds and iters < max_iters:
        with Timer() as t:
            fn()
        total += t.seconds
        iters += 1
    return total / iters


def _survivors(chunks: list[Chunk], k: int) -> list[Chunk]:
    """A worst-case survivor set: the *last* k chunks (max parity rows)."""
    return chunks[-k:]


def run_grid(grid: list[tuple[int, int, int]],
             min_seconds: float = 0.2) -> list[dict]:
    """Measure all four ops over ``grid``; returns report rows."""
    rng = np.random.default_rng(12345)
    results: list[dict] = []
    for k, n, size in grid:
        message = rng.bytes(size)
        code = ReedSolomonCode(k, n)
        matrix_rows = code._matrix.tolist()
        chunks = code.encode(message)
        survivors = _survivors(chunks, k)
        shard = len(chunks[0].data)

        # -- encode ---------------------------------------------------
        base_s = _measure(
            lambda: reference_encode(code, matrix_rows, message),
            min_seconds)
        vec_s = _measure(lambda: code.encode(message), min_seconds)
        results.append(_row("encode", k, n, size, size, base_s, vec_s))

        # -- decode (repeated survivor set, as retrieval sees it) -----
        base_s = _measure(
            lambda: reference_decode(code, matrix_rows, survivors),
            min_seconds)
        code.decode(survivors)  # warm the decode-plan cache
        vec_s = _measure(lambda: code.decode(survivors), min_seconds)
        results.append(_row("decode", k, n, size, size, base_s, vec_s))

        # -- datablock digest (uncached vs memoized) ------------------
        # One digest() call is sub-microsecond once memoized, so each
        # timing sample covers a 1000-call inner loop to swamp timer
        # overhead.
        block = Datablock(creator=1, counter=1,
                          request_count=size // 128, payload_size=128)
        canonical = len(block.canonical_bytes())
        from repro.crypto.hashing import digest as sha_digest
        inner = 1000

        def digest_uncached():
            for _ in range(inner):
                sha_digest(block.canonical_bytes())

        def digest_memoized():
            for _ in range(inner):
                block.digest()

        base_s = _measure(digest_uncached, min_seconds / 2)
        vec_s = _measure(digest_memoized, min_seconds / 2)
        results.append(
            _row("digest", k, n, size, canonical * inner, base_s, vec_s))

        # -- merkle tree over the chunk set ---------------------------
        leaf_data = [c.data for c in chunks]
        tree_bytes = shard * n
        base_s = _measure(lambda: reference_merkle(leaf_data), min_seconds)
        vec_s = _measure(lambda: MerkleTree(leaf_data).root, min_seconds)
        results.append(
            _row("merkle", k, n, size, tree_bytes, base_s, vec_s))
    return results


def _row(op: str, k: int, n: int, size: int, processed_bytes: int,
         baseline_seconds: float, vectorized_seconds: float) -> dict:
    baseline = throughput_mbps(processed_bytes, baseline_seconds)
    vectorized = throughput_mbps(processed_bytes, vectorized_seconds)
    return {
        "op": op, "k": k, "n": n, "size": size,
        "baseline_mbps": round(baseline, 2),
        "vectorized_mbps": round(vectorized, 2),
        "speedup": round(vectorized / baseline, 2) if baseline else None,
    }


def render_rows(rows: list[dict]) -> str:
    header = (f"{'op':<8} {'k':>4} {'n':>4} {'size':>8} "
              f"{'seed MB/s':>11} {'vector MB/s':>12} {'speedup':>8}")
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row['op']:<8} {row['k']:>4} {row['n']:>4} {row['size']:>8} "
            f"{row['baseline_mbps']:>11.1f} {row['vectorized_mbps']:>12.1f} "
            f"{row['speedup']:>7.1f}x")
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--mode", choices=("smoke", "full"), default="smoke")
    parser.add_argument("--output", type=Path, default=None,
                        help="write the report JSON here")
    parser.add_argument("--baseline", type=Path, default=DEFAULT_BASELINE)
    parser.add_argument("--check", action="store_true",
                        help="fail on >tolerance regression vs the baseline")
    parser.add_argument("--tolerance", type=float, default=0.20)
    parser.add_argument("--min-seconds", type=float, default=0.2,
                        help="minimum sampling time per measurement")
    parser.add_argument("--store", type=Path, default=None,
                        help="also append this run's rows to the "
                             "longitudinal JSONL results store")
    parser.add_argument("--run-label", default=None,
                        help="store-key suffix marking this run as a "
                             "fresh observation (CI passes the workflow "
                             "run id); without it re-runs dedupe")
    args = parser.parse_args(argv)

    grid = FULL_GRID if args.mode == "full" else SMOKE_GRID
    rows = run_grid(grid, min_seconds=args.min_seconds)
    print(render_rows(rows))

    if args.output:
        write_report(args.output, name="micro_coding", mode=args.mode,
                     results=rows)
        print(f"\nwrote {args.output}")

    if args.store:
        from repro.expt.store import ResultsStore

        payload = build_report("micro_coding", args.mode, rows)
        appended = ResultsStore(args.store).ingest_bench_report(
            payload, run_label=args.run_label)
        print(f"\nappended {appended} rows to store {args.store}")

    if args.check:
        if not args.baseline.exists():
            print(f"\nno baseline at {args.baseline}; nothing to check "
                  "(run with --mode full --output to create one)")
            return 1
        baseline = load_report(args.baseline)
        current = {"results": rows}
        # Absolute MB/s only compares on the host that recorded the
        # baseline; elsewhere gate on the machine-independent speedup.
        metric, reason = select_gate_metric(baseline)
        regressed = find_regressions(
            baseline, current, metric=metric, tolerance=args.tolerance)
        if regressed and metric == "vectorized_mbps":
            # Same host, but absolute MB/s dips under transient load (CI
            # noise).  Speedup measures both implementations in the same
            # process, so load cancels: a row fails only if *both* its
            # absolute throughput and its speedup regressed.
            by_speedup = find_regressions(
                baseline, current, metric="speedup",
                tolerance=args.tolerance)
            noise = {key: line for key, line in regressed.items()
                     if key not in by_speedup}
            if noise:
                print("\nabsolute-throughput dips NOT confirmed by the "
                      "speedup column (machine noise, not a code "
                      "regression):")
                for line in noise.values():
                    print(f"  ~ {line}")
            regressed = {key: f"{line}  [speedup: {by_speedup[key]}]"
                         for key, line in regressed.items()
                         if key in by_speedup}
        if regressed:
            print(f"\nPERF REGRESSIONS (vs committed baseline, "
                  f"metric {metric}; {reason}):")
            for line in regressed.values():
                print(f"  - {line}")
            return 1
        print(f"\nperf gate OK (metric {metric}: {reason}; "
              f"tolerance {args.tolerance:.0%}, "
              f"baseline {args.baseline.name})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
