#!/usr/bin/env python
"""Simulator macro-benchmark: engine wall-clock and events/sec, gated.

Measures the discrete-event engine on fixed paper-scale scenarios,
comparing the **pre-refactor engine** (per-copy closure transmissions,
three heap events per message, per-phase ``size_bytes()``, lambda-based
timers, uncached baseline-block digests — reconstructed in-process via
``SimNode.batched = False`` plus the digest un-memoization patch below)
against the **batched pipeline** (typed flight records, bulk fan-out
scheduling, merged rx/CPU events, interned byte accounting).

Scenarios are Fig. 9 throughput-scaling points under saturating load:
the full grid ends with n = 300 — the paper's headline scale, and the
largest n its HotStuff baseline could run — for both Leopard and
HotStuff.  A third probe counts Python-level heap allocations for one
broadcast dispatch in each engine.

On top of those, the **queue rows** (``queue-*``) compare the two
scheduler backends of the batched engine against each other — the PR 3
binary heap (``EventQueue(backend="heap")``) versus the calendar/ladder
queue with slab-coalesced broadcast arrivals — on the Fig. 9 n = 300
point, the extended n = 600 point, and HotStuff; and the
``commit-smoke`` row drives a Leopard n = 1000 deployment through a
full single-datablock commit (the O(n²) Ready wave, two BFT rounds and
execution), failing the bench outright if nothing commits.  The
``wave-saturated`` row runs the saturated Leopard n = 1000 steady-state
point with the wave-aggregation tier on vs off, failing outright unless
the wave engine processes >= 10x fewer events within its wall budget.

Usage::

    PYTHONPATH=src python benchmarks/run_sim_bench.py              # smoke
    PYTHONPATH=src python benchmarks/run_sim_bench.py --mode full  # + n=300
    PYTHONPATH=src python benchmarks/run_sim_bench.py --check      # gate
    PYTHONPATH=src python benchmarks/run_sim_bench.py --mode full \
        --output benchmarks/BENCH_sim_eventloop.json               # rebase

Gate policy mirrors ``run_micro.py``: on the baseline's own host an
absolute events/sec dip must be *confirmed* by the machine-independent
``speedup`` column before failing (both engines run in one process, so
host load cancels out of the ratio); on any other host the gate uses
``speedup`` alone.  Walls are min-of-k over alternating runs — the two
engines interleave so thermal/load drift hits both.
"""

from __future__ import annotations

import argparse
import gc
import sys
import time
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path

from repro.crypto.hashing import digest as sha_digest
from repro.harness.cluster import build_hotstuff_cluster, build_leopard_cluster
from repro.harness.experiments import _leopard_config
from repro.interfaces import Broadcast
from repro.messages import hotstuff as hs_messages
from repro.messages.client import RequestBundle
from repro.perf import (
    build_report,
    find_regressions,
    host_fingerprint,
    load_report,
    write_report,
)
from repro.sim import events as sim_events
from repro.sim.metrics import MetricsCollector
from repro.sim.network import Network
from repro.sim.node import SimNode
from repro.sim.runner import Simulation

DEFAULT_BASELINE = Path(__file__).parent / "BENCH_sim_eventloop.json"

#: (protocol, n, simulated seconds) scenario grid.  Simulated windows are
#: short because the workload is saturating from t=0 (primed mempools /
#: full batches): a 0.2 s Leopard window at n = 300 already pushes ~70k
#: transmissions through the engine.
SMOKE_SCENARIOS = [("leopard", 64, 0.2), ("hotstuff", 64, 1.0)]
FULL_SCENARIOS = SMOKE_SCENARIOS + [
    ("leopard", 300, 0.2),   # Fig. 9 headline point (GF(256)-capped code)
    ("hotstuff", 300, 1.0),  # the paper's largest HotStuff deployment
]

#: Scheduler-backend grid: heap (PR 3) vs calendar+coalescing, batched
#: engine on both sides.  Windows are longer than the engine rows so the
#: workload reaches steady saturation — the regime the calendar queue
#: targets (~90k pending events at n = 300) and the paper's own
#: measurement convention ("until the measurement is stabilized").
QUEUE_SCENARIOS = [
    ("leopard", 300, 1.0),    # Fig. 9 headline point, steady state
    ("leopard", 600, 0.15),   # extended Fig. 9 point (GF(256)-capped)
    ("hotstuff", 300, 1.0),   # the paper's largest HotStuff deployment
]


# ---------------------------------------------------------------------------
# Pre-refactor engine reconstruction
# ---------------------------------------------------------------------------


def _uncached_hs_digest(self) -> bytes:
    """HSBlock.digest as it was before memoization (recomputes the hash)."""
    return sha_digest(self.canonical_bytes())


@contextmanager
def reference_engine():
    """Run the enclosed code on the reconstructed pre-refactor engine.

    Flips every reconstructable global: ``SimNode.batched`` selects the
    per-copy closure transmission path (kept in-tree exactly for this
    measurement, like the scalar gf256 kernels ``run_micro.py``
    references), the baseline-protocol digest memoization is unpatched
    so the reference pays the seed's per-call hashing, and the event
    queue is pinned to the seed's binary heap (the calendar backend
    postdates it).
    """
    saved_digest = hs_messages.HSBlock.digest
    saved_backend = sim_events.DEFAULT_BACKEND
    SimNode.batched = False
    hs_messages.HSBlock.digest = _uncached_hs_digest
    sim_events.set_default_backend("heap")
    try:
        yield
    finally:
        SimNode.batched = True
        hs_messages.HSBlock.digest = saved_digest
        sim_events.set_default_backend(saved_backend)


# ---------------------------------------------------------------------------
# Scenario measurement
# ---------------------------------------------------------------------------


def _build(protocol: str, n: int):
    if protocol == "leopard":
        return build_leopard_cluster(
            n=n, seed=6, config=_leopard_config(n), warmup=0.0)
    if protocol == "hotstuff":
        return build_hotstuff_cluster(n=n, seed=6, warmup=0.0)
    raise ValueError(f"unknown scenario protocol {protocol!r}")


def _one_run(protocol: str, n: int, sim_seconds: float) -> tuple[float, int]:
    """Build a fresh cluster, run the fixed window, return (wall, events)."""
    cluster = _build(protocol, n)
    gc.collect()
    started = time.perf_counter()
    cluster.run(sim_seconds)
    wall = time.perf_counter() - started
    return wall, cluster.sim.queue.processed


def measure_scenario(protocol: str, n: int, sim_seconds: float,
                     repeats: int) -> dict:
    """Min-of-k walls for both engines, interleaved run-for-run."""
    # Warm both paths (imports, numpy kernels, code objects).
    _one_run(protocol, n, sim_seconds)
    with reference_engine():
        _one_run(protocol, n, sim_seconds)
    base_walls: list[float] = []
    vec_walls: list[float] = []
    base_events = vec_events = 0
    for _ in range(repeats):
        with reference_engine():
            wall, base_events = _one_run(protocol, n, sim_seconds)
        base_walls.append(wall)
        wall, vec_events = _one_run(protocol, n, sim_seconds)
        vec_walls.append(wall)
    base_wall = min(base_walls)
    vec_wall = min(vec_walls)
    return {
        "op": f"engine-{protocol}",
        "k": 0,
        "n": n,
        "size": int(sim_seconds * 1000),  # simulated window, ms
        "baseline_wall_s": round(base_wall, 4),
        "vectorized_wall_s": round(vec_wall, 4),
        "baseline_events": base_events,
        "vectorized_events": vec_events,
        "baseline_eps": round(base_events / base_wall, 1),
        "vectorized_eps": round(vec_events / vec_wall, 1),
        "speedup": round(base_wall / vec_wall, 2),
    }


# ---------------------------------------------------------------------------
# Scheduler-backend rows (heap vs calendar) and the n = 1000 commit smoke
# ---------------------------------------------------------------------------


def _one_backend_run(protocol: str, n: int, sim_seconds: float,
                     backend: str) -> tuple[float, int, dict]:
    """One fixed-window run on an explicit queue backend."""
    if protocol == "leopard":
        cluster = build_leopard_cluster(
            n=n, seed=6, config=_leopard_config(n), warmup=0.0,
            queue_backend=backend)
    elif protocol == "hotstuff":
        cluster = build_hotstuff_cluster(n=n, seed=6, warmup=0.0,
                                         queue_backend=backend)
    else:
        raise ValueError(f"unknown scenario protocol {protocol!r}")
    gc.collect()
    started = time.perf_counter()
    cluster.run(sim_seconds)
    wall = time.perf_counter() - started
    return wall, cluster.sim.queue.processed, cluster.sim.queue.occupancy()


def measure_queue_scenario(protocol: str, n: int, sim_seconds: float,
                           repeats: int) -> dict:
    """Heap (PR 3 engine) vs calendar backend, interleaved min-of-k."""
    _one_backend_run(protocol, n, sim_seconds, "heap")
    _one_backend_run(protocol, n, sim_seconds, "calendar")
    heap_walls: list[float] = []
    cal_walls: list[float] = []
    heap_events = cal_events = 0
    occupancy: dict = {}
    for _ in range(repeats):
        wall, heap_events, _ = _one_backend_run(
            protocol, n, sim_seconds, "heap")
        heap_walls.append(wall)
        wall, cal_events, occupancy = _one_backend_run(
            protocol, n, sim_seconds, "calendar")
        cal_walls.append(wall)
    heap_wall = min(heap_walls)
    cal_wall = min(cal_walls)
    return {
        "op": f"queue-{protocol}",
        "k": 0,
        "n": n,
        "size": int(sim_seconds * 1000),
        "baseline_wall_s": round(heap_wall, 4),
        "vectorized_wall_s": round(cal_wall, 4),
        "baseline_events": heap_events,
        "vectorized_events": cal_events,
        "baseline_eps": round(heap_events / heap_wall, 1),
        "vectorized_eps": round(cal_events / cal_wall, 1),
        "speedup": round(heap_wall / cal_wall, 2),
        "queue": {key: occupancy[key]
                  for key in ("bucket_width", "bucket_count", "max_pending",
                              "bucket_loads", "bucket_events",
                              "fanout_slabs", "overflow_migrated",
                              "late_clamped")},
    }


def measure_commit_smoke(n: int = 1000, sim_cap: float = 4.0) -> dict:
    """Leopard n = 1000 end-to-end commit on the calendar backend.

    One replica receives one full datablock's worth of requests; the run
    must carry it through dissemination, the O(n²) Ready wave, two BFT
    rounds and execution at the measurement replica.  Zero commits fail
    the bench outright — this is the scenario the calendar queue
    unlocks, not a relative-speed row.
    """
    config = _leopard_config(n)
    cluster = build_leopard_cluster(
        n=n, seed=6, config=config, warmup=0.0, total_rate=1e-6,
        prime=False, queue_backend="calendar")
    client = cluster.clients[0]
    bundle = RequestBundle(client.node_id, 0, config.datablock_size,
                           config.payload_size, 0.0)
    cluster.sim.queue.schedule(
        0.0, lambda: cluster.sim.deliver(client.node_id, client.primary,
                                         bundle))
    gc.collect()
    started = time.perf_counter()
    committed = 0
    sim_time = 0.0
    while sim_time < sim_cap and not committed:
        cluster.run(0.5)
        sim_time += 0.5
        committed = cluster.metrics.executed_requests.get(
            cluster.measure_replica, 0)
    wall = time.perf_counter() - started
    events = cluster.sim.queue.processed
    if committed <= 0:
        raise SystemExit(
            f"commit-smoke FAILED: Leopard n={n} committed nothing "
            f"within {sim_cap}s simulated ({events} events)")
    occupancy = cluster.sim.queue.occupancy()
    return {
        "op": "commit-smoke-leopard",
        "k": 0,
        "n": n,
        "size": int(sim_time * 1000),
        "committed_requests": int(committed),
        "commit_sim_time_s": round(sim_time, 2),
        "vectorized_wall_s": round(wall, 4),
        "vectorized_events": events,
        "vectorized_eps": round(events / wall, 1),
        "queue": {key: occupancy[key]
                  for key in ("bucket_width", "bucket_count", "max_pending",
                              "bucket_loads", "bucket_events",
                              "fanout_slabs", "overflow_migrated",
                              "late_clamped")},
    }


# ---------------------------------------------------------------------------
# Wave aggregation: the saturated n = 1000 point, gated on event reduction
# ---------------------------------------------------------------------------

#: Hard floor on the saturated point's processed-event reduction:
#: scalar-engine events / wave-engine events.  Event counts are exact
#: (deterministic per seed), so this gate is noise-free.
WAVE_REDUCTION_GATE = 10.0

#: Wall-clock budget (seconds) for the wave-aggregated arm of the
#: saturated point.  Sized ~4x above the measurement on the recording
#: host so CI-grade machines pass; a miss re-measures once before the
#: verdict so a transient load spike does not flake the gate.
WAVE_WALL_BUDGET_S = 60.0


def measure_wave_scenario(n: int = 1000, sim_seconds: float = 0.5,
                          total_rate: float = 2e6) -> dict:
    """Saturated Leopard n = 1000: wave-aggregated vs scalar delivery.

    The offered load (``total_rate`` requests/sec) is far past the
    grid's capacity, so every replica's NIC runs a continuous datablock
    egress ramp and the all-to-all wave traffic dominates the event
    mix — the Fig. 9 steady-state shape at the paper's upper scale.
    Both arms run the calendar backend; the wave arm must process at
    least :data:`WAVE_REDUCTION_GATE` times fewer events (identical
    simulated outcome, property-tested byte-identical elsewhere) and
    finish within :data:`WAVE_WALL_BUDGET_S` wall seconds.
    """
    def one_run(waves: bool) -> tuple[float, int, dict]:
        cluster = build_leopard_cluster(
            n=n, seed=6, config=_leopard_config(n), warmup=0.0,
            total_rate=total_rate, queue_backend="calendar", waves=waves)
        gc.collect()
        started = time.perf_counter()
        cluster.run(sim_seconds)
        wall = time.perf_counter() - started
        return (wall, cluster.sim.queue.processed,
                cluster.sim.queue.occupancy())

    scalar_wall, scalar_events, _ = one_run(False)
    wave_wall, wave_events, occupancy = one_run(True)
    if wave_wall > WAVE_WALL_BUDGET_S:
        wave_wall, wave_events, occupancy = one_run(True)
    reduction = scalar_events / wave_events
    if reduction < WAVE_REDUCTION_GATE:
        raise SystemExit(
            f"wave-saturated FAILED: n={n} wave engine processed "
            f"{wave_events} events vs {scalar_events} scalar "
            f"(reduction {reduction:.1f}x < {WAVE_REDUCTION_GATE:.0f}x)")
    if wave_wall > WAVE_WALL_BUDGET_S:
        raise SystemExit(
            f"wave-saturated FAILED: wave arm took {wave_wall:.1f}s wall "
            f"(budget {WAVE_WALL_BUDGET_S:.0f}s) on the saturated "
            f"n={n} point")
    return {
        "op": "wave-saturated-leopard",
        "k": 0,
        "n": n,
        "size": int(sim_seconds * 1000),
        "baseline_wall_s": round(scalar_wall, 4),
        "vectorized_wall_s": round(wave_wall, 4),
        "baseline_events": scalar_events,
        "vectorized_events": wave_events,
        "baseline_eps": round(scalar_events / scalar_wall, 1),
        "vectorized_eps": round(wave_events / wave_wall, 1),
        "event_reduction": round(reduction, 1),
        "speedup": round(scalar_wall / wave_wall, 2),
        "queue": {key: occupancy[key]
                  for key in ("wave_events", "wave_receivers",
                              "wave_slabs", "wave_merges",
                              "scalar_fallbacks", "max_pending",
                              "late_clamped")},
    }


# ---------------------------------------------------------------------------
# Telemetry overhead (the observability layer's <2% default-config gate)
# ---------------------------------------------------------------------------

#: Minimum allowed off/on wall ratio for shipped-default telemetry.  The
#: interval time-series collector is attached to every cluster builder by
#: default; this row proves the feeds cost under 2% wall-clock on the
#: Fig. 9 n = 300 Leopard point.  (Lifecycle *tracing* is structurally
#: free when disabled — no core is wrapped — so the A/B isolates the only
#: telemetry that runs unconditionally.)
TELEMETRY_GATE = 0.98


def _one_telemetry_run(n: int, sim_seconds: float,
                       telemetry: bool) -> tuple[float, int]:
    """One fixed-window Leopard run with telemetry on or detached."""
    cluster = build_leopard_cluster(
        n=n, seed=6, config=_leopard_config(n), warmup=0.0)
    if not telemetry:
        cluster.metrics.timeseries = None  # pre-telemetry collector
    gc.collect()
    started = time.perf_counter()
    cluster.run(sim_seconds)
    wall = time.perf_counter() - started
    return wall, cluster.sim.queue.processed


def measure_telemetry_overhead(n: int = 300, sim_seconds: float = 0.2,
                               repeats: int = 3) -> dict:
    """Interleaved min-of-k A/B of telemetry-off vs shipped defaults.

    Both arms run in one process (host load cancels out of the ratio,
    like the engine rows).  Fails the bench outright below
    :data:`TELEMETRY_GATE`; a first miss re-measures once with doubled
    repeats before the verdict, so a single scheduling hiccup on a busy
    host does not flake the gate.
    """
    _one_telemetry_run(n, sim_seconds, telemetry=False)
    _one_telemetry_run(n, sim_seconds, telemetry=True)
    off_walls: list[float] = []
    on_walls: list[float] = []
    off_events = on_events = 0

    def measure(rounds: int) -> None:
        nonlocal off_events, on_events
        for _ in range(rounds):
            wall, off_events = _one_telemetry_run(n, sim_seconds, False)
            off_walls.append(wall)
            wall, on_events = _one_telemetry_run(n, sim_seconds, True)
            on_walls.append(wall)

    measure(repeats)
    if min(off_walls) / min(on_walls) < TELEMETRY_GATE:
        measure(repeats * 2)
    off_wall = min(off_walls)
    on_wall = min(on_walls)
    speedup = off_wall / on_wall
    if speedup < TELEMETRY_GATE:
        raise SystemExit(
            f"telemetry-overhead FAILED: telemetry-on wall {on_wall:.3f}s "
            f"vs off {off_wall:.3f}s (ratio {speedup:.3f} < "
            f"{TELEMETRY_GATE}) — default time-series collection costs "
            f"more than {1 - TELEMETRY_GATE:.0%} on the n={n} Leopard "
            f"point")
    return {
        "op": "telemetry-overhead",
        "k": 0,
        "n": n,
        "size": int(sim_seconds * 1000),
        "baseline_wall_s": round(off_wall, 4),
        "vectorized_wall_s": round(on_wall, 4),
        "baseline_events": off_events,
        "vectorized_events": on_events,
        "baseline_eps": round(off_events / off_wall, 1),
        "vectorized_eps": round(on_events / on_wall, 1),
        "speedup": round(speedup, 3),
    }


# ---------------------------------------------------------------------------
# Allocation probe
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class _FixedMsg:
    size: int = 64_000
    msg_class: str = "datablock"

    def size_bytes(self) -> int:
        return self.size


class _NullCore:
    def __init__(self, node_id: int) -> None:
        self.node_id = node_id

    def start(self, now):
        return []

    def on_message(self, sender, msg, now):
        return []

    def on_timer(self, key, now):
        return []


def allocs_per_broadcast(n: int, batched: bool, reps: int = 30) -> float:
    """Python heap blocks allocated by dispatching one n-1 broadcast.

    Counts only the *dispatch* (egress serialization, jitter draws,
    arrival scheduling) — the "before any protocol work happens" cost
    the batched pipeline targets.
    """
    SimNode.batched = batched
    try:
        network = Network(n, seed=0)
        sim = Simulation(network, replica_count=n,
                         metrics=MetricsCollector())
        for node_id in range(n):
            sim.add_node(_NullCore(node_id))
        sim.run(0.0)  # execute the boot events
        node = sim.nodes[0]
        effects = [Broadcast(_FixedMsg())]
        node._apply(effects)  # warm caches (interning, ramp)
        gc.collect()
        gc.disable()
        before = sys.getallocatedblocks()
        for _ in range(reps):
            node._apply(effects)
        after = sys.getallocatedblocks()
        gc.enable()
        return (after - before) / reps
    finally:
        SimNode.batched = True


def measure_allocs(n: int) -> dict:
    msg = _FixedMsg()
    base = allocs_per_broadcast(n, batched=False)
    vec = allocs_per_broadcast(n, batched=True)
    return {
        "op": "allocs-broadcast",
        "k": 0,
        "n": n,
        "size": msg.size_bytes(),
        "baseline_allocs": round(base, 1),
        "vectorized_allocs": round(vec, 1),
        "speedup": round(base / vec, 2) if vec else None,
    }


# ---------------------------------------------------------------------------
# Reporting and the regression gate
# ---------------------------------------------------------------------------


def run_bench(mode: str, repeats: int) -> list[dict]:
    scenarios = FULL_SCENARIOS if mode == "full" else SMOKE_SCENARIOS
    rows = [measure_scenario(protocol, n, sim_seconds, repeats)
            for protocol, n, sim_seconds in scenarios]
    # Scheduler-backend rows and the n=1000 commit smoke gate in BOTH
    # modes — they are the acceptance scenarios of the calendar queue.
    rows += [measure_queue_scenario(protocol, n, sim_seconds,
                                    min(repeats, 3))
             for protocol, n, sim_seconds in QUEUE_SCENARIOS]
    rows.append(measure_commit_smoke())
    # The wave-aggregation acceptance row: saturated n=1000, gated on a
    # >= 10x processed-event reduction and a wall budget, in BOTH modes.
    rows.append(measure_wave_scenario())
    # The observability layer's own acceptance row, gated in both modes.
    rows.append(measure_telemetry_overhead(repeats=min(repeats, 3)))
    rows.append(measure_allocs(300 if mode == "full" else 64))
    return rows


def render_rows(rows: list[dict]) -> str:
    lines = [f"{'scenario':<18} {'n':>4} {'window':>7} "
             f"{'seed wall':>10} {'batch wall':>11} "
             f"{'seed ev/s':>10} {'batch ev/s':>11} {'speedup':>8}",
             "-" * 86]
    for row in rows:
        if row["op"] == "allocs-broadcast":
            lines.append(
                f"{row['op']:<18} {row['n']:>4} {'1 bcast':>7} "
                f"{row['baseline_allocs']:>10.0f} "
                f"{row['vectorized_allocs']:>11.0f} "
                f"{'(allocs)':>10} {'(allocs)':>11} "
                f"{row['speedup']:>7.1f}x")
        elif row["op"].startswith("wave-saturated"):
            lines.append(
                f"{row['op']:<18} {row['n']:>4} {row['size']:>5}ms "
                f"{row['baseline_wall_s']:>9.3f}s "
                f"{row['vectorized_wall_s']:>10.3f}s "
                f"{row['baseline_events']:>10} {row['vectorized_events']:>11} "
                f"{row['event_reduction']:>7.1f}x")
            queue = row.get("queue") or {}
            lines.append(
                f"{'':<18}   waves: runs={queue.get('wave_events')} "
                f"receivers={queue.get('wave_receivers')} "
                f"slabs={queue.get('wave_slabs')} "
                f"merges={queue.get('wave_merges')} "
                f"scalar_fallbacks={queue.get('scalar_fallbacks')}")
        elif row["op"].startswith("commit-smoke"):
            lines.append(
                f"{row['op']:<18} {row['n']:>4} {row['size']:>5}ms "
                f"{'--':>10} {row['vectorized_wall_s']:>10.3f}s "
                f"{'--':>10} {row['vectorized_eps']:>11.0f} "
                f"{row['committed_requests']:>5} req")
            queue = row.get("queue") or {}
            lines.append(
                f"{'':<18}   queue: max_pending={queue.get('max_pending')} "
                f"bucket_loads={queue.get('bucket_loads')} "
                f"fanout_slabs={queue.get('fanout_slabs')} "
                f"late_clamped={queue.get('late_clamped')}")
        else:
            lines.append(
                f"{row['op']:<18} {row['n']:>4} {row['size']:>5}ms "
                f"{row['baseline_wall_s']:>9.3f}s "
                f"{row['vectorized_wall_s']:>10.3f}s "
                f"{row['baseline_eps']:>10.0f} {row['vectorized_eps']:>11.0f} "
                f"{row['speedup']:>7.1f}x")
            queue = row.get("queue")
            if queue:
                lines.append(
                    f"{'':<18}   queue: "
                    f"width={queue.get('bucket_width'):.0e} "
                    f"max_pending={queue.get('max_pending')} "
                    f"bucket_loads={queue.get('bucket_loads')} "
                    f"fanout_slabs={queue.get('fanout_slabs')} "
                    f"overflow_migrated={queue.get('overflow_migrated')} "
                    f"late_clamped={queue.get('late_clamped')}")
    return "\n".join(lines)


def select_gate_metric(baseline: dict) -> tuple[str, str]:
    """Absolute events/sec on the recording host, speedup elsewhere."""
    recorded = baseline.get("host")
    current = host_fingerprint()
    if recorded == current:
        return "vectorized_eps", f"same host ({current})"
    if recorded is None:
        return "speedup", "baseline has no host fingerprint"
    return "speedup", (f"host differs (baseline {recorded!r}, "
                       f"current {current!r})")


def check_against_baseline(rows: list[dict], baseline_path: Path,
                           tolerance: float) -> int:
    if not baseline_path.exists():
        print(f"\nno baseline at {baseline_path}; nothing to check "
              "(run with --mode full --output to create one)")
        return 1
    baseline = load_report(baseline_path)
    current = {"results": rows}
    metric, reason = select_gate_metric(baseline)
    regressed = find_regressions(baseline, current, metric=metric,
                                 tolerance=tolerance)
    if regressed and metric == "vectorized_eps":
        # Same host: absolute events/sec dips under transient load.  The
        # speedup column measures both engines in one process, so load
        # cancels — a row fails only if both metrics regressed.
        by_speedup = find_regressions(baseline, current, metric="speedup",
                                      tolerance=tolerance)
        noise = {key: line for key, line in regressed.items()
                 if key not in by_speedup}
        if noise:
            print("\nabsolute events/sec dips NOT confirmed by the "
                  "speedup column (machine noise, not a code regression):")
            for line in noise.values():
                print(f"  ~ {line}")
        regressed = {key: f"{line}  [speedup: {by_speedup[key]}]"
                     for key, line in regressed.items() if key in by_speedup}
    if regressed:
        print(f"\nSIM-ENGINE REGRESSIONS (vs committed baseline, "
              f"metric {metric}; {reason}):")
        for line in regressed.values():
            print(f"  - {line}")
        return 1
    print(f"\nsim-bench gate OK (metric {metric}: {reason}; "
          f"tolerance {tolerance:.0%}, baseline {baseline_path.name})")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--mode", choices=("smoke", "full"), default="smoke")
    parser.add_argument("--repeats", type=int, default=None,
                        help="alternating runs per engine "
                             "(default: 3 smoke, 5 full)")
    parser.add_argument("--output", type=Path, default=None,
                        help="write the report JSON here")
    parser.add_argument("--baseline", type=Path, default=DEFAULT_BASELINE)
    parser.add_argument("--check", action="store_true",
                        help="fail on >tolerance regression vs the baseline")
    parser.add_argument("--tolerance", type=float, default=0.30)
    parser.add_argument("--store", type=Path, default=None,
                        help="also append this run's rows to the "
                             "longitudinal JSONL results store")
    parser.add_argument("--run-label", default=None,
                        help="store-key suffix marking this run as a "
                             "fresh observation (CI passes the workflow "
                             "run id); without it re-runs dedupe")
    args = parser.parse_args(argv)

    repeats = args.repeats if args.repeats is not None \
        else (5 if args.mode == "full" else 3)
    rows = run_bench(args.mode, repeats)
    print(render_rows(rows))

    if args.output:
        write_report(args.output, name="sim_eventloop", mode=args.mode,
                     results=rows)
        print(f"\nwrote {args.output}")

    if args.store:
        from repro.expt.store import ResultsStore

        payload = build_report("sim_eventloop", args.mode, rows)
        appended = ResultsStore(args.store).ingest_bench_report(
            payload, run_label=args.run_label)
        print(f"\nappended {appended} rows to store {args.store}")

    if args.check:
        return check_against_baseline(rows, args.baseline, args.tolerance)
    return 0


if __name__ == "__main__":
    sys.exit(main())
