"""Paper Fig. 8: Leopard throughput on varying datablock sizes (α).

Expected shape: throughput rises with the datablock size (amortizing the
per-datablock ready/header overhead) and gradually stabilizes, for both
BFTblock sizes.
"""

from __future__ import annotations

from repro.harness.experiments import fig8_datablock_batch


def test_fig8_datablock_batch(benchmark, render):
    result = render(benchmark, fig8_datablock_batch)
    series: dict[tuple[int, int], list[tuple[int, float]]] = {}
    for links, n, size, rps in result.rows:
        series.setdefault((links, n), []).append((size, rps))
    for (links, n), points in series.items():
        points.sort()
        assert max(rps for _, rps in points) >= points[0][1], \
            f"bigger datablocks should help at n={n}, links={links}"
