"""Paper Table III: bandwidth-utilization breakdown of Leopard (n = 32).

Expected shape: the leader's receive traffic is dominated (> 90%) by
datablocks; vote traffic is under 1% at both roles — measuring only the
vote phase misses almost all of the bandwidth story (§VI-C1).
"""

from __future__ import annotations

from repro.harness.experiments import table3_bandwidth_breakdown


def test_table3_bandwidth_breakdown(benchmark, render):
    result = render(benchmark, table3_bandwidth_breakdown)
    shares = {(role, direction, cls): pct
              for role, direction, cls, pct in result.rows}
    leader_recv_datablock = shares.get(("leader", "recv", "datablock"), 0)
    assert leader_recv_datablock > 80.0
    assert shares.get(("leader", "recv", "vote"), 0.0) < 2.0
    # A non-leader splits its traffic roughly evenly between sending and
    # receiving datablocks (49.93% / 48.34% in the paper).
    replica_send = shares.get(("replica", "send", "datablock"), 0)
    replica_recv = shares.get(("replica", "recv", "datablock"), 0)
    assert replica_send > 30.0
    assert replica_recv > 30.0
