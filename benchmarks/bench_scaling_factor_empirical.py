"""Empirical scaling factor: measure SF = max_i c_i directly.

The paper defines the scaling factor (Definition 1) as the heaviest
per-replica communication, in bits, per confirmed request bit.  This
benchmark measures it from the simulator's byte accounting and checks the
closed-form predictions of §V-B: SF_Leopard ≈ 2 and flat in n;
SF_HotStuff ≈ n-1 at the leader and growing.
"""

from __future__ import annotations

from repro.harness import build_hotstuff_cluster, build_leopard_cluster
from repro.harness.experiments import _leopard_config
from repro.harness.tables import ExperimentResult


def empirical_scaling_factor(duration: float = 3.0) -> ExperimentResult:
    """Measured max per-replica bits per confirmed request bit."""
    result = ExperimentResult(
        "empirical-sf",
        "measured scaling factor (Definition 1) vs the §V-B closed form",
        ["protocol", "n", "measured_sf", "predicted_sf"])
    from repro.analysis import scaling_factor as sf
    for n in (16, 32):
        cluster = build_leopard_cluster(
            n=n, seed=41, config=_leopard_config(n))
        cluster.run(cluster.warmup + duration)
        confirmed_bits = (
            cluster.metrics.executed_requests.get(
                cluster.measure_replica, 0) * 128 * 8)
        heaviest = 0.0
        for node in range(n):
            stats = cluster.network.stats(node)
            heaviest = max(
                heaviest,
                (stats.total_sent() + stats.total_recv()) * 8.0)
        datablock, links = _leopard_config(n).datablock_size, \
            _leopard_config(n).bftblock_max_links
        params = sf.LeopardParameters(
            n=n, datablock_requests=datablock, bftblock_links=links)
        result.rows.append((
            "leopard", n,
            heaviest / confirmed_bits if confirmed_bits else float("nan"),
            sf.leopard_scaling_factor(params)))
    for n in (16, 32):
        cluster = build_hotstuff_cluster(n=n, seed=41)
        cluster.run(cluster.warmup + duration)
        confirmed_bits = (
            cluster.metrics.executed_requests.get(
                cluster.measure_replica, 0) * 128 * 8)
        heaviest = 0.0
        for node in range(n):
            stats = cluster.network.stats(node)
            heaviest = max(
                heaviest,
                (stats.total_sent() + stats.total_recv()) * 8.0)
        result.rows.append((
            "hotstuff", n,
            heaviest / confirmed_bits if confirmed_bits else float("nan"),
            float(sf.leader_based_scaling_factor(n))))
    result.notes.append(
        "measured SF includes warmup traffic, so it slightly exceeds the "
        "steady-state closed form; shapes must match: Leopard ~constant, "
        "HotStuff ~n-1")
    return result


def test_empirical_scaling_factor(benchmark, render):
    result = render(benchmark, empirical_scaling_factor)
    leopard = {r[1]: r[2] for r in result.rows if r[0] == "leopard"}
    hotstuff = {r[1]: r[2] for r in result.rows if r[0] == "hotstuff"}
    # Leopard's measured SF is a small constant, roughly flat in n.
    assert all(1.0 < v < 6.0 for v in leopard.values())
    assert abs(leopard[32] - leopard[16]) < 0.5 * leopard[16]
    # HotStuff's grows roughly linearly with n.
    assert hotstuff[32] > 1.5 * hotstuff[16]
    assert hotstuff[32] > 4 * leopard[32]
