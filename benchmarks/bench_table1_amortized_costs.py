"""Paper Table I: amortized communication complexity and scaling factors.

Regenerated from the closed-form model (§V-B): Leopard is the only
protocol with O(1) leader communication and an O(1) scaling factor.
"""

from __future__ import annotations

from repro.harness.experiments import table1_amortized_costs


def test_table1_amortized_costs(benchmark, render):
    result = render(benchmark, table1_amortized_costs)
    rows = {row[0]: row for row in result.rows}
    assert rows["Leopard"][1] == "O(1)"
    assert rows["Leopard"][3] == "O(1)"
    for baseline in ("PBFT", "SBFT", "HotStuff"):
        assert rows[baseline][1] == "O(n)"
        assert rows[baseline][3] == "O(n)"
