"""Paper Table II: the batch sizes used for the headline comparison."""

from __future__ import annotations

from repro.harness.experiments import table2_batch_parameters


def test_table2_batch_parameters(benchmark, render):
    result = render(benchmark, table2_batch_parameters)
    rows = {row[0]: row for row in result.rows}
    assert rows[32][1:3] == (2000, 100)
    assert rows[600][1:3] == (4000, 400)
    assert rows[600][3] == "-"  # HotStuff could not run beyond n = 300
