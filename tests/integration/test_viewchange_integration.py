"""View-change integration: crashed/silent leaders are replaced and the
protocol resumes confirming requests (paper Appendix A, §VI-D2)."""

from __future__ import annotations

from repro.core.config import LeopardConfig
from repro.harness import build_leopard_cluster
from repro.sim.faults import Crash, Mute


def vc_config(n=4, progress_timeout=0.4):
    return LeopardConfig(
        n=n, datablock_size=100, bftblock_max_links=5,
        max_batch_delay=0.05, retrieval_timeout=0.2,
        progress_timeout=progress_timeout, checkpoint_period=10)


class TestLeaderCrash:
    def _run_crash(self, n=4, crash_at=0.6, run_for=6.0):
        leader = 1 % n
        cluster = build_leopard_cluster(
            n=n, seed=9, config=vc_config(n), warmup=0.2,
            total_rate=15_000, faults={leader: Crash(at=crash_at)})
        cluster.run(run_for)
        return cluster, leader

    def test_view_advances(self):
        cluster, leader = self._run_crash()
        honest = [r for r in cluster.replicas if r.node_id != leader]
        assert all(r.view >= 2 for r in honest)
        new_leader = cluster.replicas[2]
        assert new_leader.is_leader

    def test_confirmation_resumes_after_viewchange(self):
        cluster, leader = self._run_crash()
        measure = cluster.replicas[cluster.measure_replica]
        executed_at_vc = None
        assert measure.vc_entered_at is not None
        # Work confirmed after the new view started:
        pre_crash = measure.total_executed
        cluster.run(3.0)
        assert measure.total_executed > pre_crash > 0

    def test_logs_stay_consistent_across_views(self):
        cluster, leader = self._run_crash()
        cluster.run(2.0)
        honest = [r for r in cluster.replicas if r.node_id != leader]
        logs = [[e.block_digest for e in r.ledger.log] for r in honest]
        shortest = min(len(log) for log in logs)
        for position in range(shortest):
            assert len({log[position] for log in logs}) == 1

    def test_viewchange_timing_recorded(self):
        cluster, leader = self._run_crash()
        measure = cluster.replicas[cluster.measure_replica]
        assert measure.vc_triggered_at is not None
        assert measure.vc_entered_at is not None
        assert measure.vc_entered_at >= measure.vc_triggered_at


class TestSilentLeader:
    def test_mute_leader_triggers_viewchange(self):
        n = 4
        leader = 1
        # The leader receives everything but never proposes or aggregates.
        mute = Mute(frozenset({"bftblock", "proof", "checkpoint"}))
        cluster = build_leopard_cluster(
            n=n, seed=10, config=vc_config(n), warmup=0.2,
            total_rate=15_000, faults={leader: mute})
        cluster.run(6.0)
        honest = [r for r in cluster.replicas if r.node_id != leader]
        assert all(r.view >= 2 for r in honest)
        assert any(r.total_executed > 0 for r in honest)


class TestSuccessiveFaultyLeaders:
    def test_escalates_past_two_dead_leaders(self):
        n = 7
        cluster = build_leopard_cluster(
            n=n, seed=11, config=vc_config(n, progress_timeout=0.3),
            warmup=0.2, total_rate=15_000,
            faults={1: Crash(at=0.5), 2: Crash(at=0.0)})
        cluster.run(10.0)
        honest = [r for r in cluster.replicas
                  if r.node_id not in (1, 2)]
        # View must reach at least 3 (leader 3) and keep executing.
        assert all(r.view >= 3 for r in honest)
        assert any(r.total_executed > 0 for r in honest)
