"""Client re-submission (paper §IV-A1): a censored client re-routes its
requests to another replica after a timeout and eventually gets acks."""

from __future__ import annotations

from repro.core.client import assign_replica
from repro.core.config import LeopardConfig
from repro.harness import build_leopard_cluster
from repro.sim.faults import DropIncoming


class TestAssignment:
    def test_assignment_avoids_leader(self):
        for key in range(20):
            assert assign_replica(key, n=7, leader=1) != 1

    def test_attempts_rotate(self):
        targets = {assign_replica(5, n=7, leader=1, attempt=a)
                   for a in range(6)}
        assert len(targets) == 6  # all non-leader replicas eventually

    def test_deterministic(self):
        assert assign_replica(9, 7, 1) == assign_replica(9, 7, 1)


class TestResubmission:
    def test_censored_client_eventually_acked(self):
        """A replica that swallows client requests (censorship) forces the
        client's timeout path; re-submission to the next replica succeeds."""
        n = 4
        config = LeopardConfig(
            n=n, datablock_size=50, bftblock_max_links=5,
            max_batch_delay=0.05, progress_timeout=15.0)
        # Client node n targets assign_replica(4, 4, 1) -> replica 2;
        # make replica 2 drop all client traffic.
        censor = DropIncoming(frozenset({"client"}))
        cluster = build_leopard_cluster(
            n=n, seed=21, config=config, warmup=0.0, total_rate=4_000,
            resubmit=True, faults={2: censor})
        for client in cluster.clients:
            client.client_timeout = 0.5
        cluster.run(6.0)
        censored = [c for c in cluster.clients if c.primary == 2]
        assert censored, "expected at least one client aimed at replica 2"
        for client in censored:
            assert client.resubmissions > 0
            assert client.acked_requests > 0

    def test_no_resubmission_when_healthy(self):
        n = 4
        config = LeopardConfig(
            n=n, datablock_size=50, bftblock_max_links=5,
            max_batch_delay=0.05)
        cluster = build_leopard_cluster(
            n=n, seed=22, config=config, warmup=0.0, total_rate=4_000,
            resubmit=True)
        for client in cluster.clients:
            client.client_timeout = 2.0
        cluster.run(4.0)
        assert sum(c.resubmissions for c in cluster.clients) == 0
        assert all(c.acked_requests > 0 for c in cluster.clients)

    def test_resubmitted_bundles_are_deduplicated_per_replica(self):
        """The mempool rejects exact re-submissions it has already packed,
        bounding duplicate execution to distinct-replica paths."""
        n = 4
        config = LeopardConfig(
            n=n, datablock_size=50, bftblock_max_links=5,
            max_batch_delay=0.05)
        cluster = build_leopard_cluster(
            n=n, seed=23, config=config, warmup=0.0, total_rate=4_000,
            resubmit=True)
        for client in cluster.clients:
            client.client_timeout = 0.01  # fires before any ack can land
        cluster.run(3.0)
        duplicates = sum(
            r.mempool.duplicates_rejected for r in cluster.replicas)
        assert duplicates > 0  # hair-trigger re-sent to the same replica
