"""Safety property tests (paper Theorem 1, Lemmas 1-2).

The invariant checked everywhere: for any two honest replicas, the executed
logs agree position-by-position on their common prefix — under fault mixes,
equivocating leaders, and pre-GST asynchrony.
"""

from __future__ import annotations

import random

import pytest

from repro.core.config import LeopardConfig
from repro.core.replica import LeopardReplica
from repro.harness import build_leopard_cluster
from repro.messages.leopard import BFTblock, Vote
from repro.sim.faults import (
    Combined,
    Crash,
    DropIncoming,
    Mute,
    SelectiveDisseminator,
)


def assert_prefix_consistent(replicas, min_length=0):
    logs = [[entry.block_digest for entry in r.ledger.log]
            for r in replicas]
    shortest = min(len(log) for log in logs)
    assert shortest >= min_length
    for position in range(shortest):
        assert len({log[position] for log in logs}) == 1, \
            f"logs diverge at position {position}"


BEHAVIOUR_POOL = [
    lambda n, leader: Crash(at=0.8),
    lambda n, leader: Mute(frozenset({"vote"})),
    lambda n, leader: Mute(frozenset({"ready"})),
    lambda n, leader: DropIncoming(frozenset({"datablock"})),
    lambda n, leader: SelectiveDisseminator(frozenset({leader})),
    lambda n, leader: Combined((
        Mute(frozenset({"vote", "ready"})),
        DropIncoming(frozenset({"proof"})),
    )),
]


class TestRandomizedFaultMixes:
    @pytest.mark.parametrize("seed", [1, 2, 3, 4, 5])
    def test_prefix_consistency_under_random_faults(self, seed):
        rng = random.Random(seed)
        n = 7
        config = LeopardConfig(
            n=n, datablock_size=100, bftblock_max_links=5,
            max_batch_delay=0.05, retrieval_timeout=0.15,
            progress_timeout=1.0)
        leader = 1
        candidates = [r for r in range(n) if r != leader]
        faulty = rng.sample(candidates, config.f)
        faults = {r: rng.choice(BEHAVIOUR_POOL)(n, leader) for r in faulty}
        cluster = build_leopard_cluster(
            n=n, seed=seed, config=config, warmup=0.2,
            total_rate=15_000, faults=faults)
        cluster.run(5.0)
        honest = [r for r in cluster.replicas
                  if r.node_id not in faults]
        assert_prefix_consistent(honest)

    @pytest.mark.parametrize("seed", [6, 7])
    def test_faulty_leader_mix(self, seed):
        rng = random.Random(seed)
        n = 7
        config = LeopardConfig(
            n=n, datablock_size=100, bftblock_max_links=5,
            max_batch_delay=0.05, retrieval_timeout=0.15,
            progress_timeout=0.5)
        faults = {1: Crash(at=rng.uniform(0.3, 1.0))}
        cluster = build_leopard_cluster(
            n=n, seed=seed, config=config, warmup=0.2,
            total_rate=15_000, faults=faults)
        cluster.run(7.0)
        honest = [r for r in cluster.replicas if r.node_id != 1]
        assert_prefix_consistent(honest)
        assert any(r.total_executed > 0 for r in honest)


class TestEquivocatingLeader:
    def test_conflicting_proposals_cannot_both_confirm(self, registry4,
                                                       config4):
        """Lemma 1: an equivocating leader sends different BFTblocks with
        the same serial number to different replicas; at most one can
        gather a notarization quorum."""
        replicas = {i: LeopardReplica(i, config4, registry4)
                    for i in (0, 2, 3)}
        leader_signer = registry4.signer(1)

        def proposal(links):
            unsigned = BFTblock(1, 1, links)
            from dataclasses import replace
            return replace(unsigned,
                           leader_share=leader_signer.sign(unsigned.digest()))

        block_a = proposal(())
        block_b = proposal((b"x" * 32,))
        votes = []
        votes += replicas[0].on_message(1, block_a, 0.0)
        votes += replicas[2].on_message(1, block_a, 0.0)
        votes += replicas[3].on_message(1, block_b, 0.0)
        from repro.interfaces import Send
        cast = [e.msg for e in votes if isinstance(e, Send)
                and isinstance(e.msg, Vote)]
        for_a = [v for v in cast if v.block_digest == block_a.digest()]
        for_b = [v for v in cast if v.block_digest == block_b.digest()]
        # block_b links an unknown datablock, so replica 3 won't vote yet;
        # and no replica votes for both.
        assert len(for_a) == 2
        assert len(for_b) == 0
        # The equivocating leader can combine its own share + 2 votes for
        # block_a only: block_b can never reach 2f+1 = 3 because every
        # honest replica is vote-locked on (view 1, sn 1).
        effects = replicas[0].on_message(1, block_b, 0.1)
        assert not any(isinstance(e, Send) and isinstance(e.msg, Vote)
                       for e in effects)

    def test_vote_lock_survives_datablock_arrival(self, registry4, config4):
        """A replica that voted for block A must not vote for block B at
        the same (view, sn) even after B's missing datablock shows up."""
        from dataclasses import replace
        from repro.messages.leopard import Datablock
        replica = LeopardReplica(0, config4, registry4)
        replica.start(0.0)
        leader_signer = registry4.signer(1)
        block_a = BFTblock(1, 1, ())
        block_a = replace(block_a,
                          leader_share=leader_signer.sign(block_a.digest()))
        replica.on_message(1, block_a, 0.0)
        missing = Datablock(3, 1, 10, 128, ())
        block_b = BFTblock(1, 1, (missing.digest(),))
        block_b = replace(block_b,
                          leader_share=leader_signer.sign(block_b.digest()))
        replica.on_message(1, block_b, 0.1)
        effects = replica.on_message(3, missing, 0.2)
        from repro.interfaces import Send
        votes = [e.msg for e in effects if isinstance(e, Send)
                 and isinstance(e.msg, Vote)]
        assert all(v.block_digest != block_b.digest() for v in votes)


class TestPartialSynchrony:
    def test_consistency_through_pre_gst_chaos(self):
        """Before GST messages suffer adversarial delays; safety must hold
        throughout and liveness resumes after GST (Theorem 2)."""
        n = 4
        config = LeopardConfig(
            n=n, datablock_size=100, bftblock_max_links=5,
            max_batch_delay=0.05, retrieval_timeout=0.3,
            progress_timeout=3.0)
        cluster = build_leopard_cluster(
            n=n, seed=13, config=config, warmup=0.2,
            total_rate=15_000, gst=1.5)
        cluster.run(6.0)
        assert_prefix_consistent(cluster.replicas, min_length=1)
        assert all(r.total_executed > 0 for r in cluster.replicas)
