"""Property-based adversarial network tests on the sans-io loop.

An adversary controlling message delivery to/from up to f replicas (drops,
but no forgery — the authenticated-channel model of §III-A) must never be
able to make two honest replicas' logs disagree.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.config import LeopardConfig
from repro.core.replica import LeopardReplica
from repro.crypto.keys import KeyRegistry
from repro.messages.client import RequestBundle
from tests.support import InstantLoop


@pytest.fixture(scope="module")
def registry():
    return KeyRegistry(4, 1, seed=42)


def fast_config():
    return LeopardConfig(
        n=4, datablock_size=40, bftblock_max_links=4,
        proposal_interval=0.01, generation_interval=0.001,
        max_batch_delay=0.02, retrieval_timeout=0.05,
        checkpoint_period=5, progress_timeout=0.4)


def prefix_consistent(replicas) -> bool:
    logs = [[e.block_digest for e in r.ledger.log] for r in replicas]
    shortest = min(len(log) for log in logs)
    return all(
        len({log[i] for log in logs}) == 1 for i in range(shortest))


class TestAdversarialDelivery:
    @settings(max_examples=12, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(
        faulty=st.sampled_from([0, 2, 3]),
        drop_classes=st.sets(
            st.sampled_from(
                ["datablock", "ready", "vote", "proof", "bftblock"]),
            min_size=1, max_size=3),
        direction=st.sampled_from(["in", "out", "both"]),
        seed=st.integers(min_value=0, max_value=100),
    )
    def test_safety_under_message_drops(self, registry, faulty,
                                        drop_classes, direction, seed):
        config = fast_config()
        replicas = {i: LeopardReplica(i, config, registry)
                    for i in range(4)}
        loop = InstantLoop(replicas, replica_ids=list(range(4)))

        def network_filter(src, dst, msg):
            if msg.msg_class not in drop_classes:
                return True
            if direction in ("out", "both") and src == faulty:
                return False
            if direction in ("in", "both") and dst == faulty:
                return False
            return True

        loop.filter = network_filter
        loop.start_all()
        for bundle_id in range(1, 5):
            target = [0, 2, 3][bundle_id % 3]
            loop.deliver_external(
                100, target,
                RequestBundle(100, bundle_id, 40, 128, loop.now))
            loop.run(0.3)
        loop.run(2.0)
        honest = [r for i, r in replicas.items() if i != faulty]
        assert prefix_consistent(honest)
        # With only one misbehaving replica (f = 1) the rest must make
        # progress: some honest replica executed something.
        assert any(r.total_executed > 0 for r in honest)

    @settings(max_examples=8, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(drop_fraction=st.integers(min_value=1, max_value=3),
           seed=st.integers(min_value=0, max_value=50))
    def test_safety_under_random_early_drops(self, registry,
                                             drop_fraction, seed):
        """Randomly dropping a fraction of ALL messages early on (pre-GST
        chaos) may stall progress but must never fork honest logs."""
        import random
        rng = random.Random(seed)
        config = fast_config()
        replicas = {i: LeopardReplica(i, config, registry)
                    for i in range(4)}
        loop = InstantLoop(replicas, replica_ids=list(range(4)))
        chaos_until = 0.5

        def network_filter(src, dst, msg):
            if loop.now > chaos_until:
                return True
            return rng.randrange(4) >= drop_fraction

        loop.filter = network_filter
        loop.start_all()
        for bundle_id in range(1, 4):
            loop.deliver_external(
                100, [0, 2, 3][bundle_id % 3],
                RequestBundle(100, bundle_id, 40, 128, loop.now))
            loop.run(0.2)
        loop.run(3.0)
        assert prefix_consistent(list(replicas.values()))
