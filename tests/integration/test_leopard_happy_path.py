"""End-to-end Leopard runs on the full simulator (bandwidth + CPU models)."""

from __future__ import annotations

import pytest

from repro.core.config import LeopardConfig
from repro.harness import build_leopard_cluster


@pytest.fixture(scope="module")
def small_cluster():
    config = LeopardConfig(
        n=4, datablock_size=200, bftblock_max_links=10,
        proposal_interval=0.01, max_batch_delay=0.05,
        checkpoint_period=10, progress_timeout=2.0)
    cluster = build_leopard_cluster(
        n=4, seed=3, config=config, warmup=0.5, total_rate=40_000)
    cluster.run(3.0)
    return cluster


class TestHappyPath:
    def test_throughput_positive(self, small_cluster):
        assert small_cluster.throughput() > 10_000

    def test_all_honest_replicas_execute_equally(self, small_cluster):
        # Allow a small tail difference for blocks still in flight at the
        # end of the run; the executed *prefix* must be identical.
        logs = [replica.ledger.log for replica in small_cluster.replicas]
        shortest = min(len(log) for log in logs)
        assert shortest > 0
        for position in range(shortest):
            digests = {log[position].block_digest for log in logs}
            assert len(digests) == 1

    def test_no_view_change_under_honest_leader(self, small_cluster):
        assert all(r.view == 1 for r in small_cluster.replicas)

    def test_clients_get_acks(self, small_cluster):
        acked = sum(c.acked_requests for c in small_cluster.clients)
        assert acked > 0

    def test_latency_is_finite_and_positive(self, small_cluster):
        latency = small_cluster.mean_latency()
        assert 0 < latency < 5.0

    def test_checkpoints_advance_watermark(self, small_cluster):
        stable = [r.checkpoints.stable_sn for r in small_cluster.replicas]
        assert max(stable) > 0

    def test_garbage_collection_bounds_pool(self, small_cluster):
        # Pools must not retain every datablock ever created.
        replica = small_cluster.replicas[small_cluster.measure_replica]
        created_total = sum(
            r.datablock_counter - 1 for r in small_cluster.replicas)
        assert len(replica.pool) < created_total

    def test_no_retrieval_in_fault_free_run(self, small_cluster):
        for replica in small_cluster.replicas:
            assert replica.retrieval.recovered_count == 0

    def test_leader_bandwidth_modest(self, small_cluster):
        # The headline claim: the Leopard leader is not a bandwidth
        # hotspot (Fig. 11: < 0.5 Gbps at all scales).
        assert small_cluster.leader_bandwidth_bps() < 0.5e9


class TestDeterminism:
    def _digest_of_run(self, seed):
        config = LeopardConfig(
            n=4, datablock_size=100, bftblock_max_links=5,
            max_batch_delay=0.05)
        cluster = build_leopard_cluster(
            n=4, seed=seed, config=config, warmup=0.2, total_rate=20_000)
        cluster.run(1.0)
        replica = cluster.replicas[cluster.measure_replica]
        return [entry.block_digest for entry in replica.ledger.log]

    def test_same_seed_same_log(self):
        assert self._digest_of_run(11) == self._digest_of_run(11)

    def test_different_seed_differs(self):
        # Jitter and key material differ; the log contents should too.
        assert self._digest_of_run(11) != self._digest_of_run(12)


class TestScalingSmoke:
    def test_throughput_holds_at_n7(self):
        config = LeopardConfig(
            n=7, datablock_size=200, bftblock_max_links=10,
            max_batch_delay=0.05)
        cluster = build_leopard_cluster(
            n=7, seed=3, config=config, warmup=0.5, total_rate=40_000)
        cluster.run(3.0)
        assert cluster.throughput() > 10_000
        assert all(r.view == 1 for r in cluster.replicas)
