"""Multi-replica submission (paper §IV-A1's f+1-fanout option)."""

from __future__ import annotations

import pytest

from repro.core.client import LeopardClient
from repro.core.config import LeopardConfig
from repro.core.replica import LeopardReplica
from repro.interfaces import Send
from tests.support import InstantLoop


class TestFanoutValidation:
    def test_bounds(self):
        config = LeopardConfig(n=7)  # f = 2
        LeopardClient(10, config, rate=100, fanout=3)  # f+1 ok
        with pytest.raises(ValueError):
            LeopardClient(10, config, rate=100, fanout=4)
        with pytest.raises(ValueError):
            LeopardClient(10, config, rate=100, fanout=0)

    def test_fanout_sends_to_distinct_replicas(self):
        config = LeopardConfig(n=7)
        client = LeopardClient(10, config, rate=100, fanout=3)
        effects = client.on_timer("submit", 0.1)
        targets = [e.dest for e in effects if isinstance(e, Send)]
        assert len(targets) == 3
        assert len(set(targets)) == 3
        assert config.leader_of(1) not in targets


class TestFanoutEndToEnd:
    def test_duplicates_execute_but_liveness_holds(self, config4,
                                                   registry4):
        """With fanout 2, two replicas independently pack the same
        requests — the paper's stated throughput cost of the option —
        but clients still get acknowledgements (from both packers)."""
        replicas = {i: LeopardReplica(i, config4, registry4)
                    for i in range(4)}
        loop = InstantLoop(replicas, replica_ids=list(range(4)))
        loop.start_all()
        client = LeopardClient(100, config4, rate=1000, bundle_size=50,
                               fanout=2)
        for effect in client.on_timer("submit", 0.0):
            if isinstance(effect, Send):
                loop.deliver_external(100, effect.dest, effect.msg)
        loop.run(1.0)
        # Both copies were packed by distinct replicas: 2x execution.
        assert all(r.total_executed == 100 for r in replicas.values())
        # Logs remain identical (duplication is a workload property, not
        # a safety one).
        logs = [[e.block_digest for e in r.ledger.log]
                for r in replicas.values()]
        assert all(log == logs[0] for log in logs)
