"""Ablation: the three retrieval designs §IV-A2 discusses.

``erasure`` is the paper's committee + Reed--Solomon design; ``full`` asks
the committee for whole copies; ``leader`` is the rejected "intuitive
solution" where only the leader re-sends.  All three restore liveness —
the difference (which the paper argues analytically) is who pays.
"""

from __future__ import annotations

import pytest

from repro.core.config import LeopardConfig
from repro.harness import build_leopard_cluster
from repro.sim.faults import SelectiveDisseminator


def run_mode(mode: str, n: int = 7, seed: int = 31):
    config = LeopardConfig(
        n=n, datablock_size=200, bftblock_max_links=5,
        max_batch_delay=0.05, max_proposal_delay=0.05,
        retrieval_timeout=0.1, retrieval_mode=mode,
        progress_timeout=10.0)
    leader = 1
    victim = 2
    faulty = 3
    targets = frozenset(
        r for r in range(n) if r not in (victim, faulty))
    cluster = build_leopard_cluster(
        n=n, seed=seed, config=config, warmup=0.5, total_rate=20_000,
        faults={faulty: SelectiveDisseminator(targets)})
    cluster.run(5.0)
    return cluster


@pytest.fixture(scope="module")
def mode_runs():
    return {mode: run_mode(mode) for mode in ("erasure", "full", "leader")}


class TestAllModesRecover:
    @pytest.mark.parametrize("mode", ["erasure", "full", "leader"])
    def test_victim_executes(self, mode_runs, mode):
        victim = mode_runs[mode].replicas[2]
        assert victim.total_executed > 0

    @pytest.mark.parametrize("mode", ["erasure", "full", "leader"])
    def test_logs_consistent(self, mode_runs, mode):
        cluster = mode_runs[mode]
        honest = [r for r in cluster.replicas if r.node_id != 3]
        logs = [[e.block_digest for e in r.ledger.log] for r in honest]
        shortest = min(len(log) for log in logs)
        assert shortest > 0
        for position in range(shortest):
            assert len({log[position] for log in logs}) == 1

    def test_erasure_mode_actually_decodes(self, mode_runs):
        victim = mode_runs["erasure"].replicas[2]
        assert victim.retrieval.recovered_count > 0


class TestWhoPays:
    def test_leader_resends_only_in_copy_modes(self, mode_runs):
        """The leader re-sends whole datablocks in the `leader` mode (the
        re-centralisation of §IV-A2's "intuitive solution") and as a
        committee member in `full` mode — never in the erasure design,
        where it ships only chunk responses."""
        leader_egress = {
            mode: cluster.network.stats(1).sent_bytes.get("datablock", 0)
            for mode, cluster in mode_runs.items()}
        assert leader_egress["leader"] > 0
        assert leader_egress["erasure"] == 0

    def test_full_copies_waste_victim_ingress(self, mode_runs):
        """In `full` mode every committee holder ships a whole copy, so
        the victim receives redundant data; `leader` mode delivers one
        copy per block."""
        def victim_recovery_ingress(cluster):
            return cluster.network.stats(2).recv_bytes.get("datablock", 0)

        full_bytes = victim_recovery_ingress(mode_runs["full"])
        leader_bytes = victim_recovery_ingress(mode_runs["leader"])
        assert full_bytes > 1.5 * leader_bytes

    def test_erasure_is_cheapest_for_responders(self, mode_runs):
        """Per-responder bytes: one chunk (~α/(f+1)) vs a whole copy."""
        erasure = mode_runs["erasure"]
        full = mode_runs["full"]
        erasure_bytes = max(
            erasure.network.stats(r).sent_bytes.get("resp", 0)
            for r in range(7) if r != 2)
        responders = [r for r in range(7) if r not in (1, 2, 3)]
        # In full mode, re-sent copies ride the datablock class; compare
        # against the erasure run's identical topology.
        extra_full = []
        for r in responders:
            full_sent = full.network.stats(r).sent_bytes.get("datablock", 0)
            base_sent = erasure.network.stats(r).sent_bytes.get(
                "datablock", 0)
            extra_full.append(full_sent - base_sent)
        assert erasure_bytes > 0
        # At n=7 (f=2) a chunk is ~1/3 of a datablock; allow headroom.
        datablock_bytes = 200 * 128
        per_recovery_erasure = erasure_bytes \
            / max(1, erasure.replicas[2].retrieval.recovered_count)
        assert per_recovery_erasure < datablock_bytes
