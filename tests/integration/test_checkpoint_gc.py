"""Checkpoint + garbage-collection integration (Algorithm 4, Appendix A)."""

from __future__ import annotations

import pytest

from repro.core.config import LeopardConfig
from repro.harness import build_leopard_cluster


@pytest.fixture(scope="module")
def gc_cluster():
    config = LeopardConfig(
        n=4, datablock_size=100, bftblock_max_links=2,
        max_batch_delay=0.02, checkpoint_period=6,
        max_parallel_instances=30, progress_timeout=5.0)
    cluster = build_leopard_cluster(
        n=4, seed=17, config=config, warmup=0.3, total_rate=30_000)
    cluster.run(4.0)
    return cluster


class TestCheckpoints:
    def test_stable_checkpoint_advances_everywhere(self, gc_cluster):
        stable = [r.checkpoints.stable_sn for r in gc_cluster.replicas]
        assert min(stable) >= 6
        # Stability is a quorum property; replicas may differ by at most
        # one period while proofs are in flight.
        assert max(stable) - min(stable) <= 6

    def test_checkpoints_are_period_aligned(self, gc_cluster):
        for replica in gc_cluster.replicas:
            assert replica.checkpoints.stable_sn % 6 == 0

    def test_watermark_follows_checkpoint(self, gc_cluster):
        for replica in gc_cluster.replicas:
            assert replica.store.low_watermark \
                == replica.checkpoints.stable_sn

    def test_instances_below_watermark_are_collected(self, gc_cluster):
        for replica in gc_cluster.replicas:
            low = replica.store.low_watermark
            assert all(sn > low for sn in replica.store.instances)

    def test_pool_is_bounded_by_gc(self, gc_cluster):
        total_created = sum(
            r.datablock_counter - 1 for r in gc_cluster.replicas)
        for replica in gc_cluster.replicas:
            assert len(replica.pool) < total_created / 2

    def test_progress_continues_past_many_checkpoints(self, gc_cluster):
        # The watermark window (30) is far smaller than the number of
        # blocks agreed; without GC the protocol would have stalled.
        measure = gc_cluster.replicas[gc_cluster.measure_replica]
        assert measure.ledger.last_executed > 30

    def test_checkpoint_certificate_verifies(self, gc_cluster):
        replica = gc_cluster.replicas[0]
        proof = replica.checkpoints.latest_proof
        assert proof is not None
        from repro.messages.leopard import checkpoint_payload
        assert replica.scheme.verify(
            proof.signature,
            checkpoint_payload(proof.sn, proof.state_digest))
