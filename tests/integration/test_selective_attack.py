"""The §IV-A2 selective attack: faulty creators starve some replicas of
their datablocks; the ready round + erasure-coded retrieval must restore
liveness without re-centralising load on the leader."""

from __future__ import annotations

from repro.core.config import LeopardConfig
from repro.harness import build_leopard_cluster
from repro.sim.faults import SelectiveDisseminator


def attack_cluster(n=4, seed=5, victim=2):
    """One faulty creator sends datablocks only to a ready-quorum subset
    that excludes ``victim``."""
    config = LeopardConfig(
        n=n, datablock_size=100, bftblock_max_links=5,
        max_batch_delay=0.05, retrieval_timeout=0.1,
        progress_timeout=10.0)
    leader = 1 % n
    faulty = next(r for r in range(n) if r not in (leader, victim))
    others = [r for r in range(n)
              if r not in (leader, victim, faulty)][: 2 * config.f - 1]
    targets = frozenset([leader] + others)
    cluster = build_leopard_cluster(
        n=n, seed=seed, config=config, warmup=0.5, total_rate=20_000,
        faults={faulty: SelectiveDisseminator(targets)})
    return cluster, faulty, victim


class TestRetrievalRestoresLiveness:
    def test_victim_recovers_and_executes(self):
        cluster, faulty, victim = attack_cluster()
        cluster.run(4.0)
        victim_replica = cluster.replicas[victim]
        assert victim_replica.retrieval.recovered_count > 0
        assert victim_replica.total_executed > 0
        # The victim's log must match an unaffected replica's prefix.
        reference = cluster.replicas[
            next(r for r in range(4) if r not in (victim, faulty, 1))]
        victim_log = [e.block_digest for e in victim_replica.ledger.log]
        reference_log = [e.block_digest for e in reference.ledger.log]
        shortest = min(len(victim_log), len(reference_log))
        assert shortest > 0
        assert victim_log[:shortest] == reference_log[:shortest]

    def test_no_view_change_needed(self):
        cluster, _, _ = attack_cluster()
        cluster.run(4.0)
        assert all(r.view == 1 for r in cluster.replicas)

    def test_responders_split_the_cost(self):
        # §V-B case (b): each response is ~alpha/(f+1) + O(log n), so the
        # per-responder cost must be well below re-sending whole blocks.
        cluster, faulty, victim = attack_cluster()
        cluster.run(4.0)
        datablock_bytes = 100 * 128
        for node in range(4):
            if node == victim:
                continue
            sent = cluster.network.stats(node).sent_bytes.get("resp", 0)
            responded = cluster.replicas[node].retrieval.responses_sent
            if responded:
                per_response = sent / responded
                assert per_response < datablock_bytes

    def test_victim_recovery_traffic_is_bounded(self):
        cluster, faulty, victim = attack_cluster()
        cluster.run(4.0)
        victim_replica = cluster.replicas[victim]
        recovered = victim_replica.retrieval.recovered_count
        resp_bytes = cluster.network.stats(victim).recv_bytes.get("resp", 0)
        datablock_bytes = 100 * 128
        assert recovered > 0
        # f+1 chunks of alpha/(f+1) each ~= alpha, plus proofs/meta.
        assert resp_bytes / recovered < 3 * datablock_bytes


class TestSevenReplicas:
    def test_two_victims_both_recover(self):
        n = 7
        config = LeopardConfig(
            n=n, datablock_size=100, bftblock_max_links=5,
            max_batch_delay=0.05, retrieval_timeout=0.1,
            progress_timeout=10.0)
        leader = 1
        faulty = 3
        victims = (2, 5)
        targets = frozenset(
            r for r in range(n) if r not in victims and r != faulty)
        cluster = build_leopard_cluster(
            n=n, seed=6, config=config, warmup=0.5, total_rate=20_000,
            faults={faulty: SelectiveDisseminator(targets)})
        cluster.run(5.0)
        for victim in victims:
            assert cluster.replicas[victim].retrieval.recovered_count > 0
            assert cluster.replicas[victim].total_executed > 0
