"""Results-store tests: dedupe, trial ingestion, legacy back-compat.

The back-compat class ingests the *committed* benchmark and calibration
artifacts and checks nothing is lost — every original row must be
recoverable verbatim from the store, with host fingerprints preserved
so cross-host rows are never compared on absolute throughput.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.expt.runner import write_result
from repro.expt.store import ResultsStore

BENCH_MICRO = Path("benchmarks/BENCH_micro_coding.json")
BENCH_SIM = Path("benchmarks/BENCH_sim_eventloop.json")
PRESETS = Path("benchmarks/CALIBRATION_presets.json")


def trial_doc(trial_id: str = "t1", host: str = "hostA/x",
              recorded_at: float = 100.0, throughput: float = 500.0) -> dict:
    return {
        "schema": 1,
        "kind": "trial_result",
        "experiment": "unit",
        "trial": {"experiment": "unit", "trial_id": trial_id,
                  "protocol": "leopard", "backend": "sim", "n": 4,
                  "rate": 2000.0, "payload": 128, "duration": 0.5,
                  "warmup": 0.1, "bundle_size": 10, "datablock_size": 10,
                  "scenario": None, "queue_backend": None, "waves": False,
                  "repeat": 0, "seed": 7},
        "host": host,
        "recorded_at": recorded_at,
        "elapsed_s": 0.1,
        "report": {"schema": 6, "throughput_rps": throughput,
                   "latency_s": {"mean": 0.01, "p50": 0.008, "p99": 0.03},
                   "acked_bundles": 5},
    }


class TestAppendDedupe:
    def test_append_and_read_back(self, tmp_path):
        store = ResultsStore(tmp_path / "s.jsonl")
        assert store.append({"kind": "trial", "key": "k1", "x": 1})
        rows = store.rows()
        assert len(rows) == 1
        assert rows[0]["x"] == 1

    def test_duplicate_key_is_noop(self, tmp_path):
        store = ResultsStore(tmp_path / "s.jsonl")
        assert store.append({"kind": "trial", "key": "k1"})
        assert not store.append({"kind": "trial", "key": "k1", "x": 2})
        assert len(store.rows()) == 1

    def test_rejects_missing_kind_or_key(self, tmp_path):
        store = ResultsStore(tmp_path / "s.jsonl")
        with pytest.raises(ValueError, match="kind"):
            store.append({"key": "k"})
        with pytest.raises(ValueError, match="key"):
            store.append({"kind": "trial"})

    def test_torn_tail_line_never_poisons_reads(self, tmp_path):
        store = ResultsStore(tmp_path / "s.jsonl")
        store.append({"kind": "trial", "key": "k1"})
        with store.path.open("a") as handle:
            handle.write('{"kind": "trial", "key": "k2", "trunc')
        assert [r["key"] for r in store.rows()] == ["k1"]
        # And appending after the torn line still works.
        assert store.append({"kind": "trial", "key": "k3"})
        assert {r["key"] for r in store.rows()} == {"k1", "k3"}

    def test_filters(self, tmp_path):
        store = ResultsStore(tmp_path / "s.jsonl")
        store.append_many([
            {"kind": "trial", "key": "a", "protocol": "leopard"},
            {"kind": "trial", "key": "b", "protocol": "pbft"},
            {"kind": "bench_row", "key": "c"},
        ])
        assert len(store.rows(kind="trial")) == 2
        assert [r["key"] for r in store.rows(kind="trial",
                                             protocol="pbft")] == ["b"]


class TestTrialIngestion:
    def test_flattens_metrics(self, tmp_path):
        store = ResultsStore(tmp_path / "s.jsonl")
        assert store.ingest_trial_result(trial_doc())
        row = store.rows(kind="trial")[0]
        assert row["protocol"] == "leopard"
        assert row["host"] == "hostA/x"
        assert row["metrics"]["throughput_rps"] == 500.0
        assert row["metrics"]["latency_p50_s"] == 0.008
        assert row["seed"] == 7

    def test_same_execution_deduplicates(self, tmp_path):
        store = ResultsStore(tmp_path / "s.jsonl")
        doc = trial_doc()
        assert store.ingest_trial_result(doc)
        assert not store.ingest_trial_result(doc)
        assert len(store.rows()) == 1

    def test_rerun_at_new_timestamp_accumulates(self, tmp_path):
        # Longitudinal: the same trial re-executed later is a new row.
        store = ResultsStore(tmp_path / "s.jsonl")
        assert store.ingest_trial_result(trial_doc(recorded_at=100.0))
        assert store.ingest_trial_result(trial_doc(recorded_at=200.0))
        assert len(store.rows(kind="trial")) == 2

    def test_ingest_results_dir_skips_invalid(self, tmp_path):
        results = tmp_path / "results"
        results.mkdir()
        write_result(results, trial_doc("good"))
        (results / "bad.json").write_text("{corrupt")
        store = ResultsStore(tmp_path / "s.jsonl")
        assert store.ingest_results_dir(results) == 1
        row = store.rows(kind="trial")[0]
        assert row["trial_id"] == "good"
        assert row["source"].endswith("good.json")


class TestReportSchemaCompat:
    """Satellite: schema-6 rows (pre-recovery) and schema-7 rows
    (recovery + retransmissions sections) must coexist in one store."""

    def schema7_doc(self, trial_id: str = "t7",
                    recorded_at: float = 300.0) -> dict:
        doc = trial_doc(trial_id, recorded_at=recorded_at,
                        throughput=750.0)
        doc["report"]["schema"] = 7
        doc["report"]["retransmissions"] = 3
        doc["report"]["recovery"] = {
            "replicas": {"3": {"rounds": 1, "complete": True,
                               "segments_fetched": 2,
                               "installed_entries": 40}},
            "snapshots_persisted": 12,
            "restored_from_disk": [3],
        }
        return doc

    def test_schema7_report_ingests(self, tmp_path):
        store = ResultsStore(tmp_path / "s.jsonl")
        assert store.ingest_trial_result(self.schema7_doc())
        row = store.rows(kind="trial")[0]
        assert row["report_schema"] == 7
        assert row["metrics"]["throughput_rps"] == 750.0

    def test_mixed_schemas_coexist_with_provenance(self, tmp_path):
        store = ResultsStore(tmp_path / "s.jsonl")
        assert store.ingest_trial_result(trial_doc("t6"))
        assert store.ingest_trial_result(self.schema7_doc("t7"))
        by_schema = {row["report_schema"]: row
                     for row in store.rows(kind="trial")}
        assert set(by_schema) == {6, 7}
        # The longitudinal report layer compares these rows on the same
        # flattened metrics regardless of which schema produced them.
        assert set(by_schema[6]["metrics"]) == set(by_schema[7]["metrics"])

    def test_new_sections_do_not_leak_into_metrics(self, tmp_path):
        store = ResultsStore(tmp_path / "s.jsonl")
        store.ingest_trial_result(self.schema7_doc())
        metrics = store.rows(kind="trial")[0]["metrics"]
        assert "recovery" not in metrics
        assert "retransmissions" not in metrics

    def test_schema6_doc_without_recovery_keys_still_ingests(
            self, tmp_path):
        doc = trial_doc("legacy")
        assert "recovery" not in doc["report"]
        store = ResultsStore(tmp_path / "s.jsonl")
        assert store.ingest_trial_result(doc)
        assert store.rows(kind="trial")[0]["report_schema"] == 6


class TestLegacyBackCompat:
    """The committed artifacts must ingest losslessly."""

    @pytest.mark.parametrize("artifact", [BENCH_MICRO, BENCH_SIM],
                             ids=lambda p: p.stem)
    def test_bench_reports_ingest_losslessly(self, tmp_path, artifact):
        original = json.loads(artifact.read_text())
        store = ResultsStore(tmp_path / "s.jsonl")
        appended = store.ingest_bench_report(artifact)
        rows = store.rows(kind="bench_row", bench=original["name"])
        assert appended == len(rows) == len(original["results"])
        # Every original result row is preserved verbatim under "row".
        assert [r["row"] for r in rows] == original["results"]
        # The artifact's provenance rides along on every row.
        for row in rows:
            assert row["host"] == original["host"]
            assert row["mode"] == original["mode"]
            assert row["python"] == original["python"]
            assert row["source"] == str(artifact)

    def test_presets_ingest_with_host_keys(self, tmp_path):
        original = json.loads(PRESETS.read_text())
        store = ResultsStore(tmp_path / "s.jsonl")
        appended = store.ingest_calibration_presets(PRESETS)
        rows = store.rows(kind="calibration_preset")
        assert appended == len(rows) == sum(
            len(protocols) for protocols in original.values())
        for row in rows:
            assert row["preset"] == original[row["host"]][row["protocol"]]

    def test_reingest_is_idempotent(self, tmp_path):
        store = ResultsStore(tmp_path / "s.jsonl")
        first = store.ingest_bench_report(BENCH_MICRO)
        assert first > 0
        assert store.ingest_bench_report(BENCH_MICRO) == 0
        assert store.ingest_calibration_presets(PRESETS) > 0
        assert store.ingest_calibration_presets(PRESETS) == 0

    def test_run_label_lands_fresh_longitudinal_rows(self, tmp_path):
        # CI passes its run id: the same artifact content appends again
        # as this week's observation instead of deduping away.
        store = ResultsStore(tmp_path / "s.jsonl")
        baseline = store.ingest_bench_report(BENCH_MICRO)
        weekly = store.ingest_bench_report(BENCH_MICRO, run_label="run-42")
        assert weekly == baseline
        assert len(store.rows(kind="bench_row")) == 2 * baseline
        assert len(store.rows(kind="bench_row",
                              run_label="run-42")) == weekly

    def test_hosts_never_merge(self, tmp_path):
        # Rows from different fingerprints stay distinguishable: the
        # report layer groups on "host" and only compares within one.
        store = ResultsStore(tmp_path / "s.jsonl")
        store.ingest_bench_report(BENCH_MICRO)
        store.ingest_trial_result(trial_doc(host="hostB/y"))
        hosts = store.hosts()
        assert len(hosts) >= 2
        assert "hostB/y" in hosts
        for host in hosts:
            for row in store.rows(host=host):
                assert row["host"] == host

    def test_ingest_artifact_sniffs_all_three_families(self, tmp_path):
        store = ResultsStore(tmp_path / "s.jsonl")
        assert store.ingest_artifact(BENCH_MICRO) > 0
        assert store.ingest_artifact(PRESETS) > 0
        results = tmp_path / "results"
        results.mkdir()
        path = write_result(results, trial_doc())
        assert store.ingest_artifact(path) == 1
        kinds = {r["kind"] for r in store.rows()}
        assert kinds == {"bench_row", "calibration_preset", "trial"}

    def test_ingest_artifact_rejects_unknown(self, tmp_path):
        path = tmp_path / "mystery.json"
        path.write_text(json.dumps({"hello": "world"}))
        store = ResultsStore(tmp_path / "s.jsonl")
        with pytest.raises(ValueError, match="unrecognized artifact"):
            store.ingest_artifact(path)
