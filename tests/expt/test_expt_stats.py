"""Sanity tests for the dependency-light store statistics."""

from __future__ import annotations

import math
import random

from repro.expt.stats import (
    bootstrap_ci,
    geometric_mean,
    mann_whitney_u,
    mean,
    speedup,
)


class TestMeans:
    def test_mean(self):
        assert mean([1.0, 2.0, 3.0]) == 2.0
        assert math.isnan(mean([]))

    def test_geometric_mean(self):
        assert geometric_mean([2.0, 8.0]) == 4.0
        assert math.isnan(geometric_mean([]))
        # Non-positive values are excluded, not fatal.
        assert geometric_mean([4.0, 0.0, -1.0]) == 4.0

    def test_geometric_mean_baseline_symmetry(self):
        # geomean(ratios) * geomean(inverse ratios) == 1: aggregating a
        # grid of speedups is symmetric in which side is the baseline.
        ratios = [1.5, 0.8, 2.0, 1.1]
        forward = geometric_mean(ratios)
        backward = geometric_mean([1.0 / r for r in ratios])
        assert forward * backward == 0.9999999999999999 or \
            abs(forward * backward - 1.0) < 1e-12


class TestBootstrapCI:
    def test_contains_the_mean_for_a_real_sample(self):
        rng = random.Random(1)
        values = [rng.gauss(100.0, 5.0) for _ in range(20)]
        lo, hi = bootstrap_ci(values)
        assert lo <= mean(values) <= hi
        assert lo < hi

    def test_deterministic(self):
        values = [3.0, 4.0, 5.0, 7.0]
        assert bootstrap_ci(values) == bootstrap_ci(values)

    def test_degenerate_samples(self):
        assert bootstrap_ci([5.0]) == (5.0, 5.0)
        lo, hi = bootstrap_ci([])
        assert math.isnan(lo) and math.isnan(hi)

    def test_identical_values_collapse(self):
        assert bootstrap_ci([2.0, 2.0, 2.0]) == (2.0, 2.0)

    def test_wider_noise_wider_interval(self):
        rng = random.Random(2)
        tight = [rng.gauss(100.0, 1.0) for _ in range(15)]
        loose = [rng.gauss(100.0, 20.0) for _ in range(15)]
        t_lo, t_hi = bootstrap_ci(tight)
        l_lo, l_hi = bootstrap_ci(loose)
        assert (l_hi - l_lo) > (t_hi - t_lo)


class TestSpeedup:
    def test_ratio_of_means(self):
        assert speedup([200.0, 200.0], [100.0]) == 2.0

    def test_nan_safe(self):
        assert math.isnan(speedup([], [100.0]))
        assert math.isnan(speedup([100.0], []))
        assert math.isnan(speedup([100.0], [0.0]))


class TestMannWhitney:
    def test_clearly_separated_samples_small_p(self):
        a = [100.0, 101.0, 99.0, 102.0, 98.0]
        b = [10.0, 11.0, 9.0, 12.0, 8.0]
        _u, p = mann_whitney_u(a, b)
        assert p < 0.05

    def test_identical_samples_large_p(self):
        a = [1.0, 2.0, 3.0, 4.0, 5.0]
        _u, p = mann_whitney_u(a, list(a))
        assert p > 0.5

    def test_all_tied_is_p_one(self):
        u, p = mann_whitney_u([5.0, 5.0], [5.0, 5.0])
        assert p == 1.0
        assert not math.isnan(u)

    def test_empty_side_is_p_one(self):
        _u, p = mann_whitney_u([], [1.0, 2.0])
        assert p == 1.0

    def test_symmetry(self):
        a = [10.0, 12.0, 9.0]
        b = [20.0, 22.0, 19.0]
        _, p_ab = mann_whitney_u(a, b)
        _, p_ba = mann_whitney_u(b, a)
        assert abs(p_ab - p_ba) < 1e-12

    def test_u_statistic_matches_definition(self):
        # U = number of (a, b) pairs with a > b (plus half-ties).
        a = [3.0, 5.0]
        b = [1.0, 4.0]
        u, _ = mann_whitney_u(a, b)
        wins = sum(1 for x in a for y in b if x > y)
        assert u == wins
