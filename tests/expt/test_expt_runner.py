"""Runner robustness tests: resume, retry-with-same-seed, corrupt results.

Every test drives :func:`run_experiment` through the inline path with an
injectable ``execute`` callable, so failures are scripted and no
subprocess pools or real protocol runs are involved.  One integration
test at the bottom runs a single real simulated trial end to end.
"""

from __future__ import annotations

import json

import pytest

from repro.expt.config import expand
from repro.expt.runner import (
    execute_trial,
    result_path,
    run_experiment,
    validate_result,
    write_result,
)


def tiny_config(repeats: int = 1):
    return expand({
        "name": "unit",
        "repeats": repeats,
        "defaults": {"duration": 0.1, "warmup": 0.0},
        "matrix": {
            "protocol": ["leopard", "pbft"],
            "backend": [{"backend": "sim", "n": 4}],
        },
    })


def fake_result(trial_spec: dict, throughput: float = 1234.0) -> dict:
    """A structurally valid trial_result document without running anything."""
    return {
        "schema": 1,
        "kind": "trial_result",
        "experiment": trial_spec["experiment"],
        "trial": dict(trial_spec),
        "host": "testhost/x",
        "recorded_at": 1.0,
        "elapsed_s": 0.01,
        "report": {
            "schema": 6,
            "throughput_rps": throughput,
            "latency_s": {"mean": 0.01, "p50": 0.01, "p99": 0.02},
            "acked_bundles": 3,
        },
    }


class TestRunResume:
    def test_all_trials_execute_and_persist(self, tmp_path):
        cfg = tiny_config()
        seen = []

        def execute(spec):
            seen.append(spec["trial_id"])
            return fake_result(spec)

        summary = run_experiment(cfg, tmp_path, execute=execute)
        assert sorted(seen) == sorted(t.trial_id for t in cfg.trials)
        assert summary["failed"] == {}
        assert len(summary["executed"]) == 2
        for trial in cfg.trials:
            assert validate_result(
                result_path(tmp_path, trial.trial_id), trial)

    def test_resume_skips_valid_results(self, tmp_path):
        cfg = tiny_config()
        run_experiment(cfg, tmp_path, execute=lambda s: fake_result(s))
        seen = []
        summary = run_experiment(
            cfg, tmp_path,
            execute=lambda s: seen.append(s) or fake_result(s))
        assert seen == []
        assert len(summary["skipped"]) == 2
        assert summary["executed"] == []

    def test_deleting_one_result_reruns_exactly_that_trial(self, tmp_path):
        cfg = tiny_config()
        run_experiment(cfg, tmp_path, execute=lambda s: fake_result(s))
        victim = cfg.trials[0].trial_id
        result_path(tmp_path, victim).unlink()
        seen = []

        def execute(spec):
            seen.append(spec["trial_id"])
            return fake_result(spec)

        summary = run_experiment(cfg, tmp_path, execute=execute)
        assert seen == [victim]
        assert summary["executed"] == [victim]
        assert len(summary["skipped"]) == 1

    def test_partial_file_from_killed_run_is_reexecuted(self, tmp_path):
        # A run killed mid-write leaves a truncated file: it must fail
        # validation and be re-run, not resumed past.
        cfg = tiny_config()
        run_experiment(cfg, tmp_path, execute=lambda s: fake_result(s))
        victim = cfg.trials[1]
        path = result_path(tmp_path, victim.trial_id)
        full = path.read_text()
        path.write_text(full[:len(full) // 2])
        seen = []
        run_experiment(cfg, tmp_path,
                       execute=lambda s: seen.append(s["trial_id"])
                       or fake_result(s))
        assert seen == [victim.trial_id]
        assert validate_result(path, victim)

    def test_corrupt_json_is_reexecuted(self, tmp_path):
        cfg = tiny_config()
        run_experiment(cfg, tmp_path, execute=lambda s: fake_result(s))
        victim = cfg.trials[0]
        result_path(tmp_path, victim.trial_id).write_text("{]")
        summary = run_experiment(cfg, tmp_path,
                                 execute=lambda s: fake_result(s))
        assert summary["executed"] == [victim.trial_id]

    def test_reseeded_config_invalidates_stale_result(self, tmp_path):
        # Changing base_seed reseeds every trial; old results must not
        # be silently resumed past.
        cfg = tiny_config()
        run_experiment(cfg, tmp_path, execute=lambda s: fake_result(s))
        doc = {"name": "unit", "base_seed": 99,
               "defaults": {"duration": 0.1, "warmup": 0.0},
               "matrix": {"protocol": ["leopard", "pbft"],
                          "backend": [{"backend": "sim", "n": 4}]}}
        reseeded = expand(doc)
        summary = run_experiment(reseeded, tmp_path,
                                 execute=lambda s: fake_result(s))
        assert summary["skipped"] == []
        assert len(summary["executed"]) == 2

    def test_no_resume_reruns_everything(self, tmp_path):
        cfg = tiny_config()
        run_experiment(cfg, tmp_path, execute=lambda s: fake_result(s))
        summary = run_experiment(cfg, tmp_path, resume=False,
                                 execute=lambda s: fake_result(s))
        assert len(summary["executed"]) == 2


class TestRetry:
    def test_raising_trial_retried_bounded_with_same_seed(self, tmp_path):
        cfg = tiny_config()
        victim = cfg.trials[0].trial_id
        calls: list[tuple[str, int]] = []

        def flaky(spec):
            calls.append((spec["trial_id"], spec["seed"]))
            if spec["trial_id"] == victim and len(
                    [c for c in calls if c[0] == victim]) < 3:
                raise OSError("address already in use")
            return fake_result(spec)

        summary = run_experiment(cfg, tmp_path, retries=2, execute=flaky)
        victim_calls = [c for c in calls if c[0] == victim]
        assert len(victim_calls) == 3            # initial + 2 retries
        assert len({seed for _, seed in victim_calls}) == 1
        assert summary["failed"] == {}
        assert summary["attempts"][victim] == 3

    def test_permanently_failing_trial_reported_failed(self, tmp_path):
        cfg = tiny_config()

        def broken(spec):
            if spec["trial_id"] == cfg.trials[0].trial_id:
                raise RuntimeError("boom")
            return fake_result(spec)

        summary = run_experiment(cfg, tmp_path, retries=1, execute=broken)
        assert list(summary["failed"]) == [cfg.trials[0].trial_id]
        assert "boom" in summary["failed"][cfg.trials[0].trial_id]
        assert summary["attempts"][cfg.trials[0].trial_id] == 2
        # The healthy trial still completed.
        assert cfg.trials[1].trial_id in summary["executed"]

    def test_zero_retries_means_one_attempt(self, tmp_path):
        cfg = tiny_config()
        calls = []

        def broken(spec):
            calls.append(spec["trial_id"])
            raise RuntimeError("down")

        summary = run_experiment(cfg, tmp_path, retries=0, execute=broken)
        assert len(calls) == 2                    # one attempt per trial
        assert len(summary["failed"]) == 2


class TestValidateResult:
    def test_rejects_wrong_trial_id_or_seed(self, tmp_path):
        cfg = tiny_config()
        trial = cfg.trials[0]
        doc = fake_result(trial.to_dict())
        path = write_result(tmp_path, doc)
        assert validate_result(path, trial)
        other = cfg.trials[1]
        assert validate_result(path, other) is None
        tampered = dict(trial.to_dict(), seed=trial.seed + 1)
        assert validate_result(path, tampered) is None

    def test_rejects_missing_report_fields(self, tmp_path):
        cfg = tiny_config()
        doc = fake_result(cfg.trials[0].to_dict())
        del doc["report"]["throughput_rps"]
        path = tmp_path / "x.json"
        path.write_text(json.dumps(doc))
        assert validate_result(path) is None

    def test_rejects_wrong_envelope(self, tmp_path):
        path = tmp_path / "x.json"
        path.write_text(json.dumps({"kind": "something_else"}))
        assert validate_result(path) is None

    def test_write_is_atomic_no_tmp_left_behind(self, tmp_path):
        cfg = tiny_config()
        write_result(tmp_path, fake_result(cfg.trials[0].to_dict()))
        assert not list(tmp_path.glob("*.tmp"))


class TestRealTrial:
    def test_one_simulated_trial_end_to_end(self, tmp_path):
        # A real n=4 leopard sim trial through the actual execute_trial:
        # small bundles so commits land inside the short window.
        cfg = expand({
            "name": "real",
            "defaults": {"duration": 0.5, "warmup": 0.1, "rate": 2000.0,
                         "bundle_size": 10, "datablock_size": 10},
            "matrix": {"protocol": ["leopard"],
                       "backend": [{"backend": "sim", "n": 4}]},
        })
        summary = run_experiment(cfg, tmp_path, jobs=0,
                                 execute=execute_trial)
        assert summary["failed"] == {}
        doc = validate_result(
            result_path(tmp_path, cfg.trials[0].trial_id), cfg.trials[0])
        assert doc is not None
        assert doc["report"]["throughput_rps"] > 0
        assert doc["host"]

    def test_deterministic_given_seed(self, tmp_path):
        cfg = expand({
            "name": "det",
            "defaults": {"duration": 0.4, "warmup": 0.1,
                         "bundle_size": 10, "datablock_size": 10},
            "matrix": {"protocol": ["leopard"],
                       "backend": [{"backend": "sim", "n": 4}]},
        })
        spec = cfg.trials[0].to_dict()
        first = execute_trial(spec)
        second = execute_trial(spec)
        assert first["report"]["throughput_rps"] == \
            second["report"]["throughput_rps"]
        assert first["report"]["events_processed"] == \
            second["report"]["events_processed"]


@pytest.mark.slow
class TestParallelPool:
    def test_pool_path_runs_trials(self, tmp_path):
        # The real ProcessPoolExecutor path with the real execute_trial.
        cfg = expand({
            "name": "pool",
            "defaults": {"duration": 0.3, "warmup": 0.1,
                         "bundle_size": 10, "datablock_size": 10},
            "matrix": {"protocol": ["leopard", "pbft"],
                       "backend": [{"backend": "sim", "n": 4}]},
        })
        summary = run_experiment(cfg, tmp_path, jobs=2)
        assert summary["failed"] == {}
        assert len(summary["executed"]) == 2
