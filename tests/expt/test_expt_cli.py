"""CLI-level tests for the ``expt`` subcommand family.

These drive the acceptance path: ``expt run`` on a config executes the
trials and appends to a store, a re-invocation after deleting one
result file re-runs exactly that trial, and ``expt report`` renders the
cross-protocol tables from a store that also holds ingested legacy
artifact rows.
"""

from __future__ import annotations

import json

from repro.expt.store import ResultsStore
from repro.harness.cli import main


def write_config(tmp_path, name="cliexp"):
    config = tmp_path / f"{name}.json"
    config.write_text(json.dumps({
        "name": name,
        "defaults": {"duration": 0.4, "warmup": 0.1, "rate": 2000.0,
                     "bundle_size": 10, "datablock_size": 10},
        "matrix": {"protocol": ["leopard", "pbft"],
                   "backend": [{"backend": "sim", "n": 4}]},
    }))
    return config


class TestExptRun:
    def test_run_executes_and_fills_store(self, tmp_path, capsys):
        config = write_config(tmp_path)
        results = tmp_path / "results"
        store_path = tmp_path / "store.jsonl"
        assert main(["expt", "run", "--config", str(config),
                     "--results-dir", str(results),
                     "--store", str(store_path), "--jobs", "0"]) == 0
        out = capsys.readouterr().out
        assert "2 trials" in out
        assert "executed 2" in out
        assert len(list(results.glob("*.json"))) == 2
        rows = ResultsStore(store_path).rows(kind="trial")
        assert {r["protocol"] for r in rows} == {"leopard", "pbft"}
        assert all(r["metrics"]["throughput_rps"] > 0 for r in rows)

    def test_reinvocation_resumes_and_reruns_deleted(self, tmp_path,
                                                     capsys):
        config = write_config(tmp_path)
        results = tmp_path / "results"
        argv = ["expt", "run", "--config", str(config),
                "--results-dir", str(results), "--jobs", "0"]
        assert main(argv) == 0
        capsys.readouterr()
        # Nothing to do on a clean re-invocation.
        assert main(argv) == 0
        assert "resumed past 2" in capsys.readouterr().out
        # Deleting one result re-runs exactly that trial.
        victims = sorted(results.glob("pbft*.json"))
        assert len(victims) == 1
        victims[0].unlink()
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "executed 1, resumed past 1" in out
        assert victims[0].exists()

    def test_bad_config_is_usage_error(self, tmp_path, capsys):
        config = tmp_path / "bad.json"
        config.write_text(json.dumps({"name": "bad", "matrix": {
            "protocol": ["raft"], "backend": ["sim"]}}))
        assert main(["expt", "run", "--config", str(config)]) == 2
        assert "unknown protocol" in capsys.readouterr().err


class TestExptReportAndIngest:
    def test_report_from_mixed_store(self, tmp_path, capsys):
        # The acceptance criterion: a store holding executed trials AND
        # ingested legacy rows renders one cross-protocol report.
        config = write_config(tmp_path)
        store_path = tmp_path / "store.jsonl"
        assert main(["expt", "run", "--config", str(config),
                     "--results-dir", str(tmp_path / "results"),
                     "--store", str(store_path), "--jobs", "0"]) == 0
        assert main(["expt", "ingest", "--store", str(store_path),
                     "benchmarks/BENCH_micro_coding.json",
                     "benchmarks/BENCH_sim_eventloop.json",
                     "benchmarks/CALIBRATION_presets.json"]) == 0
        capsys.readouterr()
        md_path = tmp_path / "report.md"
        html_path = tmp_path / "report.html"
        assert main(["expt", "report", "--store", str(store_path),
                     "--markdown", str(md_path),
                     "--html", str(html_path)]) == 0
        text = md_path.read_text()
        assert "Cross-protocol comparison" in text
        assert "leopard" in text and "pbft" in text
        assert "95% CI" in text
        assert "Ingested benchmark artifacts" in text
        assert "Calibration presets" in text
        assert html_path.read_text().startswith("<!doctype html>")

    def test_ingest_directory_of_results(self, tmp_path, capsys):
        config = write_config(tmp_path)
        results = tmp_path / "results"
        assert main(["expt", "run", "--config", str(config),
                     "--results-dir", str(results), "--jobs", "0"]) == 0
        store_path = tmp_path / "store.jsonl"
        assert main(["expt", "ingest", "--store", str(store_path),
                     str(results)]) == 0
        assert "2 rows appended" in capsys.readouterr().out

    def test_report_without_store_errors(self, tmp_path, capsys):
        assert main(["expt", "report", "--store",
                     str(tmp_path / "missing.jsonl")]) == 2
        assert "no store" in capsys.readouterr().err

    def test_usage_without_subcommand(self, capsys):
        assert main(["expt"]) == 2
        assert "run" in capsys.readouterr().err
