"""Tests for experiment-config parsing and trial-matrix expansion."""

from __future__ import annotations

import json

import pytest

from repro.errors import ConfigError
from repro.expt.config import (
    MATRIX_AXES,
    ExperimentConfig,
    Trial,
    expand,
    load_config,
    trial_seed,
)

BASIC = {
    "name": "unit",
    "repeats": 1,
    "matrix": {
        "protocol": ["leopard", "pbft"],
        "backend": [{"backend": "sim", "n": 8}, {"backend": "live", "n": 4}],
    },
}


class TestExpand:
    def test_cartesian_product(self):
        cfg = expand(BASIC)
        assert isinstance(cfg, ExperimentConfig)
        assert len(cfg.trials) == 4
        combos = {(t.protocol, t.backend, t.n) for t in cfg.trials}
        assert combos == {("leopard", "sim", 8), ("leopard", "live", 4),
                          ("pbft", "sim", 8), ("pbft", "live", 4)}

    def test_defaults_fill_unset_fields(self):
        cfg = expand(BASIC)
        trial = cfg.trials[0]
        assert trial.rate == 2000.0
        assert trial.payload == 128
        assert trial.bundle_size == 100
        assert trial.scenario is None
        assert trial.waves is False

    def test_user_defaults_override_builtin(self):
        doc = dict(BASIC, defaults={"rate": 500.0, "bundle_size": 10})
        cfg = expand(doc)
        assert all(t.rate == 500.0 for t in cfg.trials)
        assert all(t.bundle_size == 10 for t in cfg.trials)

    def test_axis_mapping_overrides_compose(self):
        # A protocol-axis bundle override combines with backend-axis n.
        doc = dict(BASIC)
        doc["matrix"] = {
            "protocol": [{"protocol": "leopard", "bundle_size": 25}, "pbft"],
            "backend": [{"backend": "sim", "n": 64}],
        }
        cfg = expand(doc)
        by_proto = {t.protocol: t for t in cfg.trials}
        assert by_proto["leopard"].bundle_size == 25
        assert by_proto["leopard"].n == 64
        assert by_proto["pbft"].bundle_size == 100

    def test_repeats_clone_cells_with_distinct_ids(self):
        cfg = expand(dict(BASIC, repeats=3))
        assert len(cfg.trials) == 12
        ids = {t.trial_id for t in cfg.trials}
        assert len(ids) == 12
        assert {t.repeat for t in cfg.trials} == {0, 1, 2}

    def test_trial_ids_are_filesystem_safe(self):
        cfg = expand(dict(BASIC, repeats=2))
        for trial in cfg.trials:
            assert "/" not in trial.trial_id
            assert " " not in trial.trial_id

    def test_mapping_entry_must_set_its_own_axis(self):
        doc = dict(BASIC)
        doc["matrix"] = {"protocol": [{"bundle_size": 10}],
                        "backend": ["sim"]}
        with pytest.raises(ConfigError, match="must set 'protocol'"):
            expand(doc)

    def test_duplicate_trials_rejected(self):
        doc = dict(BASIC)
        doc["matrix"] = {"protocol": ["leopard", "leopard"],
                        "backend": ["sim"]}
        with pytest.raises(ConfigError, match="duplicate trial"):
            expand(doc)

    def test_unknown_axis_rejected(self):
        doc = dict(BASIC)
        doc["matrix"] = dict(BASIC["matrix"], color=["red"])
        with pytest.raises(ConfigError, match="unknown matrix axes"):
            expand(doc)

    @pytest.mark.parametrize("cell,error", [
        ({"protocol": "raft"}, "unknown protocol"),
        ({"backend": "cloud"}, "unknown backend"),
        ({"queue_backend": "fifo", "backend": "sim"}, "unknown queue_backend"),
        ({"waves": True, "queue_backend": "heap", "backend": "sim"},
         "waves requires the calendar"),
        ({"waves": True, "backend": "live"}, "backend must be sim"),
        ({"queue_backend": "calendar", "backend": "live"}, "sim backend only"),
        ({"n": 3}, "n must be >= 4"),
        ({"rate": -5.0}, "rate must be a positive"),
    ])
    def test_cell_validation(self, cell, error):
        doc = {"name": "bad", "matrix": {
            "protocol": [dict({"protocol": "leopard", "backend": "sim",
                               "n": 4}, **cell)]}}
        with pytest.raises(ConfigError, match=error):
            expand(doc)


class TestSeeds:
    def test_seed_depends_on_identity_not_position(self):
        # Reordering or extending the matrix never reseeds a trial.
        cfg_a = expand(BASIC)
        doc = dict(BASIC)
        doc["matrix"] = {
            "protocol": ["pbft", "leopard", "hotstuff"],   # reordered+grown
            "backend": list(reversed(BASIC["matrix"]["backend"])),
        }
        cfg_b = expand(doc)
        seeds_a = {t.trial_id: t.seed for t in cfg_a.trials}
        seeds_b = {t.trial_id: t.seed for t in cfg_b.trials}
        for trial_id, seed in seeds_a.items():
            assert seeds_b[trial_id] == seed

    def test_base_seed_shifts_every_trial(self):
        seeds_0 = {t.trial_id: t.seed for t in expand(BASIC).trials}
        seeds_7 = {t.trial_id: t.seed
                   for t in expand(dict(BASIC, base_seed=7)).trials}
        assert all(seeds_7[tid] != seeds_0[tid] for tid in seeds_0)

    def test_trial_seed_deterministic_and_bounded(self):
        seed = trial_seed("smoke", "leopard_sim_n64", 0)
        assert seed == trial_seed("smoke", "leopard_sim_n64", 0)
        assert 0 <= seed <= 0x7FFFFFFF
        assert seed != trial_seed("other", "leopard_sim_n64", 0)


class TestLoadConfig:
    def test_json_config(self, tmp_path):
        path = tmp_path / "exp.json"
        path.write_text(json.dumps(BASIC))
        cfg = load_config(path)
        assert cfg.name == "unit"
        assert len(cfg.trials) == 4

    def test_yaml_config(self, tmp_path):
        yaml = pytest.importorskip("yaml")
        path = tmp_path / "exp.yaml"
        path.write_text(yaml.safe_dump(BASIC))
        assert len(load_config(path).trials) == 4

    def test_name_falls_back_to_stem(self, tmp_path):
        doc = {k: v for k, v in BASIC.items() if k != "name"}
        path = tmp_path / "stemmed.json"
        path.write_text(json.dumps(doc))
        assert load_config(path).name == "stemmed"

    def test_missing_file(self, tmp_path):
        with pytest.raises(ConfigError, match="no experiment config"):
            load_config(tmp_path / "nope.json")

    def test_invalid_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(ConfigError, match="invalid JSON"):
            load_config(path)


class TestCommittedConfigs:
    """The configs CI actually runs must always expand."""

    def test_smoke_config(self):
        cfg = load_config("benchmarks/experiments/smoke.yaml")
        assert cfg.name == "smoke"
        assert len(cfg.trials) == 6
        assert {(t.protocol, t.backend) for t in cfg.trials} == {
            (p, b) for p in ("leopard", "pbft", "hotstuff")
            for b in ("sim", "live")}

    def test_full_config(self):
        cfg = load_config("benchmarks/experiments/full.yaml")
        assert cfg.name == "full"
        assert len(cfg.trials) == 45
        waves = [t for t in cfg.trials if t.waves]
        assert len(waves) == 9
        assert all(t.queue_backend == "calendar" for t in waves)
        # Large-n sim cells stretch the window so leopard commits.
        assert all(t.duration >= 2.0 for t in cfg.trials
                   if t.backend == "sim" and t.n >= 150)

    def test_trial_roundtrips_through_dict(self):
        cfg = load_config("benchmarks/experiments/smoke.yaml")
        for trial in cfg.trials:
            assert Trial.from_dict(trial.to_dict()) == trial


def test_matrix_axes_are_trial_fields():
    field_names = {f for f in Trial.__dataclass_fields__}
    assert set(MATRIX_AXES) <= field_names
