"""Report-layer tests: cross-protocol tables, curves, renderers.

Synthetic store rows exercise the aggregation rules (per-host grouping,
baseline speedups, rank tests); one end-to-end test renders a report
from a store holding both trial rows and the ingested committed
artifacts — the acceptance path `expt report` takes.
"""

from __future__ import annotations

import math

from repro.expt.report import (
    bench_summary,
    cross_protocol_tables,
    render_html,
    render_markdown,
    scaling_curves,
    summarize,
)
from repro.expt.store import ResultsStore


def trial_row(protocol: str, throughput: float, host: str = "hostA",
              n: int = 64, backend: str = "sim", repeat: int = 0,
              recorded_at: float = 1.0) -> dict:
    return {
        "kind": "trial",
        "key": f"trial:unit:{protocol}_{backend}_n{n}_rep{repeat}"
               f":{host}:{recorded_at}",
        "host": host,
        "recorded_at": recorded_at,
        "experiment": "unit",
        "trial_id": f"{protocol}_{backend}_n{n}_rep{repeat}",
        "protocol": protocol,
        "backend": backend,
        "n": n,
        "rate": 2000.0,
        "payload": 128,
        "scenario": None,
        "queue_backend": None,
        "waves": False,
        "seed": 1,
        "repeat": repeat,
        "metrics": {"throughput_rps": throughput, "latency_mean_s": 0.01,
                    "latency_p50_s": 0.008, "latency_p99_s": 0.03,
                    "acked_bundles": 5, "committed_requests": 100,
                    "events_processed": 1000, "sim_events_per_sec": 1e5,
                    "duration_s": 1.0},
    }


def samples(protocol: str, values: list[float], **kw) -> list[dict]:
    return [trial_row(protocol, v, repeat=i, **kw)
            for i, v in enumerate(values)]


class TestCrossProtocolTables:
    def test_speedup_and_rank_vs_baseline(self):
        rows = samples("leopard", [200.0, 210.0, 190.0]) \
            + samples("pbft", [100.0, 105.0, 95.0])
        (table,) = cross_protocol_tables(rows, baseline="pbft")
        leopard = table["protocols"]["leopard"]
        assert abs(leopard["speedup"] - 2.0) < 0.01
        assert leopard["rank_p"] < 0.2
        assert leopard["count"] == 3
        lo, hi = leopard["ci_rps"]
        assert lo <= leopard["mean_rps"] <= hi
        # The baseline never gets a speedup against itself.
        assert table["protocols"]["pbft"]["speedup"] is None

    def test_cross_host_rows_never_compared(self):
        # Same shape measured on two hosts: two separate tables, and
        # the speedup never mixes hosts (hostB has no pbft baseline).
        rows = samples("leopard", [200.0], host="hostB") \
            + samples("pbft", [100.0], host="hostA")
        tables = cross_protocol_tables(rows, baseline="pbft")
        assert len(tables) == 2
        by_host = {t["host"]: t for t in tables}
        assert by_host["hostB"]["protocols"]["leopard"]["speedup"] is None
        assert by_host["hostB"]["protocols"]["leopard"]["rank_p"] is None

    def test_distinct_shapes_make_distinct_tables(self):
        rows = samples("leopard", [200.0], n=64) \
            + samples("leopard", [150.0], n=150)
        tables = cross_protocol_tables(rows)
        assert len(tables) == 2
        assert {t["shape"]["n"] for t in tables} == {64, 150}


class TestScalingCurves:
    def test_points_sorted_by_n_and_averaged(self):
        rows = samples("leopard", [200.0, 220.0], n=64) \
            + samples("leopard", [150.0], n=150) \
            + samples("leopard", [90.0], n=300)
        (curve,) = scaling_curves(rows)
        assert [p["n"] for p in curve["points"]] == [64, 150, 300]
        assert curve["points"][0]["mean_rps"] == 210.0
        assert curve["points"][0]["count"] == 2

    def test_hosts_get_separate_curves(self):
        rows = samples("leopard", [200.0], n=64, host="hostA") \
            + samples("leopard", [150.0], n=64, host="hostB")
        assert len(scaling_curves(rows)) == 2


class TestBenchSummary:
    def test_geomean_on_speedup_column(self):
        rows = [{"kind": "bench_row", "key": f"b{i}", "bench": "micro",
                 "host": "hostA", "mode": "smoke", "op": "encode",
                 "speedup": s, "row": {}}
                for i, s in enumerate([2.0, 8.0])]
        (entry,) = bench_summary(rows)
        assert entry["speedup_geomean"] == 4.0
        assert entry["speedup_max"] == 8.0
        assert entry["rows"] == 2


class TestRenderers:
    def build_store(self, tmp_path) -> ResultsStore:
        store = ResultsStore(tmp_path / "s.jsonl")
        store.append_many(
            samples("leopard", [200.0, 210.0, 190.0])
            + samples("pbft", [100.0, 105.0, 95.0])
            + samples("hotstuff", [120.0, 118.0, 121.0])
            + samples("leopard", [150.0, 155.0, 148.0], n=150)
            + samples("leopard", [90.0, 92.0, 88.0], n=300))
        # The acceptance criterion: the same store also holds ingested
        # legacy rows, and the report renders them alongside.
        store.ingest_bench_report("benchmarks/BENCH_micro_coding.json")
        store.ingest_calibration_presets(
            "benchmarks/CALIBRATION_presets.json")
        return store

    def test_markdown_end_to_end(self, tmp_path):
        text = render_markdown(self.build_store(tmp_path), baseline="pbft")
        assert "# Experiment report" in text
        assert "## Cross-protocol comparison" in text
        assert "| leopard |" in text and "| hotstuff |" in text
        assert "2.00x" in text                     # leopard vs pbft
        assert "## Throughput vs n" in text
        assert "| 300 |" in text
        assert "## Ingested benchmark artifacts" in text
        assert "micro_coding" in text
        assert "## Calibration presets" in text

    def test_html_end_to_end(self, tmp_path):
        page = render_html(self.build_store(tmp_path), baseline="pbft")
        assert page.startswith("<!doctype html>")
        assert "<table>" in page and "</table>" in page
        assert page.count("<table>") == page.count("</table>")
        assert "<svg" in page                      # the scaling curve
        assert "polyline" in page

    def test_summarize_structure(self, tmp_path):
        summary = summarize(self.build_store(tmp_path), baseline="pbft")
        assert summary["trials"] == 15
        assert summary["baseline"] == "pbft"
        assert len(summary["hosts"]) >= 2          # hostA + the bench host
        assert summary["experiments"] == ["unit"]
        assert summary["bench"]
        assert summary["presets"]

    def test_empty_store_renders(self, tmp_path):
        store = ResultsStore(tmp_path / "empty.jsonl")
        text = render_markdown(store)
        assert "trials: **0**" in text
        page = render_html(store)
        assert "<svg" not in page

    def test_single_repeat_degenerates_gracefully(self, tmp_path):
        store = ResultsStore(tmp_path / "s.jsonl")
        store.append_many(samples("leopard", [200.0])
                          + samples("pbft", [100.0]))
        text = render_markdown(store)
        # One sample per side: the CI collapses to the point and the
        # rank test reports no significance (p=0.317 at n=1 vs 1).
        assert "[200, 200]" in text
        assert "0.317" in text
        assert not math.isnan(
            cross_protocol_tables(store.rows(kind="trial"))[0]
            ["protocols"]["leopard"]["speedup"])
