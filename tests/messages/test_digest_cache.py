"""Digest memoization on frozen protocol blocks (messages/leopard.py)."""

from __future__ import annotations

import dataclasses

from repro.crypto.hashing import digest
from repro.messages.leopard import BFTblock, BundleSpan, Datablock


def make_block():
    spans = (BundleSpan(client_id=7, bundle_id=3, count=5,
                        submitted_at=1.25),)
    return Datablock(creator=2, counter=9, request_count=100,
                     payload_size=128, spans=spans, created_at=3.5)


class TestDatablockDigestCache:
    def test_digest_matches_direct_hash(self):
        block = make_block()
        assert block.digest() == digest(block.canonical_bytes())

    def test_digest_is_memoized(self):
        block = make_block()
        assert block.digest() is block.digest()

    def test_cache_does_not_affect_equality_or_hash(self):
        warm, cold = make_block(), make_block()
        warm.digest()
        assert warm == cold
        assert hash(warm) == hash(cold)

    def test_replace_recomputes(self):
        block = make_block()
        block.digest()
        changed = dataclasses.replace(block, counter=10)
        assert changed.digest() != block.digest()
        assert changed.digest() == digest(changed.canonical_bytes())

    def test_created_at_excluded_from_digest(self):
        block = make_block()
        other = dataclasses.replace(block, created_at=99.0)
        assert block.digest() == other.digest()


class TestBFTblockDigestCache:
    def test_digest_matches_direct_hash(self):
        block = BFTblock(view=1, sn=4, links=(b"a" * 32, b"b" * 32))
        assert block.digest() == digest(block.canonical_bytes())
        assert block.digest() is block.digest()

    def test_cache_does_not_affect_equality(self):
        warm = BFTblock(view=1, sn=4, links=(b"a" * 32,))
        cold = BFTblock(view=1, sn=4, links=(b"a" * 32,))
        warm.digest()
        assert warm == cold
