"""Golden-digest tests: canonical encodings are wire-stable.

Block digests are protocol-visible (they are what replicas sign and link),
so any change to a ``canonical_bytes`` layout is a breaking protocol change
— these pins make such a change impossible to miss.
"""

from __future__ import annotations

from repro.messages.hotstuff import HSBlock
from repro.messages.leopard import BFTblock, BundleSpan, Datablock
from repro.messages.pbft import PrePrepare


def reference_datablock() -> Datablock:
    return Datablock(3, 7, 100, 128, (
        BundleSpan(9, 2, 50, 1.5), BundleSpan(9, 3, 50, 1.6)))


class TestGoldenDigests:
    def test_datablock(self):
        assert reference_datablock().digest().hex() == (
            "25dd1c4e846e134ad793bedab0ba81f7"
            "c28458d087ab28cb2d808d0a6a6d4564")

    def test_bftblock(self):
        block = BFTblock(
            2, 11, (reference_datablock().digest(), b"\x01" * 32))
        assert block.digest().hex() == (
            "5432152235b86310ff9292a2a1365b0d"
            "4f8fa7819e881ee53b28fa3217825264")

    def test_hotstuff_block(self):
        block = HSBlock(5, b"\x02" * 32, None, 800, 128)
        assert block.digest().hex() == (
            "50f48dc47c57f6f9f3feec189f4dc89f"
            "d72339fcbcf4ded123865b5421cbd5dc")

    def test_preprepare(self):
        block = PrePrepare(1, 4, 800, 128)
        assert block.digest().hex() == (
            "c611c63fb254a666a266cde9067f323b"
            "12d322be7b102004823180a4097e88f3")

    def test_synthetic_body_is_stable(self):
        # Retrieval reconstructs bodies deterministically from identity;
        # a change here would break cross-version chunk compatibility.
        assert reference_datablock().body()[:16].hex() == \
            "64f638289d812c9f462c6a3ef418b7c0"

    def test_span_metadata_binds_digest(self):
        other = Datablock(3, 7, 100, 128, (
            BundleSpan(9, 2, 50, 1.5), BundleSpan(9, 4, 50, 1.6)))
        assert other.digest() != reference_datablock().digest()

    def test_timestamps_do_not_bind_digest(self):
        shifted = Datablock(3, 7, 100, 128, (
            BundleSpan(9, 2, 50, 99.0), BundleSpan(9, 3, 50, 99.0)))
        assert shifted.digest() == reference_datablock().digest()
