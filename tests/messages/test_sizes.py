"""Wire-size tests: message sizes must follow the paper's cost model
(β = 32 B hashes, κ = 48 B votes, payload-dominated blocks)."""

from __future__ import annotations

from repro.crypto.merkle import MerkleProof
from repro.crypto.threshold import SignatureShare, ThresholdSignature
from repro.messages.base import HASH_SIZE, HEADER_SIZE, VOTE_SIZE
from repro.messages.client import Ack, RequestBundle
from repro.messages.hotstuff import HSBlock, HSVote, QuorumCert
from repro.messages.leopard import (
    BFTblock,
    BundleSpan,
    ChunkResponse,
    Datablock,
    Proof,
    Query,
    Ready,
    Vote,
)
from repro.messages.pbft import Commit, Prepare, PrePrepare

SHARE = SignatureShare(0, 123)
SIG = ThresholdSignature(456)


class TestClientMessages:
    def test_bundle_size_is_payload_dominated(self):
        bundle = RequestBundle(10, 1, 500, 128, 0.0)
        assert bundle.size_bytes() == HEADER_SIZE + 500 * 128

    def test_ack_is_small(self):
        ack = Ack(10, 1, 500, 0.0, 1.0)
        assert ack.size_bytes() < 100


class TestLeopardMessages:
    def test_datablock_carries_full_payloads(self):
        spans = (BundleSpan(9, 1, 100, 0.0), BundleSpan(9, 2, 100, 0.0))
        block = Datablock(1, 1, 200, 128, spans)
        assert block.size_bytes() == \
            HEADER_SIZE + 2 * BundleSpan.WIRE_SIZE + 200 * 128

    def test_datablock_digest_excludes_created_at(self):
        a = Datablock(1, 1, 10, 128, (), created_at=0.0)
        b = Datablock(1, 1, 10, 128, (), created_at=5.0)
        assert a.digest() == b.digest()

    def test_datablock_digest_binds_counter(self):
        a = Datablock(1, 1, 10, 128, ())
        b = Datablock(1, 2, 10, 128, ())
        assert a.digest() != b.digest()

    def test_datablock_body_deterministic(self):
        a = Datablock(1, 1, 10, 128, ())
        assert a.body() == a.body()
        assert len(a.body()) == 10 * 128

    def test_bftblock_size_is_links_only(self):
        links = tuple(bytes([i]) * 32 for i in range(50))
        block = BFTblock(1, 1, links, SHARE)
        # 50 links of 2000-request datablocks stand for 100k requests,
        # yet the proposal is ~1.7 KB: the decoupling the paper builds on.
        assert block.size_bytes() == \
            HEADER_SIZE + 16 + 50 * HASH_SIZE + VOTE_SIZE
        assert block.size_bytes() < 2000

    def test_bftblock_digest_excludes_share(self):
        links = (b"x" * 32,)
        a = BFTblock(1, 1, links, SHARE)
        b = BFTblock(1, 1, links, SignatureShare(2, 999))
        assert a.digest() == b.digest()

    def test_dummy_bftblock(self):
        assert BFTblock(2, 5, ()).is_dummy()
        assert not BFTblock(2, 5, (b"x" * 32,)).is_dummy()

    def test_vote_and_proof_are_constant_size(self):
        vote = Vote(1, b"d" * 32, b"d" * 32, SHARE)
        proof1 = Proof(1, b"d" * 32, b"d" * 32, SIG)
        proof2 = Proof(2, b"d" * 32, b"p" * 32, SIG, prior_signature=SIG)
        assert vote.size_bytes() == HEADER_SIZE + HASH_SIZE + VOTE_SIZE
        assert proof1.size_bytes() == HEADER_SIZE + HASH_SIZE + VOTE_SIZE
        assert proof2.size_bytes() == proof1.size_bytes() + VOTE_SIZE

    def test_ready_is_one_hash(self):
        assert Ready(b"d" * 32).size_bytes() == HEADER_SIZE + HASH_SIZE

    def test_query_scales_with_digests(self):
        q1 = Query((b"a" * 32,))
        q3 = Query((b"a" * 32, b"b" * 32, b"c" * 32))
        assert q3.size_bytes() - q1.size_bytes() == 2 * HASH_SIZE

    def test_chunk_response_dominated_by_chunk(self):
        meta = Datablock(1, 1, 2000, 128, ())
        proof = MerkleProof(0, ((True, b"s" * 32),) * 5)
        response = ChunkResponse(meta.digest(), b"r" * 32, 0,
                                 b"c" * 10_000, proof, meta)
        assert 10_000 < response.size_bytes() < 10_500


class TestHotStuffMessages:
    def test_block_carries_payloads_and_qc(self):
        qc = QuorumCert(b"p" * 32, 4, 3)
        block = HSBlock(5, b"p" * 32, qc, 800, 128)
        expected_payload = 800 * 128
        assert block.size_bytes() > expected_payload
        assert qc.size_bytes() == HASH_SIZE + 8 + 3 * 64

    def test_vote_size(self):
        vote = HSVote(5, b"d" * 32, 2)
        assert vote.size_bytes() == HEADER_SIZE + 8 + HASH_SIZE + 64

    def test_block_digest_binds_height(self):
        a = HSBlock(5, b"p" * 32, None, 10, 128)
        b = HSBlock(6, b"p" * 32, None, 10, 128)
        assert a.digest() != b.digest()


class TestPbftMessages:
    def test_preprepare_carries_payloads(self):
        block = PrePrepare(1, 1, 800, 128)
        assert block.size_bytes() > 800 * 128

    def test_votes_are_small(self):
        prepare = Prepare(1, 1, b"d" * 32, 0)
        commit = Commit(1, 1, b"d" * 32, 0)
        assert prepare.size_bytes() < 200
        assert commit.size_bytes() < 200

    def test_digest_binds_sn(self):
        a = PrePrepare(1, 1, 10, 128)
        b = PrePrepare(1, 2, 10, 128)
        assert a.digest() != b.digest()
