"""Tests for the perf instrumentation package (counters, reports, gate)."""

from __future__ import annotations

import time

import pytest

from repro.perf import (
    PerfCounters,
    Timer,
    compare_throughput,
    load_report,
    throughput_mbps,
    write_report,
)


class TestCounters:
    def test_incr_and_count(self):
        perf = PerfCounters()
        perf.incr("encodes")
        perf.incr("encodes", 2)
        perf.incr("bytes", 1024)
        assert perf.count("encodes") == 3
        assert perf.count("bytes") == 1024
        assert perf.count("never") == 0

    def test_timed_accumulates(self):
        perf = PerfCounters()
        for _ in range(3):
            with perf.timed("sleep"):
                time.sleep(0.002)
        assert perf.seconds("sleep") >= 0.006
        assert perf.seconds("other") == 0.0

    def test_timed_survives_exceptions(self):
        perf = PerfCounters()
        with pytest.raises(RuntimeError):
            with perf.timed("boom"):
                raise RuntimeError("boom")
        assert perf.seconds("boom") > 0.0

    def test_snapshot_and_reset(self):
        perf = PerfCounters()
        perf.incr("x")
        with perf.timed("t"):
            pass
        snap = perf.snapshot()
        assert snap["counts"] == {"x": 1}
        assert "t" in snap["seconds"]
        perf.reset()
        assert perf.snapshot() == {"counts": {}, "seconds": {}}

    def test_timer_context(self):
        with Timer() as t:
            time.sleep(0.002)
        assert t.seconds >= 0.002

    def test_throughput(self):
        assert throughput_mbps(2_000_000, 2.0) == 1.0
        assert throughput_mbps(0, 0.0) == 0.0
        assert throughput_mbps(5, 0.0) == float("inf")


def rows(**overrides):
    base = {"op": "encode", "k": 3, "n": 10, "size": 64000,
            "baseline_mbps": 10.0, "vectorized_mbps": 100.0,
            "speedup": 10.0}
    base.update(overrides)
    return base


class TestReports:
    def test_write_load_roundtrip(self, tmp_path):
        path = tmp_path / "bench.json"
        payload = write_report(path, name="micro", mode="smoke",
                               results=[rows()])
        loaded = load_report(path)
        assert loaded == payload
        assert loaded["schema"] == 1
        assert loaded["results"][0]["vectorized_mbps"] == 100.0

    def test_load_rejects_unknown_schema(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"schema": 99, "results": []}')
        with pytest.raises(ValueError):
            load_report(path)


class TestRegressionGate:
    def test_no_regression_passes(self):
        baseline = {"results": [rows()]}
        current = {"results": [rows(vectorized_mbps=95.0)]}
        assert compare_throughput(baseline, current) == []

    def test_regression_detected(self):
        baseline = {"results": [rows()]}
        current = {"results": [rows(vectorized_mbps=70.0)]}
        found = compare_throughput(baseline, current)
        assert len(found) == 1
        assert "encode" in found[0]

    def test_tolerance_boundary(self):
        baseline = {"results": [rows()]}
        exactly_at_floor = {"results": [rows(vectorized_mbps=80.0)]}
        assert compare_throughput(baseline, exactly_at_floor) == []

    def test_rows_matched_on_full_key(self):
        baseline = {"results": [rows(), rows(op="decode",
                                             vectorized_mbps=50.0)]}
        current = {"results": [rows(op="decode", vectorized_mbps=10.0)]}
        found = compare_throughput(baseline, current)
        assert len(found) == 1
        assert "decode" in found[0]

    def test_unmatched_rows_skipped(self):
        baseline = {"results": [rows(k=101, n=256, size=500_000)]}
        current = {"results": [rows()]}  # smoke grid only
        assert compare_throughput(baseline, current) == []

    def test_improvements_pass(self):
        baseline = {"results": [rows()]}
        current = {"results": [rows(vectorized_mbps=500.0)]}
        assert compare_throughput(baseline, current) == []
