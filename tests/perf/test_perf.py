"""Tests for the perf instrumentation package (counters, reports, gate)."""

from __future__ import annotations

import time

import pytest

from repro.perf import (
    PerfCounters,
    Timer,
    compare_throughput,
    load_report,
    throughput_mbps,
    write_report,
)


class TestCounters:
    def test_incr_and_count(self):
        perf = PerfCounters()
        perf.incr("encodes")
        perf.incr("encodes", 2)
        perf.incr("bytes", 1024)
        assert perf.count("encodes") == 3
        assert perf.count("bytes") == 1024
        assert perf.count("never") == 0

    def test_timed_accumulates(self):
        perf = PerfCounters()
        for _ in range(3):
            with perf.timed("sleep"):
                time.sleep(0.002)
        assert perf.seconds("sleep") >= 0.006
        assert perf.seconds("other") == 0.0

    def test_timed_survives_exceptions(self):
        perf = PerfCounters()
        with pytest.raises(RuntimeError):
            with perf.timed("boom"):
                raise RuntimeError("boom")
        assert perf.seconds("boom") > 0.0

    def test_snapshot_and_reset(self):
        perf = PerfCounters()
        perf.incr("x")
        with perf.timed("t"):
            pass
        snap = perf.snapshot()
        assert snap["counts"] == {"x": 1}
        assert "t" in snap["seconds"]
        perf.reset()
        assert perf.snapshot() == {"counts": {}, "seconds": {}}

    def test_timer_context(self):
        with Timer() as t:
            time.sleep(0.002)
        assert t.seconds >= 0.002

    def test_throughput(self):
        assert throughput_mbps(2_000_000, 2.0) == 1.0
        assert throughput_mbps(0, 0.0) == 0.0
        assert throughput_mbps(5, 0.0) == float("inf")


def rows(**overrides):
    base = {"op": "encode", "k": 3, "n": 10, "size": 64000,
            "baseline_mbps": 10.0, "vectorized_mbps": 100.0,
            "speedup": 10.0}
    base.update(overrides)
    return base


class TestReports:
    def test_write_load_roundtrip(self, tmp_path):
        path = tmp_path / "bench.json"
        payload = write_report(path, name="micro", mode="smoke",
                               results=[rows()])
        loaded = load_report(path)
        assert loaded == payload
        assert loaded["schema"] == 1
        assert loaded["results"][0]["vectorized_mbps"] == 100.0

    def test_load_rejects_unknown_schema(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"schema": 99, "results": []}')
        with pytest.raises(ValueError):
            load_report(path)


class TestRegressionGate:
    def test_no_regression_passes(self):
        baseline = {"results": [rows()]}
        current = {"results": [rows(vectorized_mbps=95.0)]}
        assert compare_throughput(baseline, current) == []

    def test_regression_detected(self):
        baseline = {"results": [rows()]}
        current = {"results": [rows(vectorized_mbps=70.0)]}
        found = compare_throughput(baseline, current)
        assert len(found) == 1
        assert "encode" in found[0]

    def test_tolerance_boundary(self):
        baseline = {"results": [rows()]}
        exactly_at_floor = {"results": [rows(vectorized_mbps=80.0)]}
        assert compare_throughput(baseline, exactly_at_floor) == []

    def test_rows_matched_on_full_key(self):
        baseline = {"results": [rows(), rows(op="decode",
                                             vectorized_mbps=50.0)]}
        current = {"results": [rows(op="decode", vectorized_mbps=10.0)]}
        found = compare_throughput(baseline, current)
        assert len(found) == 1
        assert "decode" in found[0]

    def test_unmatched_rows_skipped(self):
        baseline = {"results": [rows(k=101, n=256, size=500_000)]}
        current = {"results": [rows()]}  # smoke grid only
        assert compare_throughput(baseline, current) == []

    def test_improvements_pass(self):
        baseline = {"results": [rows()]}
        current = {"results": [rows(vectorized_mbps=500.0)]}
        assert compare_throughput(baseline, current) == []


class TestHostFingerprintGate:
    """Re-baseline guard: gate on speedup when the host differs."""

    def test_fingerprint_stable_within_process(self):
        from repro.perf import host_fingerprint
        assert host_fingerprint() == host_fingerprint()
        assert "py" in host_fingerprint()

    def test_written_reports_record_host(self, tmp_path):
        from repro.perf import host_fingerprint, load_report, write_report
        path = tmp_path / "r.json"
        write_report(path, name="x", mode="smoke", results=[])
        assert load_report(path)["host"] == host_fingerprint()

    def test_same_host_gates_on_absolute_mbps(self):
        from repro.perf import host_fingerprint, select_gate_metric
        metric, reason = select_gate_metric({"host": host_fingerprint()})
        assert metric == "vectorized_mbps"
        assert "same host" in reason

    def test_different_host_gates_on_speedup(self):
        from repro.perf import select_gate_metric
        metric, reason = select_gate_metric({"host": "sparc/SunOS/cpu1"})
        assert metric == "speedup"
        assert "differs" in reason

    def test_missing_fingerprint_gates_on_speedup(self):
        from repro.perf import select_gate_metric
        metric, reason = select_gate_metric({})
        assert metric == "speedup"
        assert "no host fingerprint" in reason

    def test_speedup_regression_detected_with_unit(self):
        from repro.perf import compare_throughput
        baseline = {"results": [
            {"op": "encode", "k": 3, "n": 10, "size": 1, "speedup": 10.0}]}
        current = {"results": [
            {"op": "encode", "k": 3, "n": 10, "size": 1, "speedup": 1.0}]}
        lines = compare_throughput(baseline, current, metric="speedup",
                                   tolerance=0.2)
        assert len(lines) == 1
        assert "speedup 1.0x" in lines[0]

    def test_find_regressions_keys_rows(self):
        from repro.perf import find_regressions
        baseline = {"results": [
            {"op": "encode", "k": 3, "n": 10, "size": 1,
             "vectorized_mbps": 100.0, "speedup": 10.0},
            {"op": "decode", "k": 3, "n": 10, "size": 1,
             "vectorized_mbps": 100.0, "speedup": 10.0}]}
        current = {"results": [
            {"op": "encode", "k": 3, "n": 10, "size": 1,
             "vectorized_mbps": 50.0, "speedup": 10.0},   # load noise
            {"op": "decode", "k": 3, "n": 10, "size": 1,
             "vectorized_mbps": 50.0, "speedup": 1.0}]}   # real regression
        by_abs = find_regressions(baseline, current,
                                  metric="vectorized_mbps")
        by_speedup = find_regressions(baseline, current, metric="speedup")
        assert set(by_abs) == {("encode", 3, 10, 1), ("decode", 3, 10, 1)}
        assert set(by_speedup) == {("decode", 3, 10, 1)}
        # Intersection isolates the genuine regression.
        assert set(by_abs) & set(by_speedup) == {("decode", 3, 10, 1)}
