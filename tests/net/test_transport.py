"""Transport-layer tests: framing over real sockets, reconnect, drops."""

from __future__ import annotations

import asyncio

from repro.messages.leopard import Ready
from repro.net.transport import Listener, PeerConnection, Router
from repro.sim.network import NicStats
from repro.wire import codec

DIGEST = bytes(range(32))
DIGEST2 = bytes(range(32, 64))


def run(coro):
    return asyncio.run(coro)


class TestListenerFraming:
    def test_frame_split_across_writes_reassembles(self):
        """TCP is a byte stream: frames must survive arbitrary chunking."""
        async def scenario():
            received = []
            listener = Listener(
                lambda sender, msg: received.append((sender, msg)),
                NicStats())
            await listener.start()
            frame = codec.encode(7, Ready(DIGEST))
            _, writer = await asyncio.open_connection(
                "127.0.0.1", listener.port)
            for i in range(len(frame)):  # one byte at a time
                writer.write(frame[i:i + 1])
                await writer.drain()
            await asyncio.sleep(0.05)
            writer.close()
            await listener.close()
            return received

        received = run(scenario())
        assert received == [(7, Ready(DIGEST))]

    def test_back_to_back_frames_in_one_write(self):
        async def scenario():
            received = []
            listener = Listener(
                lambda sender, msg: received.append(msg), NicStats())
            await listener.start()
            frames = b"".join(
                codec.encode(1, Ready(bytes([i]) * 32)) for i in range(5))
            _, writer = await asyncio.open_connection(
                "127.0.0.1", listener.port)
            writer.write(frames)
            await writer.drain()
            await asyncio.sleep(0.05)
            writer.close()
            await listener.close()
            return received

        received = run(scenario())
        assert [msg.block_digest[0] for msg in received] == [0, 1, 2, 3, 4]

    def test_garbage_frame_counted_and_connection_dropped(self):
        async def scenario():
            listener = Listener(lambda *a: None, NicStats())
            await listener.start()
            _, writer = await asyncio.open_connection(
                "127.0.0.1", listener.port)
            # Valid length prefix, unknown type tag 255.
            writer.write((6).to_bytes(4, "big") + bytes([255]) + bytes(5))
            await writer.drain()
            await asyncio.sleep(0.05)
            writer.close()
            errors = listener.decode_errors
            await listener.close()
            return errors

        assert run(scenario()) == 1

    def test_byte_accounting_matches_wire_size(self):
        async def scenario():
            stats = NicStats()
            listener = Listener(lambda *a: None, stats)
            await listener.start()
            msg = Ready(DIGEST)
            _, writer = await asyncio.open_connection(
                "127.0.0.1", listener.port)
            writer.write(codec.encode(0, msg))
            await writer.drain()
            await asyncio.sleep(0.05)
            writer.close()
            await listener.close()
            return stats

        stats = run(scenario())
        assert stats.recv_bytes == {"ready": Ready(DIGEST).size_bytes()}
        assert stats.recv_msgs == {"ready": 1}


class TestPeerConnection:
    def test_queued_frames_flush_once_peer_appears(self):
        """Reconnect loop: sends before the peer listens are not lost."""
        async def scenario():
            received = []
            listener = Listener(
                lambda sender, msg: received.append(msg), NicStats())
            # Reserve a port, then close it so the peer starts dialling
            # a dead address.
            await listener.start()
            port = listener.port
            await listener.close()

            peer = PeerConnection(1, "127.0.0.1", port)
            peer.start()
            assert peer.send(codec.encode(0, Ready(DIGEST)))
            await asyncio.sleep(0.15)  # a few failed dials
            listener.port = port
            await listener.start()
            await asyncio.sleep(0.5)
            await peer.close()
            await listener.close()
            return received

        received = run(scenario())
        assert received == [Ready(DIGEST)]

    def test_full_queue_drops_and_counts(self):
        async def scenario():
            frame = codec.encode(0, Ready(DIGEST))
            peer = PeerConnection(1, "127.0.0.1", 1, len(frame) * 2)
            peer.start()  # port 1: nothing listens; queue only fills
            results = [peer.send(frame) for _ in range(5)]
            dropped = peer.dropped_frames
            queued = peer.queued_bytes
            await peer.close()
            return results, dropped, queued

        results, dropped, queued = run(scenario())
        assert results == [True, True, False, False, False]
        assert dropped == 3
        assert queued == 2 * Ready(DIGEST).size_bytes()

    def test_close_rejects_further_sends(self):
        async def scenario():
            peer = PeerConnection(1, "127.0.0.1", 1)
            peer.start()
            await peer.close()
            return peer.send(b"x")

        assert run(scenario()) is False


class TestRouter:
    def test_bidirectional_send_with_stats(self):
        async def scenario():
            book: dict[int, tuple[str, int]] = {}
            inbox_a, inbox_b = [], []
            router_a = Router(0, book)
            router_b = Router(1, book)
            await router_a.start(lambda s, m: inbox_a.append((s, m)))
            await router_b.start(lambda s, m: inbox_b.append((s, m)))
            router_a.send(1, Ready(DIGEST))
            router_b.send(0, Ready(DIGEST))
            await asyncio.sleep(0.2)
            await router_a.close()
            await router_b.close()
            return inbox_a, inbox_b, router_a.stats

        inbox_a, inbox_b, stats_a = run(scenario())
        assert inbox_b == [(0, Ready(DIGEST))]
        assert inbox_a == [(1, Ready(DIGEST))]
        assert stats_a.sent_bytes == {"ready": Ready(DIGEST).size_bytes()}
        assert stats_a.recv_bytes == {"ready": Ready(DIGEST).size_bytes()}

    def test_unknown_destination_counted_not_crashing(self):
        async def scenario():
            router = Router(0, {})
            await router.start(lambda *a: None)
            ok = router.send(99, Ready(DIGEST))
            count = router.unroutable_frames
            await router.close()
            return ok, count

        ok, count = run(scenario())
        assert ok is False
        assert count == 1

    def test_backlog_seconds_reflects_queued_bytes(self):
        async def scenario():
            book = {1: ("127.0.0.1", 1)}  # dead port: frames queue
            router = Router(0, book, link_bps=8.0)  # 1 byte/second
            await router.start(lambda *a: None)
            router.send(1, Ready(DIGEST))
            backlog = router.backlog_seconds()
            await router.close()
            return backlog

        # 96 wire bytes at 1 byte/s == 96 seconds of backlog.
        assert run(scenario()) == Ready(DIGEST).size_bytes()


class TestHandlerFailures:
    def test_handler_exception_keeps_connection_alive(self):
        """A crashing handler must not drop the peer's queued frames."""
        async def scenario():
            received = []

            def handler(sender, msg):
                if not received:
                    received.append("boom")
                    raise RuntimeError("core bug")
                received.append(msg)

            listener = Listener(handler, NicStats())
            await listener.start()
            _, writer = await asyncio.open_connection(
                "127.0.0.1", listener.port)
            writer.write(codec.encode(0, Ready(DIGEST)))
            writer.write(codec.encode(0, Ready(DIGEST2)))
            await writer.drain()
            await asyncio.sleep(0.1)
            writer.close()
            errors = listener.handler_errors
            await listener.close()
            return received, errors

        received, errors = run(scenario())
        assert errors == 1
        assert received == ["boom", Ready(DIGEST2)]
