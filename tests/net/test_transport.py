"""Transport-layer tests: framing over real sockets, reconnect, drops."""

from __future__ import annotations

import asyncio

from repro.messages.leopard import Ready
from repro.net.transport import Listener, PeerConnection, Router
from repro.sim.network import NicStats
from repro.wire import codec

DIGEST = bytes(range(32))
DIGEST2 = bytes(range(32, 64))


def run(coro):
    return asyncio.run(coro)


class TestListenerFraming:
    def test_frame_split_across_writes_reassembles(self):
        """TCP is a byte stream: frames must survive arbitrary chunking."""
        async def scenario():
            received = []
            listener = Listener(
                lambda sender, msg: received.append((sender, msg)),
                NicStats())
            await listener.start()
            frame = codec.encode(7, Ready(DIGEST))
            _, writer = await asyncio.open_connection(
                "127.0.0.1", listener.port)
            for i in range(len(frame)):  # one byte at a time
                writer.write(frame[i:i + 1])
                await writer.drain()
            await asyncio.sleep(0.05)
            writer.close()
            await listener.close()
            return received

        received = run(scenario())
        assert received == [(7, Ready(DIGEST))]

    def test_back_to_back_frames_in_one_write(self):
        async def scenario():
            received = []
            listener = Listener(
                lambda sender, msg: received.append(msg), NicStats())
            await listener.start()
            frames = b"".join(
                codec.encode(1, Ready(bytes([i]) * 32)) for i in range(5))
            _, writer = await asyncio.open_connection(
                "127.0.0.1", listener.port)
            writer.write(frames)
            await writer.drain()
            await asyncio.sleep(0.05)
            writer.close()
            await listener.close()
            return received

        received = run(scenario())
        assert [msg.block_digest[0] for msg in received] == [0, 1, 2, 3, 4]

    def test_garbage_frame_counted_and_connection_dropped(self):
        async def scenario():
            listener = Listener(lambda *a: None, NicStats())
            await listener.start()
            _, writer = await asyncio.open_connection(
                "127.0.0.1", listener.port)
            # Valid length prefix, unknown type tag 255.
            writer.write((6).to_bytes(4, "big") + bytes([255]) + bytes(5))
            await writer.drain()
            await asyncio.sleep(0.05)
            writer.close()
            errors = listener.decode_errors
            await listener.close()
            return errors

        assert run(scenario()) == 1

    def test_byte_accounting_matches_wire_size(self):
        async def scenario():
            stats = NicStats()
            listener = Listener(lambda *a: None, stats)
            await listener.start()
            msg = Ready(DIGEST)
            _, writer = await asyncio.open_connection(
                "127.0.0.1", listener.port)
            writer.write(codec.encode(0, msg))
            await writer.drain()
            await asyncio.sleep(0.05)
            writer.close()
            await listener.close()
            return stats

        stats = run(scenario())
        assert stats.recv_bytes == {"ready": Ready(DIGEST).size_bytes()}
        assert stats.recv_msgs == {"ready": 1}


class TestPeerConnection:
    def test_queued_frames_flush_once_peer_appears(self):
        """Reconnect loop: sends before the peer listens are not lost."""
        async def scenario():
            received = []
            listener = Listener(
                lambda sender, msg: received.append(msg), NicStats())
            # Reserve a port, then close it so the peer starts dialling
            # a dead address.
            await listener.start()
            port = listener.port
            await listener.close()

            peer = PeerConnection(1, "127.0.0.1", port)
            peer.start()
            assert peer.send(codec.encode(0, Ready(DIGEST)))
            await asyncio.sleep(0.15)  # a few failed dials
            listener.port = port
            await listener.start()
            await asyncio.sleep(0.5)
            await peer.close()
            await listener.close()
            return received

        received = run(scenario())
        assert received == [Ready(DIGEST)]

    def test_full_queue_drops_and_counts(self):
        async def scenario():
            frame = codec.encode(0, Ready(DIGEST))
            peer = PeerConnection(1, "127.0.0.1", 1, len(frame) * 2)
            peer.start()  # port 1: nothing listens; queue only fills
            results = [peer.send(frame) for _ in range(5)]
            dropped = peer.dropped_frames
            queued = peer.queued_bytes
            await peer.close()
            return results, dropped, queued

        results, dropped, queued = run(scenario())
        assert results == [True, True, False, False, False]
        assert dropped == 3
        assert queued == 2 * Ready(DIGEST).size_bytes()

    def test_close_rejects_further_sends(self):
        async def scenario():
            peer = PeerConnection(1, "127.0.0.1", 1)
            peer.start()
            await peer.close()
            return peer.send(b"x")

        assert run(scenario()) is False


class TestRouter:
    def test_bidirectional_send_with_stats(self):
        async def scenario():
            book: dict[int, tuple[str, int]] = {}
            inbox_a, inbox_b = [], []
            router_a = Router(0, book)
            router_b = Router(1, book)
            await router_a.start(lambda s, m: inbox_a.append((s, m)))
            await router_b.start(lambda s, m: inbox_b.append((s, m)))
            router_a.send(1, Ready(DIGEST))
            router_b.send(0, Ready(DIGEST))
            await asyncio.sleep(0.2)
            await router_a.close()
            await router_b.close()
            return inbox_a, inbox_b, router_a.stats

        inbox_a, inbox_b, stats_a = run(scenario())
        assert inbox_b == [(0, Ready(DIGEST))]
        assert inbox_a == [(1, Ready(DIGEST))]
        assert stats_a.sent_bytes == {"ready": Ready(DIGEST).size_bytes()}
        assert stats_a.recv_bytes == {"ready": Ready(DIGEST).size_bytes()}

    def test_unknown_destination_counted_not_crashing(self):
        async def scenario():
            router = Router(0, {})
            await router.start(lambda *a: None)
            ok = router.send(99, Ready(DIGEST))
            count = router.unroutable_frames
            await router.close()
            return ok, count

        ok, count = run(scenario())
        assert ok is False
        assert count == 1

    def test_backlog_seconds_reflects_queued_bytes(self):
        async def scenario():
            book = {1: ("127.0.0.1", 1)}  # dead port: frames queue
            router = Router(0, book, link_bps=8.0)  # 1 byte/second
            await router.start(lambda *a: None)
            router.send(1, Ready(DIGEST))
            backlog = router.backlog_seconds()
            await router.close()
            return backlog

        # 96 wire bytes at 1 byte/s == 96 seconds of backlog.
        assert run(scenario()) == Ready(DIGEST).size_bytes()


class TestHandlerFailures:
    def test_handler_exception_keeps_connection_alive(self):
        """A crashing handler must not drop the peer's queued frames."""
        async def scenario():
            received = []

            def handler(sender, msg):
                if not received:
                    received.append("boom")
                    raise RuntimeError("core bug")
                received.append(msg)

            listener = Listener(handler, NicStats())
            await listener.start()
            _, writer = await asyncio.open_connection(
                "127.0.0.1", listener.port)
            writer.write(codec.encode(0, Ready(DIGEST)))
            writer.write(codec.encode(0, Ready(DIGEST2)))
            await writer.drain()
            await asyncio.sleep(0.1)
            writer.close()
            errors = listener.handler_errors
            await listener.close()
            return received, errors

        received, errors = run(scenario())
        assert errors == 1
        assert received == ["boom", Ready(DIGEST2)]


class TestOverloadRecovery:
    """Satellite (d): transport behaviour under overload and after it."""

    def test_full_queue_drops_then_recovers_when_peer_appears(self):
        async def scenario():
            received = []
            listener = Listener(
                lambda sender, msg: received.append(msg), NicStats())
            await listener.start()
            port = listener.port
            await listener.close()  # peer dials a dead port first

            frame = codec.encode(0, Ready(DIGEST))
            peer = PeerConnection(1, "127.0.0.1", port, len(frame) * 2)
            peer.start()
            assert peer.send(frame) and peer.send(frame)
            assert not peer.send(frame)  # overloaded: dropped + counted
            dropped_during = peer.dropped_frames

            listener.port = port
            await listener.start()
            await asyncio.sleep(0.6)  # backoff dial succeeds, queue drains
            accepted_after = peer.send(frame)
            await asyncio.sleep(0.3)
            await peer.close()
            await listener.close()
            return (dropped_during, accepted_after, len(received),
                    peer.dropped_frames)

        dropped_during, accepted_after, delivered, dropped_final = \
            run(scenario())
        assert dropped_during == 1
        assert accepted_after is True  # queue freed: overload was transient
        assert delivered == 3          # both survivors + the post-recovery one
        assert dropped_final == dropped_during

    def test_reconnect_after_listener_restart_delivers_queued_frames(self):
        """A restarted peer is re-dialled with backoff; frames queued
        while it was down arrive after the reconnect."""
        async def scenario():
            received = []

            def handler(sender, msg):
                received.append(msg)

            listener = Listener(handler, NicStats())
            await listener.start()
            port = listener.port

            peer = PeerConnection(1, "127.0.0.1", port)
            peer.start()
            peer.send(codec.encode(0, Ready(DIGEST)))
            await asyncio.sleep(0.2)  # delivered on the first connection
            await listener.close()

            # In-flight loss is real TCP: a write lands in the kernel
            # buffer and only a *later* write observes the reset, so keep
            # probing with sacrificial frames until the writer discovers
            # the dead connection and re-enters the dial loop
            # (observable via backoff_retries).
            deadline = asyncio.get_running_loop().time() + 5.0
            while peer.backoff_retries == 0:
                assert asyncio.get_running_loop().time() < deadline
                peer.send(codec.encode(0, Ready(DIGEST)))
                await asyncio.sleep(0.05)

            queued_frame = codec.encode(0, Ready(DIGEST2))
            assert peer.send(queued_frame)  # queued while peer is down

            restarted = Listener(handler, NicStats(), port=port)
            await restarted.start()
            await asyncio.sleep(0.8)
            stats = (peer.connects, peer.backoff_retries, list(received))
            await peer.close()
            await restarted.close()
            return stats

        connects, retries, received = run(scenario())
        assert connects == 2       # original + one reconnect
        assert retries >= 1        # counted for the report
        assert received[0] == Ready(DIGEST)
        assert received[-1] == Ready(DIGEST2)  # queued frame survived

    def test_garbling_peer_dropped_without_disturbing_clean_peer(self):
        async def scenario():
            received = []
            listener = Listener(
                lambda sender, msg: received.append(msg), NicStats())
            await listener.start()

            _, garbler = await asyncio.open_connection(
                "127.0.0.1", listener.port)
            _, clean = await asyncio.open_connection(
                "127.0.0.1", listener.port)
            garbler.write((6).to_bytes(4, "big") + bytes([255]) + bytes(5))
            await garbler.drain()
            clean.write(codec.encode(3, Ready(DIGEST)))
            await clean.drain()
            await asyncio.sleep(0.1)
            # The garbling connection is dead; the clean one still works.
            clean.write(codec.encode(3, Ready(DIGEST2)))
            await clean.drain()
            await asyncio.sleep(0.1)
            errors = listener.decode_errors
            clean.close()
            garbler.close()
            await listener.close()
            return errors, received

        errors, received = run(scenario())
        assert errors == 1
        assert received == [Ready(DIGEST), Ready(DIGEST2)]


class TestSendMany:
    def test_broadcast_fanout_encodes_frame_once(self, monkeypatch):
        """Satellite (b): send_many serializes the message exactly once."""
        from repro.net import transport as transport_mod

        calls = {"count": 0}
        real_encode = codec.encode

        def counting_encode(sender, msg):
            calls["count"] += 1
            return real_encode(sender, msg)

        async def scenario():
            book: dict[int, tuple[str, int]] = {}
            inboxes = {1: [], 2: [], 3: []}
            routers = {}
            sender = Router(0, book)
            await sender.start(lambda *a: None)
            for dest in (1, 2, 3):
                routers[dest] = Router(dest, book)
                await routers[dest].start(
                    lambda s, m, d=dest: inboxes[d].append(m))
            monkeypatch.setattr(transport_mod.codec, "encode",
                                counting_encode)
            accepted = sender.send_many((1, 2, 3), Ready(DIGEST))
            await asyncio.sleep(0.3)
            monkeypatch.undo()
            for router in (sender, *routers.values()):
                await router.close()
            return accepted, inboxes

        accepted, inboxes = run(scenario())
        assert accepted == 3
        assert calls["count"] == 1
        assert all(inboxes[d] == [Ready(DIGEST)] for d in (1, 2, 3))

    def test_send_many_skips_unroutable_without_encoding(self, monkeypatch):
        from repro.net import transport as transport_mod

        calls = {"count": 0}

        def failing_encode(sender, msg):
            calls["count"] += 1
            raise AssertionError("must not encode for unroutable fan-out")

        async def scenario():
            router = Router(0, {})
            await router.start(lambda *a: None)
            monkeypatch.setattr(transport_mod.codec, "encode",
                                failing_encode)
            accepted = router.send_many((7, 8), Ready(DIGEST))
            monkeypatch.undo()
            unroutable = router.unroutable_frames
            await router.close()
            return accepted, unroutable

        accepted, unroutable = run(scenario())
        assert accepted == 0
        assert unroutable == 2
        assert calls["count"] == 0


class TestShapedLinks:
    """The shaper hooks inside the drain loop (partition hold, loss)."""

    def test_partitioned_link_holds_queue_until_heal(self):
        from repro.net.shaping import LinkShaper

        async def scenario():
            received = []
            listener = Listener(
                lambda sender, msg: received.append(msg), NicStats())
            await listener.start()
            shaper = LinkShaper()
            shaper.set_partition([frozenset({0}), frozenset({1})])
            peer = PeerConnection(1, "127.0.0.1", listener.port,
                                  src_id=0, shaper=shaper)
            peer.start()
            peer.send(codec.encode(0, Ready(DIGEST)))
            await asyncio.sleep(0.2)
            held = (len(received), peer.queued_bytes)
            shaper.heal()
            await asyncio.sleep(0.2)
            await peer.close()
            await listener.close()
            return held, received

        (held_count, held_bytes), received = run(scenario())
        assert held_count == 0
        assert held_bytes > 0  # frame stayed queued, not dropped
        assert received == [Ready(DIGEST)]

    def test_lossy_link_discards_frames_after_dequeue(self):
        from repro.net.shaping import LinkPolicy, LinkShaper

        async def scenario():
            received = []
            listener = Listener(
                lambda sender, msg: received.append(msg), NicStats())
            await listener.start()
            shaper = LinkShaper()
            shaper.set_policy(0, 1, LinkPolicy(loss=1.0))
            peer = PeerConnection(1, "127.0.0.1", listener.port,
                                  src_id=0, shaper=shaper)
            peer.start()
            for _ in range(3):
                peer.send(codec.encode(0, Ready(DIGEST)))
            await asyncio.sleep(0.2)
            stats = (len(received), peer.sent_frames,
                     shaper.frames_lost, peer.queued_bytes)
            await peer.close()
            await listener.close()
            return stats

        delivered, sent, lost, queued = run(scenario())
        assert delivered == 0
        assert sent == 0
        assert lost == 3
        assert queued == 0  # lost frames do not rot in the queue
