"""Live chaos tests: faults, scenarios, restarts against real sockets."""

from __future__ import annotations

import asyncio

import pytest

from repro.core.recovery import assert_replica_converged, check_convergence
from repro.errors import ConfigError
from repro.faults import Crash, DelaySend, FaultBehavior
from repro.net import LiveCluster, load_scenario
from repro.net.chaos import ChaosEvent
from repro.net.live import run_live


def run(coro):
    return asyncio.run(coro)


SMOKE = dict(total_rate=2000.0, bundle_size=100)


class TestFaultInjection:
    def test_too_many_faults_rejected(self):
        with pytest.raises(ConfigError, match="at most f="):
            LiveCluster(4, faults={2: Crash(), 3: Crash()}, **SMOKE)

    def test_measure_replica_must_stay_honest(self):
        cluster = LiveCluster(4, **SMOKE)
        with pytest.raises(ConfigError, match="honest"):
            LiveCluster(4, faults={cluster.measure_replica: Crash()},
                        **SMOKE)

    def test_clean_cluster_has_no_faults_section(self):
        assert LiveCluster(4, **SMOKE).faults_summary() is None

    def test_delay_send_fault_live_still_commits(self):
        """Satellite (a): the sim-validated slow-replica fault runs
        unchanged on real sockets."""
        async def scenario():
            report = await run_live(
                n=4, duration=1.5, faults={3: DelaySend(delay=0.02)},
                **SMOKE)
            return report

        report = run(scenario())
        committed = report["executed_requests"].get(
            report["measure_replica"], 0)
        assert committed > 0
        faults = report["faults"]
        assert faults["injected"] == {
            "3": {"kind": "delay_send", "delay": 0.02, "msg_classes": None}}

    def test_custom_fault_subclass_reported_not_crashing(self):
        class Weird(FaultBehavior):
            def filter_effects(self, effects, now):
                return []

        cluster = LiveCluster(4, faults={3: Weird()}, **SMOKE)
        summary = cluster.faults_summary()
        assert summary["injected"]["3"]["kind"] == "custom"


class TestScenarioExecution:
    def test_crash_restart_scenario_commits_and_reports(self):
        scenario = load_scenario(
            "at 0.4 crash victim; at 1.0 restart victim")
        report = run(run_live(n=4, duration=1.6, scenario=scenario,
                              **SMOKE))
        faults = report["faults"]
        assert faults["scenario"] == "inline"
        assert [e["op"] for e in faults["events_applied"]] \
            == ["crash", "restart"]
        assert faults["restarts"] == 1
        committed = report["executed_requests"].get(
            report["measure_replica"], 0)
        assert committed > 0

    def test_partition_heal_scenario_recovers(self):
        scenario = load_scenario(
            "at 0.3 partition victim | rest; at 0.8 heal")
        report = run(run_live(n=4, duration=1.4, scenario=scenario,
                              **SMOKE))
        faults = report["faults"]
        assert faults["shaping"]["partitioned"] is False  # healed
        committed = report["executed_requests"].get(
            report["measure_replica"], 0)
        assert committed > 0

    def test_run_extends_to_cover_scenario(self):
        """run_live must outlive the last scheduled event."""
        scenario = load_scenario("at 1.2 heal")
        report = run(run_live(n=4, duration=0.5, scenario=scenario,
                              **SMOKE))
        assert len(report["faults"]["events_applied"]) == 1


class TestCrashRecover:
    """Tentpole: the restarted replica must catch up over the wire and
    re-converge with the quorum's executed prefix — on every protocol."""

    @pytest.mark.parametrize("protocol", ["leopard", "pbft", "hotstuff"])
    def test_victim_catches_up_and_reconverges(self, protocol):
        scenario = load_scenario("crash-recover")
        report = run(run_live(n=4, duration=3.5, protocol=protocol,
                              scenario=scenario, **SMOKE))
        recovery = report["recovery"]
        assert recovery is not None, "crash-recover left no recovery trace"
        victims = {rid: info for rid, info in recovery["replicas"].items()
                   if info.get("rounds", 0) > 0}
        assert victims, "no replica ran a recovery round"
        for rid, info in victims.items():
            assert info["complete"], f"replica {rid} never caught up"
            assert info["segments_fetched"] > 0
            assert_replica_converged(report, int(rid))
        # The cluster as a whole kept committing through the outage.
        committed = report["executed_requests"].get(
            report["measure_replica"], 0)
        assert committed > 0

    def test_convergence_checker_rejects_tampered_tail(self):
        """The assertion helper must actually bite: corrupt the victim's
        reported tail and the same report must fail the check."""
        scenario = load_scenario("crash-recover")
        report = run(run_live(n=4, duration=3.5, scenario=scenario,
                              **SMOKE))
        recovery = report["recovery"]
        rid, info = next((rid, info)
                         for rid, info in recovery["replicas"].items()
                         if info.get("rounds", 0) > 0)
        info["exec_tail"] = [(sn, "ff" * 32) for sn, _ in info["exec_tail"]]
        ok, detail = check_convergence(report, int(rid))
        assert not ok
        assert "divergence" in detail


class TestLiveRestart:
    def test_restart_requires_prior_crash(self):
        async def scenario():
            cluster = LiveCluster(4, **SMOKE)
            await cluster.start()
            try:
                with pytest.raises(ConfigError, match="running"):
                    await cluster.restart_replica(3)
            finally:
                await cluster.stop()

        run(scenario())

    def test_restarted_replica_rejoins_on_same_port(self):
        async def scenario():
            cluster = LiveCluster(4, **SMOKE)
            await cluster.start()
            try:
                address = cluster.address_book[3]
                old_core = cluster.replicas[3]
                await cluster.apply_chaos_event(
                    ChaosEvent(0.0, "crash", {"node": 3}))
                assert cluster.nodes[3].crashed
                await cluster.apply_chaos_event(
                    ChaosEvent(0.5, "restart", {"node": 3}))
                assert cluster.address_book[3] == address
                assert cluster.replicas[3] is not old_core
                assert not cluster.nodes[3].crashed
                assert cluster.restarts == 1
            finally:
                await cluster.stop()

        run(scenario())

    def test_shape_and_unshape_swap_link_policies(self):
        async def scenario():
            cluster = LiveCluster(4, **SMOKE)
            await cluster.start()
            try:
                await cluster.apply_chaos_event(ChaosEvent(
                    0.0, "shape",
                    {"src": 0, "dst": 1, "policy": {"latency": 0.01}}))
                assert cluster.shaper.policy(0, 1) is not None
                await cluster.apply_chaos_event(ChaosEvent(
                    0.1, "unshape", {"src": 0, "dst": 1}))
                assert cluster.shaper.policy(0, 1) is None
                return cluster.chaos_log
            finally:
                await cluster.stop()

        log = run(scenario())
        assert [e["op"] for e in log] == ["shape", "unshape"]
