"""Chaos-scenario tests: grammar, symbol resolution, builtins, loading."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.net.chaos import (
    BUILTIN_SCENARIOS,
    ChaosScenario,
    load_scenario,
)


class TestGrammar:
    def test_full_scenario_parses_sorted(self):
        scenario = ChaosScenario.parse("""
            # comments are stripped
            at 2.0 heal
            at 1.0 partition victim | rest   # trailing comments too
            at 0.5 shape leader->victim rate_mbps=100 latency=0.01
        """)
        assert [e.op for e in scenario.events] == [
            "shape", "partition", "heal"]
        assert scenario.duration() == 2.0
        assert scenario.ops() == {"shape", "partition", "heal"}

    def test_semicolons_separate_events(self):
        scenario = ChaosScenario.parse(
            "at 1.0 crash victim; at 2.0 restart victim")
        assert [e.op for e in scenario.events] == ["crash", "restart"]

    def test_shape_policy_parsed_and_validated(self):
        scenario = ChaosScenario.parse(
            "at 0 shape 0->1 rate_mbps=10 burst=4096 jitter=0.001 loss=0.1")
        args = scenario.events[0].args
        assert args["policy"] == {
            "rate_bps": 10e6, "burst_bytes": 4096,
            "jitter": 0.001, "loss": 0.1}

    @pytest.mark.parametrize("line", [
        "crash victim",                        # missing 'at TIME'
        "at soon crash victim",                # bad time
        "at 1.0 explode victim",               # unknown op
        "at 1.0 heal now",                     # heal takes no args
        "at 1.0 crash",                        # crash needs a node
        "at 1.0 crash a b",                    # ... exactly one node
        "at 1.0 partition victim",             # one group is no partition
        "at 1.0 partition a | | b",            # empty group
        "at 1.0 shape 0->1 warp=9",            # unknown shape parameter
        "at 1.0 shape 0->1 loss=2.0",          # invalid policy value
        "at 1.0 shape 0:1 latency=0.1",        # not a src->dst link
        "at 1.0 fault victim",                 # fault needs a kind
        "at 1.0 fault victim delay_send speed=3",  # unknown fault param
    ])
    def test_bad_lines_rejected(self, line):
        with pytest.raises(ConfigError):
            ChaosScenario.parse(line)

    def test_empty_scenario_rejected(self):
        with pytest.raises(ConfigError, match="no events"):
            ChaosScenario.parse("# only a comment\n")


class TestResolution:
    def test_victim_avoids_leader_measure_and_primaries(self):
        scenario = ChaosScenario.parse("at 1.0 crash victim")
        resolved = scenario.resolve(
            n=4, leader=1, measure_replica=0,
            client_primaries=frozenset({3}))
        assert resolved.events[0].args["node"] == 2

    def test_victim_falls_back_when_all_primaries_taken(self):
        """Both backends of a faulted comparison must agree on the victim
        even when one has clients on every replica and the other does not
        — the fallback picks the same highest candidate either way."""
        scenario = ChaosScenario.parse("at 1.0 crash victim")
        sparse = scenario.resolve(n=4, leader=1, measure_replica=0,
                                  client_primaries=frozenset({2}))
        saturated = scenario.resolve(n=4, leader=1, measure_replica=0,
                                     client_primaries=frozenset({2, 3}))
        assert sparse.events[0].args["node"] == 3
        assert saturated.events[0].args["node"] == 3

    def test_rest_expands_to_everyone_else(self):
        scenario = ChaosScenario.parse("at 1.0 partition victim | rest")
        resolved = scenario.resolve(n=4, leader=1, measure_replica=0)
        assert resolved.events[0].args["groups"] == [[3], [0, 1, 2]]

    def test_overlapping_groups_rejected(self):
        scenario = ChaosScenario.parse("at 1.0 partition leader | rest")
        # leader=1 is also in rest (rest = everyone but the victim).
        with pytest.raises(ConfigError, match="overlap"):
            scenario.resolve(n=4, leader=1, measure_replica=0)

    def test_numeric_nodes_bounds_checked(self):
        scenario = ChaosScenario.parse("at 1.0 crash 9")
        with pytest.raises(ConfigError, match="outside cluster"):
            scenario.resolve(n=4, leader=1, measure_replica=0)

    def test_unknown_symbol_rejected(self):
        scenario = ChaosScenario.parse("at 1.0 crash intruder")
        with pytest.raises(ConfigError, match="unknown node token"):
            scenario.resolve(n=4, leader=1, measure_replica=0)

    def test_shape_endpoints_resolved(self):
        scenario = ChaosScenario.parse(
            "at 0.5 shape leader->victim latency=0.01")
        resolved = scenario.resolve(n=4, leader=1, measure_replica=0)
        args = resolved.events[0].args
        assert (args["src"], args["dst"]) == (1, 3)


class TestSerialization:
    def test_jsonable_round_trip(self):
        scenario = ChaosScenario.parse(BUILTIN_SCENARIOS["smoke"],
                                       name="smoke")
        clone = ChaosScenario.from_jsonable(scenario.to_jsonable())
        assert clone == scenario

    def test_resolved_scenario_round_trips(self):
        resolved = ChaosScenario.parse(
            "at 1.0 partition victim | rest").resolve(
            n=4, leader=1, measure_replica=0)
        import json

        clone = ChaosScenario.from_jsonable(
            json.loads(json.dumps(resolved.to_jsonable())))
        assert clone == resolved


class TestBuiltinsAndLoading:
    def test_every_builtin_parses_and_resolves(self):
        for name, text in BUILTIN_SCENARIOS.items():
            scenario = ChaosScenario.parse(text, name=name)
            resolved = scenario.resolve(n=4, leader=1, measure_replica=0)
            assert resolved.events, name

    def test_load_builtin_by_name(self):
        scenario = load_scenario("smoke")
        assert scenario.name == "smoke"
        assert "crash" in scenario.ops()

    def test_load_inline_text(self):
        scenario = load_scenario("at 1.0 crash victim")
        assert scenario.name == "inline"

    def test_load_from_file(self, tmp_path):
        path = tmp_path / "my.chaos"
        path.write_text("at 1.0 crash victim\n")
        scenario = load_scenario(str(path))
        assert scenario.name == "my.chaos"
        assert scenario.events[0].op == "crash"

    def test_unknown_name_lists_builtins(self):
        with pytest.raises(ConfigError, match="smoke"):
            load_scenario("nope")
