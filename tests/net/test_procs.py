"""Multi-process deployment tests: port picking, reaping, end-to-end.

Satellite of ISSUE 4: the process supervisor must reap its children and
close sockets on **every** exit path — a crash during boot must not leave
orphaned replica processes holding listeners.
"""

from __future__ import annotations

import sys
import time

import pytest

from repro.harness.procs import (
    ProcessSupervisor,
    pick_free_ports,
    run_live_processes,
)


class TestPickFreePorts:
    def test_ports_distinct_and_bindable(self):
        import socket

        ports = pick_free_ports(8)
        assert len(set(ports)) == 8
        for port in ports:
            sock = socket.socket()
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            sock.bind(("127.0.0.1", port))
            sock.close()


def _sleeper_cmd(seconds: float) -> list[str]:
    return [sys.executable, "-c",
            f"import time; time.sleep({seconds})"]


class TestProcessSupervisor:
    def test_context_exit_reaps_survivors(self):
        """Leaving the with-block kills and reaps long-running children."""
        with ProcessSupervisor(term_grace=5.0) as supervisor:
            for index in range(3):
                supervisor.spawn(f"sleeper-{index}", _sleeper_cmd(60))
            procs = list(supervisor.procs.values())
            assert all(proc.poll() is None for proc in procs)
        # All children dead and reaped (returncode populated, no zombie).
        assert all(proc.poll() is not None for proc in procs)

    def test_exception_path_still_reaps(self):
        procs = []
        with pytest.raises(RuntimeError):
            with ProcessSupervisor(term_grace=5.0) as supervisor:
                supervisor.spawn("sleeper", _sleeper_cmd(60))
                procs = list(supervisor.procs.values())
                raise RuntimeError("parent failed mid-deploy")
        assert all(proc.poll() is not None for proc in procs)

    def test_failed_reports_nonzero_exits(self):
        with ProcessSupervisor() as supervisor:
            supervisor.spawn(
                "crasher", [sys.executable, "-c", "import sys; sys.exit(3)"])
            supervisor.spawn("ok", [sys.executable, "-c", "pass"])
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline and not supervisor.failed():
                time.sleep(0.05)
            failed = supervisor.failed()
        assert failed == {"crasher": 3}

    def test_wait_all_returns_exit_codes(self):
        with ProcessSupervisor() as supervisor:
            supervisor.spawn("quick", [sys.executable, "-c", "pass"])
            codes = supervisor.wait_all(timeout=10.0)
        assert codes == {"quick": 0}

    def test_kill_is_expected_death(self):
        """A chaos SIGKILL must not surface as a failed child."""
        with ProcessSupervisor(term_grace=5.0) as supervisor:
            supervisor.spawn("victim", _sleeper_cmd(60))
            supervisor.kill("victim")
            assert supervisor.procs["victim"].poll() is not None
            assert supervisor.procs["victim"].returncode < 0  # signal death
            assert "victim" in supervisor.expected_exits
            assert supervisor.failed() == {}

    def test_respawn_relaunches_killed_child(self):
        with ProcessSupervisor(term_grace=5.0) as supervisor:
            first = supervisor.spawn("victim", _sleeper_cmd(60))
            supervisor.kill("victim")
            second = supervisor.respawn("victim")
            assert second is not first
            assert second.poll() is None  # alive again
            assert supervisor.respawns == 1
            # The respawned child is a live process again, so its death
            # would once more count as a failure.
            assert "victim" not in supervisor.expected_exits

    def test_respawn_retries_with_backoff(self, monkeypatch):
        """Transient launch failures are retried before giving up."""
        with ProcessSupervisor(term_grace=5.0) as supervisor:
            supervisor.spawn("victim", _sleeper_cmd(60))
            supervisor.kill("victim")
            real_spawn = ProcessSupervisor.spawn
            attempts = []

            def flaky_spawn(self, name, cmd, env=None, log_path=None):
                attempts.append(name)
                if len(attempts) < 3:
                    raise OSError("port still in TIME_WAIT")
                return real_spawn(self, name, cmd, env=env,
                                  log_path=log_path)

            monkeypatch.setattr(ProcessSupervisor, "spawn", flaky_spawn)
            proc = supervisor.respawn("victim")
            assert proc.poll() is None
            assert len(attempts) == 3
            assert supervisor.respawns == 1

    def test_respawn_gives_up_after_attempts(self, monkeypatch):
        with ProcessSupervisor(term_grace=5.0) as supervisor:
            supervisor.spawn("victim", _sleeper_cmd(60))
            supervisor.kill("victim")

            def doomed_spawn(self, name, cmd, env=None, log_path=None):
                raise OSError("address in use")

            monkeypatch.setattr(ProcessSupervisor, "spawn", doomed_spawn)
            with pytest.raises(RuntimeError, match="failed to respawn"):
                supervisor.respawn("victim")
            # Still an expected death: the health poll must not abort
            # the run over a fault the scenario itself injected.
            assert supervisor.failed() == {}


class TestRunLiveProcesses:
    def test_warmup_rejected(self):
        """Child clocks cannot honour a measurement-epoch warmup."""
        from repro.errors import ConfigError

        with pytest.raises(ConfigError, match="warmup"):
            run_live_processes(n=4, duration=1.0, warmup=0.5)

    def test_non_process_scenario_ops_rejected(self):
        """Only crash/restart act on real processes; shaping ops need
        the in-process shaper and must be rejected before any spawn."""
        from repro.errors import ConfigError
        from repro.net.chaos import load_scenario

        scenario = load_scenario(
            "at 0.3 partition victim | rest; at 0.8 heal")
        with pytest.raises(ConfigError, match="crash/restart"):
            run_live_processes(n=4, duration=1.0, scenario=scenario)

    def test_leopard_commits_across_processes(self):
        """One OS process per replica commits real requests end-to-end."""
        report = run_live_processes(
            n=4, client_count=1, duration=4.0, protocol="leopard",
            total_rate=2000.0, bundle_size=100, seed=7)
        committed = report["executed_requests"].get(
            report["measure_replica"], 0)
        assert committed >= 100, f"only {committed} committed"
        # Every replica child exited cleanly and was reaped.
        assert report["deployment"]["mode"] == "processes"
        assert set(report["deployment"]["exit_codes"].values()) == {0}
        # Acks crossed process boundaries back to the parent's clients.
        assert report["acked_bundles"] > 0
        # Byte accounting was merged from the child summaries.
        measure_bytes = report["bytes_by_class"][report["measure_replica"]]
        assert measure_bytes["sent"].get("vote", 0) > 0
        assert measure_bytes["recv"].get("datablock", 0) > 0
        assert report["transport"]["decode_errors"] == 0

    def test_crash_recover_restores_from_durable_snapshot(self):
        """Tentpole: a SIGKILLed replica child respawns, reloads its
        durable on-disk snapshot, then catches up over the wire and
        re-converges with the quorum's executed prefix."""
        from repro.core.recovery import assert_replica_converged
        from repro.net.chaos import load_scenario

        report = run_live_processes(
            n=4, client_count=1, duration=4.0, protocol="leopard",
            total_rate=2000.0, bundle_size=100, seed=7,
            scenario=load_scenario("crash-recover"))
        recovery = report["recovery"]
        assert recovery is not None
        # Children persisted snapshots; the respawned victim booted from
        # one rather than seed-rebuilding an empty ledger.
        assert recovery["snapshots_persisted"] > 0
        assert recovery["restored_from_disk"], \
            "respawned child did not restore from its snapshot"
        victims = {rid: info for rid, info in recovery["replicas"].items()
                   if info.get("rounds", 0) > 0}
        assert victims, "no replica ran a recovery round"
        for rid, info in victims.items():
            assert info["complete"], f"replica {rid} never caught up"
            assert_replica_converged(report, int(rid))
        committed = report["executed_requests"].get(
            report["measure_replica"], 0)
        assert committed > 0

    def test_dead_replica_child_aborts_run_and_reaps(self, monkeypatch):
        """A replica crashing mid-run fails the deployment loudly."""
        import repro.harness.procs as procs_mod

        real_spawn = ProcessSupervisor.spawn

        def sabotaged_spawn(self, name, cmd, env=None, log_path=None):
            if name == "replica-2":
                cmd = [sys.executable, "-c",
                       "import sys; sys.exit(9)"]
            return real_spawn(self, name, cmd, env=env, log_path=log_path)

        monkeypatch.setattr(ProcessSupervisor, "spawn", sabotaged_spawn)
        with pytest.raises(RuntimeError, match="replica-2"):
            procs_mod.run_live_processes(
                n=4, client_count=1, duration=8.0, protocol="leopard",
                total_rate=1000.0, bundle_size=50)
