"""Link-shaper unit tests: token bucket, latency pipelining, loss, cuts."""

from __future__ import annotations

import pytest

from repro.net.shaping import LinkPolicy, LinkShaper, _TokenBucket


class TestLinkPolicy:
    def test_rejects_non_positive_rate(self):
        with pytest.raises(ValueError):
            LinkPolicy(rate_bps=0)

    def test_rejects_loss_outside_unit_interval(self):
        with pytest.raises(ValueError):
            LinkPolicy(loss=1.5)

    def test_rejects_negative_latency(self):
        with pytest.raises(ValueError):
            LinkPolicy(latency=-0.01)

    def test_describe_is_plain_json(self):
        policy = LinkPolicy(rate_bps=1e6, latency=0.01)
        assert policy.describe() == {
            "rate_bps": 1e6, "burst_bytes": 64 * 1024,
            "latency": 0.01, "jitter": 0.0, "loss": 0.0}


class TestTokenBucket:
    def test_within_burst_no_wait(self):
        bucket = _TokenBucket(rate_bps=8e6, burst_bytes=1000)  # 1 MB/s
        assert bucket.reserve(1000, now=0.0) == 0.0

    def test_exceeding_burst_waits_at_line_rate(self):
        bucket = _TokenBucket(rate_bps=8e6, burst_bytes=1000)
        bucket.reserve(1000, now=0.0)  # drain the bucket
        # Next 1000 bytes at 1e6 bytes/s -> 1 ms wait.
        assert bucket.reserve(1000, now=0.0) == pytest.approx(1e-3)

    def test_oversized_frame_still_leaves_late(self):
        """Frames larger than the burst go out after a proportional wait."""
        bucket = _TokenBucket(rate_bps=8e6, burst_bytes=100)
        wait = bucket.reserve(1100, now=0.0)
        assert wait == pytest.approx(1000 / 1e6)

    def test_refill_over_time(self):
        bucket = _TokenBucket(rate_bps=8e6, burst_bytes=1000)
        bucket.reserve(1000, now=0.0)
        # After 1 ms the bucket refilled 1000 bytes: no wait again.
        assert bucket.reserve(1000, now=1e-3) == 0.0


class TestFrameDelay:
    def test_unshaped_link_flows_free(self):
        shaper = LinkShaper()
        assert shaper.frame_delay(0, 1, 100, 0.0, 0.0) == 0.0
        assert shaper.frames_shaped == 0

    def test_latency_measured_from_enqueue_time(self):
        """Queue dwell counts toward the added latency (pipelining)."""
        shaper = LinkShaper()
        shaper.set_policy(0, 1, LinkPolicy(latency=0.05))
        # Frame sat queued 30 ms already: only 20 ms left to wait.
        assert shaper.frame_delay(0, 1, 100, enqueued_at=0.0, now=0.03) \
            == pytest.approx(0.02)
        # Frame older than the latency flows immediately.
        assert shaper.frame_delay(0, 1, 100, enqueued_at=0.0, now=0.1) == 0.0

    def test_jitter_bounded_and_seeded(self):
        a = LinkShaper(seed=42)
        b = LinkShaper(seed=42)
        for shaper in (a, b):
            shaper.set_policy(0, 1, LinkPolicy(latency=0.01, jitter=0.005))
        delays_a = [a.frame_delay(0, 1, 10, 0.0, 0.0) for _ in range(20)]
        delays_b = [b.frame_delay(0, 1, 10, 0.0, 0.0) for _ in range(20)]
        assert delays_a == delays_b  # same seed, same draws
        assert all(0.01 <= d < 0.015 for d in delays_a)

    def test_loss_certain_drop_returns_none(self):
        shaper = LinkShaper()
        shaper.set_policy(0, 1, LinkPolicy(loss=1.0))
        assert shaper.frame_delay(0, 1, 100, 0.0, 0.0) is None
        assert shaper.frames_lost == 1

    def test_rate_limit_adds_on_top_of_latency(self):
        shaper = LinkShaper()
        shaper.set_policy(
            0, 1, LinkPolicy(rate_bps=8e6, burst_bytes=1000, latency=0.001))
        shaper.frame_delay(0, 1, 1000, 0.0, 0.0)  # drains the bucket
        delay = shaper.frame_delay(0, 1, 1000, enqueued_at=0.0, now=0.0)
        # Bucket wait (1 ms) dominates the residual latency here.
        assert delay == pytest.approx(1e-3)

    def test_only_the_policied_direction_is_shaped(self):
        shaper = LinkShaper()
        shaper.set_policy(0, 1, LinkPolicy(loss=1.0))
        assert shaper.frame_delay(1, 0, 100, 0.0, 0.0) == 0.0

    def test_clear_policy_restores_link(self):
        shaper = LinkShaper()
        shaper.set_policy(0, 1, LinkPolicy(loss=1.0))
        shaper.clear_policy(0, 1)
        assert shaper.frame_delay(0, 1, 100, 0.0, 0.0) == 0.0

    def test_counters_and_snapshot(self):
        shaper = LinkShaper()
        shaper.set_policy(0, 1, LinkPolicy(latency=0.01))
        shaper.frame_delay(0, 1, 100, 0.0, 0.0)
        snap = shaper.snapshot()
        assert snap["frames_shaped"] == 1
        assert snap["frames_delayed"] == 1
        assert snap["delay_seconds"] == pytest.approx(0.01)
        assert snap["active_policies"] == 1
        assert snap["partitioned"] is False


class TestPartition:
    def test_cross_group_links_blocked_both_ways(self):
        shaper = LinkShaper()
        shaper.set_partition([frozenset({3}), frozenset({0, 1, 2})])
        assert shaper.blocked(3, 0)
        assert shaper.blocked(0, 3)
        assert not shaper.blocked(0, 1)

    def test_nodes_outside_every_group_unaffected(self):
        shaper = LinkShaper()
        shaper.set_partition([frozenset({0}), frozenset({1})])
        assert not shaper.blocked(5, 0)
        assert not shaper.blocked(0, 5)

    def test_heal_unblocks(self):
        shaper = LinkShaper()
        shaper.set_partition([frozenset({0}), frozenset({1})])
        assert shaper.partitioned
        shaper.heal()
        assert not shaper.partitioned
        assert not shaper.blocked(0, 1)

    def test_new_partition_replaces_old(self):
        shaper = LinkShaper()
        shaper.set_partition([frozenset({0}), frozenset({1})])
        shaper.set_partition([frozenset({2}), frozenset({3})])
        assert not shaper.blocked(0, 1)
        assert shaper.blocked(2, 3)
