"""End-to-end live-cluster tests: real TCP sockets, real clocks.

Acceptance (ISSUE 2): a localhost n=4, f=1 cluster commits client
requests end-to-end over real sockets, keeps committing after one
replica is killed mid-run, and emits the simulator's metrics schema.
"""

from __future__ import annotations

import asyncio
import math

import pytest

from repro.harness.cluster import build_leopard_cluster
from repro.net import LiveCluster
from repro.net.live import default_live_config, run_live


def run(coro):
    return asyncio.run(coro)


class TestLiveCommits:
    def test_cluster_commits_requests_over_tcp(self):
        async def scenario():
            cluster = LiveCluster(4, client_count=1, total_rate=2000.0,
                                  bundle_size=100, seed=7)
            await cluster.start()
            try:
                await cluster.run(2.0)
            finally:
                await cluster.stop()
            return cluster

        cluster = run(scenario())
        committed = cluster.committed_requests()
        assert committed >= 100, f"only {committed} requests committed"
        # Client-side latency samples arrived (acks crossed the wire).
        assert cluster.metrics.latencies
        # Real bytes moved through replica sockets, bucketed by class.
        stats = cluster.nodes[cluster.measure_replica].router.stats
        assert stats.sent_bytes.get("vote", 0) > 0
        assert stats.recv_bytes.get("proof", 0) > 0

    def test_all_honest_replicas_converge(self):
        async def scenario():
            cluster = LiveCluster(4, client_count=1, total_rate=2000.0,
                                  bundle_size=100, seed=7)
            await cluster.start()
            try:
                await cluster.run(2.0)
                # Grace for in-flight proofs to land everywhere.
                await asyncio.sleep(0.3)
            finally:
                await cluster.stop()
            return cluster

        cluster = run(scenario())
        executed = [cluster.committed_requests(replica_id)
                    for replica_id in range(4)]
        assert min(executed) > 0
        # Replicas may differ by in-flight tail, not by orders of magnitude.
        assert min(executed) >= 0.5 * max(executed)

    def test_replica_crash_mid_run_liveness_preserved(self):
        """Kill one non-leader replica; the remaining 3 keep committing."""
        async def wait_for_commits(cluster, floor, deadline=8.0):
            """Poll until the measure replica commits past ``floor``.

            Polling (rather than one fixed sleep) keeps the test robust
            on loaded single-core CI hosts where wall-clock pacing jitters.
            """
            waited = 0.0
            while waited < deadline:
                await asyncio.sleep(0.25)
                waited += 0.25
                if cluster.committed_requests() > floor:
                    return cluster.committed_requests()
            return cluster.committed_requests()

        async def scenario():
            cluster = LiveCluster(4, client_count=1, total_rate=2000.0,
                                  bundle_size=100, seed=7)
            # Kill a replica that is neither the leader, the measurement
            # point, nor any client's submission target: the protocol
            # must survive its crash with no help from client re-routing
            # (these clients do not resubmit).
            primaries = {client.primary for client in cluster.clients}
            victim = next(
                replica_id for replica_id in range(4)
                if replica_id not in primaries
                and replica_id not in (cluster.leader,
                                       cluster.measure_replica))
            await cluster.start()
            try:
                before_kill = await wait_for_commits(cluster, 0)
                killed_at = cluster.committed_requests(victim)
                await cluster.kill_replica(victim)
                after_kill = await wait_for_commits(cluster, before_kill)
            finally:
                await cluster.stop()
            return before_kill, after_kill, killed_at, cluster, victim

        before_kill, after_kill, killed_at, cluster, victim = run(scenario())
        assert before_kill > 0, "no commits before the crash"
        assert after_kill > before_kill, (
            f"commits stalled after killing replica {victim}: "
            f"{before_kill} -> {after_kill}")
        # The dead replica stopped executing where it was.
        assert cluster.committed_requests(victim) == killed_at


class TestLiveReport:
    def test_report_matches_sim_schema(self):
        """Live and simulated runs emit the same report structure."""
        live_report = run(run_live(
            n=4, client_count=1, duration=1.5, total_rate=2000.0,
            bundle_size=100))

        sim_cluster = build_leopard_cluster(4, seed=0, warmup=0.1)
        sim_cluster.run(1.0)
        sim_report = sim_cluster.report()

        # The shared schema: identical keys at the top and nested levels
        # (transport health and deployment topology are live-only).
        assert set(live_report) - {"transport", "deployment"} \
            == set(sim_report)
        assert set(live_report["latency_s"]) == set(sim_report["latency_s"])
        assert set(live_report["perf"]) == set(sim_report["perf"])
        for node_report in live_report["bytes_by_class"].values():
            assert set(node_report) == {"sent", "recv"}
        assert live_report["backend"] == "live"
        assert sim_report["backend"] == "sim"
        assert live_report["protocol"] == sim_report["protocol"]

    def test_report_values_sane(self):
        report = run(run_live(
            n=4, client_count=1, duration=1.5, total_rate=2000.0,
            bundle_size=100))
        assert report["throughput_rps"] > 0
        assert not math.isnan(report["latency_s"]["mean"])
        assert 0 < report["latency_s"]["p50"] < 5.0
        assert report["transport"]["decode_errors"] == 0
        assert report["transport"]["unroutable_frames"] == 0
        # Vote traffic flows replica->leader; datablocks are broadcast by
        # the client's assigned replica and received by everyone else.
        measure = report["measure_replica"]
        node_bytes = report["bytes_by_class"][measure]
        assert node_bytes["sent"].get("vote", 0) > 0
        assert node_bytes["recv"].get("datablock", 0) > 0


class TestBootFailureTeardown:
    """A replica crashing during boot must not orphan bound listeners."""

    def test_bind_failure_mid_start_closes_all_listeners(self, monkeypatch):
        from repro.net.transport import Router

        real_start = Router.start

        async def failing_start(self, handler):
            if self.node_id == 2:
                raise OSError("injected bind failure")
            await real_start(self, handler)

        monkeypatch.setattr(Router, "start", failing_start)

        async def scenario():
            cluster = LiveCluster(4, client_count=1, total_rate=1000.0,
                                  bundle_size=50)
            with pytest.raises(OSError, match="injected"):
                await cluster.start()
            return cluster

        cluster = run(scenario())
        # Every listener that did bind was closed before the error
        # propagated; every router refuses further sends.
        for node in cluster.nodes.values():
            listener = node.router.listener
            assert listener is None or listener._server is None
            assert node.crashed

    def test_boot_hook_failure_closes_all_listeners(self, monkeypatch):
        from repro.net.node import LiveNode

        real_boot = LiveNode.boot

        def failing_boot(self):
            if self.node_id == 1:
                raise RuntimeError("injected core boot failure")
            real_boot(self)

        monkeypatch.setattr(LiveNode, "boot", failing_boot)

        async def scenario():
            cluster = LiveCluster(4, client_count=1, total_rate=1000.0,
                                  bundle_size=50)
            with pytest.raises(RuntimeError, match="injected"):
                await cluster.start()
            return cluster

        cluster = run(scenario())
        for node in cluster.nodes.values():
            listener = node.router.listener
            assert listener is None or listener._server is None

    def test_run_live_cleans_up_when_start_raises(self, monkeypatch):
        """The run_live entry point tears down even when boot fails."""
        from repro.net import live as live_mod
        from repro.net.transport import Router

        real_start = Router.start
        seen: list[LiveCluster] = []

        async def failing_start(self, handler):
            if self.node_id == 3:
                raise OSError("injected bind failure")
            await real_start(self, handler)

        monkeypatch.setattr(Router, "start", failing_start)
        real_init = live_mod.LiveCluster.__init__

        def spying_init(self, *args, **kwargs):
            real_init(self, *args, **kwargs)
            seen.append(self)

        monkeypatch.setattr(live_mod.LiveCluster, "__init__", spying_init)
        with pytest.raises(OSError, match="injected"):
            run(live_mod.run_live(n=4, duration=0.5, total_rate=1000.0,
                                  bundle_size=50))
        (cluster,) = seen
        for node in cluster.nodes.values():
            listener = node.router.listener
            assert listener is None or listener._server is None


class TestLiveConfig:
    def test_default_config_valid_at_smoke_scale(self):
        config = default_live_config(4)
        assert config.n == 4
        assert config.f == 1
        assert config.quorum == 3

    def test_mismatched_config_rejected(self):
        from repro.errors import ConfigError
        with pytest.raises(ConfigError):
            LiveCluster(7, config=default_live_config(4))
