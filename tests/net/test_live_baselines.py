"""Live-runtime tests for the baseline protocols (ISSUE 4).

The paper's comparative claims (Figs. 1/2/6/9) require PBFT and HotStuff
to run on the *same* transport and measurement harness as Leopard.  These
tests boot each baseline on a real localhost TCP cluster: commits flow
end-to-end, the run survives a mid-run replica crash, and every baseline
message class survives the wire framing with exact size parity.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.messages.client import Ack, RequestBundle
from repro.messages.hotstuff import HSBlock, HSNewView, HSVote, QuorumCert
from repro.messages.leopard import BundleSpan
from repro.messages.pbft import Commit, Prepare, PrePrepare
from repro.net import LiveCluster
from repro.net.protocols import default_live_config_for, get_protocol
from repro.net.transport import read_frame
from repro.wire import codec

BASELINES = ("pbft", "hotstuff")
DIGEST = bytes(range(32))
SPANS = (BundleSpan(4, 1, 100, 0.25),)


def run(coro):
    return asyncio.run(coro)


async def wait_for_commits(cluster, floor, deadline=8.0):
    """Poll until the measure replica commits past ``floor``."""
    waited = 0.0
    while waited < deadline:
        await asyncio.sleep(0.25)
        waited += 0.25
        if cluster.committed_requests() > floor:
            return cluster.committed_requests()
    return cluster.committed_requests()


class TestBaselineLiveCommits:
    @pytest.mark.parametrize("protocol", BASELINES)
    def test_commits_requests_over_tcp(self, protocol):
        async def scenario():
            cluster = LiveCluster(4, client_count=1, protocol=protocol,
                                  total_rate=2000.0, bundle_size=100,
                                  seed=7)
            try:
                await cluster.start()
                await cluster.run(2.0)
            finally:
                await cluster.stop()
            return cluster

        cluster = run(scenario())
        committed = cluster.committed_requests()
        assert committed >= 100, (
            f"{protocol}: only {committed} requests committed")
        # Acks crossed the wire back to the client.
        assert cluster.metrics.latencies
        # Real vote traffic moved through the measure replica's socket.
        stats = cluster.nodes[cluster.measure_replica].router.stats
        assert stats.sent_bytes.get("vote", 0) > 0
        assert stats.recv_bytes.get("block", 0) > 0

    @pytest.mark.parametrize("protocol", BASELINES)
    def test_report_declares_protocol(self, protocol):
        async def scenario():
            cluster = LiveCluster(4, client_count=1, protocol=protocol,
                                  total_rate=1000.0, bundle_size=50)
            try:
                await cluster.start()
                await cluster.run(1.0)
            finally:
                await cluster.stop()
            return cluster.report()

        report = run(scenario())
        assert report["protocol"] == protocol
        assert report["backend"] == "live"
        assert report["deployment"]["mode"] == "in-process"
        assert report["throughput_rps"] > 0


class TestBaselineCrashLiveness:
    @pytest.mark.parametrize("protocol", BASELINES)
    def test_replica_crash_mid_run_liveness_preserved(self, protocol):
        """Kill one non-leader follower; 2f+1 survivors keep committing."""
        async def scenario():
            cluster = LiveCluster(4, client_count=1, protocol=protocol,
                                  total_rate=2000.0, bundle_size=100,
                                  seed=7)
            victim = next(
                replica_id for replica_id in range(4)
                if replica_id not in (cluster.leader,
                                      cluster.measure_replica))
            try:
                await cluster.start()
                before_kill = await wait_for_commits(cluster, 0)
                await cluster.kill_replica(victim)
                after_kill = await wait_for_commits(cluster, before_kill)
            finally:
                await cluster.stop()
            return before_kill, after_kill, victim

        before_kill, after_kill, victim = run(scenario())
        assert before_kill > 0, f"{protocol}: no commits before the crash"
        assert after_kill > before_kill, (
            f"{protocol}: commits stalled after killing replica "
            f"{victim}: {before_kill} -> {after_kill}")


#: One instance per message class a PBFT or HotStuff deployment puts on
#: the wire (consensus messages plus the shared client classes).
BASELINE_WIRE_CORPUS = [
    PrePrepare(1, 4, 100, 128, SPANS, proposed_at=0.5),
    Prepare(1, 4, DIGEST, 2),
    Commit(1, 4, DIGEST, 2),
    HSBlock(7, DIGEST, QuorumCert(DIGEST, 6, 3), 100, 128, SPANS, 0.5),
    HSVote(7, DIGEST, 2),
    HSNewView(3, QuorumCert(DIGEST, 2, 3)),
    HSNewView(4, None),
    RequestBundle(4, 3, 100, 128, 0.25),
    Ack(4, 3, 100, 0.25, 1.0),
]


class TestBaselineWireFraming:
    """Codec coverage audit: every baseline class under stream framing."""

    @pytest.mark.parametrize(
        "msg", BASELINE_WIRE_CORPUS,
        ids=lambda m: type(m).__name__)
    def test_survives_stream_framing_with_size_parity(self, msg):
        async def scenario():
            reader = asyncio.StreamReader()
            frame = codec.encode(9, msg)
            assert len(frame) == msg.size_bytes()
            reader.feed_data(frame)
            reader.feed_eof()
            payload = await read_frame(reader)
            return codec.decode_payload(payload)

        sender, decoded = run(scenario())
        assert sender == 9
        assert decoded == msg

    def test_every_baseline_core_class_registered(self):
        """The classes the baseline replicas emit all have codecs."""
        registered = set(codec.registered_message_types())
        needed = {PrePrepare, Prepare, Commit, HSBlock, HSVote,
                  HSNewView, RequestBundle, Ack}
        assert needed <= registered


class TestProtocolRegistry:
    def test_unknown_protocol_rejected(self):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            get_protocol("tendermint")

    @pytest.mark.parametrize("protocol", ("leopard", *BASELINES))
    def test_default_configs_build(self, protocol):
        config = default_live_config_for(protocol, 4)
        assert config.n == 4
        assert config.leader_of(1) in range(4)

    def test_mismatched_config_rejected(self):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            LiveCluster(7, protocol="pbft",
                        config=default_live_config_for("pbft", 4))
