"""Recovery-subsystem unit tests: ExecutionLog, RecoveryManager, checks.

Drives the sans-io catch-up state machine directly — solicit backoff and
caps, f+1 matching-copy segment verification against a lying peer,
checkpoint-anchored digest cross-checks, gap-triggered re-solicitation —
plus the report-level convergence checker both smoke gates rely on.
"""

from __future__ import annotations

import pytest

from repro.core.recovery import (
    ExecutionLog,
    RecoveryManager,
    _tail_digest,
    check_convergence,
    recovery_section,
)
from repro.crypto.threshold import ThresholdSignature
from repro.interfaces import Broadcast, CancelTimer, Send, SetTimer
from repro.messages.leopard import CheckpointProof
from repro.messages.recovery import (
    LedgerSegment,
    SegmentEntry,
    StateRequest,
    StateSnapshot,
)


def entry(sn: int) -> SegmentEntry:
    return SegmentEntry(sn, sn.to_bytes(32, "big"), 10)


def segment(lo: int, hi: int) -> LedgerSegment:
    return LedgerSegment(lo, tuple(entry(sn) for sn in range(lo + 1, hi + 1)))


def snapshot(tip: int, checkpoint: CheckpointProof | None = None
             ) -> StateSnapshot:
    return StateSnapshot(tip, bytes(32), checkpoint)


def make_manager(**kwargs) -> tuple[RecoveryManager, ExecutionLog]:
    log = ExecutionLog()
    manager = RecoveryManager(
        0, 4, 1,
        local_tip=lambda: log.last_executed,
        make_snapshot=lambda: StateSnapshot(log.last_executed,
                                            log.state_digest()),
        entries_between=log.entries_between,
        install=log.install,
        **kwargs)
    return manager, log


class TestExecutionLog:
    def test_append_advances_tip_and_digests(self):
        log = ExecutionLog()
        for sn in range(1, 4):
            log.append(sn, entry(sn).digest, 10)
        assert log.last_executed == 3
        assert log.digest_of(2) == entry(2).digest
        assert log.digest_of(99) is None

    def test_install_skips_already_executed(self):
        log = ExecutionLog()
        log.append(1, entry(1).digest, 10)
        log.install([entry(1), entry(2), entry(3)])
        assert log.last_executed == 3
        assert [e.sn for e in log.entries] == [1, 2, 3]

    def test_entries_between_is_half_open(self):
        log = ExecutionLog()
        log.install([entry(sn) for sn in range(1, 11)])
        assert [e.sn for e in log.entries_between(3, 7)] == [4, 5, 6, 7]

    def test_tail_is_sn_hexdigest_pairs(self):
        log = ExecutionLog()
        log.install([entry(1), entry(2)])
        assert log.tail() == [(1, entry(1).digest.hex()),
                              (2, entry(2).digest.hex())]

    def test_trim_bounds_retention(self):
        log = ExecutionLog()
        log.TAIL_LIMIT = 8
        log.install([entry(sn) for sn in range(1, 21)])
        assert len(log.entries) == 8
        assert log.digest_of(12) is None  # trimmed
        assert log.digest_of(13) is not None
        assert log.last_executed == 20

    def test_state_digest_tracks_content(self):
        log_a = ExecutionLog()
        log_b = ExecutionLog()
        log_a.install([entry(1), entry(2)])
        log_b.install([entry(1)])
        assert log_a.state_digest() != log_b.state_digest()
        log_b.install([entry(2)])
        assert log_a.state_digest() == log_b.state_digest()


class TestSolicitation:
    def test_begin_broadcasts_solicitation_with_timer(self):
        manager, _ = make_manager()
        effects = manager.begin(0.0)
        broadcasts = [e for e in effects if isinstance(e, Broadcast)]
        assert broadcasts and broadcasts[0].msg == StateRequest(0, 0)
        assert any(isinstance(e, SetTimer) and e.key == ("rcv", "solicit")
                   for e in effects)
        assert manager.recovering

    def test_solicit_retries_then_fails_round_at_cap(self):
        manager, _ = make_manager(max_solicits=2)
        manager.begin(0.0)
        retry = manager.on_timer(("rcv", "solicit"), 0.5)
        assert any(isinstance(e, Broadcast) for e in retry)
        assert manager.on_timer(("rcv", "solicit"), 1.0) == []
        assert not manager.recovering  # round abandoned at the cap
        assert manager.solicits == 2

    def test_failed_rounds_cap_stops_recovery(self):
        manager, _ = make_manager(max_solicits=1, max_failed_rounds=1)
        manager.begin(0.0)
        manager.on_timer(("rcv", "solicit"), 0.5)  # round 1 fails
        assert manager.begin(1.0) == []
        assert not manager.recovering

    def test_retry_delays_are_jittered_backoff(self):
        manager, _ = make_manager(base_timeout=0.25, backoff=2.0)
        first = manager._delay(1)
        fourth = manager._delay(4)
        assert 0.25 * 0.75 <= first <= 0.25 * 1.25
        assert 0.25 * 8 * 0.75 <= fourth <= 0.25 * 8 * 1.25

    def test_serve_side_answers_even_while_healthy(self):
        manager, log = make_manager()
        log.install([entry(sn) for sn in range(1, 6)])
        reply = manager.on_request(2, StateRequest(0, 0), 1.0)
        assert isinstance(reply[0].msg, StateSnapshot)
        assert reply[0].msg.last_executed == 5
        reply = manager.on_request(2, StateRequest(1, 4), 1.0)
        assert [e.sn for e in reply[0].msg.entries] == [2, 3, 4]


class TestTargetAndFetch:
    def test_target_is_f_plus_1_th_largest_tip(self):
        manager, _ = make_manager()
        manager.begin(0.0)
        assert manager.on_snapshot(1, snapshot(100), 0.1) == []
        effects = manager.on_snapshot(2, snapshot(40), 0.1)
        # f+1-th largest of [100, 40] with f=1 -> 40: at least one
        # honest replica really executed it.
        assert manager._target == 40
        requests = [e.msg for e in effects if isinstance(e, Send)]
        assert all(isinstance(m, StateRequest) for m in requests)
        spans = {(e.key[1], e.key[2]) for e in effects
                 if isinstance(e, SetTimer)}
        assert spans == {(0, 32), (32, 40)}

    def test_snapshot_at_or_below_local_tip_finishes_immediately(self):
        manager, log = make_manager()
        log.install([entry(sn) for sn in range(1, 6)])
        manager.begin(0.0)
        manager.on_snapshot(1, snapshot(5), 0.1)
        manager.on_snapshot(2, snapshot(4), 0.1)
        assert manager.complete
        assert not manager.recovering
        assert manager.installed_entries == 0

    def test_own_snapshot_ignored(self):
        manager, _ = make_manager()
        manager.begin(0.0)
        assert manager.on_snapshot(0, snapshot(50), 0.1) == []
        assert manager.snapshots_received == 0

    def test_window_cap_skips_ancient_history(self):
        manager, _ = make_manager(history_window=16)
        manager.begin(0.0)
        manager.on_snapshot(1, snapshot(1000), 0.1)
        manager.on_snapshot(2, snapshot(1000), 0.1)
        assert manager._start == 1000 - 16
        assert manager.skipped_entries == 1000 - 16


class TestSegmentVerification:
    def fetch_to_target(self, manager, tip=8):
        manager.begin(0.0)
        manager.on_snapshot(1, snapshot(tip), 0.1)
        manager.on_snapshot(2, snapshot(tip), 0.1)

    def test_f_plus_1_matching_copies_install(self):
        manager, log = make_manager(segment_span=8)
        self.fetch_to_target(manager)
        assert manager.on_segment(1, segment(0, 8), 0.2) == []
        effects = manager.on_segment(2, segment(0, 8), 0.3)
        assert any(isinstance(e, CancelTimer) for e in effects)
        assert log.last_executed == 8
        assert manager.complete
        assert manager.installed_entries == 8

    def test_lying_peer_cannot_poison_a_range(self):
        manager, log = make_manager(segment_span=8)
        self.fetch_to_target(manager)
        forged = LedgerSegment(0, tuple(
            SegmentEntry(sn, b"\xee" * 32, 10) for sn in range(1, 9)))
        manager.on_segment(1, forged, 0.2)
        manager.on_segment(2, segment(0, 8), 0.3)
        assert log.last_executed == 0  # one copy each: no f+1 agreement
        manager.on_segment(3, segment(0, 8), 0.4)
        assert log.last_executed == 8  # two honest copies agree
        assert log.digest_of(3) == entry(3).digest  # honest content won

    def test_malformed_segment_discarded(self):
        manager, log = make_manager(segment_span=8)
        self.fetch_to_target(manager)
        truncated = LedgerSegment(0, (entry(1), entry(2)))
        assert manager.on_segment(1, truncated, 0.2) == []
        wrong_range = LedgerSegment(3, tuple(
            entry(sn) for sn in range(4, 12)))
        assert manager.on_segment(1, wrong_range, 0.2) == []
        assert log.last_executed == 0

    def test_segment_retry_rotates_then_fails_at_cap(self):
        manager, _ = make_manager(segment_span=8, max_segment_retries=1)
        self.fetch_to_target(manager)
        retry = manager.on_timer(("rcv", 0, 8), 0.5)
        assert any(isinstance(e, Send) for e in retry)
        assert manager.segment_retries == 1
        assert manager.on_timer(("rcv", 0, 8), 1.0) == []
        assert not manager.recovering


class TestCheckpointAnchor:
    def anchored_manager(self, state_digest: bytes):
        proof = CheckpointProof(8, state_digest, ThresholdSignature(1))
        manager, log = make_manager(
            verify_proof=lambda p: True, history_window=8, segment_span=8)
        manager.begin(0.0)
        manager.on_snapshot(1, snapshot(8, proof), 0.1)
        manager.on_snapshot(2, snapshot(8, proof), 0.1)
        return manager, log

    def test_matching_anchor_digest_installs(self):
        good = _tail_digest([entry(sn) for sn in range(1, 9)], 8)
        manager, log = self.anchored_manager(good)
        manager.on_segment(1, segment(0, 8), 0.2)
        manager.on_segment(2, segment(0, 8), 0.3)
        assert log.last_executed == 8
        assert manager.complete
        assert manager.digest_failures == 0

    def test_anchor_digest_mismatch_restarts_round(self):
        manager, log = self.anchored_manager(b"\xaa" * 32)
        manager.on_segment(1, segment(0, 8), 0.2)
        effects = manager.on_segment(2, segment(0, 8), 0.3)
        assert log.last_executed == 0  # nothing installed
        assert manager.digest_failures == 1
        assert manager.rounds == 2  # refetching from scratch
        assert any(isinstance(e, Broadcast) for e in effects)

    def test_unverifiable_proof_never_anchors(self):
        proof = CheckpointProof(500, b"\xbb" * 32, ThresholdSignature(1))
        manager, _ = make_manager(verify_proof=lambda p: False)
        manager.begin(0.0)
        manager.on_snapshot(1, snapshot(8, proof), 0.1)
        manager.on_snapshot(2, snapshot(8, proof), 0.1)
        assert manager.anchor is None
        assert manager._target == 8  # tips alone, not the forged cert


class TestGapTrigger:
    def test_note_gap_rate_limited(self):
        manager, _ = make_manager(gap_interval=1.0)
        assert manager.note_gap(0.0)  # starts a round
        # Finish it instantly: everyone reports our own tip.
        manager.on_snapshot(1, snapshot(0), 0.1)
        manager.on_snapshot(2, snapshot(0), 0.1)
        assert manager.complete
        assert manager.note_gap(0.5) == []  # inside the rate window
        assert manager.note_gap(2.0)  # past it: re-solicits
        assert manager.rounds == 2

    def test_note_gap_noop_while_recovering(self):
        manager, _ = make_manager()
        manager.begin(0.0)
        assert manager.note_gap(5.0) == []
        assert manager.rounds == 1


class TestReporting:
    class FakeCore:
        def __init__(self, node_id, rounds):
            self.node_id = node_id
            self._rounds = rounds

        def recovery_summary(self):
            return {"rounds": self._rounds, "complete": bool(self._rounds),
                    "exec_tail": [(1, "aa")], "last_executed": 1}

    def test_clean_run_has_no_recovery_section(self):
        cores = [self.FakeCore(i, 0) for i in range(4)]
        assert recovery_section(cores) is None

    def test_any_catchup_round_populates_section(self):
        cores = [self.FakeCore(0, 0), self.FakeCore(1, 2)]
        section = recovery_section(cores)
        assert section["replicas"]["1"]["rounds"] == 2
        assert set(section["replicas"]) == {"0", "1"}

    def test_durable_activity_alone_populates_section(self):
        cores = [self.FakeCore(0, 0)]
        section = recovery_section(cores, snapshots_persisted=3,
                                   restored_from_disk=[0])
        assert section["snapshots_persisted"] == 3
        assert section["restored_from_disk"] == [0]

    def test_summary_has_all_gate_counters(self):
        manager, _ = make_manager()
        summary = manager.summary()
        for key in ("recovering", "complete", "rounds", "solicits",
                    "segments_fetched", "segment_retries",
                    "installed_entries", "digest_failures", "catchup_s"):
            assert key in summary


def convergence_report(tails: dict[int, list]) -> dict:
    return {"recovery": {"replicas": {
        str(rid): {"rounds": 1, "exec_tail": tail}
        for rid, tail in tails.items()}}}


class TestConvergence:
    def test_matching_tails_converge(self):
        tail = [(sn, entry(sn).digest.hex()) for sn in range(1, 5)]
        report = convergence_report({0: tail, 1: tail, 2: tail, 3: tail})
        ok, detail = check_convergence(report, 3)
        assert ok and "4 overlapping" in detail

    def test_divergent_digest_detected(self):
        tail = [(sn, entry(sn).digest.hex()) for sn in range(1, 5)]
        forked = tail[:-1] + [(4, "ff" * 32)]
        report = convergence_report({0: tail, 1: tail, 2: tail, 3: forked})
        ok, detail = check_convergence(report, 3)
        assert not ok and "divergence at sn 4" in detail

    def test_majority_wins_over_one_bad_peer(self):
        tail = [(sn, entry(sn).digest.hex()) for sn in range(1, 5)]
        forked = [(sn, "ee" * 32) for sn in range(1, 5)]
        report = convergence_report({0: tail, 1: tail, 2: forked, 3: tail})
        ok, _ = check_convergence(report, 3)
        assert ok

    def test_no_overlap_is_a_failure(self):
        mine = [(1, "aa" * 32)]
        theirs = [(50, "bb" * 32)]
        report = convergence_report({0: theirs, 1: theirs, 3: mine})
        ok, detail = check_convergence(report, 3)
        assert not ok and "shares no serial number" in detail

    def test_missing_section_and_replica_fail(self):
        ok, detail = check_convergence({}, 3)
        assert not ok and "no recovery section" in detail
        report = convergence_report({0: [(1, "aa")]})
        ok, detail = check_convergence(report, 3)
        assert not ok and "missing" in detail

    def test_assert_helper_raises_with_detail(self):
        from repro.core.recovery import assert_replica_converged

        with pytest.raises(AssertionError, match="no recovery section"):
            assert_replica_converged({}, 3)
