"""Leopard configuration tests."""

from __future__ import annotations

import pytest

from repro.core.config import LeopardConfig, table2_parameters
from repro.errors import ConfigError


class TestValidation:
    def test_minimum_n(self):
        with pytest.raises(ConfigError):
            LeopardConfig(n=3)

    def test_default_f(self):
        assert LeopardConfig(n=4).f == 1
        assert LeopardConfig(n=7).f == 2
        assert LeopardConfig(n=100).f == 33

    def test_explicit_f_checked(self):
        with pytest.raises(ConfigError):
            LeopardConfig(n=4, f=2)

    def test_explicit_smaller_f_allowed(self):
        assert LeopardConfig(n=7, f=1).quorum == 3

    def test_quorum(self):
        assert LeopardConfig(n=4).quorum == 3
        assert LeopardConfig(n=10, f=3).quorum == 7

    def test_batch_bounds(self):
        with pytest.raises(ConfigError):
            LeopardConfig(n=4, datablock_size=0)
        with pytest.raises(ConfigError):
            LeopardConfig(n=4, bftblock_max_links=0)
        with pytest.raises(ConfigError):
            LeopardConfig(n=4, max_parallel_instances=0)


class TestLeaderRotation:
    def test_round_robin(self):
        config = LeopardConfig(n=4)
        assert config.leader_of(1) == 1
        assert config.leader_of(2) == 2
        assert config.leader_of(4) == 0
        assert config.leader_of(5) == 1


class TestTable2:
    def test_exact_scales(self):
        assert table2_parameters(32) == (2000, 100)
        assert table2_parameters(64) == (2000, 100)
        assert table2_parameters(128) == (3000, 300)
        assert table2_parameters(256) == (4000, 300)
        assert table2_parameters(400) == (4000, 400)
        assert table2_parameters(600) == (4000, 400)

    def test_interpolates_nearest(self):
        assert table2_parameters(48) in ((2000, 100),)
        assert table2_parameters(500) == (4000, 400)
