"""View-change manager unit tests (paper Appendix A)."""

from __future__ import annotations

import pytest

from repro.core.agreement import AgreementInstance
from repro.core.viewchange import ViewChangeManager, timeout_payload
from repro.messages.leopard import BFTblock


@pytest.fixture
def managers(registry4):
    return [ViewChangeManager(4, 1, i, registry4, registry4.scheme)
            for i in range(4)]


def notarized_instance(registry, sn, view=1, links=(b"x" * 32,)):
    block = BFTblock(view, sn, tuple(links))
    instance = AgreementInstance(block)
    shares = [registry.signer(i).sign(block.digest()) for i in range(3)]
    instance.apply_notarization(
        registry.scheme.combine(shares, block.digest()))
    return instance


class TestTimeouts:
    def test_timeout_signed_and_verified(self, managers):
        msg = managers[0].make_timeout(1)
        assert managers[1].on_timeout(0, msg) is False  # 1 < f+1 = 2
        msg2 = managers[2].make_timeout(1)
        assert managers[1].on_timeout(2, msg2) is True  # reaches f+1

    def test_amplification_fires_once(self, managers):
        collector = managers[1]
        collector.on_timeout(0, managers[0].make_timeout(1))
        assert collector.on_timeout(2, managers[2].make_timeout(1))
        assert not collector.on_timeout(3, managers[3].make_timeout(1))

    def test_bad_signature_rejected(self, managers, registry4):
        from repro.messages.leopard import TimeoutMsg
        forged = TimeoutMsg(1, registry4.plain_sign(0, b"wrong"))
        assert not managers[1].on_timeout(0, forged)

    def test_sender_mismatch_rejected(self, managers):
        msg = managers[0].make_timeout(1)
        assert not managers[1].on_timeout(3, msg)

    def test_already_timed_out(self, managers):
        assert not managers[0].already_timed_out(1)
        managers[0].make_timeout(1)
        assert managers[0].already_timed_out(1)

    def test_payload_binds_view(self):
        assert timeout_payload(1) != timeout_payload(2)


class TestViewChangeMessages:
    def test_roundtrip_validation(self, managers, registry4):
        instance = notarized_instance(registry4, 3)
        msg = managers[0].make_viewchange_msg(2, None, [instance])
        assert managers[1].validate_viewchange(0, msg)
        assert len(msg.entries) == 1

    def test_skips_unnotarized_instances(self, managers):
        instance = AgreementInstance(BFTblock(1, 3, (b"x" * 32,)))
        msg = managers[0].make_viewchange_msg(2, None, [instance])
        assert msg.entries == ()

    def test_wrong_sender_rejected(self, managers, registry4):
        msg = managers[0].make_viewchange_msg(2, None, [])
        assert not managers[1].validate_viewchange(2, msg)

    def test_forged_notarization_rejected(self, managers, registry4):
        from repro.core.viewchange import NotarizedEntry
        from repro.crypto.threshold import ThresholdSignature
        block = BFTblock(1, 3, (b"x" * 32,))
        entries = (NotarizedEntry(block, ThresholdSignature(1)),)
        good = managers[0].make_viewchange_msg(2, None, [])
        from repro.messages.leopard import ViewChangeMsg
        forged = ViewChangeMsg(2, None, entries, good.signature)
        assert not managers[1].validate_viewchange(0, forged)

    def test_collection_returns_quorum_once(self, managers, registry4):
        new_leader = managers[2]
        for sender in (0, 1):
            msg = managers[sender].make_viewchange_msg(2, None, [])
            assert new_leader.collect_viewchange(sender, msg) is None
        msg = managers[3].make_viewchange_msg(2, None, [])
        quorum = new_leader.collect_viewchange(3, msg)
        assert quorum is not None
        assert len(quorum) == 3
        late = new_leader.collect_viewchange(
            2, new_leader.make_viewchange_msg(2, None, []))
        assert late is None


class TestNewView:
    def _quorum(self, managers, registry4, instances_by_sender):
        collected = []
        for sender in range(3):
            instances = instances_by_sender.get(sender, [])
            collected.append(managers[sender].make_viewchange_msg(
                2, None, instances))
        return collected

    def test_redo_includes_notarized_and_dummies(self, managers, registry4):
        instance = notarized_instance(registry4, 3)
        vcs = self._quorum(managers, registry4, {0: [instance]})
        new_view = managers[2].build_new_view(2, vcs)
        assert [b.sn for b in new_view.redo] == [1, 2, 3]
        assert new_view.redo[0].is_dummy()
        assert new_view.redo[1].is_dummy()
        assert new_view.redo[2].links == instance.block.links

    def test_highest_view_entry_wins(self, managers, registry4):
        low = notarized_instance(registry4, 1, view=1, links=(b"a" * 32,))
        high = notarized_instance(registry4, 1, view=2, links=(b"b" * 32,))
        vcs = self._quorum(managers, registry4, {0: [low], 1: [high]})
        new_view = managers[2].build_new_view(3, vcs)
        assert new_view.redo[0].links == (b"b" * 32,)

    def test_validation(self, managers, registry4):
        vcs = self._quorum(managers, registry4, {})
        new_view = managers[2].build_new_view(2, vcs)
        assert managers[3].validate_new_view(2, new_view, expected_leader=2)
        assert not managers[3].validate_new_view(1, new_view,
                                                 expected_leader=2)
        assert not managers[3].validate_new_view(2, new_view,
                                                 expected_leader=1)

    def test_validation_requires_quorum_of_vcs(self, managers, registry4):
        vcs = self._quorum(managers, registry4, {})[:2]
        partial = managers[2].build_new_view(2, vcs + [vcs[0]])
        assert not managers[3].validate_new_view(
            2, partial, expected_leader=2)

    def test_reset_for_view(self, managers):
        manager = managers[0]
        manager.in_viewchange = True
        manager.target_view = 2
        manager.reset_for_view(2)
        assert not manager.in_viewchange
        assert manager.target_view is None
        assert manager.completed_viewchanges == 1


class TestNewViewEdgeCases:
    """Satellite: malformed / duplicate inputs to new-view validation."""

    def _quorum(self, managers, registry4, view=2, instances=None):
        return [managers[sender].make_viewchange_msg(
            view, None, (instances or {}).get(sender, []))
            for sender in range(3)]

    def test_duplicate_vc_senders_rejected(self, managers, registry4):
        """2f+1 messages from only 2 distinct signers are not a quorum —
        a faulty leader cannot pad its certificate with duplicates."""
        from repro.messages.leopard import NewViewMsg
        vcs = self._quorum(managers, registry4)
        padded = [vcs[0], vcs[1], vcs[0]]
        unsigned = NewViewMsg(2, tuple(padded), (),
                              signature=registry4.plain_sign(2, b""))
        signature = registry4.plain_sign(2, unsigned.canonical_bytes())
        forged = NewViewMsg(2, tuple(padded), (), signature)
        assert not managers[3].validate_new_view(
            2, forged, expected_leader=2)

    def test_forged_entry_inside_embedded_vc_rejected(
            self, managers, registry4):
        """A notarized entry whose certificate does not verify poisons
        the whole new-view, even when the outer signature is honest."""
        from repro.core.viewchange import NotarizedEntry
        from repro.crypto.threshold import ThresholdSignature
        from repro.messages.leopard import NewViewMsg, ViewChangeMsg

        block = BFTblock(1, 3, (b"x" * 32,))
        bad_entry = (NotarizedEntry(block, ThresholdSignature(1)),)
        unsigned = ViewChangeMsg(2, None, bad_entry,
                                 signature=registry4.plain_sign(0, b""))
        bad_vc = ViewChangeMsg(2, None, bad_entry, registry4.plain_sign(
            0, unsigned.canonical_bytes()))
        vcs = [bad_vc] + self._quorum(managers, registry4)[1:]
        unsigned_nv = NewViewMsg(2, tuple(vcs), (),
                                 signature=registry4.plain_sign(2, b""))
        new_view = NewViewMsg(2, tuple(vcs), (), registry4.plain_sign(
            2, unsigned_nv.canonical_bytes()))
        assert not managers[3].validate_new_view(
            2, new_view, expected_leader=2)

    def test_tampered_redo_breaks_signature(self, managers, registry4):
        from repro.messages.leopard import NewViewMsg
        instance = notarized_instance(registry4, 2)
        vcs = self._quorum(managers, registry4,
                           instances={0: [instance]})
        new_view = managers[2].build_new_view(2, vcs)
        tampered = NewViewMsg(
            new_view.new_view, new_view.view_changes,
            new_view.redo[:-1] + (BFTblock(2, 2, (b"evil" * 8,)),),
            new_view.signature)
        assert not managers[3].validate_new_view(
            2, tampered, expected_leader=2)

    def test_reset_is_idempotent_for_trigger_state(self, managers):
        manager = managers[0]
        manager.on_timeout(1, managers[1].make_timeout(1))
        manager.on_timeout(1, managers[1].make_timeout(3))
        manager.in_viewchange = True
        manager.target_view = 2
        manager.reset_for_view(2)
        state = (manager.in_viewchange, manager.target_view,
                 manager._timeout_senders)
        manager.reset_for_view(2)
        # Trigger state is unchanged by the repeat; only the completion
        # counter (an odometer, not state) advances.
        assert (manager.in_viewchange, manager.target_view,
                manager._timeout_senders) == state
        assert 1 not in manager._timeout_senders  # below view: pruned
        assert 3 in manager._timeout_senders  # future view: kept

    def test_checkpoint_gc_drops_stale_entries_from_redo(
            self, managers, registry4):
        """A replica that checkpointed (and GC'd below) sn 2 competes
        with a laggard still carrying notarized sn 1: the redo schedule
        must start above the highest stable checkpoint."""
        from repro.crypto.threshold import ThresholdSignature
        from repro.messages.leopard import CheckpointProof

        stale = notarized_instance(registry4, 1, links=(b"a" * 32,))
        fresh = notarized_instance(registry4, 3, links=(b"b" * 32,))
        proof = CheckpointProof(2, b"s" * 32, ThresholdSignature(1))
        vcs = [
            managers[0].make_viewchange_msg(2, proof, [fresh]),
            managers[1].make_viewchange_msg(2, None, [stale]),
            managers[2].make_viewchange_msg(2, None, []),
        ]
        new_view = managers[2].build_new_view(2, vcs)
        assert [b.sn for b in new_view.redo] == [3]
        assert new_view.redo[0].links == (b"b" * 32,)

    def test_checkpoint_only_quorum_has_empty_redo(
            self, managers, registry4):
        """Everything notarized is already below the stable checkpoint:
        nothing to redo, and the schedule says so explicitly."""
        from repro.crypto.threshold import ThresholdSignature
        from repro.messages.leopard import CheckpointProof

        old = notarized_instance(registry4, 2, links=(b"c" * 32,))
        proof = CheckpointProof(5, b"s" * 32, ThresholdSignature(1))
        vcs = [
            managers[0].make_viewchange_msg(2, proof, [old]),
            managers[1].make_viewchange_msg(2, None, [old]),
            managers[2].make_viewchange_msg(2, None, []),
        ]
        new_view = managers[2].build_new_view(2, vcs)
        assert new_view.redo == ()
        assert managers[3].validate_new_view(
            2, new_view, expected_leader=2)


class TestRedoScheduleProperties:
    """Hypothesis: the redo schedule is always a contiguous, gap-free
    range above the highest checkpoint, whatever the vc mix."""

    from hypothesis import given, settings
    from hypothesis import strategies as st

    @given(checkpoint_sn=st.integers(min_value=0, max_value=6),
           sns=st.lists(st.integers(min_value=1, max_value=10),
                        unique=True, max_size=5))
    @settings(max_examples=25, deadline=None)
    def test_redo_contiguous_above_checkpoint(self, registry4,
                                              checkpoint_sn, sns):
        from repro.crypto.threshold import ThresholdSignature
        from repro.messages.leopard import CheckpointProof

        managers = [ViewChangeManager(4, 1, i, registry4, registry4.scheme)
                    for i in range(4)]
        proof = (CheckpointProof(checkpoint_sn, b"s" * 32,
                                 ThresholdSignature(1))
                 if checkpoint_sn else None)
        instances = [notarized_instance(registry4, sn) for sn in sns]
        vcs = [
            managers[0].make_viewchange_msg(2, proof, instances),
            managers[1].make_viewchange_msg(2, None, []),
            managers[2].make_viewchange_msg(2, None, []),
        ]
        new_view = managers[2].build_new_view(2, vcs)
        redo_sns = [b.sn for b in new_view.redo]
        expected_top = max([sn for sn in sns if sn > checkpoint_sn],
                           default=checkpoint_sn)
        assert redo_sns == list(range(checkpoint_sn + 1, expected_top + 1))
        for block in new_view.redo:
            if block.sn in sns:
                assert not block.is_dummy()
            else:
                assert block.is_dummy()
        assert managers[3].validate_new_view(
            2, new_view, expected_leader=2)
