"""View-change manager unit tests (paper Appendix A)."""

from __future__ import annotations

import pytest

from repro.core.agreement import AgreementInstance
from repro.core.viewchange import ViewChangeManager, timeout_payload
from repro.messages.leopard import BFTblock


@pytest.fixture
def managers(registry4):
    return [ViewChangeManager(4, 1, i, registry4, registry4.scheme)
            for i in range(4)]


def notarized_instance(registry, sn, view=1, links=(b"x" * 32,)):
    block = BFTblock(view, sn, tuple(links))
    instance = AgreementInstance(block)
    shares = [registry.signer(i).sign(block.digest()) for i in range(3)]
    instance.apply_notarization(
        registry.scheme.combine(shares, block.digest()))
    return instance


class TestTimeouts:
    def test_timeout_signed_and_verified(self, managers):
        msg = managers[0].make_timeout(1)
        assert managers[1].on_timeout(0, msg) is False  # 1 < f+1 = 2
        msg2 = managers[2].make_timeout(1)
        assert managers[1].on_timeout(2, msg2) is True  # reaches f+1

    def test_amplification_fires_once(self, managers):
        collector = managers[1]
        collector.on_timeout(0, managers[0].make_timeout(1))
        assert collector.on_timeout(2, managers[2].make_timeout(1))
        assert not collector.on_timeout(3, managers[3].make_timeout(1))

    def test_bad_signature_rejected(self, managers, registry4):
        from repro.messages.leopard import TimeoutMsg
        forged = TimeoutMsg(1, registry4.plain_sign(0, b"wrong"))
        assert not managers[1].on_timeout(0, forged)

    def test_sender_mismatch_rejected(self, managers):
        msg = managers[0].make_timeout(1)
        assert not managers[1].on_timeout(3, msg)

    def test_already_timed_out(self, managers):
        assert not managers[0].already_timed_out(1)
        managers[0].make_timeout(1)
        assert managers[0].already_timed_out(1)

    def test_payload_binds_view(self):
        assert timeout_payload(1) != timeout_payload(2)


class TestViewChangeMessages:
    def test_roundtrip_validation(self, managers, registry4):
        instance = notarized_instance(registry4, 3)
        msg = managers[0].make_viewchange_msg(2, None, [instance])
        assert managers[1].validate_viewchange(0, msg)
        assert len(msg.entries) == 1

    def test_skips_unnotarized_instances(self, managers):
        instance = AgreementInstance(BFTblock(1, 3, (b"x" * 32,)))
        msg = managers[0].make_viewchange_msg(2, None, [instance])
        assert msg.entries == ()

    def test_wrong_sender_rejected(self, managers, registry4):
        msg = managers[0].make_viewchange_msg(2, None, [])
        assert not managers[1].validate_viewchange(2, msg)

    def test_forged_notarization_rejected(self, managers, registry4):
        from repro.core.viewchange import NotarizedEntry
        from repro.crypto.threshold import ThresholdSignature
        block = BFTblock(1, 3, (b"x" * 32,))
        entries = (NotarizedEntry(block, ThresholdSignature(1)),)
        good = managers[0].make_viewchange_msg(2, None, [])
        from repro.messages.leopard import ViewChangeMsg
        forged = ViewChangeMsg(2, None, entries, good.signature)
        assert not managers[1].validate_viewchange(0, forged)

    def test_collection_returns_quorum_once(self, managers, registry4):
        new_leader = managers[2]
        for sender in (0, 1):
            msg = managers[sender].make_viewchange_msg(2, None, [])
            assert new_leader.collect_viewchange(sender, msg) is None
        msg = managers[3].make_viewchange_msg(2, None, [])
        quorum = new_leader.collect_viewchange(3, msg)
        assert quorum is not None
        assert len(quorum) == 3
        late = new_leader.collect_viewchange(
            2, new_leader.make_viewchange_msg(2, None, []))
        assert late is None


class TestNewView:
    def _quorum(self, managers, registry4, instances_by_sender):
        collected = []
        for sender in range(3):
            instances = instances_by_sender.get(sender, [])
            collected.append(managers[sender].make_viewchange_msg(
                2, None, instances))
        return collected

    def test_redo_includes_notarized_and_dummies(self, managers, registry4):
        instance = notarized_instance(registry4, 3)
        vcs = self._quorum(managers, registry4, {0: [instance]})
        new_view = managers[2].build_new_view(2, vcs)
        assert [b.sn for b in new_view.redo] == [1, 2, 3]
        assert new_view.redo[0].is_dummy()
        assert new_view.redo[1].is_dummy()
        assert new_view.redo[2].links == instance.block.links

    def test_highest_view_entry_wins(self, managers, registry4):
        low = notarized_instance(registry4, 1, view=1, links=(b"a" * 32,))
        high = notarized_instance(registry4, 1, view=2, links=(b"b" * 32,))
        vcs = self._quorum(managers, registry4, {0: [low], 1: [high]})
        new_view = managers[2].build_new_view(3, vcs)
        assert new_view.redo[0].links == (b"b" * 32,)

    def test_validation(self, managers, registry4):
        vcs = self._quorum(managers, registry4, {})
        new_view = managers[2].build_new_view(2, vcs)
        assert managers[3].validate_new_view(2, new_view, expected_leader=2)
        assert not managers[3].validate_new_view(1, new_view,
                                                 expected_leader=2)
        assert not managers[3].validate_new_view(2, new_view,
                                                 expected_leader=1)

    def test_validation_requires_quorum_of_vcs(self, managers, registry4):
        vcs = self._quorum(managers, registry4, {})[:2]
        partial = managers[2].build_new_view(2, vcs + [vcs[0]])
        assert not managers[3].validate_new_view(
            2, partial, expected_leader=2)

    def test_reset_for_view(self, managers):
        manager = managers[0]
        manager.in_viewchange = True
        manager.target_view = 2
        manager.reset_for_view(2)
        assert not manager.in_viewchange
        assert manager.target_view is None
        assert manager.completed_viewchanges == 1
