"""Sans-io replica tests driven through the InstantLoop (no bandwidth/CPU
model): protocol logic only."""

from __future__ import annotations

from repro.core.replica import LeopardReplica
from repro.messages.client import RequestBundle
from repro.messages.leopard import BFTblock, Datablock, Vote
from tests.support import InstantLoop


def make_cluster(config4, registry4):
    replicas = {i: LeopardReplica(i, config4, registry4) for i in range(4)}
    loop = InstantLoop(replicas, replica_ids=list(range(4)))
    return replicas, loop


def submit(loop, target, count=50, client=100, bundle_id=1, at=None):
    bundle = RequestBundle(client, bundle_id, count, 128,
                           at if at is not None else loop.now)
    loop.deliver_external(client, target, bundle)


class TestHappyPath:
    def test_requests_confirm_and_execute(self, config4, registry4):
        replicas, loop = make_cluster(config4, registry4)
        loop.start_all()
        submit(loop, target=0, count=50)
        loop.run(1.0)
        # Every replica executed the 50 requests exactly once.
        for replica in replicas.values():
            assert replica.total_executed == 50
        assert loop.executed[2] == 50

    def test_client_receives_acks(self, config4, registry4):
        replicas, loop = make_cluster(config4, registry4)
        loop.start_all()
        submit(loop, target=0, count=50, client=100)
        loop.run(1.0)
        acks = [t for t in loop.traces if t[1] == "ack"]
        assert not acks  # acks go to node 100, outside the loop's cores

    def test_logs_identical_across_replicas(self, config4, registry4):
        replicas, loop = make_cluster(config4, registry4)
        loop.start_all()
        for bundle_id in range(1, 6):
            submit(loop, target=(bundle_id % 3) or 3, count=50,
                   bundle_id=bundle_id)
            loop.run(0.2)
        loop.run(1.0)
        logs = [[e.block_digest for e in r.ledger.log]
                for r in replicas.values()]
        assert logs[0] == logs[1] == logs[2] == logs[3]
        assert len(logs[0]) >= 1

    def test_leader_is_view_1_mod_n(self, config4, registry4):
        replicas, _ = make_cluster(config4, registry4)
        assert replicas[1].is_leader
        assert not replicas[0].is_leader

    def test_partial_datablock_after_max_batch_delay(self, config4,
                                                     registry4):
        replicas, loop = make_cluster(config4, registry4)
        loop.start_all()
        submit(loop, target=0, count=7)  # below datablock_size = 50
        loop.run(1.0)
        assert all(r.total_executed == 7 for r in replicas.values())


class TestValidation:
    def test_bftblock_from_non_leader_ignored(self, config4, registry4):
        replicas, loop = make_cluster(config4, registry4)
        loop.start_all()
        loop.run(0.05)
        rogue = BFTblock(1, 1, (), registry4.signer(3).sign(b"x"))
        effects = replicas[0].on_message(3, rogue, loop.now)
        assert effects == []

    def test_bftblock_with_bad_share_ignored(self, config4, registry4):
        replicas, loop = make_cluster(config4, registry4)
        loop.start_all()
        loop.run(0.05)
        unsigned = BFTblock(1, 1, ())
        bad = BFTblock(1, 1, (), registry4.signer(3).sign(unsigned.digest()))
        assert replicas[0].on_message(1, bad, loop.now) == []

    def test_bftblock_wrong_view_ignored(self, config4, registry4):
        replicas, loop = make_cluster(config4, registry4)
        loop.start_all()
        unsigned = BFTblock(7, 1, ())
        share = registry4.signer(1).sign(unsigned.digest())
        from dataclasses import replace
        block = replace(unsigned, leader_share=share)
        assert replicas[0].on_message(1, block, 0.0) == []

    def test_votes_ignored_by_non_leader(self, config4, registry4):
        replicas, _ = make_cluster(config4, registry4)
        vote = Vote(1, b"d" * 32, b"d" * 32, registry4.signer(0).sign(b"d" * 32))
        assert replicas[2].on_message(0, vote, 0.0) == []

    def test_duplicate_datablock_counter_ignored(self, config4, registry4):
        replicas, loop = make_cluster(config4, registry4)
        loop.start_all()
        first = Datablock(0, 1, 10, 128, ())
        second = Datablock(0, 1, 20, 128, ())  # same counter, new content
        replicas[2].on_message(0, first, 0.0)
        effects = replicas[2].on_message(0, second, 0.0)
        assert effects == []
        assert replicas[2].pool.get(first.digest()) is not None
        assert replicas[2].pool.get(second.digest()) is None


class TestVoteDiscipline:
    def test_no_vote_for_block_with_missing_links(self, config4, registry4):
        replicas, loop = make_cluster(config4, registry4)
        loop.start_all()
        missing = Datablock(0, 1, 10, 128, ())
        unsigned = BFTblock(1, 1, (missing.digest(),))
        share = registry4.signer(1).sign(unsigned.digest())
        from dataclasses import replace
        block = replace(unsigned, leader_share=share)
        effects = replicas[2].on_message(1, block, 0.0)
        from repro.interfaces import Send, SetTimer
        votes = [e for e in effects if isinstance(e, Send)
                 and isinstance(e.msg, Vote)]
        timers = [e for e in effects if isinstance(e, SetTimer)]
        assert votes == []
        assert timers  # the retrieval timer was armed

    def test_vote_after_datablock_arrives(self, config4, registry4):
        replicas, loop = make_cluster(config4, registry4)
        loop.start_all()
        missing = Datablock(0, 1, 10, 128, ())
        unsigned = BFTblock(1, 1, (missing.digest(),))
        share = registry4.signer(1).sign(unsigned.digest())
        from dataclasses import replace
        block = replace(unsigned, leader_share=share)
        replicas[2].on_message(1, block, 0.0)
        effects = replicas[2].on_message(0, missing, 0.1)
        from repro.interfaces import Send
        votes = [e for e in effects if isinstance(e, Send)
                 and isinstance(e.msg, Vote)]
        assert len(votes) == 1
        assert votes[0].dest == 1


class TestSaturationControls:
    def test_window_limits_outstanding_datablocks(self, config4, registry4):
        from dataclasses import replace as dc_replace
        config = dc_replace(config4, max_outstanding_datablocks=2)
        replica = LeopardReplica(0, config, registry4)
        replica.start(0.0)
        bundle = RequestBundle(100, 1, 500, 128, 0.0)
        replica.on_message(100, bundle, 0.0)
        effects = replica.on_timer("gen", 0.1)
        from repro.interfaces import Broadcast
        datablocks = [e for e in effects if isinstance(e, Broadcast)
                      and isinstance(e.msg, Datablock)]
        assert len(datablocks) == 2  # window-capped despite 10 possible

    def test_backlog_probe_pauses_generation(self, config4, registry4):
        replica = LeopardReplica(0, config4, registry4)
        replica.backlog_probe = lambda: 10.0  # pretend a huge NIC queue
        replica.on_message(100, RequestBundle(100, 1, 500, 128, 0.0), 0.0)
        effects = replica.on_timer("gen", 0.1)
        from repro.interfaces import Broadcast
        assert not any(isinstance(e, Broadcast) for e in effects)
