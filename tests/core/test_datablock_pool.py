"""Datablock-pool and ready-tracker tests (Algorithms 1 and 3)."""

from __future__ import annotations

from repro.core.datablock_pool import DatablockPool, ReadyTracker
from repro.messages.leopard import Datablock


def db(creator=1, counter=1, count=10):
    return Datablock(creator, counter, count, 128, ())


class TestDatablockPool:
    def test_add_and_get(self):
        pool = DatablockPool()
        block = db()
        assert pool.add(block)
        assert block.digest() in pool
        assert pool.get(block.digest()) == block
        assert len(pool) == 1

    def test_counter_replay_rejected(self):
        pool = DatablockPool()
        assert pool.add(db(counter=1, count=10))
        assert not pool.add(db(counter=1, count=99))  # equivocation
        assert not pool.add(db(counter=1, count=10))  # exact duplicate

    def test_duplicate_accounting(self):
        # Both exact-duplicate floods and equivocations are counter
        # replays; each must increment rejected_duplicates.
        pool = DatablockPool()
        pool.add(db(counter=1, count=10))
        assert pool.rejected_duplicates == 0
        assert not pool.add(db(counter=1, count=10))  # exact duplicate
        assert pool.rejected_duplicates == 1
        assert not pool.add(db(counter=1, count=99))  # equivocation
        assert pool.rejected_duplicates == 2
        for _ in range(3):                            # duplicate flood
            pool.add(db(counter=1, count=10))
        assert pool.rejected_duplicates == 5

    def test_counters_per_creator(self):
        pool = DatablockPool()
        assert pool.add(db(creator=1, counter=1))
        assert pool.add(db(creator=2, counter=1))

    def test_add_recovered_bypasses_counter_dedup(self):
        pool = DatablockPool()
        pool.add(db(creator=1, counter=1, count=10))
        recovered = db(creator=1, counter=2, count=20)
        # Simulate the counter being consumed by a different (equivocated)
        # block that we never saw in full:
        pool._seen_counters[1].add(2)
        assert pool.add_recovered(recovered)
        assert recovered.digest() in pool

    def test_add_recovered_idempotent(self):
        pool = DatablockPool()
        block = db()
        assert pool.add_recovered(block)
        assert not pool.add_recovered(block)

    def test_remove(self):
        pool = DatablockPool()
        block = db()
        pool.add(block)
        pool.remove(block.digest())
        assert block.digest() not in pool
        pool.remove(block.digest())  # idempotent

    def test_digests_listing(self):
        pool = DatablockPool()
        blocks = [db(counter=i) for i in range(1, 4)]
        for block in blocks:
            pool.add(block)
        assert sorted(pool.digests()) == sorted(
            b.digest() for b in blocks)


class TestReadyTracker:
    def test_quorum_without_held_does_not_promote(self):
        tracker = ReadyTracker(quorum=3)
        digest = b"d" * 32
        for replica in range(3):
            assert not tracker.record_ready(digest, replica)
        assert tracker.ready_count == 0

    def test_held_without_quorum_does_not_promote(self):
        tracker = ReadyTracker(quorum=3)
        assert not tracker.mark_held(b"d" * 32)
        assert tracker.ready_count == 0

    def test_promotes_on_quorum_and_held(self):
        tracker = ReadyTracker(quorum=3)
        digest = b"d" * 32
        tracker.mark_held(digest)
        tracker.record_ready(digest, 0)
        tracker.record_ready(digest, 1)
        assert tracker.record_ready(digest, 2)
        assert tracker.ready_count == 1

    def test_duplicate_ready_not_counted(self):
        tracker = ReadyTracker(quorum=3)
        digest = b"d" * 32
        tracker.mark_held(digest)
        for _ in range(5):
            tracker.record_ready(digest, 0)
        assert tracker.ready_count == 0

    def test_take_links_fifo_and_bounded(self):
        tracker = ReadyTracker(quorum=1)
        digests = [bytes([i]) * 32 for i in range(5)]
        for digest in digests:
            tracker.mark_held(digest)
            tracker.record_ready(digest, 0)
        links = tracker.take_links(3)
        assert list(links) == digests[:3]
        assert tracker.ready_count == 2

    def test_consumed_not_promoted_again(self):
        tracker = ReadyTracker(quorum=1)
        digest = b"d" * 32
        tracker.mark_held(digest)
        tracker.record_ready(digest, 0)
        assert tracker.take_links(5) == (digest,)
        tracker.record_ready(digest, 1)
        assert tracker.ready_count == 0

    def test_requeue(self):
        tracker = ReadyTracker(quorum=1)
        digests = [bytes([i]) * 32 for i in range(3)]
        for digest in digests:
            tracker.mark_held(digest)
            tracker.record_ready(digest, 0)
        links = tracker.take_links(3)
        tracker.requeue(links)
        assert tracker.take_links(3) == links

    def test_ready_replicas(self):
        tracker = ReadyTracker(quorum=5)
        digest = b"d" * 32
        tracker.record_ready(digest, 1)
        tracker.record_ready(digest, 4)
        assert tracker.ready_replicas(digest) == {1, 4}
