"""Agreement-machinery tests: instance states, watermarks, aggregation."""

from __future__ import annotations

from repro.core.agreement import (
    AgreementInstance,
    CONFIRMED,
    InstanceStore,
    NOTARIZED,
    PROPOSED,
    VoteAggregator,
    commit_payload,
)
from repro.crypto.threshold import ThresholdSignature
from repro.messages.leopard import BFTblock, Proof, ROUND_COMMIT, ROUND_PREPARE, Vote


def block_at(sn, view=1, links=(b"x" * 32,)):
    return BFTblock(view, sn, tuple(links))


class TestInstanceStates:
    def test_initial_state(self):
        instance = AgreementInstance(block_at(1))
        assert instance.state == PROPOSED
        assert instance.sn == 1

    def test_notarize_then_confirm(self):
        instance = AgreementInstance(block_at(1))
        sig1 = ThresholdSignature(1)
        sig2 = ThresholdSignature(2)
        assert instance.apply_notarization(sig1)
        assert instance.state == NOTARIZED
        assert instance.apply_confirmation(sig2, sig1, now=1.0)
        assert instance.state == CONFIRMED
        assert instance.confirmed_at == 1.0

    def test_notarize_idempotent(self):
        instance = AgreementInstance(block_at(1))
        instance.apply_notarization(ThresholdSignature(1))
        assert not instance.apply_notarization(ThresholdSignature(9))

    def test_confirm_without_notarization_adopts_prior(self):
        instance = AgreementInstance(block_at(1))
        sig1 = ThresholdSignature(1)
        assert instance.apply_confirmation(ThresholdSignature(2), sig1, 0.0)
        assert instance.notarization == sig1

    def test_confirm_idempotent(self):
        instance = AgreementInstance(block_at(1))
        instance.apply_confirmation(ThresholdSignature(2), None, 0.0)
        assert not instance.apply_confirmation(ThresholdSignature(3), None, 1.0)


class TestInstanceStore:
    def test_watermark_window(self):
        store = InstanceStore(window=10)
        assert store.in_window(1)
        assert store.in_window(10)
        assert not store.in_window(11)
        assert not store.in_window(0)

    def test_admit_and_lookup(self):
        store = InstanceStore(window=10)
        block = block_at(1)
        instance = store.admit(block, 0.0)
        assert instance is not None
        assert store.by_digest(block.digest()) is instance

    def test_admit_same_block_returns_existing(self):
        store = InstanceStore(window=10)
        block = block_at(1)
        first = store.admit(block, 0.0)
        assert store.admit(block, 1.0) is first

    def test_admit_conflicting_same_view_rejected(self):
        store = InstanceStore(window=10)
        store.admit(block_at(1, links=(b"a" * 32,)), 0.0)
        assert store.admit(block_at(1, links=(b"b" * 32,)), 0.0) is None

    def test_admit_higher_view_replaces_unfinished(self):
        store = InstanceStore(window=10)
        old = block_at(1, view=1, links=(b"a" * 32,))
        new = block_at(1, view=2, links=(b"b" * 32,))
        store.admit(old, 0.0)
        instance = store.admit(new, 1.0)
        assert instance is not None
        assert store.by_digest(old.digest()) is None

    def test_admit_does_not_replace_notarized(self):
        store = InstanceStore(window=10)
        old = store.admit(block_at(1, view=1, links=(b"a" * 32,)), 0.0)
        old.apply_notarization(ThresholdSignature(1))
        assert store.admit(block_at(1, view=2, links=(b"b" * 32,)), 1.0) is None

    def test_out_of_window_rejected(self):
        store = InstanceStore(window=5)
        assert store.admit(block_at(6), 0.0) is None

    def test_vote_lock(self):
        store = InstanceStore(window=10)
        assert store.record_vote_lock(1, 1, b"a")
        assert store.record_vote_lock(1, 1, b"a")  # same block ok
        assert not store.record_vote_lock(1, 1, b"b")  # conflict
        assert store.record_vote_lock(2, 1, b"b")  # new view unlocks

    def test_buffered_proofs(self):
        store = InstanceStore(window=10)
        proof = Proof(1, b"d" * 32, b"d" * 32, ThresholdSignature(1))
        store.buffer_proof(proof)
        assert store.drain_buffered(b"d" * 32) == [proof]
        assert store.drain_buffered(b"d" * 32) == []

    def test_advance_watermark_gc(self):
        store = InstanceStore(window=10)
        for sn in range(1, 6):
            store.admit(block_at(sn, links=(bytes([sn]) * 32,)), 0.0)
        stale = store.advance_watermark(3)
        assert sorted(stale) == [1, 2, 3]
        assert store.low_watermark == 3
        assert store.in_window(13)
        assert 4 in store.instances

    def test_advance_watermark_monotonic(self):
        store = InstanceStore(window=10)
        store.advance_watermark(5)
        assert store.advance_watermark(3) == []
        assert store.low_watermark == 5

    def test_force_admit_replaces_proposed(self):
        store = InstanceStore(window=10)
        store.admit(block_at(1, view=1, links=(b"a" * 32,)), 0.0)
        redo = block_at(1, view=1, links=(b"b" * 32,))
        instance = store.force_admit(redo, 1.0)
        assert instance is not None
        assert instance.block == redo

    def test_force_admit_keeps_confirmed_conflict(self):
        store = InstanceStore(window=10)
        existing = store.admit(block_at(1, links=(b"a" * 32,)), 0.0)
        existing.apply_confirmation(ThresholdSignature(1), None, 0.0)
        assert store.force_admit(
            block_at(1, links=(b"b" * 32,)), 1.0) is None

    def test_unconfirmed_and_notarized_listings(self):
        store = InstanceStore(window=10)
        a = store.admit(block_at(1, links=(b"a" * 32,)), 0.0)
        b = store.admit(block_at(2, links=(b"b" * 32,)), 0.0)
        b.apply_notarization(ThresholdSignature(1))
        c = store.admit(block_at(3, links=(b"c" * 32,)), 0.0)
        c.apply_confirmation(ThresholdSignature(2), ThresholdSignature(1), 0.0)
        unconfirmed = {i.sn for i in store.unconfirmed()}
        notarized = {i.sn for i in store.notarized_or_better()}
        assert unconfirmed == {1, 2}
        assert notarized == {2, 3}


class TestVoteAggregator:
    def make(self, registry4):
        return VoteAggregator(registry4.scheme)

    def vote_from(self, registry, replica, block, round_=ROUND_PREPARE,
                  payload=None):
        payload = payload if payload is not None else block.digest()
        share = registry.signer(replica).sign(payload)
        return Vote(round_, block.digest(), payload, share)

    def test_quorum_combines(self, registry4):
        aggregator = self.make(registry4)
        block = block_at(1)
        assert aggregator.add_vote(
            0, self.vote_from(registry4, 0, block)) is None
        assert aggregator.add_vote(
            1, self.vote_from(registry4, 1, block)) is None
        combined = aggregator.add_vote(
            2, self.vote_from(registry4, 2, block))
        assert combined is not None
        assert registry4.scheme.verify(combined, block.digest())

    def test_combines_once(self, registry4):
        aggregator = self.make(registry4)
        block = block_at(1)
        for replica in range(3):
            aggregator.add_vote(
                replica, self.vote_from(registry4, replica, block))
        assert aggregator.add_vote(
            3, self.vote_from(registry4, 3, block)) is None

    def test_duplicate_votes_ignored(self, registry4):
        aggregator = self.make(registry4)
        block = block_at(1)
        vote = self.vote_from(registry4, 0, block)
        for _ in range(5):
            assert aggregator.add_vote(0, vote) is None
        assert aggregator.pending_votes(ROUND_PREPARE, block.digest()) == 1

    def test_sender_mismatch_rejected(self, registry4):
        aggregator = self.make(registry4)
        block = block_at(1)
        vote = self.vote_from(registry4, 0, block)
        assert aggregator.add_vote(1, vote) is None
        assert aggregator.pending_votes(ROUND_PREPARE, block.digest()) == 0

    def test_invalid_share_rejected(self, registry4):
        from repro.crypto.threshold import SignatureShare
        aggregator = self.make(registry4)
        block = block_at(1)
        forged = Vote(ROUND_PREPARE, block.digest(), block.digest(),
                      SignatureShare(0, 12345))
        assert aggregator.add_vote(0, forged) is None
        assert aggregator.pending_votes(ROUND_PREPARE, block.digest()) == 0

    def test_rounds_are_independent(self, registry4):
        aggregator = self.make(registry4)
        block = block_at(1)
        sig1 = ThresholdSignature(7)
        payload2 = commit_payload(sig1)
        for replica in range(2):
            aggregator.add_vote(
                replica, self.vote_from(registry4, replica, block))
            aggregator.add_vote(
                replica, self.vote_from(
                    registry4, replica, block, ROUND_COMMIT, payload2))
        assert aggregator.pending_votes(ROUND_PREPARE, block.digest()) == 2
        assert aggregator.pending_votes(ROUND_COMMIT, block.digest()) == 2


class TestCommitPayload:
    def test_deterministic_and_binding(self):
        a = commit_payload(ThresholdSignature(1))
        b = commit_payload(ThresholdSignature(1))
        c = commit_payload(ThresholdSignature(2))
        assert a == b
        assert a != c
        assert len(a) == 32


class TestVoteBucketPoisoning:
    def test_unverifiable_vote_does_not_pin_payload(self, registry4):
        """A junk-payload vote that fails TVrf must leave no bucket state,
        or it would block the honest quorum for that (round, digest)."""
        from repro.crypto.threshold import SignatureShare

        aggregator = VoteAggregator(registry4.scheme)
        block = block_at(1)
        poison = Vote(ROUND_PREPARE, block.digest(), b"junk" * 8,
                      SignatureShare(3, 12345))
        assert aggregator.add_vote(3, poison) is None
        assert aggregator.pending_votes(ROUND_PREPARE, block.digest()) == 0

        payload = block.digest()
        combined = None
        for replica in range(3):
            share = registry4.signer(replica).sign(payload)
            combined = aggregator.add_vote(
                replica, Vote(ROUND_PREPARE, payload, payload, share))
        assert combined is not None
        assert registry4.scheme.verify(combined, payload)
