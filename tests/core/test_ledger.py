"""Ledger tests: ordering, consecutive-prefix execution, GC."""

from __future__ import annotations

from repro.core.datablock_pool import DatablockPool
from repro.core.ledger import Ledger
from repro.messages.leopard import BFTblock, BundleSpan, Datablock


def setup_ledger(replica_id=2):
    pool = DatablockPool()
    return pool, Ledger(pool, replica_id)


def datablock(creator, counter, count=10, spans=()):
    return Datablock(creator, counter, count, 128, tuple(spans))


def bft(sn, links, view=1):
    return BFTblock(view, sn, tuple(links))


class TestConfirmation:
    def test_confirm_once(self):
        _, ledger = setup_ledger()
        block = bft(1, ())
        assert ledger.confirm(block)
        assert not ledger.confirm(block)
        assert ledger.is_confirmed(1)
        assert not ledger.is_confirmed(2)

    def test_pending_count(self):
        _, ledger = setup_ledger()
        ledger.confirm(bft(2, ()))
        assert ledger.pending_confirmed() == 1


class TestExecution:
    def test_executes_consecutive_prefix(self):
        pool, ledger = setup_ledger()
        db1 = datablock(1, 1)
        db3 = datablock(3, 1)
        pool.add(db1)
        pool.add(db3)
        ledger.confirm(bft(1, [db1.digest()]))
        ledger.confirm(bft(3, [db3.digest()]))
        result = ledger.execute_ready()
        assert [b.sn for b in result.blocks] == [1]
        assert result.executed_requests == 10
        ledger.confirm(bft(2, ()))
        result = ledger.execute_ready()
        assert [b.sn for b in result.blocks] == [2, 3]
        assert ledger.last_executed == 3

    def test_blocks_on_missing_datablock(self):
        pool, ledger = setup_ledger()
        db1 = datablock(1, 1)
        ledger.confirm(bft(1, [db1.digest()]))
        assert ledger.execute_ready().blocks == []
        assert ledger.missing_for_execution() == [db1.digest()]
        pool.add(db1)
        assert [b.sn for b in ledger.execute_ready().blocks] == [1]
        assert ledger.missing_for_execution() == []

    def test_dummy_block_executes_empty(self):
        _, ledger = setup_ledger()
        ledger.confirm(bft(1, ()))
        result = ledger.execute_ready()
        assert result.executed_requests == 0
        assert len(ledger.log) == 1

    def test_ack_spans_only_for_own_datablocks(self):
        pool, ledger = setup_ledger(replica_id=2)
        own = datablock(2, 1, spans=[BundleSpan(9, 1, 10, 0.0)])
        other = datablock(3, 1, spans=[BundleSpan(8, 1, 10, 0.0)])
        pool.add(own)
        pool.add(other)
        ledger.confirm(bft(1, [own.digest(), other.digest()]))
        result = ledger.execute_ready()
        assert [s.client_id for s in result.acked_spans] == [9]

    def test_log_positions_are_stable(self):
        pool, ledger = setup_ledger()
        blocks = []
        for sn in range(1, 4):
            db = datablock(sn, 1)
            pool.add(db)
            block = bft(sn, [db.digest()])
            blocks.append(block)
            ledger.confirm(block)
        ledger.execute_ready()
        assert [e.block_digest for e in ledger.log] == \
            [b.digest() for b in blocks]


class TestGarbageCollection:
    def test_collects_executed_links(self):
        pool, ledger = setup_ledger()
        db1 = datablock(1, 1)
        db2 = datablock(1, 2)
        pool.add(db1)
        pool.add(db2)
        ledger.confirm(bft(1, [db1.digest()]))
        ledger.confirm(bft(2, [db2.digest()]))
        ledger.execute_ready()
        removed = ledger.collect_garbage(1)
        assert removed == 1
        assert db1.digest() not in pool
        assert db2.digest() in pool

    def test_gc_idempotent(self):
        pool, ledger = setup_ledger()
        db1 = datablock(1, 1)
        pool.add(db1)
        ledger.confirm(bft(1, [db1.digest()]))
        ledger.execute_ready()
        assert ledger.collect_garbage(1) == 1
        assert ledger.collect_garbage(1) == 0

    def test_state_digest_changes_with_log(self):
        pool, ledger = setup_ledger()
        empty = ledger.state_digest()
        db1 = datablock(1, 1)
        pool.add(db1)
        ledger.confirm(bft(1, [db1.digest()]))
        ledger.execute_ready()
        assert ledger.state_digest() != empty
