"""Replica-level view-change path tests (sans-io, hand-driven)."""

from __future__ import annotations

from repro.core.replica import LeopardReplica
from repro.interfaces import Broadcast, Send
from repro.messages.leopard import (
    BFTblock,
    NewViewMsg,
    TimeoutMsg,
    ViewChangeMsg,
)
from tests.support import InstantLoop


def make_cluster(config4, registry4, drop_leader=True):
    ids = [0, 2, 3] if drop_leader else [0, 1, 2, 3]
    replicas = {i: LeopardReplica(i, config4, registry4) for i in ids}
    loop = InstantLoop(replicas, replica_ids=list(range(4)))
    return replicas, loop


class TestTrigger:
    def test_progress_timer_triggers_on_stall(self, config4, registry4):
        replicas, loop = make_cluster(config4, registry4)
        loop.start_all()
        from repro.messages.client import RequestBundle
        loop.deliver_external(
            100, 0, RequestBundle(100, 1, 50, 128, 0.0))
        # Leader (1) is absent: nothing confirms; all replicas must move
        # to view 2 where replica 2 leads.
        loop.run(3.0)
        assert all(r.view == 2 for r in replicas.values())
        assert replicas[2].is_leader

    def test_idle_system_does_not_viewchange(self, config4, registry4):
        replicas, loop = make_cluster(config4, registry4)
        loop.start_all()
        loop.run(3.0)  # no pending work at all
        assert all(r.view == 1 for r in replicas.values())

    def test_timeout_amplification(self, config4, registry4):
        replica = LeopardReplica(0, config4, registry4)
        replica.start(0.0)
        msgs = []
        for sender in (2, 3):
            other = LeopardReplica(sender, config4, registry4)
            msgs.append((sender, other.vc.make_timeout(1)))
        effects = replica.on_message(*msgs[0], 0.1)
        assert not replica.vc.in_viewchange
        effects = replica.on_message(*msgs[1], 0.2)
        assert replica.vc.in_viewchange
        # It broadcast its own timeout and sent a view-change message.
        broadcasts = [e for e in effects if isinstance(e, Broadcast)]
        sends = [e for e in effects if isinstance(e, Send)]
        assert any(isinstance(b.msg, TimeoutMsg) for b in broadcasts)
        assert any(isinstance(s.msg, ViewChangeMsg) for s in sends)

    def test_stale_timeouts_ignored(self, config4, registry4):
        replica = LeopardReplica(0, config4, registry4)
        replica.view = 3
        other = LeopardReplica(2, config4, registry4)
        msg = other.vc.make_timeout(1)  # old view
        assert replica.on_message(2, msg, 0.1) == []


class TestNewViewHandling:
    def _new_view_from(self, registry4, config4, target_view=2):
        managers = [LeopardReplica(i, config4, registry4)
                    for i in (0, 2, 3)]
        vcs = []
        for replica in managers:
            vcs.append(replica.vc.make_viewchange_msg(target_view, None, []))
        builder = managers[1]  # replica 2 leads view 2
        return builder.vc.build_new_view(target_view, vcs)

    def test_valid_new_view_advances(self, config4, registry4):
        replica = LeopardReplica(0, config4, registry4)
        replica.start(0.0)
        new_view = self._new_view_from(registry4, config4)
        effects = replica.on_message(2, new_view, 1.0)
        assert replica.view == 2
        assert replica.normal_mode

    def test_new_view_from_wrong_sender_rejected(self, config4, registry4):
        replica = LeopardReplica(0, config4, registry4)
        replica.start(0.0)
        new_view = self._new_view_from(registry4, config4)
        assert replica.on_message(3, new_view, 1.0) == []
        assert replica.view == 1

    def test_stale_new_view_rejected(self, config4, registry4):
        replica = LeopardReplica(0, config4, registry4)
        replica.view = 5
        new_view = self._new_view_from(registry4, config4)
        assert replica.on_message(2, new_view, 1.0) == []
        assert replica.view == 5

    def test_new_leader_proposes_after_viewchange(self, config4, registry4):
        replicas, loop = make_cluster(config4, registry4)
        loop.start_all()
        from repro.messages.client import RequestBundle
        loop.deliver_external(
            100, 0, RequestBundle(100, 1, 50, 128, 0.0))
        loop.run(3.0)
        assert all(r.view == 2 for r in replicas.values())
        # The pending requests must now confirm under leader 2.
        loop.run(2.0)
        assert all(r.total_executed == 50 for r in replicas.values())

    def test_redo_preserves_confirmed_blocks(self, config4, registry4):
        """A replica that already confirmed sn=1 keeps it across the
        view-change (no double execution, no replacement)."""
        replicas, loop = make_cluster(config4, registry4,
                                      drop_leader=False)
        loop.start_all()
        from repro.messages.client import RequestBundle
        loop.deliver_external(
            100, 0, RequestBundle(100, 1, 50, 128, 0.0))
        loop.run(1.0)
        executed_before = {i: r.total_executed
                           for i, r in replicas.items()}
        assert executed_before[0] == 50
        # Force a view-change by hand: all replicas time out view 1.
        for replica in replicas.values():
            replica.vc.in_viewchange = False
        for i, replica in replicas.items():
            loop._apply(i, replica._start_viewchange(2, loop.now))
        loop.run(2.0)
        for i, replica in replicas.items():
            assert replica.view == 2
            assert replica.total_executed == executed_before[i]
