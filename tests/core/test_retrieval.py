"""Retrieval-manager tests (paper Algorithm 3): query/respond/reconstruct."""

from __future__ import annotations

import pytest

from repro.core.datablock_pool import DatablockPool
from repro.core.retrieval import RetrievalManager
from repro.messages.leopard import ChunkResponse, Datablock, Query


N, F = 7, 2


def datablock(counter=1, count=100):
    return Datablock(1, counter, count, 128, ())


def holder_pool(block):
    pool = DatablockPool()
    pool.add(block)
    return pool


class TestQueryLifecycle:
    def test_note_missing_once(self):
        manager = RetrievalManager(N, F, 2)
        digest = b"d" * 32
        assert manager.note_missing(digest, now=1.0)
        assert not manager.note_missing(digest, now=2.0)
        assert manager.awaiting(digest)

    def test_cancel(self):
        manager = RetrievalManager(N, F, 2)
        digest = b"d" * 32
        manager.note_missing(digest)
        manager.cancel(digest)
        assert not manager.awaiting(digest)

    def test_build_query_marks_queried(self):
        manager = RetrievalManager(N, F, 2)
        manager.note_missing(b"a" * 32)
        manager.note_missing(b"b" * 32)
        query = manager.build_query()
        assert query is not None
        assert set(query.block_digests) == {b"a" * 32, b"b" * 32}
        assert manager.build_query() is None  # nothing new to ask

    def test_build_query_empty(self):
        assert RetrievalManager(N, F, 2).build_query() is None


class TestResponses:
    def test_holder_responds_with_own_chunk(self):
        block = datablock()
        responder = RetrievalManager(N, F, 5)
        responses = responder.make_responses(
            2, Query((block.digest(),)), holder_pool(block))
        assert len(responses) == 1
        response = responses[0]
        assert response.chunk_index == 5
        assert response.block_digest == block.digest()

    def test_non_holder_stays_silent(self):
        responder = RetrievalManager(N, F, 5)
        responses = responder.make_responses(
            2, Query((b"q" * 32,)), DatablockPool())
        assert responses == []

    def test_answers_each_requester_once(self):
        block = datablock()
        responder = RetrievalManager(N, F, 5)
        pool = holder_pool(block)
        query = Query((block.digest(),))
        assert len(responder.make_responses(2, query, pool)) == 1
        assert responder.make_responses(2, query, pool) == []
        assert len(responder.make_responses(3, query, pool)) == 1

    def test_encode_cache_reuse(self):
        block = datablock()
        responder = RetrievalManager(N, F, 5)
        pool = holder_pool(block)
        responder.make_responses(2, Query((block.digest(),)), pool)
        first = responder._encode_cache[block.digest()]
        responder.make_responses(3, Query((block.digest(),)), pool)
        assert responder._encode_cache[block.digest()] is first


class TestReconstruction:
    def collect(self, block, requester, responders):
        """Run the full query/response cycle through real managers."""
        pool = holder_pool(block)
        query = Query((block.digest(),))
        recovered = None
        for responder_id in responders:
            responder = RetrievalManager(N, F, responder_id)
            responses = responder.make_responses(2, query, pool)
            for response in responses:
                recovered = requester.on_response(response, now=1.0)
        return recovered

    def test_f_plus_1_chunks_reconstruct(self):
        block = datablock()
        requester = RetrievalManager(N, F, 2)
        requester.note_missing(block.digest(), now=0.0)
        recovered = self.collect(block, requester, range(F + 1))
        assert recovered is not None
        assert recovered.digest() == block.digest()
        assert not requester.awaiting(block.digest())
        assert requester.recovery_times[0][1] == pytest.approx(1.0)

    def test_fewer_chunks_insufficient(self):
        block = datablock()
        requester = RetrievalManager(N, F, 2)
        requester.note_missing(block.digest(), now=0.0)
        assert self.collect(block, requester, range(F)) is None
        assert requester.awaiting(block.digest())

    def test_unsolicited_response_ignored(self):
        block = datablock()
        requester = RetrievalManager(N, F, 2)  # never noted missing
        assert self.collect(block, requester, range(F + 1)) is None

    def test_bad_merkle_proof_rejected(self):
        block = datablock()
        requester = RetrievalManager(N, F, 2)
        requester.note_missing(block.digest())
        responder = RetrievalManager(N, F, 3)
        response = responder.make_responses(
            2, Query((block.digest(),)), holder_pool(block))[0]
        tampered = ChunkResponse(
            response.block_digest, response.root, response.chunk_index,
            b"\x00" * len(response.chunk_data), response.proof,
            response.meta)
        assert requester.on_response(tampered) is None

    def test_meta_digest_mismatch_rejected(self):
        block = datablock()
        wrong_meta = datablock(counter=99)
        requester = RetrievalManager(N, F, 2)
        requester.note_missing(block.digest())
        responder = RetrievalManager(N, F, 3)
        response = responder.make_responses(
            2, Query((block.digest(),)), holder_pool(block))[0]
        forged = ChunkResponse(
            response.block_digest, response.root, response.chunk_index,
            response.chunk_data, response.proof, wrong_meta)
        assert requester.on_response(forged) is None

    def test_fabricated_consistent_root_rejected_by_body_check(self):
        # A coalition could build a valid Merkle tree over garbage chunks;
        # the decoded body must re-derive from the metadata or be dropped.
        from repro.crypto.merkle import MerkleTree
        from repro.crypto.reed_solomon import leopard_code
        block = datablock()
        requester = RetrievalManager(N, F, 2)
        requester.note_missing(block.digest())
        code = leopard_code(F, N)
        garbage = code.encode(b"not the real body at all")
        tree = MerkleTree([c.data for c in garbage])
        for index in range(F + 1):
            fake = ChunkResponse(
                block.digest(), tree.root, index, garbage[index].data,
                tree.proof(index), block)
            assert requester.on_response(fake) is None
        assert requester.awaiting(block.digest())

    def test_mixed_roots_do_not_mix(self):
        block = datablock()
        requester = RetrievalManager(N, F, 2)
        requester.note_missing(block.digest())
        # One honest response plus garbage under a different root.
        responder = RetrievalManager(N, F, 3)
        honest = responder.make_responses(
            2, Query((block.digest(),)), holder_pool(block))[0]
        assert requester.on_response(honest) is None
        from repro.crypto.merkle import MerkleTree
        from repro.crypto.reed_solomon import leopard_code
        code = leopard_code(F, N)
        garbage = code.encode(b"zzz")
        tree = MerkleTree([c.data for c in garbage])
        fake = ChunkResponse(block.digest(), tree.root, 4,
                             garbage[4].data, tree.proof(4), block)
        assert requester.on_response(fake) is None
        # Completing the honest root still succeeds.
        responder2 = RetrievalManager(N, F, 4)
        honest2 = responder2.make_responses(
            2, Query((block.digest(),)), holder_pool(block))[0]
        hon3 = RetrievalManager(N, F, 5).make_responses(
            2, Query((block.digest(),)), holder_pool(block))[0]
        requester.on_response(honest2)
        assert requester.on_response(hon3) is not None
