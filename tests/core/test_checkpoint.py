"""Checkpoint-manager tests (paper Algorithm 4)."""

from __future__ import annotations

import pytest

from repro.core.checkpoint import CheckpointManager
from repro.messages.leopard import CheckpointProof, checkpoint_payload


STATE = b"s" * 32


@pytest.fixture
def managers(registry4):
    return [CheckpointManager(4, registry4.scheme) for _ in range(4)]


def make_share(registry, manager, replica, sn):
    return manager.make_share(replica, registry.signer(replica), sn, STATE)


class TestDue:
    def test_due_at_period_multiples(self, registry4, managers):
        manager = managers[0]
        assert not manager.due(3)
        assert manager.due(4)
        assert manager.due(8)

    def test_not_due_twice(self, registry4, managers):
        manager = managers[0]
        make_share(registry4, manager, 0, 4)
        assert not manager.due(4)
        assert manager.due(8)


class TestAggregation:
    def test_quorum_builds_proof(self, registry4, managers):
        leader = managers[0]
        proof = None
        for replica in range(3):
            share = make_share(registry4, managers[replica], replica, 4)
            proof = leader.on_share(replica, share) or proof
        assert proof is not None
        assert proof.sn == 4
        assert registry4.scheme.verify(
            proof.signature, checkpoint_payload(4, STATE))

    def test_duplicate_shares_ignored(self, registry4, managers):
        leader = managers[0]
        share = make_share(registry4, managers[1], 1, 4)
        assert leader.on_share(1, share) is None
        assert leader.on_share(1, share) is None

    def test_sender_mismatch_rejected(self, registry4, managers):
        leader = managers[0]
        share = make_share(registry4, managers[1], 1, 4)
        assert leader.on_share(2, share) is None

    def test_issued_once(self, registry4, managers):
        leader = managers[0]
        for replica in range(3):
            leader.on_share(
                replica, make_share(registry4, managers[replica], replica, 4))
        extra = make_share(registry4, managers[3], 3, 4)
        assert leader.on_share(3, extra) is None


class TestAdoption:
    def _proof(self, registry, managers, sn=4):
        leader = managers[0]
        proof = None
        for replica in range(3):
            share = make_share(registry, managers[replica], replica, sn)
            proof = leader.on_share(replica, share) or proof
        return proof

    def test_adopt_advances(self, registry4, managers):
        proof = self._proof(registry4, managers)
        follower = managers[3]
        assert follower.on_proof(proof)
        assert follower.stable_sn == 4
        assert follower.latest_proof == proof

    def test_stale_proof_rejected(self, registry4, managers):
        proof = self._proof(registry4, managers)
        follower = managers[3]
        follower.on_proof(proof)
        assert not follower.on_proof(proof)

    def test_invalid_signature_rejected(self, registry4, managers):
        from repro.crypto.threshold import ThresholdSignature
        forged = CheckpointProof(4, STATE, ThresholdSignature(99))
        assert not managers[3].on_proof(forged)
