"""Mempool tests: FIFO draining, span splitting, duplicate rejection."""

from __future__ import annotations

from hypothesis import given, strategies as st

from repro.core.mempool import Mempool
from repro.messages.client import RequestBundle


def bundle(client=9, bid=1, count=10, at=0.0):
    return RequestBundle(client, bid, count, 128, at)


class TestBuffering:
    def test_counts(self):
        pool = Mempool()
        assert pool.total_requests == 0
        pool.add_bundle(bundle(count=10))
        pool.add_bundle(bundle(bid=2, count=5))
        assert pool.total_requests == 15

    def test_duplicate_rejected(self):
        pool = Mempool()
        assert pool.add_bundle(bundle())
        assert not pool.add_bundle(bundle())
        assert pool.total_requests == 10
        assert pool.duplicates_rejected == 1

    def test_same_bundle_id_different_client_ok(self):
        pool = Mempool()
        assert pool.add_bundle(bundle(client=1))
        assert pool.add_bundle(bundle(client=2))

    def test_oldest_submission(self):
        pool = Mempool()
        assert pool.oldest_submission() is None
        pool.add_bundle(bundle(bid=1, at=3.0))
        pool.add_bundle(bundle(bid=2, at=1.0))
        assert pool.oldest_submission() == 3.0  # FIFO, not min


class TestTake:
    def test_take_whole_bundles(self):
        pool = Mempool()
        pool.add_bundle(bundle(bid=1, count=10))
        pool.add_bundle(bundle(bid=2, count=20))
        spans = pool.take(30)
        assert [s.count for s in spans] == [10, 20]
        assert pool.total_requests == 0

    def test_take_splits_bundle(self):
        pool = Mempool()
        pool.add_bundle(bundle(bid=1, count=100))
        first = pool.take(30)
        second = pool.take(100)
        assert [s.count for s in first] == [30]
        assert [s.count for s in second] == [70]
        assert first[0].bundle_id == second[0].bundle_id

    def test_take_preserves_fifo(self):
        pool = Mempool()
        for bid in range(1, 5):
            pool.add_bundle(bundle(bid=bid, count=5))
        spans = pool.take(20)
        assert [s.bundle_id for s in spans] == [1, 2, 3, 4]

    def test_take_from_empty(self):
        assert Mempool().take(10) == ()

    def test_take_records_submission_time(self):
        pool = Mempool()
        pool.add_bundle(bundle(at=4.5))
        spans = pool.take(10)
        assert spans[0].submitted_at == 4.5

    @given(st.lists(st.integers(min_value=1, max_value=50),
                    min_size=1, max_size=20),
           st.integers(min_value=1, max_value=40))
    def test_conservation(self, counts, chunk):
        pool = Mempool()
        for bid, count in enumerate(counts):
            pool.add_bundle(bundle(bid=bid, count=count))
        total = sum(counts)
        drained = 0
        while pool.total_requests:
            spans = pool.take(chunk)
            got = sum(s.count for s in spans)
            assert got <= chunk
            drained += got
        assert drained == total
