"""Leopard client-core unit tests."""

from __future__ import annotations

import pytest

from repro.core.client import LeopardClient, assign_replica
from repro.core.config import LeopardConfig
from repro.interfaces import Send, SetTimer, Trace
from repro.messages.client import Ack, RequestBundle


@pytest.fixture
def config():
    return LeopardConfig(n=4)


def make_client(config, **kwargs):
    defaults = dict(rate=1000.0, bundle_size=100)
    defaults.update(kwargs)
    return LeopardClient(10, config, **defaults)


class TestSubmission:
    def test_rate_sets_interval(self, config):
        client = make_client(config, rate=1000.0, bundle_size=100)
        assert client.submit_interval == pytest.approx(0.1)

    def test_rejects_nonpositive_rate(self, config):
        with pytest.raises(ValueError):
            make_client(config, rate=0)

    def test_start_arms_submit_timer(self, config):
        client = make_client(config)
        effects = client.start(0.0)
        assert any(isinstance(e, SetTimer) and e.key == "submit"
                   for e in effects)

    def test_submit_sends_bundle_and_rearms(self, config):
        client = make_client(config)
        client.start(0.0)
        effects = client.on_timer("submit", 0.1)
        sends = [e for e in effects if isinstance(e, Send)]
        timers = [e for e in effects if isinstance(e, SetTimer)]
        assert len(sends) == 1
        assert isinstance(sends[0].msg, RequestBundle)
        assert sends[0].dest == client.primary
        assert timers
        assert client.submitted_requests == 100

    def test_bundle_ids_increment(self, config):
        client = make_client(config)
        client.on_timer("submit", 0.1)
        client.on_timer("submit", 0.2)
        assert client.next_bundle_id == 3

    def test_stop_at_halts_submission(self, config):
        client = make_client(config, stop_at=0.05)
        effects = client.on_timer("submit", 0.1)
        assert effects == []

    def test_primary_avoids_leader(self, config):
        client = make_client(config)
        assert client.primary != config.leader_of(1)


class TestAcks:
    def test_ack_produces_latency_trace(self, config):
        client = make_client(config)
        effects = client.on_message(
            2, Ack(10, 1, 100, submitted_at=0.5, executed_at=0.9), 1.0)
        traces = [e for e in effects if isinstance(e, Trace)]
        assert traces[0].kind == "ack"
        assert traces[0].data["submitted_at"] == 0.5
        assert client.acked_requests == 100

    def test_response_phase_trace_when_enabled(self, config):
        client = make_client(config, trace_phases=True)
        effects = client.on_message(
            2, Ack(10, 1, 100, submitted_at=0.5, executed_at=0.9), 1.0)
        phases = [e for e in effects if isinstance(e, Trace)
                  and e.kind == "phase"]
        assert phases
        assert phases[0].data["phase"] == "response"
        assert phases[0].data["duration"] == pytest.approx(0.1)

    def test_non_ack_messages_ignored(self, config):
        client = make_client(config)
        assert client.on_message(2, object(), 1.0) == []


class TestResubmission:
    def test_timeout_resubmits_with_flag(self, config):
        client = make_client(config, resubmit=True, client_timeout=0.5)
        client.on_timer("submit", 0.0)
        effects = client.on_timer(("timeout", 1), 0.5)
        sends = [e for e in effects if isinstance(e, Send)]
        assert len(sends) == 1
        bundle = sends[0].msg
        assert bundle.timeout_flagged
        assert bundle.bundle_id == 1
        assert sends[0].dest != client.primary  # rotated
        assert client.resubmissions == 1

    def test_acked_bundle_not_resubmitted(self, config):
        client = make_client(config, resubmit=True, client_timeout=0.5)
        client.on_timer("submit", 0.0)
        client.on_message(
            2, Ack(10, 1, 100, submitted_at=0.0, executed_at=0.2), 0.3)
        assert client.on_timer(("timeout", 1), 0.5) == []

    def test_partial_ack_keeps_remainder(self, config):
        client = make_client(config, resubmit=True, client_timeout=0.5)
        client.on_timer("submit", 0.0)
        client.on_message(
            2, Ack(10, 1, 40, submitted_at=0.0, executed_at=0.2), 0.3)
        effects = client.on_timer(("timeout", 1), 0.5)
        sends = [e for e in effects if isinstance(e, Send)]
        assert sends[0].msg.count == 60

    def test_unknown_timeout_ignored(self, config):
        client = make_client(config, resubmit=True)
        assert client.on_timer(("timeout", 99), 1.0) == []


class TestRetransmissionBackoff:
    """Satellite: capped, jittered-backoff request retransmission."""

    def test_retransmit_trace_carries_attempt_and_count(self, config):
        client = make_client(config, resubmit=True, client_timeout=0.5)
        client.on_timer("submit", 0.0)
        effects = client.on_timer(("timeout", 1), 0.5)
        traces = [e for e in effects if isinstance(e, Trace)
                  and e.kind == "retransmit"]
        assert traces[0].data == {
            "bundle_id": 1, "attempt": 1, "count": 100}

    def test_retry_timer_backs_off_with_jitter(self, config):
        client = make_client(config, resubmit=True, client_timeout=0.5)
        client.on_timer("submit", 0.0)
        delays = []
        now = 0.5
        for _ in range(3):
            effects = client.on_timer(("timeout", 1), now)
            timer = next(e for e in effects if isinstance(e, SetTimer))
            delays.append(timer.delay)
            now += timer.delay
        # Each retry waits ~1.5x longer; jitter stays within +/-25%.
        for attempt, delay in enumerate(delays, start=1):
            nominal = 0.5 * 1.5 ** attempt
            assert nominal * 0.75 <= delay <= nominal * 1.25
        assert delays[2] > delays[0]

    def test_jitter_is_deterministic_per_client(self, config):
        first = make_client(config, resubmit=True, client_timeout=0.5)
        second = make_client(config, resubmit=True, client_timeout=0.5)
        assert [first._retry_delay(a) for a in range(1, 4)] \
            == [second._retry_delay(a) for a in range(1, 4)]

    def test_retry_budget_caps_resubmissions(self, config):
        client = make_client(config, resubmit=True, client_timeout=0.5,
                             max_retries=2)
        client.on_timer("submit", 0.0)
        assert client.on_timer(("timeout", 1), 0.5) != []
        assert client.on_timer(("timeout", 1), 1.5) != []
        # Budget exhausted: the bundle is abandoned, not retried forever.
        assert client.on_timer(("timeout", 1), 3.0) == []
        assert client.resubmissions == 2
        assert client.on_timer(("timeout", 1), 5.0) == []  # fully dropped

    def test_default_budget_is_five(self, config):
        assert make_client(config).max_retries == 5

    def test_each_retry_rotates_target(self, config):
        client = make_client(config, resubmit=True, client_timeout=0.5)
        client.on_timer("submit", 0.0)
        targets = []
        now = 0.5
        for _ in range(2):
            effects = client.on_timer(("timeout", 1), now)
            targets.append(next(e.dest for e in effects
                                if isinstance(e, Send)))
            now += 2.0
        assert client.primary not in targets
        assert len(set(targets)) == 2  # rotation, not a fixed fallback
        assert client._view_leader_guess not in targets  # leader-avoiding


class TestAssignment:
    def test_covers_all_non_leaders(self):
        targets = {assign_replica(key, 7, leader=1) for key in range(100)}
        assert targets == {0, 2, 3, 4, 5, 6}
