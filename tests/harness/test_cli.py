"""CLI entry-point tests."""

from __future__ import annotations

import pytest

from repro.harness.cli import main


class TestCli:
    def test_list(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "fig9" in out
        assert "table3" in out

    def test_no_args_lists(self, capsys):
        assert main([]) == 0
        assert "available experiments" in capsys.readouterr().out

    def test_unknown_experiment(self, capsys):
        assert main(["fig99"]) == 2
        assert "unknown" in capsys.readouterr().err

    def test_runs_analytic_experiment(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Leopard" in out
        assert "O(1)" in out
