"""CLI entry-point tests."""

from __future__ import annotations

from repro.harness.cli import main


class TestCli:
    def test_list(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "fig9" in out
        assert "table3" in out

    def test_no_args_lists(self, capsys):
        assert main([]) == 0
        assert "available experiments" in capsys.readouterr().out

    def test_unknown_experiment(self, capsys):
        assert main(["fig99"]) == 2
        assert "unknown" in capsys.readouterr().err

    def test_runs_analytic_experiment(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Leopard" in out
        assert "O(1)" in out


class TestRunLiveCli:
    def test_list_mentions_run_live(self, capsys):
        assert main(["--list"]) == 0
        assert "run-live" in capsys.readouterr().out

    def test_run_live_smoke(self, capsys):
        assert main([
            "run-live", "--replicas", "4", "--clients", "1",
            "--duration", "1.5", "--rate", "2000", "--bundle-size", "100",
            "--min-committed", "1"]) == 0
        out = capsys.readouterr().out
        assert "live run: n=4" in out
        assert "live smoke OK" in out

    def test_run_live_json_output(self, capsys):
        import json

        assert main([
            "run-live", "--replicas", "4", "--duration", "1.0",
            "--rate", "1000", "--bundle-size", "50", "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["backend"] == "live"
        assert report["schema"] == 7
        assert report["events_processed"] > 0
        assert report["sim_events_per_sec"] > 0

    def test_run_live_min_committed_gate_fails_when_unmet(self, capsys):
        # An impossible bar: more commits than the offered load allows.
        assert main([
            "run-live", "--replicas", "4", "--duration", "1.0",
            "--rate", "1000", "--bundle-size", "50",
            "--min-committed", "10000000"]) == 1
        assert "FAIL" in capsys.readouterr().err

    def test_run_live_baseline_protocol(self, capsys):
        assert main([
            "run-live", "--protocol", "pbft", "--replicas", "4",
            "--duration", "1.5", "--rate", "2000",
            "--bundle-size", "100", "--min-committed", "1"]) == 0
        out = capsys.readouterr().out
        assert "live run: n=4 pbft over TCP [in-process]" in out
        assert "live smoke OK" in out

    def test_run_live_processes_mode(self, capsys, tmp_path):
        import json

        output = tmp_path / "live.json"
        assert main([
            "run-live", "--protocol", "leopard", "--processes",
            "--duration", "3.0", "--rate", "1500",
            "--bundle-size", "100", "--min-committed", "1",
            "--output", str(output)]) == 0
        out = capsys.readouterr().out
        assert "[processes]" in out
        assert "live smoke OK" in out
        report = json.loads(output.read_text())
        assert report["deployment"]["mode"] == "processes"
        assert set(report["deployment"]["exit_codes"].values()) == {0}


class TestCalibrateCli:
    def test_list_mentions_calibrate(self, capsys):
        assert main(["--list"]) == 0
        assert "calibrate" in capsys.readouterr().out

    def test_calibrate_smoke_with_artifact(self, capsys, tmp_path):
        import json

        output = tmp_path / "calibration.json"
        assert main([
            "calibrate", "--protocol", "hotstuff", "--duration", "1.0",
            "--rate", "1500", "--bundle-size", "100",
            "--warmup", "0.1", "--min-committed", "1",
            "--output", str(output)]) == 0
        out = capsys.readouterr().out
        assert "calibration: hotstuff n=4" in out
        assert "calibration smoke OK" in out
        report = json.loads(output.read_text())
        assert report["kind"] == "live_vs_sim_calibration"
        assert report["live"]["backend"] == "live"
        assert report["sim"]["backend"] == "sim"

    def test_calibrate_json_stdout(self, capsys):
        import json

        assert main([
            "calibrate", "--protocol", "leopard", "--duration", "0.8",
            "--rate", "1000", "--bundle-size", "50",
            "--warmup", "0.1", "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["deltas"]["throughput_rps"]["live"] > 0


class TestChaosCli:
    def test_run_live_scenario_smoke(self, capsys, tmp_path):
        import json

        output = tmp_path / "chaos.json"
        assert main([
            "run-live", "--protocol", "leopard", "--duration", "1.5",
            "--rate", "2000", "--bundle-size", "100",
            "--scenario", "at 0.4 crash victim; at 1.0 restart victim",
            "--min-committed", "1", "--output", str(output)]) == 0
        out = capsys.readouterr().out
        assert "faults:" in out
        assert "restarts=1" in out
        report = json.loads(output.read_text())
        assert report["faults"]["scenario"] == "inline"
        assert report["faults"]["restarts"] == 1

    def test_unknown_scenario_lists_builtins(self, capsys):
        assert main([
            "run-live", "--duration", "0.5", "--scenario", "no-such"]) == 2
        err = capsys.readouterr().err
        assert "crash-restart" in err

    def test_calibrate_scenario_excludes_sweep(self, capsys):
        import pytest

        with pytest.raises(SystemExit) as excinfo:
            main(["calibrate", "--scenario", "crash-restart", "--sweep"])
        assert excinfo.value.code == 2

    def test_calibrate_faulted_gate(self, capsys, tmp_path):
        import json

        output = tmp_path / "faulted.json"
        assert main([
            "calibrate", "--protocol", "leopard",
            "--scenario", "at 0.4 crash victim; at 1.0 restart victim",
            "--duration", "1.2", "--rate", "2000",
            "--bundle-size", "100", "--warmup", "0.1",
            "--min-committed", "1", "--max-degradation-gap", "10.0",
            "--output", str(output)]) == 0
        out = capsys.readouterr().out
        assert "faulted calibration OK" in out
        report = json.loads(output.read_text())
        assert report["kind"] == "faulted_live_vs_sim_calibration"
        assert report["degradation"]["within_bound"] is True
