"""Cluster-builder tests."""

from __future__ import annotations

import pytest

from repro.core.config import LeopardConfig
from repro.errors import ConfigError
from repro.harness import (
    build_hotstuff_cluster,
    build_leopard_cluster,
    build_pbft_cluster,
    throttle_all_replicas,
)
from repro.sim.faults import Crash


class TestLeopardBuilder:
    def test_config_mismatch_rejected(self):
        with pytest.raises(ConfigError):
            build_leopard_cluster(n=7, config=LeopardConfig(n=4))

    def test_too_many_faults_rejected(self):
        with pytest.raises(ConfigError):
            build_leopard_cluster(
                n=4, faults={0: Crash(), 2: Crash()})

    def test_measure_replica_is_honest_non_leader(self):
        cluster = build_leopard_cluster(n=4, faults={2: Crash()})
        assert cluster.measure_replica not in (cluster.leader, 2)

    def test_auto_warmup_scales_with_n(self):
        small = build_leopard_cluster(n=4)
        large = build_leopard_cluster(
            n=7, config=LeopardConfig(n=7, datablock_size=4000))
        assert large.warmup > small.warmup

    def test_client_ids_above_replica_range(self):
        cluster = build_leopard_cluster(n=4)
        assert all(c.node_id >= 4 for c in cluster.clients)

    def test_throttle_all_replicas(self):
        cluster = build_leopard_cluster(n=4)
        throttle_all_replicas(cluster, 20e6)
        for replica_id in range(4):
            assert cluster.network.nics[replica_id].bandwidth_bps == 20e6
        assert cluster.network.nics[4].bandwidth_bps != 20e6  # client NIC


class TestBaselineBuilders:
    def test_hotstuff_clients_target_leader(self):
        cluster = build_hotstuff_cluster(n=4)
        assert all(c.target == cluster.leader for c in cluster.clients)

    def test_pbft_builder_runs(self):
        cluster = build_pbft_cluster(n=4, total_rate=5_000)
        cluster.run(1.0)
        assert cluster.replicas[0].executed_sn >= 0

    def test_default_rate_scales_down_with_n(self):
        small = build_hotstuff_cluster(n=4)
        large = build_hotstuff_cluster(n=16)
        small_rate = sum(c.rate for c in small.clients)
        large_rate = sum(c.rate for c in large.clients)
        assert small_rate > large_rate


class TestMeasurement:
    def test_throughput_bps_uses_payload(self):
        cluster = build_leopard_cluster(
            n=4, config=LeopardConfig(
                n=4, datablock_size=100, max_batch_delay=0.05),
            warmup=0.2, total_rate=10_000)
        cluster.run(1.5)
        rps = cluster.throughput()
        assert cluster.throughput_bps() == pytest.approx(rps * 128 * 8)

    def test_measurement_window(self):
        cluster = build_leopard_cluster(n=4, warmup=1.0)
        cluster.run(3.0)
        assert cluster.measurement_window() == pytest.approx(2.0)


class TestSimChaos:
    """Scripted chaos on the simulated backend (ISSUE 6 tentpole)."""

    def _cluster(self, **kwargs):
        return build_leopard_cluster(n=4, total_rate=4000.0,
                                     warmup=0.25, **kwargs)

    def test_crash_restart_scenario_still_commits(self):
        from repro.net.chaos import load_scenario, schedule_scenario_sim

        cluster = self._cluster()
        resolved = schedule_scenario_sim(
            cluster, load_scenario("crash-restart"))
        victim = resolved.events[0].args["node"]
        assert victim not in (cluster.leader, cluster.measure_replica)
        cluster.run(4.0)
        assert cluster.restarts == 1
        assert [e["op"] for e in cluster.chaos_log] == ["crash", "restart"]
        committed = cluster.metrics.executed_requests.get(
            cluster.measure_replica, 0)
        assert committed > 0
        faults = cluster.faults_summary()
        assert faults["restarts"] == 1
        assert faults["shaping"] is None  # live-only section

    def test_crash_recover_scenario_catches_up_on_sim(self):
        """Tentpole: recovery traffic rides the modelled NICs — the
        restarted simulated replica must re-converge with the quorum."""
        from repro.core.recovery import assert_replica_converged
        from repro.net.chaos import load_scenario, schedule_scenario_sim

        cluster = self._cluster()
        resolved = schedule_scenario_sim(
            cluster, load_scenario("crash-recover"))
        victim = resolved.events[0].args["node"]
        cluster.run(4.0)
        report = cluster.report()
        recovery = report["recovery"]
        assert recovery is not None
        info = recovery["replicas"][str(victim)]
        assert info["rounds"] > 0
        assert info["complete"], "simulated victim never caught up"
        assert info["segments_fetched"] > 0
        assert_replica_converged(report, victim)

    def test_shape_events_rejected_on_sim(self):
        from repro.net.chaos import load_scenario, schedule_scenario_sim

        with pytest.raises(ConfigError, match="live-only"):
            schedule_scenario_sim(self._cluster(), load_scenario("smoke"))

    def test_partition_wraps_and_heal_unwraps_faults(self):
        from repro.net.chaos import ChaosEvent
        from repro.sim.faults import HONEST

        cluster = self._cluster()
        cluster.apply_chaos_event(ChaosEvent(
            0.0, "partition", {"groups": [[3], [0, 1, 2]]}))
        assert cluster.sim.nodes[3].fault.drop_incoming(
            0, _ProbeMsg("datablock"), 0.0)
        assert not cluster.sim.nodes[0].fault.drop_incoming(
            1, _ProbeMsg("datablock"), 0.0)
        cluster.apply_chaos_event(ChaosEvent(1.0, "heal", {}))
        assert all(cluster.sim.nodes[r].fault is HONEST for r in range(4))

    def test_partition_combines_with_injected_fault(self):
        from repro.net.chaos import ChaosEvent
        from repro.sim.faults import Mute

        cluster = self._cluster(faults={3: Mute(frozenset({"vote"}))})
        cluster.apply_chaos_event(ChaosEvent(
            0.0, "partition", {"groups": [[3], [0, 1, 2]]}))
        fault = cluster.sim.nodes[3].fault
        assert fault.drop_incoming(0, _ProbeMsg("datablock"), 0.0)
        assert fault.filter_effects([], 0.0) == []
        cluster.apply_chaos_event(ChaosEvent(1.0, "heal", {}))
        assert isinstance(cluster.sim.nodes[3].fault, Mute)

    def test_restart_requires_prior_crash(self):
        from repro.net.chaos import ChaosEvent

        cluster = self._cluster()
        with pytest.raises(ConfigError):
            cluster.apply_chaos_event(
                ChaosEvent(0.0, "restart", {"node": 3}))

    def test_unknown_op_not_simulatable(self):
        from repro.net.chaos import ChaosEvent

        cluster = self._cluster()
        with pytest.raises(ConfigError, match="not simulatable"):
            cluster.apply_chaos_event(ChaosEvent(
                0.0, "shape", {"src": 0, "dst": 1, "policy": {}}))

    def test_delay_send_sim_run_commits(self):
        """Satellite (a): the slow-replica fault on the simulator."""
        from repro.sim.faults import DelaySend

        cluster = self._cluster(faults={3: DelaySend(delay=0.02)})
        cluster.run(2.0)
        committed = cluster.metrics.executed_requests.get(
            cluster.measure_replica, 0)
        assert committed > 0

    def test_slow_replica_scenario_swaps_fault_in_and_out(self):
        from repro.net.chaos import load_scenario, schedule_scenario_sim
        from repro.sim.faults import DelaySend, HONEST

        cluster = self._cluster()
        resolved = schedule_scenario_sim(
            cluster, load_scenario("slow-replica"))
        victim = resolved.events[0].args["node"]
        cluster.run(2.0)  # past the fault, before the unfault
        assert isinstance(cluster.sim.nodes[victim].fault, DelaySend)
        cluster.run(1.5)
        assert cluster.sim.nodes[victim].fault is HONEST


class _ProbeMsg:
    def __init__(self, msg_class):
        self.msg_class = msg_class

    def size_bytes(self):
        return 10
