"""Cluster-builder tests."""

from __future__ import annotations

import pytest

from repro.core.config import LeopardConfig
from repro.errors import ConfigError
from repro.harness import (
    build_hotstuff_cluster,
    build_leopard_cluster,
    build_pbft_cluster,
    throttle_all_replicas,
)
from repro.sim.faults import Crash


class TestLeopardBuilder:
    def test_config_mismatch_rejected(self):
        with pytest.raises(ConfigError):
            build_leopard_cluster(n=7, config=LeopardConfig(n=4))

    def test_too_many_faults_rejected(self):
        with pytest.raises(ConfigError):
            build_leopard_cluster(
                n=4, faults={0: Crash(), 2: Crash()})

    def test_measure_replica_is_honest_non_leader(self):
        cluster = build_leopard_cluster(n=4, faults={2: Crash()})
        assert cluster.measure_replica not in (cluster.leader, 2)

    def test_auto_warmup_scales_with_n(self):
        small = build_leopard_cluster(n=4)
        large = build_leopard_cluster(
            n=7, config=LeopardConfig(n=7, datablock_size=4000))
        assert large.warmup > small.warmup

    def test_client_ids_above_replica_range(self):
        cluster = build_leopard_cluster(n=4)
        assert all(c.node_id >= 4 for c in cluster.clients)

    def test_throttle_all_replicas(self):
        cluster = build_leopard_cluster(n=4)
        throttle_all_replicas(cluster, 20e6)
        for replica_id in range(4):
            assert cluster.network.nics[replica_id].bandwidth_bps == 20e6
        assert cluster.network.nics[4].bandwidth_bps != 20e6  # client NIC


class TestBaselineBuilders:
    def test_hotstuff_clients_target_leader(self):
        cluster = build_hotstuff_cluster(n=4)
        assert all(c.target == cluster.leader for c in cluster.clients)

    def test_pbft_builder_runs(self):
        cluster = build_pbft_cluster(n=4, total_rate=5_000)
        cluster.run(1.0)
        assert cluster.replicas[0].executed_sn >= 0

    def test_default_rate_scales_down_with_n(self):
        small = build_hotstuff_cluster(n=4)
        large = build_hotstuff_cluster(n=16)
        small_rate = sum(c.rate for c in small.clients)
        large_rate = sum(c.rate for c in large.clients)
        assert small_rate > large_rate


class TestMeasurement:
    def test_throughput_bps_uses_payload(self):
        cluster = build_leopard_cluster(
            n=4, config=LeopardConfig(
                n=4, datablock_size=100, max_batch_delay=0.05),
            warmup=0.2, total_rate=10_000)
        cluster.run(1.5)
        rps = cluster.throughput()
        assert cluster.throughput_bps() == pytest.approx(rps * 128 * 8)

    def test_measurement_window(self):
        cluster = build_leopard_cluster(n=4, warmup=1.0)
        cluster.run(3.0)
        assert cluster.measurement_window() == pytest.approx(2.0)
