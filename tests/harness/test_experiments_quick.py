"""Smoke tests for the experiment harness (the fast experiments only;
the full sweeps run under ``pytest benchmarks/``)."""

from __future__ import annotations

import pytest

from repro.harness.experiments import (
    ALL_EXPERIMENTS,
    full_scale,
    hotstuff_model_rps,
    leopard_model_rps,
    pbft_model_rps,
    table1_amortized_costs,
    table2_batch_parameters,
)


class TestRegistry:
    def test_every_paper_artifact_has_an_experiment(self):
        expected = {"fig1", "fig2", "table1", "fig6", "fig7", "fig8",
                    "table2", "fig9", "fig10", "table3", "table4",
                    "fig11", "fig12", "fig13"}
        assert set(ALL_EXPERIMENTS) == expected

    def test_full_scale_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_FULL", raising=False)
        assert not full_scale()
        monkeypatch.setenv("REPRO_FULL", "1")
        assert full_scale()


class TestAnalyticRows:
    def test_table1(self):
        result = table1_amortized_costs()
        assert len(result.rows) == 4
        assert result.rows[-1][0] == "Leopard"

    def test_table2(self):
        result = table2_batch_parameters()
        assert [row[0] for row in result.rows] == \
            [32, 64, 128, 256, 400, 600]


class TestModelCeilings:
    def test_leopard_flat_in_n(self):
        assert leopard_model_rps(16) == leopard_model_rps(600)

    def test_hotstuff_decays_in_n(self):
        assert hotstuff_model_rps(16) > hotstuff_model_rps(64) \
            > hotstuff_model_rps(300)

    def test_hotstuff_inverse_n_regime(self):
        # Once NIC-bound, doubling n-1 halves throughput.
        ratio = hotstuff_model_rps(151) / hotstuff_model_rps(301)
        assert ratio == pytest.approx(2.0, rel=0.05)

    def test_pbft_below_hotstuff(self):
        for n in (16, 64, 128):
            assert pbft_model_rps(n) <= hotstuff_model_rps(n)

    def test_payload_scales_bandwidth_bound(self):
        assert hotstuff_model_rps(300, payload=1024) \
            == pytest.approx(hotstuff_model_rps(300, payload=128) / 8)

    def test_paper_headline_ratio(self):
        # The paper's 5x at n = 300 falls out of the calibrated model.
        ratio = leopard_model_rps(300) / hotstuff_model_rps(300)
        assert 3.0 < ratio < 8.0
