"""Schema back-compat: consumers must still read schema-4 artifacts.

The schema-5 bump added ``timeseries``/``trace`` report sections and a
``timeline`` bracket to faulted calibrations.  ``tests/harness/data/``
holds committed schema-4 artifacts in the exact pre-bump shape (a chaos
run report and a faulted calibration), and the renderers — the
consumers most likely to trip on a missing key — are driven against
them here.  When regenerated artifacts are present in ``artifacts/``
they are rendered too, whatever schema they carry.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.harness.cli import (
    _render_faulted_calibration,
    _render_live_report,
)

DATA = Path(__file__).resolve().parent / "data"
ARTIFACTS = Path(__file__).resolve().parents[2] / "artifacts"


def test_schema4_chaos_report_still_renders():
    report = json.loads(
        (DATA / "chaos_leopard_schema4.json").read_text())
    assert report["schema"] == 4  # the committed pre-timeseries shape
    assert "timeseries" not in report
    text = _render_live_report(report)
    assert f"live run: n={report['n']} {report['protocol']}" in text
    assert "timeseries:" not in text  # absent section renders as absent


def test_schema4_faulted_calibration_still_renders():
    report = json.loads(
        (DATA / "calibration_faulted_schema4.json").read_text())
    assert "timeline" not in report["degradation"]
    assert report["faulted"]["live"]["schema"] == 4
    text = _render_faulted_calibration(report)
    assert "degradation" in text
    assert "dip (req/s)" not in text  # no bracket without a timeseries


def test_schema5_report_renders_timeseries_line():
    # The schema-4 fixture upgraded with the schema-5 section must grow
    # exactly the new output line.
    report = json.loads(
        (DATA / "chaos_leopard_schema4.json").read_text())
    report["schema"] = 5
    report["timeseries"] = {
        "interval_s": 0.25,
        "intervals": [
            {"t": 0.0, "committed": 225, "committed_all": 900,
             "throughput_rps": 900.0, "acks": 2,
             "latency_p50_s": 0.01, "latency_p99_s": 0.02,
             "backlog_s": 0.0, "queue_depth": 0, "shaper_drops": 0},
        ],
        "annotations": [{"t": 0.1, "op": "crash",
                         "label": "crash node=2"}],
    }
    text = _render_live_report(report)
    assert "timeseries: 1 x 0.25s intervals" in text
    assert "1 annotations" in text


def test_schema5_event_queue_without_wave_counters_still_renders():
    # A schema-5 artifact carries an ``event_queue`` section from before
    # the schema-6 wave counters.  The renderer must not require them.
    report = json.loads(
        (DATA / "chaos_leopard_schema4.json").read_text())
    report["schema"] = 5
    report["event_queue"] = {
        "backend": "calendar", "pending": 0, "max_pending": 512,
        "late_clamped": 0, "bucket_width": 0.00025,
        "bucket_count": 32000, "bucket_loads": 3, "bucket_events": 900,
        "fanout_slabs": 12, "active_slabs": 0, "slab_pending": 0,
        "overflow_migrated": 0,
    }
    text = _render_live_report(report)
    assert "event queue: backend=calendar max_pending=512" in text
    assert "wave_events" not in text  # pre-wave artifact: no wave line


def test_schema6_event_queue_renders_wave_counters():
    report = json.loads(
        (DATA / "chaos_leopard_schema4.json").read_text())
    report["schema"] = 6
    report["event_queue"] = {
        "backend": "calendar", "max_pending": 512,
        "waves": True, "wave_events": 40, "wave_receivers": 1200,
        "wave_slabs": 18, "wave_pending": 0, "scalar_fallbacks": 3,
    }
    text = _render_live_report(report)
    assert "wave_events=40" in text
    assert "wave_receivers=1200" in text
    assert "scalar_fallbacks=3" in text


def test_pre_schema7_report_renders_without_recovery_line():
    report = json.loads(
        (DATA / "chaos_leopard_schema4.json").read_text())
    assert "recovery" not in report
    text = _render_live_report(report)
    assert "recovery:" not in text  # absent section renders as absent


def test_schema7_report_renders_recovery_line():
    # The schema-4 fixture upgraded with the schema-7 section must grow
    # exactly the new catch-up summary line.
    report = json.loads(
        (DATA / "chaos_leopard_schema4.json").read_text())
    report["schema"] = 7
    report["recovery"] = {
        "replicas": {
            "2": {"rounds": 0, "complete": False,
                  "installed_entries": 0, "segments_fetched": 0},
            "3": {"rounds": 1, "complete": True,
                  "installed_entries": 30, "segments_fetched": 2},
        },
        "snapshots_persisted": 27,
        "restored_from_disk": [3],
    }
    text = _render_live_report(report)
    assert "recovery: catch-ups=[3:done(+30 entries, 2 segments)]" in text
    assert "snapshots_persisted=27" in text
    assert "restored_from_disk=[3]" in text
    assert "2:" not in text.split("recovery:")[1].splitlines()[0]


def test_schema7_incomplete_recovery_renders_loudly():
    report = json.loads(
        (DATA / "chaos_leopard_schema4.json").read_text())
    report["schema"] = 7
    report["recovery"] = {
        "replicas": {"1": {"rounds": 3, "complete": False,
                           "installed_entries": 5,
                           "segments_fetched": 1}},
        "snapshots_persisted": 0,
        "restored_from_disk": [],
    }
    text = _render_live_report(report)
    assert "1:INCOMPLETE(+5 entries, 1 segments)" in text


GENERATED = sorted(ARTIFACTS.glob("chaos_*.json")) \
    if ARTIFACTS.is_dir() else []


@pytest.mark.skipif(not GENERATED,
                    reason="no locally generated chaos artifacts")
@pytest.mark.parametrize("path", GENERATED, ids=lambda p: p.stem)
def test_generated_chaos_artifacts_render(path):
    report = json.loads(path.read_text())
    text = _render_live_report(report)
    assert f"live run: n={report['n']}" in text
