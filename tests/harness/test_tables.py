"""Rendering tests for experiment results."""

from __future__ import annotations

from repro.harness.tables import ExperimentResult, render_all


class TestRender:
    def test_basic_table(self):
        result = ExperimentResult(
            "figX", "demo", ["n", "value"],
            rows=[(4, 1.5), (600, 123456.0)],
            notes=["a note"])
        text = result.render()
        assert "figX" in text
        assert "123,456" in text
        assert "note: a note" in text
        lines = text.splitlines()
        assert len(lines) == 6

    def test_nan_rendering(self):
        result = ExperimentResult(
            "figY", "demo", ["v"], rows=[(float("nan"),)])
        assert "-" in result.render()

    def test_alignment(self):
        result = ExperimentResult(
            "figZ", "demo", ["protocol", "n"],
            rows=[("leopard", 600), ("hs", 4)])
        lines = result.render().splitlines()
        assert len(lines[1]) == len(lines[3])

    def test_render_all_joins(self):
        a = ExperimentResult("a", "t", ["x"], rows=[(1,)])
        b = ExperimentResult("b", "t", ["x"], rows=[(2,)])
        text = render_all([a, b])
        assert "== a" in text and "== b" in text

    def test_small_float_formatting(self):
        result = ExperimentResult("f", "t", ["x"], rows=[(0.12345,)])
        assert "0.123" in result.render()
