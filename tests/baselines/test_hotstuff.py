"""Chained-HotStuff baseline tests."""

from __future__ import annotations

import pytest

from repro.baselines.hotstuff.config import HotStuffConfig
from repro.baselines.hotstuff.replica import GENESIS_DIGEST, HotStuffReplica
from repro.errors import ConfigError
from repro.messages.client import RequestBundle
from repro.messages.hotstuff import HSBlock, HSVote, QuorumCert
from tests.support import InstantLoop


@pytest.fixture
def hs_config():
    return HotStuffConfig(n=4, batch_size=50, idle_repropose_delay=0.001,
                          progress_timeout=5.0)


def make_cluster(config):
    replicas = {i: HotStuffReplica(i, config) for i in range(4)}
    return replicas, InstantLoop(replicas, replica_ids=list(range(4)))


def submit(loop, leader=1, count=50, client=100, bundle_id=1):
    loop.deliver_external(
        client, leader,
        RequestBundle(client, bundle_id, count, 128, loop.now))


class TestConfig:
    def test_validation(self):
        with pytest.raises(ConfigError):
            HotStuffConfig(n=3)
        with pytest.raises(ConfigError):
            HotStuffConfig(n=4, batch_size=0)

    def test_quorum(self):
        assert HotStuffConfig(n=4).quorum == 3


class TestChain:
    def test_three_chain_commit(self, hs_config):
        replicas, loop = make_cluster(hs_config)
        loop.start_all()
        # Four batches: heights 1-4 proposed; 3-chain commits height 1+.
        for bundle_id in range(1, 5):
            submit(loop, bundle_id=bundle_id)
            loop.run(0.05)
        loop.run(0.5)
        assert replicas[2].committed_height >= 1
        assert replicas[2].total_executed >= 50

    def test_all_replicas_agree_on_committed_prefix(self, hs_config):
        replicas, loop = make_cluster(hs_config)
        loop.start_all()
        for bundle_id in range(1, 8):
            submit(loop, bundle_id=bundle_id)
            loop.run(0.05)
        loop.run(0.5)
        height = min(r.committed_height for r in replicas.values())
        assert height >= 3
        digests = [
            [r.blocks[h].digest() for h in range(1, height + 1)]
            for r in replicas.values()]
        assert all(d == digests[0] for d in digests)

    def test_leader_waits_for_qc_before_next_proposal(self, hs_config):
        leader = HotStuffReplica(1, hs_config)
        leader.start(0.0)
        leader.on_message(
            100, RequestBundle(100, 1, 200, 128, 0.0), 0.0)
        assert leader._proposed_height == 1  # only one outstanding

    def test_vote_quorum_forms_qc(self, hs_config):
        leader = HotStuffReplica(1, hs_config)
        leader.start(0.0)
        leader.on_message(100, RequestBundle(100, 1, 50, 128, 0.0), 0.0)
        block = leader.blocks[1]
        leader.on_message(0, HSVote(1, block.digest(), 0), 0.0)
        assert 1 not in leader.qcs
        leader.on_message(2, HSVote(1, block.digest(), 2), 0.0)
        assert 1 in leader.qcs  # leader's own vote + two others

    def test_wrong_digest_vote_ignored(self, hs_config):
        leader = HotStuffReplica(1, hs_config)
        leader.start(0.0)
        leader.on_message(100, RequestBundle(100, 1, 50, 128, 0.0), 0.0)
        leader.on_message(0, HSVote(1, b"junk" * 8, 0), 0.0)
        leader.on_message(2, HSVote(1, b"junk" * 8, 2), 0.0)
        assert 1 not in leader.qcs


class TestBlockValidation:
    def test_rejects_block_from_non_leader(self, hs_config):
        replica = HotStuffReplica(0, hs_config)
        replica.start(0.0)
        block = HSBlock(1, GENESIS_DIGEST, None, 10, 128)
        assert replica.on_message(3, block, 0.0) == []
        assert 1 not in replica.blocks

    def test_rejects_wrong_parent(self, hs_config):
        replica = HotStuffReplica(0, hs_config)
        replica.start(0.0)
        good = HSBlock(1, GENESIS_DIGEST, None, 10, 128)
        replica.on_message(1, good, 0.0)
        orphan = HSBlock(2, b"wrong" * 6 + b"xx", None, 10, 128)
        replica.on_message(1, orphan, 0.0)
        assert 2 not in replica.blocks

    def test_rejects_undersized_qc(self, hs_config):
        replica = HotStuffReplica(0, hs_config)
        replica.start(0.0)
        good = HSBlock(1, GENESIS_DIGEST, None, 10, 128)
        replica.on_message(1, good, 0.0)
        weak_qc = QuorumCert(good.digest(), 1, 2)  # quorum is 3
        block = HSBlock(2, good.digest(), weak_qc, 10, 128)
        replica.on_message(1, block, 0.0)
        assert 2 not in replica.blocks


class TestPacemaker:
    def test_view_rotation_on_stall(self, hs_config):
        from dataclasses import replace
        config = replace(hs_config, progress_timeout=0.2)
        replicas, loop = make_cluster(config)
        # Remove the leader so nothing commits.
        dead = replicas.pop(1)
        loop.cores.pop(1)
        loop.start_all()
        submit(loop, leader=0)  # requests at a non-leader: pending work
        loop.run(1.0)
        assert all(r.view >= 2 for r in replicas.values())
