"""PBFT baseline tests."""

from __future__ import annotations

import pytest

from repro.baselines.pbft.config import PbftConfig
from repro.baselines.pbft.replica import PbftReplica
from repro.errors import ConfigError
from repro.messages.client import RequestBundle
from repro.messages.pbft import Prepare, PrePrepare
from tests.support import InstantLoop


@pytest.fixture
def pbft_config():
    return PbftConfig(n=4, batch_size=50, proposal_interval=0.005)


def make_cluster(config):
    replicas = {i: PbftReplica(i, config) for i in range(4)}
    return replicas, InstantLoop(replicas, replica_ids=list(range(4)))


class TestConfig:
    def test_validation(self):
        with pytest.raises(ConfigError):
            PbftConfig(n=2)
        with pytest.raises(ConfigError):
            PbftConfig(n=4, window=0)


class TestThreePhase:
    def test_commit_flow(self, pbft_config):
        replicas, loop = make_cluster(pbft_config)
        loop.start_all()
        loop.deliver_external(
            100, 1, RequestBundle(100, 1, 50, 128, 0.0))
        loop.run(0.5)
        assert all(r.executed_sn == 1 for r in replicas.values())
        assert all(r.total_executed == 50 for r in replicas.values())

    def test_parallel_instances(self, pbft_config):
        replicas, loop = make_cluster(pbft_config)
        loop.start_all()
        loop.deliver_external(
            100, 1, RequestBundle(100, 1, 500, 128, 0.0))
        loop.run(0.5)
        # 500 requests / batch 50 = 10 instances, all executed in order.
        assert all(r.executed_sn == 10 for r in replicas.values())

    def test_execution_is_in_order(self, pbft_config):
        replicas, loop = make_cluster(pbft_config)
        loop.start_all()
        for bundle_id in range(1, 4):
            loop.deliver_external(
                100, 1, RequestBundle(100, bundle_id, 50, 128, loop.now))
            loop.run(0.1)
        logs = [r.executed_sn for r in replicas.values()]
        assert all(sn == logs[0] for sn in logs)


class TestValidation:
    def test_preprepare_from_backup_ignored(self, pbft_config):
        replica = PbftReplica(0, pbft_config)
        replica.start(0.0)
        block = PrePrepare(1, 1, 50, 128)
        assert replica.on_message(2, block, 0.0) == []
        assert replica.instances == {}

    def test_vote_for_unknown_instance_ignored(self, pbft_config):
        replica = PbftReplica(0, pbft_config)
        replica.start(0.0)
        assert replica.on_message(
            2, Prepare(1, 9, b"d" * 32, 2), 0.0) == []

    def test_digest_mismatch_ignored(self, pbft_config):
        replica = PbftReplica(0, pbft_config)
        replica.start(0.0)
        block = PrePrepare(1, 1, 50, 128)
        replica.on_message(1, block, 0.0)
        replica.on_message(2, Prepare(1, 1, b"x" * 32, 2), 0.0)
        replica.on_message(3, Prepare(1, 1, b"x" * 32, 3), 0.0)
        assert not replica.instances[1].prepared or \
            len(replica.instances[1].prepares) == 1

    def test_duplicate_votes_not_double_counted(self, pbft_config):
        replica = PbftReplica(0, pbft_config)
        replica.start(0.0)
        block = PrePrepare(1, 1, 50, 128)
        replica.on_message(1, block, 0.0)
        for _ in range(5):
            replica.on_message(2, Prepare(1, 1, block.digest(), 2), 0.0)
        # self + leader-implied + replica 2 = we count distinct senders.
        assert len(replica.instances[1].prepares) <= 3

    def test_window_bounds_parallelism(self):
        config = PbftConfig(n=4, batch_size=10, window=2)
        leader = PbftReplica(1, config)
        leader.start(0.0)
        leader.on_message(
            100, RequestBundle(100, 1, 1000, 128, 0.0), 0.0)
        leader.on_timer("propose", 0.01)
        assert leader.next_sn <= 3  # at most `window` instances open

    def test_stalled_diagnostic(self, pbft_config):
        replica = PbftReplica(0, pbft_config)
        replica.start(0.0)
        assert not replica.stalled()
        replica.on_message(
            100, RequestBundle(100, 1, 50, 128, 0.0), 0.0)
        assert replica.stalled()
