"""Baseline-client unit tests."""

from __future__ import annotations

import pytest

from repro.baselines.client import BaselineClient
from repro.interfaces import Send, SetTimer, Trace
from repro.messages.client import Ack, RequestBundle


class TestBaselineClient:
    def test_rejects_nonpositive_rate(self):
        with pytest.raises(ValueError):
            BaselineClient(10, target=1, rate=0)

    def test_submits_to_fixed_target(self):
        client = BaselineClient(10, target=1, rate=1000, bundle_size=100)
        client.start(0.0)
        effects = client.on_timer("submit", 0.1)
        sends = [e for e in effects if isinstance(e, Send)]
        assert sends[0].dest == 1
        assert isinstance(sends[0].msg, RequestBundle)
        assert client.submitted_requests == 100

    def test_rearm_and_ids(self):
        client = BaselineClient(10, target=1, rate=1000, bundle_size=100)
        client.on_timer("submit", 0.1)
        effects = client.on_timer("submit", 0.2)
        assert any(isinstance(e, SetTimer) for e in effects)
        assert client.next_bundle_id == 3

    def test_stop_at(self):
        client = BaselineClient(10, target=1, rate=1000, stop_at=0.05)
        assert client.on_timer("submit", 0.1) == []

    def test_unknown_timer_ignored(self):
        client = BaselineClient(10, target=1, rate=1000)
        assert client.on_timer("other", 0.1) == []

    def test_acks_counted_and_traced(self):
        client = BaselineClient(10, target=1, rate=1000)
        effects = client.on_message(
            1, Ack(10, 1, 100, submitted_at=0.1, executed_at=0.3), 0.4)
        assert client.acked_requests == 100
        traces = [e for e in effects if isinstance(e, Trace)]
        assert traces and traces[0].kind == "ack"

    def test_non_ack_ignored(self):
        client = BaselineClient(10, target=1, rate=1000)
        assert client.on_message(1, object(), 0.4) == []
