"""Lifecycle reconstruction and Chrome trace export tests.

Events here are synthetic dicts in the exact shape a
``RingTracer.to_jsonable`` dump carries (keys as lists), so the tests
pin the on-disk trace schema as well as the join logic.
"""

from __future__ import annotations

import pytest

from repro.obs.chrome import chrome_trace, validate_chrome_trace
from repro.obs.timeline import (
    PHASES,
    build_lifecycles,
    render_timeline,
    summarize_lifecycles,
)


def _leopard_events():
    """submit -> datablock -> bftblock -> exec -> ack for request (4, 0)."""
    return [
        {"t": 0.00, "node": 4, "kind": "send", "cls": "client",
         "key": ["req", 4, 0], "data": None},
        {"t": 0.01, "node": 1, "kind": "bcast", "cls": "datablock",
         "key": ["db", 1, 0],
         "data": {"digest": "aabbccddeeff", "spans": [[4, 0]]}},
        {"t": 0.02, "node": 0, "kind": "bcast", "cls": "bftblock",
         "key": ["bft", 0, 1], "data": {"links": ["aabbccddeeff"]}},
        {"t": 0.03, "node": 0, "kind": "exec", "cls": "exec",
         "key": None, "data": {"count": 100, "ids": [1]}},
        {"t": 0.04, "node": 4, "kind": "recv", "cls": "ack",
         "key": ["req", 4, 0], "data": None},
    ]


class TestLeopardJoin:
    def test_full_chain_yields_all_stamps(self):
        (lifecycle,) = build_lifecycles(_leopard_events(),
                                        measure_replica=0)
        assert lifecycle["client"] == 4 and lifecycle["bundle"] == 0
        assert lifecycle["complete"] is True
        assert lifecycle["submitted"] == 0.00
        assert lifecycle["batched"] == 0.01
        assert lifecycle["proposed"] == 0.02
        assert lifecycle["committed"] == 0.03
        assert lifecycle["acked"] == 0.04
        assert set(lifecycle["phases"]) == set(PHASES)
        for duration in lifecycle["phases"].values():
            assert duration == pytest.approx(0.01)

    def test_measure_replica_filters_foreign_execs(self):
        events = _leopard_events()
        events.insert(3, {"t": 0.025, "node": 2, "kind": "exec",
                          "cls": "exec", "key": None,
                          "data": {"count": 100, "ids": [1]}})
        (measured,) = build_lifecycles(events, measure_replica=0)
        assert measured["committed"] == 0.03
        (earliest,) = build_lifecycles(events, measure_replica=None)
        assert earliest["committed"] == 0.025

    def test_truncated_chain_is_incomplete(self):
        (lifecycle,) = build_lifecycles(_leopard_events()[:2])
        assert lifecycle["complete"] is False
        assert lifecycle["committed"] is None
        assert lifecycle["phases"] == {"batching": pytest.approx(0.01)}


class TestBaselineJoin:
    def test_pbft_block_collapses_batch_and_proposal(self):
        events = [
            {"t": 0.00, "node": 4, "kind": "send", "cls": "client",
             "key": ["req", 4, 0], "data": None},
            {"t": 0.01, "node": 0, "kind": "bcast", "cls": "block",
             "key": ["sn", 0, 7], "data": {"spans": [[4, 0]]}},
            {"t": 0.02, "node": 0, "kind": "exec", "cls": "exec",
             "key": None, "data": {"count": 100, "ids": [7]}},
            {"t": 0.03, "node": 4, "kind": "recv", "cls": "ack",
             "key": ["req", 4, 0], "data": None},
        ]
        (lifecycle,) = build_lifecycles(events, measure_replica=0)
        assert lifecycle["complete"] is True
        assert lifecycle["batched"] == lifecycle["proposed"] == 0.01
        assert lifecycle["phases"]["dispersal"] == 0.0

    def test_hotstuff_block_keys_on_height(self):
        events = [
            {"t": 0.00, "node": 4, "kind": "send", "cls": "client",
             "key": ["req", 4, 2], "data": None},
            {"t": 0.01, "node": 0, "kind": "bcast", "cls": "block",
             "key": ["ht", 5], "data": {"spans": [[4, 2]]}},
            {"t": 0.02, "node": 0, "kind": "exec", "cls": "exec",
             "key": None, "data": {"count": 100, "ids": [5]}},
        ]
        (lifecycle,) = build_lifecycles(events, measure_replica=0)
        assert lifecycle["committed"] == 0.02
        assert lifecycle["acked"] is None


class TestRendering:
    def test_summary_and_timeline_text(self):
        lifecycles = build_lifecycles(_leopard_events(),
                                      measure_replica=0)
        summary = summarize_lifecycles(lifecycles)
        assert summary["agreement"]["count"] == 1
        assert summary["agreement"]["p50_s"] == pytest.approx(0.01)
        text = render_timeline(
            lifecycles,
            annotations=[{"t": 1.0, "op": "crash",
                          "label": "crash node=2"}])
        assert "1 with a committed lifecycle" in text
        assert "agreement" in text
        assert "4/0" in text
        assert "@1.000s crash: crash node=2" in text


class TestChromeExport:
    def test_export_and_validate(self):
        lifecycles = build_lifecycles(_leopard_events(),
                                      measure_replica=0)
        doc = chrome_trace(
            lifecycles,
            annotations=[{"t": 1.0, "op": "crash",
                          "label": "crash node=2"}])
        assert doc["displayTimeUnit"] == "ms"
        assert validate_chrome_trace(doc) == len(PHASES)
        metas = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        assert metas[0]["args"]["name"] == "client 4"
        instants = [e for e in doc["traceEvents"] if e["ph"] == "i"]
        assert instants[0]["name"] == "crash: crash node=2"
        spans = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert all(e["pid"] == 5 and e["tid"] == 0 for e in spans)
        assert {e["name"] for e in spans} == set(PHASES)

    def test_validate_rejects_malformed_documents(self):
        with pytest.raises(ValueError):
            validate_chrome_trace([])
        with pytest.raises(ValueError):
            validate_chrome_trace({"traceEvents": None})
        with pytest.raises(ValueError):
            validate_chrome_trace({"traceEvents": [
                {"name": "x", "ph": "Z", "pid": 0, "tid": 0}]})
        with pytest.raises(ValueError):
            validate_chrome_trace({"traceEvents": [
                {"name": "x", "ph": "X", "pid": 0, "tid": 0,
                 "ts": 1.0}]})  # X span without dur
