"""End-to-end telemetry on the simulated backend.

Covers the tentpole acceptance path without sockets: a traced smoke-scale
Leopard run must yield committed lifecycles with all four phases, a
schema-5 report carrying the timeseries section, and — with the builtin
``crash-restart`` scenario — a throughput dip that visibly brackets the
fault window with annotations at the injection timestamps.
"""

from __future__ import annotations

import json

from repro.harness.cluster import build_leopard_cluster
from repro.net.chaos import load_scenario, schedule_scenario_sim
from repro.net.protocols import default_live_config_for
from repro.obs import (
    RingTracer,
    TracedCore,
    bracket_throughput,
    build_lifecycles,
    summarize_lifecycles,
)


def _smoke_cluster(rate: float = 1000.0):
    config = default_live_config_for("leopard", 4)
    return build_leopard_cluster(
        4, seed=3, config=config, total_rate=rate,
        clients_per_replica=1, bundle_size=100, warmup=0.0, prime=False)


class TestTracedSimRun:
    def test_traced_run_reconstructs_lifecycles(self):
        cluster = _smoke_cluster()
        tracer = RingTracer()
        cluster.install_tracer(tracer)
        cluster.run(1.5)
        report = cluster.report()

        assert report["schema"] == 7
        assert report["trace"]["events"]
        json.dumps(report)  # the whole report must stay serializable

        lifecycles = build_lifecycles(
            report["trace"]["events"],
            measure_replica=report["measure_replica"])
        complete = [lc for lc in lifecycles if lc["complete"]]
        assert complete, "no committed request lifecycle traced"
        summary = summarize_lifecycles(complete)
        assert set(summary) == {"batching", "dispersal",
                                "agreement", "response"}
        # stamps must be causally ordered on every committed request
        for lifecycle in complete:
            assert (lifecycle["submitted"] <= lifecycle["batched"]
                    <= lifecycle["proposed"] <= lifecycle["committed"])

    def test_traced_run_has_interval_curve(self):
        cluster = _smoke_cluster()
        cluster.install_tracer(RingTracer())
        cluster.run(1.5)
        series = cluster.report()["timeseries"]
        assert series["interval_s"] == 0.25
        # 6 buckets cover the 1.5s run; a final host sample landing
        # exactly on the boundary may open one more.
        assert 6 <= len(series["intervals"]) <= 7
        assert sum(e["committed"] for e in series["intervals"]) > 0

    def test_untraced_run_stays_unwrapped(self):
        cluster = _smoke_cluster()
        cluster.run(0.5)
        report = cluster.report()
        assert "trace" not in report
        assert report["schema"] == 7
        assert "timeseries" in report  # curve ships even without tracing
        for node in cluster.sim.nodes.values():
            assert not isinstance(node.core, TracedCore)

    def test_install_tracer_is_idempotent(self):
        cluster = _smoke_cluster()
        tracer = RingTracer()
        cluster.install_tracer(tracer)
        cluster.install_tracer(tracer)
        for node in cluster.sim.nodes.values():
            assert isinstance(node.core, TracedCore)
            assert not isinstance(node.core.inner, TracedCore)


class TestChaosTimeseriesAlignment:
    def test_crash_restart_dip_brackets_the_fault(self):
        cluster = _smoke_cluster()
        scenario = load_scenario("crash-restart")
        schedule_scenario_sim(cluster, scenario)
        cluster.run(scenario.duration() + 1.0)
        report = cluster.report()

        section = report["timeseries"]
        fault_at = scenario.events[0].at
        recover_at = scenario.events[-1].at
        assert (fault_at, recover_at) == (1.0, 3.0)

        # the fault annotations land at the exact injection timestamps
        ops = {a["op"]: a for a in section["annotations"]}
        assert ops["crash"]["t"] == fault_at
        assert ops["restart"]["t"] == recover_at
        assert "node=" in ops["crash"]["label"]

        # the dip is visible in the expected interval window
        timeline = bracket_throughput(section, fault_at, recover_at)
        assert timeline["pre_rps"] is not None
        assert timeline["during_rps"] is not None
        assert timeline["during_rps"] < 0.8 * timeline["pre_rps"]
        assert timeline["post_rps"] is not None
