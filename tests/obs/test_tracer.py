"""Tracer unit tests: ring buffer, message identity, the core wrapper."""

from __future__ import annotations

import pytest

from repro.interfaces import (
    Broadcast,
    Delayed,
    Executed,
    Send,
    SetTimer,
    Trace,
)
from repro.messages.client import Ack, RequestBundle
from repro.messages.leopard import (
    BFTblock,
    BundleSpan,
    Datablock,
    Proof,
    Ready,
    Vote,
)
from repro.obs.tracer import (
    NULL_TRACER,
    RingTracer,
    TracedCore,
    merge_trace_parts,
    trace_data,
    trace_key,
)


class TestRingTracer:
    def test_records_in_order(self):
        tracer = RingTracer(capacity=8)
        for i in range(5):
            tracer.record(float(i), 0, "recv", "client", ("req", 4, i), None)
        assert len(tracer) == 5
        assert [e["t"] for e in tracer.events()] == [0.0, 1.0, 2.0, 3.0, 4.0]
        assert tracer.dropped == 0

    def test_ring_overwrites_oldest(self):
        tracer = RingTracer(capacity=3)
        for i in range(5):
            tracer.record(float(i), 0, "recv", "client", None, None)
        assert len(tracer) == 3
        assert [e["t"] for e in tracer.events()] == [2.0, 3.0, 4.0]
        assert tracer.dropped == 2

    def test_jsonable_converts_tuple_keys(self):
        tracer = RingTracer()
        tracer.record(0.5, 1, "send", "datablock", ("db", 1, 0),
                      {"digest": "abc"})
        dump = tracer.to_jsonable()
        assert dump["events"][0]["key"] == ["db", 1, 0]
        assert dump["dropped"] == 0

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            RingTracer(capacity=0)

    def test_sample_keeps_every_kth_request(self):
        tracer = RingTracer(capacity=64, sample=3)
        for bundle in range(7):
            tracer.record(float(bundle), 0, "recv", "client",
                          ("req", 4, bundle), None)
        kept = [e["key"][2] for e in tracer.events()]
        assert kept == [0, 3, 6]  # bundle % 3 == 0

    def test_sample_keeps_aggregate_events(self):
        tracer = RingTracer(capacity=64, sample=10)
        tracer.record(0.0, 0, "recv", "client", ("req", 4, 7), None)
        tracer.record(0.1, 0, "send", "datablock", ("db", 1, 3), None)
        tracer.record(0.2, 0, "exec", "exec", None, {"count": 5})
        kinds = [e["kind"] for e in tracer.events()]
        assert kinds == ["send", "exec"]  # only the req event sampled out
        assert tracer.to_jsonable()["sample"] == 10

    def test_rejects_bad_sample(self):
        with pytest.raises(ValueError):
            RingTracer(sample=0)

    def test_null_tracer_is_disabled_noop(self):
        assert NULL_TRACER.enabled is False
        NULL_TRACER.record(0.0, 0, "recv", "client", None, None)


class TestTraceIdentity:
    def test_client_and_ack_share_a_key(self):
        bundle = RequestBundle(4, 7, 100, 128, 0.0)
        ack = Ack(4, 7, 100, 0.0, 0.1)
        assert trace_key(bundle) == ("req", 4, 7)
        assert trace_key(bundle) == trace_key(ack)

    def test_datablock_key_and_data(self):
        block = Datablock(1, 3, 100, 128,
                          spans=(BundleSpan(4, 7, 100, 0.0),))
        assert trace_key(block) == ("db", 1, 3)
        data = trace_data(block)
        assert data["spans"] == [[4, 7]]
        assert data["digest"] == block.digest().hex()[:12]

    def test_ready_keys_on_datablock_digest(self):
        block = Datablock(1, 3, 100, 128)
        ready = Ready(block.digest())
        assert trace_key(ready) == ("dbh", block.digest().hex()[:12])

    def test_bftblock_key_and_links(self):
        block = Datablock(1, 3, 100, 128)
        bft = BFTblock(view=0, sn=5, links=(block.digest(),))
        assert trace_key(bft) == ("bft", 0, 5)
        assert trace_data(bft) == {"links": [block.digest().hex()[:12]]}

    def test_leopard_vote_and_proof_key_on_digest(self):
        block = Datablock(1, 3, 100, 128)
        vote = Vote(1, block.digest(), b"", None)
        proof = Proof(1, block.digest(), b"", None)
        assert trace_key(vote) == ("dbh", block.digest().hex()[:12])
        assert trace_key(proof) == ("prf", 1, block.digest().hex()[:12])

    def test_unknown_message_has_no_key(self):
        assert trace_key(object()) is None
        assert trace_data(object()) is None


class _ScriptedCore:
    """Minimal sans-io core returning a fixed effect list."""

    def __init__(self, node_id: int, effects) -> None:
        self.node_id = node_id
        self.effects = effects
        self.backlog_probe = None

    def start(self, now):
        return [SetTimer("t", 1.0)]

    def on_message(self, sender, msg, now):
        return list(self.effects)

    def on_timer(self, key, now):
        return []


class TestTracedCore:
    def test_stamps_recv_and_effects(self):
        block = Datablock(1, 0, 100, 128,
                          spans=(BundleSpan(4, 7, 100, 0.0),))
        effects = [
            Broadcast(block),
            Send(4, Ack(4, 7, 100, 0.0, 0.1)),
            Executed(100, info=(5,)),
            Trace("note", {"detail": 1}),
            Delayed(0.1, Send(4, Ack(4, 8, 100, 0.0, 0.1))),
        ]
        tracer = RingTracer()
        core = TracedCore(_ScriptedCore(1, effects), tracer)
        returned = core.on_message(
            4, RequestBundle(4, 7, 100, 128, 0.0), 2.0)
        assert returned == effects  # effects pass through unmodified
        kinds = [(e["kind"], e["cls"]) for e in tracer.events()]
        assert kinds == [("recv", "client"), ("bcast", "datablock"),
                         ("send", "ack"), ("exec", "exec"),
                         ("note", "note"), ("send", "ack")]
        execs = [e for e in tracer.events() if e["kind"] == "exec"]
        assert execs[0]["data"] == {"count": 100, "ids": [5]}
        assert all(e["t"] == 2.0 and e["node"] == 1
                   for e in tracer.events())

    def test_attribute_passthrough(self):
        inner = _ScriptedCore(3, [])
        core = TracedCore(inner, RingTracer())
        assert core.node_id == 3
        core.backlog_probe = lambda: 0.0  # write falls through
        assert inner.backlog_probe is not None
        assert core.effects == []

    def test_start_effects_are_not_message_events(self):
        tracer = RingTracer()
        core = TracedCore(_ScriptedCore(0, []), tracer)
        core.start(0.0)
        assert [e for e in tracer.events() if e["kind"] == "recv"] == []


class TestMergeTraceParts:
    def test_shifts_and_sorts(self):
        a = RingTracer()
        a.record(1.0, 0, "recv", "client", ("req", 4, 1), None)
        b = RingTracer()
        b.record(3.5, 1, "exec", "exec", None, {"count": 1, "ids": [0]})
        merged = merge_trace_parts([(a.to_jsonable(), 0.0),
                                    (b.to_jsonable(), 3.0)])
        assert [e["t"] for e in merged["events"]] == [0.5, 1.0]
        assert merged["dropped"] == 0
