"""TimeSeries unit tests: bucketing, merging, sections, fault brackets."""

from __future__ import annotations

import pytest

from repro.obs.timeseries import TimeSeries, bracket_throughput


class TestRecording:
    def test_rejects_bad_interval(self):
        with pytest.raises(ValueError):
            TimeSeries(interval=0.0)

    def test_executions_bucket_per_node(self):
        series = TimeSeries(interval=0.5)
        series.record_execution(0, 10, now=0.1)
        series.record_execution(0, 5, now=0.4)
        series.record_execution(1, 7, now=0.4)
        series.record_execution(0, 3, now=0.6)
        section = series.section(measure_replica=0, end=1.0)
        first, second = section["intervals"]
        assert first["committed"] == 15
        assert first["committed_all"] == 22
        assert first["throughput_rps"] == 30.0
        assert second["committed"] == 3

    def test_ack_latency_percentiles(self):
        series = TimeSeries(interval=1.0)
        for latency in (0.010, 0.020, 0.030, 0.040):
            series.record_ack(latency, now=0.5)
        entry = series.section(measure_replica=0, end=1.0)["intervals"][0]
        assert entry["acks"] == 4
        assert entry["latency_p50_s"] == pytest.approx(0.025)
        assert entry["latency_p99_s"] == pytest.approx(0.040, abs=1e-3)

    def test_sample_semantics_max_max_sum(self):
        series = TimeSeries(interval=1.0)
        series.sample(0.1, backlog_s=0.5, queue_depth=10, shaper_drops=2)
        series.sample(0.2, backlog_s=0.2, queue_depth=30, shaper_drops=3)
        entry = series.section(measure_replica=0, end=1.0)["intervals"][0]
        assert entry["backlog_s"] == 0.5       # max
        assert entry["queue_depth"] == 30      # max
        assert entry["shaper_drops"] == 5      # sum


class TestSection:
    def test_zero_fills_through_end(self):
        series = TimeSeries(interval=0.25)
        series.record_execution(0, 4, now=0.1)
        section = series.section(measure_replica=0, end=1.0)
        assert len(section["intervals"]) == 4
        assert [e["t"] for e in section["intervals"]] == [0.0, 0.25,
                                                          0.5, 0.75]
        assert [e["committed"] for e in section["intervals"]] == [4, 0,
                                                                  0, 0]
        assert section["intervals"][1]["latency_p50_s"] is None

    def test_extends_past_end_for_late_buckets(self):
        series = TimeSeries(interval=0.25)
        series.record_execution(0, 1, now=1.9)
        section = series.section(measure_replica=0, end=0.5)
        assert len(section["intervals"]) == 8
        assert section["intervals"][-1]["committed"] == 1

    def test_annotations_sorted(self):
        series = TimeSeries()
        series.annotate(3.0, "restart", "restart node=2")
        series.annotate(1.0, "crash", "crash node=2")
        section = series.section(measure_replica=0, end=0.5)
        assert [a["op"] for a in section["annotations"]] == ["crash",
                                                             "restart"]
        assert section["annotations"][0]["t"] == 1.0


class TestMergeRaw:
    def test_shift_and_pre_epoch_drop(self):
        child = TimeSeries(interval=0.25)
        child.record_execution(2, 5, now=0.1)   # before parent epoch
        child.record_execution(2, 7, now=1.1)   # bucket 4 -> t=0.0
        parent = TimeSeries(interval=0.25)
        parent.merge_raw(child.to_jsonable(), shift=1.0)
        section = parent.section(measure_replica=2, end=0.25)
        assert len(section["intervals"]) == 1
        assert section["intervals"][0]["committed"] == 7

    def test_samples_gated_to_measure_child(self):
        child = TimeSeries(interval=0.25)
        child.sample(0.1, backlog_s=0.8, queue_depth=4, shaper_drops=1)
        ignored = TimeSeries(interval=0.25)
        ignored.merge_raw(child.to_jsonable(), samples=False)
        merged = TimeSeries(interval=0.25)
        merged.merge_raw(child.to_jsonable(), samples=True)
        assert ignored.section(
            measure_replica=0, end=0.25)["intervals"][0]["backlog_s"] == 0.0
        assert merged.section(
            measure_replica=0, end=0.25)["intervals"][0]["backlog_s"] == 0.8

    def test_round_trips_through_json_types(self):
        import json

        child = TimeSeries(interval=0.25)
        child.record_execution(1, 9, now=0.3)
        child.sample(0.3, backlog_s=0.1, queue_depth=2, shaper_drops=0)
        wire = json.loads(json.dumps(child.to_jsonable()))
        parent = TimeSeries(interval=0.25)
        parent.merge_raw(wire, samples=True)
        entry = parent.section(measure_replica=1, end=0.5)["intervals"][1]
        assert entry["committed"] == 9
        assert entry["queue_depth"] == 2


class TestBracketThroughput:
    def _section(self):
        series = TimeSeries(interval=0.5)
        for t, count in ((0.2, 100), (0.7, 100),     # pre
                         (1.2, 10), (1.7, 10),       # during
                         (2.2, 80), (2.7, 90)):      # post
            series.record_execution(0, count, now=t)
        return series.section(measure_replica=0, end=3.0)

    def test_brackets_fault_window(self):
        timeline = bracket_throughput(self._section(),
                                      fault_at=1.0, recover_at=2.0)
        assert timeline["pre_rps"] == pytest.approx(200.0)
        assert timeline["during_rps"] == pytest.approx(20.0)
        assert timeline["post_rps"] == pytest.approx(170.0)
        assert timeline["fault_at"] == 1.0

    def test_empty_window_is_none(self):
        timeline = bracket_throughput(self._section(),
                                      fault_at=0.0, recover_at=3.0)
        assert timeline["pre_rps"] is None
        assert timeline["post_rps"] is None
