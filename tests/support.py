"""Test helpers: an instant-delivery loop for driving sans-io cores.

``InstantLoop`` interprets protocol effects with zero network cost and a
tiny fixed delivery delay, which keeps unit tests fast and fully
deterministic without the bandwidth/CPU models.  (Integration tests use
the real simulator instead.)
"""

from __future__ import annotations

import heapq
from typing import Hashable

from repro.interfaces import (
    Broadcast,
    CancelTimer,
    Effect,
    Executed,
    Send,
    SetTimer,
    Trace,
)


class InstantLoop:
    """Routes effects among cores with near-zero delays."""

    DELIVERY_DELAY = 1e-6

    def __init__(self, cores: dict[int, object],
                 replica_ids: list[int] | None = None) -> None:
        self.cores = dict(cores)
        self.replica_ids = (replica_ids if replica_ids is not None
                            else sorted(self.cores))
        self.now = 0.0
        self._heap: list = []
        self._seq = 0
        self._timers: dict[tuple[int, Hashable], int] = {}
        self.executed: dict[int, int] = {}
        self.traces: list[tuple[int, str, dict]] = []
        self.dropped: list[tuple[int, int, object]] = []
        #: Optional (src, dst, msg) -> bool filter; False drops the message.
        self.filter = None

    def start_all(self) -> None:
        """Invoke ``start`` on every core."""
        for node_id, core in self.cores.items():
            self._apply(node_id, core.start(self.now))

    def _push(self, when: float, action) -> None:
        self._seq += 1
        heapq.heappush(self._heap, (when, self._seq, action))

    def _apply(self, node_id: int, effects: list[Effect]) -> None:
        for effect in effects:
            if isinstance(effect, Send):
                self._route(node_id, effect.dest, effect.msg)
            elif isinstance(effect, Broadcast):
                excluded = set(effect.exclude) | {node_id}
                for dest in self.replica_ids:
                    if dest not in excluded:
                        self._route(node_id, dest, effect.msg)
            elif isinstance(effect, SetTimer):
                key = (node_id, effect.key)
                generation = self._timers.get(key, 0) + 1
                self._timers[key] = generation
                self._push(self.now + effect.delay,
                           ("timer", node_id, effect.key, generation))
            elif isinstance(effect, CancelTimer):
                self._timers.pop((node_id, effect.key), None)
            elif isinstance(effect, Executed):
                self.executed[node_id] = (
                    self.executed.get(node_id, 0) + effect.count)
            elif isinstance(effect, Trace):
                self.traces.append((node_id, effect.kind, effect.data))

    def _route(self, src: int, dst: int, msg) -> None:
        if self.filter is not None and not self.filter(src, dst, msg):
            self.dropped.append((src, dst, msg))
            return
        self._push(self.now + self.DELIVERY_DELAY,
                   ("msg", src, dst, msg))

    def deliver_external(self, src: int, dst: int, msg) -> None:
        """Inject a message from outside the loop (e.g. a synthetic client)."""
        self._route(src, dst, msg)

    def run(self, duration: float, max_steps: int = 200_000) -> int:
        """Process events for ``duration`` seconds of virtual time."""
        deadline = self.now + duration
        steps = 0
        while self._heap and self._heap[0][0] <= deadline:
            if steps >= max_steps:
                raise AssertionError("InstantLoop exceeded max_steps")
            when, _, action = heapq.heappop(self._heap)
            self.now = when
            steps += 1
            kind = action[0]
            if kind == "msg":
                _, src, dst, msg = action
                core = self.cores.get(dst)
                if core is not None:
                    self._apply(dst, core.on_message(src, msg, self.now))
            else:
                _, node_id, key, generation = action
                if self._timers.get((node_id, key)) != generation:
                    continue
                del self._timers[(node_id, key)]
                core = self.cores.get(node_id)
                if core is not None:
                    self._apply(node_id, core.on_timer(key, self.now))
        self.now = max(self.now, deadline)
        return steps
