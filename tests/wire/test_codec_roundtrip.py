"""Codec round-trip and wire-size-parity tests.

Property (ISSUE 2 acceptance): every registered message class survives
``decode(encode(msg))`` unchanged, and the encoded frame length equals the
abstract cost model's ``size_bytes()`` — so live TCP traffic and simulated
NIC accounting move identical byte counts.
"""

from __future__ import annotations

import pytest

from repro.crypto.keys import PlainSignature
from repro.crypto.merkle import MerkleTree
from repro.crypto.threshold import SignatureShare, ThresholdSignature
from repro.messages.client import Ack, RequestBundle
from repro.messages.hotstuff import HSBlock, HSNewView, HSVote, QuorumCert
from repro.messages.leopard import (
    BFTblock,
    BundleSpan,
    CheckpointProof,
    CheckpointShare,
    ChunkResponse,
    Datablock,
    NewViewMsg,
    NotarizedEntry,
    Proof,
    Query,
    Ready,
    TimeoutMsg,
    ViewChangeMsg,
    Vote,
)
from repro.messages.pbft import Commit, Prepare, PrePrepare
from repro.messages.recovery import (
    LedgerSegment,
    SegmentEntry,
    StateRequest,
    StateSnapshot,
)
from repro.wire import CodecError, decode, encode, registered_message_types
from repro.wire.codec import LENGTH_PREFIX

DIGEST = bytes(range(32))
DIGEST2 = bytes(reversed(range(32)))
SHARE = SignatureShare(2, 0x1234567890ABCDEF)
TSIG = ThresholdSignature(0xFEDCBA0987654321)
PLAIN = PlainSignature(3, bytes(32))
SPANS = (BundleSpan(9, 1, 100, 0.125), BundleSpan(10, 7, 50, 2.5))


def _datablock() -> Datablock:
    return Datablock(creator=2, counter=5, request_count=150,
                     payload_size=128, spans=SPANS, created_at=1.5)


def _bftblock() -> BFTblock:
    return BFTblock(view=1, sn=9, links=(DIGEST, DIGEST2),
                    leader_share=SHARE, proposed_at=0.75)


def _chunk_response() -> ChunkResponse:
    chunks = [bytes([i]) * 64 for i in range(4)]
    tree = MerkleTree(chunks)
    return ChunkResponse(
        block_digest=DIGEST, root=tree.root, chunk_index=1,
        chunk_data=chunks[1], proof=tree.proof(1), meta=_datablock())


def _viewchange() -> ViewChangeMsg:
    entry = NotarizedEntry(_bftblock(), TSIG)
    checkpoint = CheckpointProof(50, DIGEST, TSIG)
    return ViewChangeMsg(new_view=2, checkpoint=checkpoint,
                         entries=(entry,), signature=PLAIN)


def _new_view() -> NewViewMsg:
    return NewViewMsg(new_view=2, view_changes=(_viewchange(),),
                      redo=(_bftblock(), BFTblock(2, 10, ())),
                      signature=PLAIN)


#: One realistic instance per registered message class.
CORPUS = [
    RequestBundle(8, 3, 500, 128, 0.25, timeout_flagged=True),
    Ack(8, 3, 500, 0.25, 1.0),
    _datablock(),
    Ready(DIGEST),
    _bftblock(),
    BFTblock(3, 11, (), leader_share=None),  # dummy block, no share
    Vote(1, DIGEST, DIGEST, SHARE),
    Proof(1, DIGEST, DIGEST, TSIG),
    Proof(2, DIGEST, DIGEST2, TSIG, prior_signature=TSIG),
    Query((DIGEST, DIGEST2)),
    _chunk_response(),
    CheckpointShare(50, DIGEST, SHARE),
    CheckpointProof(50, DIGEST, TSIG),
    TimeoutMsg(4, PLAIN),
    _viewchange(),
    ViewChangeMsg(2, None, (), PLAIN),
    _new_view(),
    PrePrepare(1, 4, 200, 128, SPANS, proposed_at=0.5),
    Prepare(1, 4, DIGEST, 2),
    Commit(1, 4, DIGEST, 2),
    HSBlock(7, DIGEST, QuorumCert(DIGEST2, 6, 3), 200, 128, SPANS, 0.5),
    HSBlock(1, bytes(32), None, 100, 128),  # genesis child, no QC
    HSVote(7, DIGEST, 2),
    HSNewView(3, QuorumCert(DIGEST, 2, 3)),
    HSNewView(3, None),
    StateRequest(0, 0),  # snapshot solicitation
    StateRequest(64, 96),
    StateSnapshot(120, DIGEST, CheckpointProof(100, DIGEST2, TSIG)),
    StateSnapshot(0, bytes(32)),  # fresh replica, no checkpoint yet
    LedgerSegment(64, (SegmentEntry(65, DIGEST, 200),
                       SegmentEntry(66, DIGEST2, 150))),
    LedgerSegment(10, ()),  # truncated-empty reply (serve cap)
]


def _ids(corpus):
    counts: dict[str, int] = {}
    labels = []
    for msg in corpus:
        name = type(msg).__name__
        counts[name] = counts.get(name, 0) + 1
        labels.append(f"{name}-{counts[name]}")
    return labels


class TestRoundTrip:
    @pytest.mark.parametrize("msg", CORPUS, ids=_ids(CORPUS))
    def test_round_trip_identity(self, msg):
        sender, decoded = decode(encode(41, msg))
        assert sender == 41
        assert decoded == msg

    @pytest.mark.parametrize("msg", CORPUS, ids=_ids(CORPUS))
    def test_encoded_length_matches_wire_size_model(self, msg):
        frame = encode(0, msg)
        assert len(frame) == msg.size_bytes(), (
            f"{type(msg).__name__}: frame {len(frame)}B != "
            f"modelled {msg.size_bytes()}B")

    def test_corpus_covers_every_registered_type(self):
        corpus_types = {type(msg) for msg in CORPUS}
        registered = set(registered_message_types())
        assert registered == corpus_types

    def test_every_message_module_class_registered(self):
        """Every Message-shaped class in repro.messages has a codec."""
        import inspect

        from repro.messages import client, hotstuff, leopard, pbft, recovery

        registered = set(registered_message_types())
        missing = []
        for module in (client, hotstuff, leopard, pbft, recovery):
            for _, cls in inspect.getmembers(module, inspect.isclass):
                if cls.__module__ != module.__name__:
                    continue
                if not hasattr(cls, "msg_class"):
                    continue  # nested structures travel inside carriers
                if cls not in registered:
                    missing.append(cls.__name__)
        assert not missing, f"unregistered message classes: {missing}"


class TestFraming:
    def test_truncated_frame_rejected(self):
        frame = encode(0, Ready(DIGEST))
        with pytest.raises(CodecError):
            decode(frame[:-1])

    def test_length_prefix_is_authoritative(self):
        frame = encode(5, Ready(DIGEST))
        payload_length = int.from_bytes(frame[:LENGTH_PREFIX], "big")
        assert LENGTH_PREFIX + payload_length == len(frame)

    def test_unknown_tag_rejected(self):
        frame = bytearray(encode(0, Ready(DIGEST)))
        frame[LENGTH_PREFIX] = 255
        with pytest.raises(CodecError):
            decode(bytes(frame))

    def test_unregistered_type_rejected(self):
        with pytest.raises(CodecError):
            encode(0, object())

    def test_digest_survives_transport(self):
        """Decoded blocks recompute the same digests (identity preserved)."""
        block = _bftblock()
        _, decoded = decode(encode(1, block))
        assert decoded.digest() == block.digest()
        datablock = _datablock()
        _, decoded_db = decode(encode(1, datablock))
        assert decoded_db.digest() == datablock.digest()
        assert decoded_db.body() == datablock.body()
