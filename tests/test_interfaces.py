"""Interface-contract tests: every wire message satisfies the Message
protocol; effects behave as plain data."""

from __future__ import annotations

import pytest

from repro.interfaces import (
    Broadcast,
    CancelTimer,
    Executed,
    Message,
    Send,
    SetTimer,
    Trace,
    cpu_cost_zero,
)


def all_message_instances():
    from repro.crypto.keys import PlainSignature
    from repro.crypto.merkle import MerkleProof
    from repro.crypto.threshold import SignatureShare, ThresholdSignature
    from repro.messages.client import Ack, RequestBundle
    from repro.messages.hotstuff import HSBlock, HSNewView, HSVote, QuorumCert
    from repro.messages.leopard import (
        BFTblock, CheckpointProof, CheckpointShare, ChunkResponse,
        Datablock, NewViewMsg, Proof, Query, Ready, TimeoutMsg, Vote,
        ViewChangeMsg,
    )
    from repro.messages.pbft import Commit, Prepare, PrePrepare

    share = SignatureShare(0, 1)
    sig = ThresholdSignature(2)
    plain = PlainSignature(0, b"t" * 32)
    datablock = Datablock(1, 1, 10, 128, ())
    block = BFTblock(1, 1, (datablock.digest(),), share)
    vc = ViewChangeMsg(2, None, (), plain)
    return [
        RequestBundle(9, 1, 10, 128, 0.0),
        Ack(9, 1, 10, 0.0, 1.0),
        datablock,
        Ready(datablock.digest()),
        block,
        Vote(1, block.digest(), block.digest(), share),
        Proof(1, block.digest(), block.digest(), sig),
        Query((datablock.digest(),)),
        ChunkResponse(datablock.digest(), b"r" * 32, 0, b"c" * 10,
                      MerkleProof(0, ()), datablock),
        CheckpointShare(4, b"s" * 32, share),
        CheckpointProof(4, b"s" * 32, sig),
        TimeoutMsg(1, plain),
        vc,
        NewViewMsg(2, (vc,), (), plain),
        HSBlock(1, b"p" * 32, None, 10, 128),
        HSVote(1, b"d" * 32, 0),
        HSNewView(2, QuorumCert(b"d" * 32, 1, 3)),
        PrePrepare(1, 1, 10, 128),
        Prepare(1, 1, b"d" * 32, 0),
        Commit(1, 1, b"d" * 32, 0),
    ]


class TestMessageProtocol:
    @pytest.mark.parametrize(
        "msg", all_message_instances(),
        ids=lambda m: type(m).__name__)
    def test_satisfies_protocol(self, msg):
        assert isinstance(msg, Message)
        assert isinstance(msg.msg_class, str)
        assert msg.size_bytes() > 0

    def test_message_classes_are_known_accounting_buckets(self):
        known = {"client", "ack", "datablock", "ready", "bftblock",
                 "vote", "proof", "query", "resp", "checkpoint",
                 "viewchange", "block"}
        for msg in all_message_instances():
            assert msg.msg_class in known, msg


class TestEffects:
    def test_send_fields(self):
        send = Send(3, all_message_instances()[0])
        assert send.dest == 3

    def test_broadcast_default_excludes_nothing(self):
        broadcast = Broadcast(all_message_instances()[0])
        assert broadcast.exclude == ()

    def test_timer_effects(self):
        assert SetTimer("k", 1.0).delay == 1.0
        assert CancelTimer("k").key == "k"

    def test_executed_defaults(self):
        executed = Executed(5)
        assert executed.count == 5
        assert executed.info is None

    def test_trace_defaults(self):
        trace = Trace("ack")
        assert trace.data == {}

    def test_cpu_cost_zero(self):
        assert cpu_cost_zero(all_message_instances()[0], True) == 0.0
