"""Live-vs-sim reconciliation tests (`compare_live_sim`, ISSUE 4)."""

from __future__ import annotations

import math

import pytest

from repro.analysis.calibration import (
    RELEVANT_COSTS,
    compare_faulted_live_sim,
    compare_live_sim,
)


class TestCompareLiveSim:
    @pytest.fixture(scope="class")
    def leopard_report(self):
        return compare_live_sim(protocol="leopard", n=4,
                                total_rate=1500.0, duration=1.0,
                                bundle_size=100, warmup=0.1, seed=3)

    def test_embeds_both_standard_reports(self, leopard_report):
        assert leopard_report["kind"] == "live_vs_sim_calibration"
        assert leopard_report["live"]["backend"] == "live"
        assert leopard_report["sim"]["backend"] == "sim"
        assert leopard_report["live"]["protocol"] == "leopard"
        assert leopard_report["sim"]["protocol"] == "leopard"
        # Both backends actually committed at this point.
        for backend in ("live", "sim"):
            sub = leopard_report[backend]
            assert sub["executed_requests"].get(
                sub["measure_replica"], 0) > 0

    def test_deltas_reconcile_throughput_and_latency(self, leopard_report):
        deltas = leopard_report["deltas"]
        for key in ("throughput_rps", "latency_mean_s", "latency_p50_s",
                    "latency_p99_s"):
            entry = deltas[key]
            assert set(entry) == {"live", "sim", "abs_delta",
                                  "ratio_live_over_sim"}
        tput = deltas["throughput_rps"]
        assert tput["live"] > 0 and tput["sim"] > 0
        assert math.isclose(tput["abs_delta"],
                            tput["live"] - tput["sim"], rel_tol=1e-9)
        assert leopard_report["suggested_cost_scale"] > 0

    def test_constants_listed_for_protocol(self, leopard_report):
        constants = leopard_report["calibration_constants"]
        for name in RELEVANT_COSTS["leopard"]:
            assert name in constants
        assert "per_send_byte" in constants

    @pytest.mark.parametrize("protocol", ("pbft", "hotstuff"))
    def test_baseline_points_reconcile(self, protocol):
        report = compare_live_sim(protocol=protocol, n=4,
                                  total_rate=1500.0, duration=1.0,
                                  bundle_size=100, warmup=0.1)
        assert report["protocol"] == protocol
        assert report["live"]["throughput_rps"] > 0
        assert report["sim"]["throughput_rps"] > 0
        for name in RELEVANT_COSTS[protocol]:
            assert name in report["calibration_constants"]

    def test_unknown_protocol_rejected(self):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            compare_live_sim(protocol="tendermint", duration=0.1)


class TestCompareFaultedLiveSim:
    """The faulted gate of ISSUE 6: both backends run the same chaos
    scenario and their *degradation ratios* must reconcile."""

    @pytest.fixture(scope="class")
    def faulted_report(self):
        from repro.net.chaos import load_scenario

        scenario = load_scenario(
            "at 0.4 crash victim; at 1.0 restart victim")
        return compare_faulted_live_sim(
            protocol="leopard", scenario=scenario, n=4,
            total_rate=1500.0, duration=1.2, bundle_size=100,
            warmup=0.1, seed=3, max_degradation_gap=10.0)

    def test_embeds_clean_and_faulted_comparisons(self, faulted_report):
        assert faulted_report["kind"] == "faulted_live_vs_sim_calibration"
        assert faulted_report["clean"]["scenario"] is None
        assert faulted_report["faulted"]["scenario"] == "inline"
        # All four runs committed requests.
        for which in ("clean", "faulted"):
            for backend in ("live", "sim"):
                sub = faulted_report[which][backend]
                assert sub["executed_requests"].get(
                    sub["measure_replica"], 0) > 0

    def test_scenario_ran_on_both_backends(self, faulted_report):
        for backend in ("live", "sim"):
            faults = faulted_report["faulted"][backend]["faults"]
            assert faults["restarts"] == 1
            assert [e["op"] for e in faults["events_applied"]] \
                == ["crash", "restart"]

    def test_degradation_ratios_positive_and_gapped(self, faulted_report):
        deg = faulted_report["degradation"]
        assert 0 < deg["live"] <= 1.5  # a crash should not speed things up
        assert 0 < deg["sim"] <= 1.5
        gap = deg["gap_ratio_live_over_sim"]
        assert math.isclose(gap, deg["live"] / deg["sim"], rel_tol=1e-9)
        assert deg["max_degradation_gap"] == 10.0
        assert deg["within_bound"] is True

    def test_default_scenario_is_parsed_builtin(self, monkeypatch):
        """Passing no scenario must load the crash-restart builtin as a
        parsed ChaosScenario, not its raw text."""
        import repro.analysis.calibration as calibration_mod
        from repro.net.chaos import ChaosScenario

        seen = []

        def stub_compare(scenario=None, **kwargs):
            seen.append(scenario)
            return {"live": {"throughput_rps": 1000.0},
                    "sim": {"throughput_rps": 1000.0},
                    "scenario": scenario.name if scenario else None}

        monkeypatch.setattr(calibration_mod, "compare_live_sim",
                            stub_compare)
        report = compare_faulted_live_sim()
        assert seen[0] is None  # the clean run
        assert isinstance(seen[1], ChaosScenario)
        assert seen[1].name == "crash-restart"
        assert report["degradation"]["within_bound"] is True
