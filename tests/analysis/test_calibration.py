"""Calibration cost-model tests."""

from __future__ import annotations

import pytest

from repro.analysis.calibration import (
    CostModel,
    DEFAULT_COSTS,
    client_cpu_model,
    hotstuff_cpu_model,
    leopard_cpu_model,
    pbft_cpu_model,
)
from repro.messages.client import RequestBundle
from repro.messages.hotstuff import HSBlock, HSVote, QuorumCert
from repro.messages.leopard import Datablock, Proof, Query, Ready, Vote
from repro.crypto.threshold import SignatureShare, ThresholdSignature


SHARE = SignatureShare(0, 1)
SIG = ThresholdSignature(2)


class TestLeopardModel:
    def setup_method(self):
        self.model = leopard_cpu_model(DEFAULT_COSTS)

    def test_datablock_cost_scales_with_requests(self):
        small = self.model(Datablock(1, 1, 100, 128, ()), True)
        large = self.model(Datablock(1, 1, 1000, 128, ()), True)
        assert large == pytest.approx(
            small + 900 * DEFAULT_COSTS.leopard_verify_exec_per_request)

    def test_client_bundle_cost(self):
        cost = self.model(RequestBundle(9, 1, 500, 128, 0.0), True)
        assert cost == pytest.approx(
            DEFAULT_COSTS.per_message
            + 500 * DEFAULT_COSTS.leopard_ingest_per_request)

    def test_vote_costs_share_verify(self):
        cost = self.model(Vote(1, b"d" * 32, b"d" * 32, SHARE), True)
        assert cost == pytest.approx(
            DEFAULT_COSTS.per_message + DEFAULT_COSTS.share_verify)

    def test_round1_proof_includes_resigning(self):
        round1 = self.model(Proof(1, b"d" * 32, b"d" * 32, SIG), True)
        round2 = self.model(Proof(2, b"d" * 32, b"p" * 32, SIG, SIG), True)
        assert round1 - round2 == pytest.approx(DEFAULT_COSTS.share_sign)

    def test_send_cost_scales_with_bytes(self):
        small = self.model(Ready(b"d" * 32), False)
        big = self.model(Datablock(1, 1, 2000, 128, ()), False)
        assert big > small

    def test_ready_and_query_are_cheap(self):
        assert self.model(Ready(b"d" * 32), True) \
            == DEFAULT_COSTS.per_message
        assert self.model(Query((b"d" * 32,)), True) \
            == DEFAULT_COSTS.per_message

    def test_throughput_ceiling_is_paper_scale(self):
        # The calibrated verify+execute path must put the Leopard ceiling
        # in the paper's 10^5 requests/second regime.
        ceiling = 1.0 / DEFAULT_COSTS.leopard_verify_exec_per_request
        assert 5e4 < ceiling < 5e5


class TestHotStuffModel:
    def setup_method(self):
        self.model = hotstuff_cpu_model(DEFAULT_COSTS)

    def test_block_cost_scales_with_requests(self):
        qc = QuorumCert(b"q" * 32, 1, 3)
        small = self.model(HSBlock(2, b"p" * 32, qc, 100, 128), True)
        large = self.model(HSBlock(2, b"p" * 32, qc, 800, 128), True)
        assert large > small

    def test_vote_cost(self):
        cost = self.model(HSVote(1, b"d" * 32, 0), True)
        assert cost == pytest.approx(
            DEFAULT_COSTS.per_message + DEFAULT_COSTS.ecdsa_verify)

    def test_leader_egress_dominates_at_scale(self):
        # Per-copy send cost x (n-1) copies is what caps the leader.
        block = HSBlock(2, b"p" * 32, None, 800, 128)
        send = self.model(block, False)
        assert send > 800 * 128 * DEFAULT_COSTS.per_send_byte


class TestPbftModel:
    def test_ingest_heavier_than_hotstuff(self):
        # BFT-SMaRt's per-request software overhead exceeds libhotstuff's
        # (Fig. 1's gap at small scales).
        assert DEFAULT_COSTS.pbft_ingest_per_request \
            > DEFAULT_COSTS.hotstuff_ingest_per_request

    def test_vote_cost(self):
        from repro.messages.pbft import Prepare
        model = pbft_cpu_model(DEFAULT_COSTS)
        cost = model(Prepare(1, 1, b"d" * 32, 0), True)
        assert cost == pytest.approx(
            DEFAULT_COSTS.per_message + DEFAULT_COSTS.mac_verify)


class TestClientModel:
    def test_client_costs_are_nominal(self):
        model = client_cpu_model(DEFAULT_COSTS)
        bundle = RequestBundle(9, 1, 500, 128, 0.0)
        assert model(bundle, True) == DEFAULT_COSTS.per_message
        assert model(bundle, False) > 0


class TestCustomCosts:
    def test_cost_model_is_adjustable(self):
        slow = CostModel(leopard_verify_exec_per_request=1e-4)
        model = leopard_cpu_model(slow)
        cost = model(Datablock(1, 1, 1000, 128, ()), True)
        assert cost > 0.09
