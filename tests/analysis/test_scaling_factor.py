"""Tests for the closed-form cost model (paper §V-B, Table I, Eq. 1-4)."""

from __future__ import annotations


import pytest
from hypothesis import given, strategies as st

from repro.analysis import scaling_factor as sf


def params(n=301, datablock_requests=2000, bftblock_links=100):
    return sf.LeopardParameters(
        n=n, datablock_requests=datablock_requests,
        bftblock_links=bftblock_links)


class TestLeopardCosts:
    def test_leader_cost_close_to_one(self):
        # Eq. (2): with paper parameters, the leader's per-bit cost is
        # dominated by receiving each request exactly once.
        cost = sf.leopard_leader_cost(params())
        assert 1.0 < cost < 1.5

    def test_replica_cost_close_to_two(self):
        # Eq. (3): a non-leader forwards each bit roughly twice.
        cost = sf.leopard_replica_cost(params())
        assert 2.0 < cost < 2.5

    def test_scaling_factor_is_constant_with_alpha_rule(self):
        # α = λ(n-1) keeps SF flat as n grows (the §V-B headline).
        lam_bits = 2000 * 128 * 8 / 300  # λ from the n=301 baseline
        values = []
        for n in (301, 601, 1201):
            requests = int(sf.alpha_for_constant_sf(n, lam_bits)
                           / (128 * 8))
            values.append(sf.leopard_scaling_factor(
                params(n=n, datablock_requests=requests)))
        assert max(values) - min(values) < 0.05

    def test_scaling_factor_grows_without_alpha_rule(self):
        # Fixing a small α while n grows degrades SF: the leader's
        # BFTblock-dissemination term (β + 4κ/τ)(n-1)/α resurfaces.
        small = sf.leopard_scaling_factor(
            params(n=31, datablock_requests=200))
        large = sf.leopard_scaling_factor(
            params(n=3001, datablock_requests=200))
        assert large > small

    @given(st.integers(min_value=4, max_value=2000))
    def test_leader_based_sf_is_linear(self, n):
        assert sf.leader_based_scaling_factor(n) == n - 1


class TestScalingUp:
    def test_leopard_gamma_approaches_half(self):
        gamma = sf.leopard_scaling_up_gamma(params())
        assert 0.4 < gamma <= 0.5

    def test_leader_based_gamma_vanishes(self):
        assert sf.leader_based_scaling_up_gamma(4) == pytest.approx(1 / 3)
        assert sf.leader_based_scaling_up_gamma(601) == pytest.approx(1 / 600)

    def test_gamma_ordering_matches_paper(self):
        # Leopard's γ dominates the leader-based γ at every tested scale.
        for n in (16, 64, 256, 600):
            assert sf.leopard_scaling_up_gamma(params(n=n)) \
                > sf.leader_based_scaling_up_gamma(n)


class TestRetrievalOverheads:
    def test_response_size_matches_figure12(self):
        # 2000-request datablock: recovering ≈ α + proofs (~325 KB in the
        # paper); responding ≈ α/(f+1) + β·log n.
        p = params(n=128, datablock_requests=2000)
        response_bits = sf.retrieval_response_size_bits(p)
        assert response_bits < p.alpha_bits / 10  # collapses with f
        recover_bits = (p.f + 1) * response_bits
        assert recover_bits == pytest.approx(p.alpha_bits, rel=0.05)

    def test_selective_attack_overhead_is_constant_factor(self):
        # §V-B case (b): bounded by ~5/3 of the payload volume plus a
        # logarithmic term, independent of n when α = Θ(n).
        for n in (31, 301, 601):
            requests = 8 * n  # α growing linearly in n
            overhead = sf.selective_attack_overhead(
                params(n=n, datablock_requests=requests))
            assert overhead < 2.5

    def test_asynchronous_overhead_larger(self):
        p = params(n=64)
        assert sf.asynchronous_overhead(p) \
            > sf.selective_attack_overhead(p)


class TestTable1:
    def test_rows(self):
        rows = {row.protocol: row for row in sf.table1_rows()}
        assert rows["Leopard"].scaling_factor == "O(1)"
        assert rows["HotStuff"].scaling_factor == "O(n)"
        assert rows["PBFT"].voting_rounds_optimistic == 2
        assert rows["SBFT"].voting_rounds_optimistic == 1
        assert rows["HotStuff"].voting_rounds_faulty == 1
        assert rows["Leopard"].voting_rounds_faulty == 3
        assert rows["Leopard"].leader_communication == "O(1)"


class TestThroughputPrediction:
    def test_predicted_throughput(self):
        # C = 6 Gbps, SF = 2, payload 128 B -> ~2.9 M requests/s.
        rps = sf.predicted_throughput(6e9, 2.0)
        assert rps == pytest.approx(6e9 / (2 * 1024))

    def test_invalid_sf(self):
        with pytest.raises(ValueError):
            sf.predicted_throughput(1e9, 0)

    def test_crossover_scale(self):
        # With a 105 Kreq/s Leopard ceiling and 6 Gbps egress, HotStuff
        # falls below Leopard somewhere in the tens of replicas.
        n = sf.crossover_scale(12e9, 105_000.0)
        assert 30 < n < 120
