"""Calibration grid sweep and per-host CostModel presets."""

from __future__ import annotations

import json
import math

import pytest

from repro.analysis import calibration
from repro.analysis.calibration import (
    DEFAULT_COSTS,
    RELEVANT_COSTS,
    host_cost_preset,
    save_host_preset,
    scaled_costs,
    sweep_live_sim,
)
from repro.perf import host_fingerprint


class TestScaledCosts:
    def test_scales_protocol_constants(self):
        scaled = scaled_costs(2.0, "leopard")
        for name in RELEVANT_COSTS["leopard"]:
            assert getattr(scaled, name) == pytest.approx(
                2.0 * getattr(DEFAULT_COSTS, name))
        # Shared dispatch costs scale too…
        assert scaled.per_message == pytest.approx(
            2.0 * DEFAULT_COSTS.per_message)
        # …but other protocols' constants do not.
        assert scaled.mac_verify == DEFAULT_COSTS.mac_verify

    def test_rejects_nonsense_scales(self):
        with pytest.raises(ValueError):
            scaled_costs(0.0)
        with pytest.raises(ValueError):
            scaled_costs(float("nan"))


def _fake_point(scale: float, n: int = 4) -> dict:
    return {"n": n, "suggested_cost_scale": scale,
            "live": {"executed_requests": {1: 100}, "measure_replica": 1},
            "sim": {"executed_requests": {1: 100}, "measure_replica": 1}}


class TestSweep:
    def test_combines_scales_geometrically(self, monkeypatch):
        scales = iter([2.0, 0.5, 4.0])

        def fake_compare(**kwargs):
            return _fake_point(next(scales), kwargs["n"])

        monkeypatch.setattr(calibration, "compare_live_sim",
                            lambda **kw: fake_compare(**kw))
        report = sweep_live_sim(grid=((4, 1000.0, 128), (4, 2000.0, 128),
                                      (7, 2000.0, 128)))
        assert report["kind"] == "calibration_sweep"
        assert len(report["points"]) == 3
        expected = math.exp((math.log(2.0) + math.log(0.5)
                             + math.log(4.0)) / 3.0)
        assert report["combined_cost_scale"] == pytest.approx(expected)
        assert report["host"] == host_fingerprint()

    def test_handles_unusable_scales(self, monkeypatch):
        monkeypatch.setattr(calibration, "compare_live_sim",
                            lambda **kw: _fake_point(None, kw["n"]))
        report = sweep_live_sim(grid=((4, 1000.0, 128),))
        assert report["combined_cost_scale"] is None


class TestPresets:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "presets.json"
        report = {"kind": "calibration_sweep", "protocol": "leopard",
                  "host": host_fingerprint(),
                  "grid": [[4, 1000.0, 128]],
                  "points": [_fake_point(1.5)],
                  "combined_cost_scale": 1.5}
        presets = save_host_preset(report, path)
        assert presets[host_fingerprint()]["leopard"]["scale"] == 1.5
        stored = json.loads(path.read_text())
        assert stored == presets

        costs = host_cost_preset("leopard", path)
        assert costs.leopard_verify_exec_per_request == pytest.approx(
            1.5 * DEFAULT_COSTS.leopard_verify_exec_per_request)

    def test_missing_file_and_host_fall_back(self, tmp_path):
        missing = tmp_path / "nope.json"
        assert host_cost_preset("leopard", missing) is DEFAULT_COSTS
        other = tmp_path / "other.json"
        other.write_text(json.dumps(
            {"someone-else": {"leopard": {"scale": 3.0}}}))
        assert host_cost_preset("leopard", other) is DEFAULT_COSTS

    def test_no_scale_rejected(self, tmp_path):
        report = {"kind": "calibration_sweep", "protocol": "leopard",
                  "host": "h", "grid": [], "points": [],
                  "combined_cost_scale": None}
        with pytest.raises(ValueError):
            save_host_preset(report, tmp_path / "p.json")
