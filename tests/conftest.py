"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.core.config import LeopardConfig
from repro.crypto.keys import KeyRegistry


@pytest.fixture(scope="session")
def registry4() -> KeyRegistry:
    """A dealt key registry for n=4, f=1 (session-cached: dealing is slow)."""
    return KeyRegistry(4, 1, seed=42)


@pytest.fixture(scope="session")
def registry7() -> KeyRegistry:
    """A dealt key registry for n=7, f=2."""
    return KeyRegistry(7, 2, seed=42)


@pytest.fixture
def config4() -> LeopardConfig:
    """A small, fast Leopard configuration for n=4."""
    return LeopardConfig(
        n=4,
        datablock_size=50,
        bftblock_max_links=5,
        proposal_interval=0.01,
        max_proposal_delay=0.03,
        generation_interval=0.001,
        max_batch_delay=0.02,
        retrieval_timeout=0.05,
        checkpoint_period=4,
        progress_timeout=0.5,
    )
