"""Reed--Solomon erasure-code tests, including the any-(f+1)-subset
property the retrieval mechanism relies on (paper Algorithm 3)."""

from __future__ import annotations

import itertools
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.reed_solomon import (
    Chunk,
    ReedSolomonCode,
    ReedSolomonError,
    leopard_code,
)


class TestParameters:
    def test_rejects_zero_data_shards(self):
        with pytest.raises(ReedSolomonError):
            ReedSolomonCode(0, 4)

    def test_rejects_total_below_data(self):
        with pytest.raises(ReedSolomonError):
            ReedSolomonCode(5, 4)

    def test_rejects_over_256_shards(self):
        with pytest.raises(ReedSolomonError):
            ReedSolomonCode(2, 257)

    def test_leopard_code_is_f_plus_1_of_n(self):
        code = leopard_code(faults=2, replicas=7)
        assert code.data_shards == 3
        assert code.total_shards == 7

    def test_parity_shards(self):
        assert ReedSolomonCode(3, 7).parity_shards == 4

    def test_shard_size_rounding(self):
        code = ReedSolomonCode(3, 5)
        assert code.shard_size(9) == 3
        assert code.shard_size(10) == 4
        assert code.shard_size(0) == 1

    def test_shard_size_negative_raises(self):
        with pytest.raises(ReedSolomonError):
            ReedSolomonCode(2, 4).shard_size(-1)


class TestRoundTrip:
    def test_systematic_prefix(self):
        code = ReedSolomonCode(2, 4)
        message = b"hello-world!"
        chunks = code.encode(message)
        framed = len(message).to_bytes(4, "big") + message
        data_bytes = b"".join(c.data for c in chunks[:2])
        assert data_bytes.startswith(framed)

    def test_decode_from_data_shards(self):
        code = ReedSolomonCode(3, 6)
        message = bytes(range(100))
        chunks = code.encode(message)
        assert code.decode(chunks[:3]) == message

    def test_decode_from_parity_only(self):
        code = ReedSolomonCode(3, 6)
        message = b"parity decoding works" * 5
        chunks = code.encode(message)
        assert code.decode(chunks[3:]) == message

    def test_every_subset_decodes_small(self):
        code = ReedSolomonCode(2, 5)
        message = b"exhaustive subsets"
        chunks = code.encode(message)
        for subset in itertools.combinations(chunks, 2):
            assert code.decode(list(subset)) == message

    def test_empty_message(self):
        code = ReedSolomonCode(2, 4)
        assert code.decode(code.encode(b"")[2:]) == b""

    @settings(max_examples=40, deadline=None)
    @given(st.binary(min_size=0, max_size=512),
           st.integers(min_value=1, max_value=5),
           st.integers(min_value=0, max_value=5),
           st.randoms(use_true_random=False))
    def test_random_subset_roundtrip(self, message, k, extra, rng):
        n = k + extra
        code = ReedSolomonCode(k, n)
        chunks = code.encode(message)
        subset = rng.sample(chunks, k)
        assert code.decode(subset) == message

    def test_duplicate_chunks_do_not_count_twice(self):
        code = ReedSolomonCode(3, 6)
        chunks = code.encode(b"x" * 50)
        with pytest.raises(ReedSolomonError):
            code.decode([chunks[0], chunks[0], chunks[0]])

    def test_extra_chunks_are_fine(self):
        code = ReedSolomonCode(3, 6)
        message = b"extra chunks ok"
        chunks = code.encode(message)
        assert code.decode(chunks) == message


class TestValidation:
    def test_too_few_chunks(self):
        code = ReedSolomonCode(3, 6)
        chunks = code.encode(b"abc")
        with pytest.raises(ReedSolomonError):
            code.decode(chunks[:2])

    def test_out_of_range_index(self):
        code = ReedSolomonCode(2, 4)
        with pytest.raises(ReedSolomonError):
            code.decode([Chunk(9, b"xx"), Chunk(0, b"yy")])

    def test_inconsistent_sizes(self):
        code = ReedSolomonCode(2, 4)
        chunks = code.encode(b"some message")
        bad = [chunks[0], Chunk(1, chunks[1].data + b"z")]
        with pytest.raises(ReedSolomonError):
            code.decode(bad)

    def test_corrupted_chunk_changes_output(self):
        # RS is an erasure (not error-correcting-with-detection) code
        # here: a silently corrupted chunk yields a wrong message, which
        # is why the retrieval path checks Merkle proofs per chunk.
        code = ReedSolomonCode(2, 4)
        message = b"integrity is the caller's job"
        chunks = code.encode(message)
        corrupted = Chunk(3, bytes(b ^ 0xFF for b in chunks[3].data))
        try:
            decoded = code.decode([chunks[2], corrupted])
        except ReedSolomonError:
            return  # also acceptable: length prefix became implausible
        assert decoded != message


class TestEncodeMany:
    def test_matches_single_encode(self):
        code = ReedSolomonCode(3, 7)
        messages = [b"", b"x", b"hello world" * 40, bytes(range(256))]
        batched = code.encode_many(messages)
        for message, chunks in zip(messages, batched):
            assert chunks == code.encode(message)

    def test_empty_batch(self):
        assert ReedSolomonCode(2, 4).encode_many([]) == []

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.binary(min_size=0, max_size=200),
                    min_size=1, max_size=6),
           st.integers(min_value=1, max_value=4),
           st.integers(min_value=0, max_value=4))
    def test_batched_roundtrip_mixed_sizes(self, messages, k, extra):
        code = ReedSolomonCode(k, k + extra)
        for message, chunks in zip(messages, code.encode_many(messages)):
            assert code.decode(chunks[-k:]) == message

    def test_no_parity_code(self):
        code = ReedSolomonCode(3, 3)
        message = b"no parity at all"
        chunks = code.encode_many([message])[0]
        assert len(chunks) == 3
        assert code.decode(chunks) == message


class TestDecodeFastPathsAndCache:
    def test_all_data_shards_skip_inversion(self):
        code = ReedSolomonCode(4, 8)
        message = b"systematic fast path" * 9
        chunks = code.encode(message)
        assert code.decode(chunks[:4]) == message
        info = code.decode_cache_info()
        assert info["misses"] == 0 and info["hits"] == 0

    def test_data_shards_preferred_over_parity(self):
        # All data shards present among extras: still no inversion.
        code = ReedSolomonCode(3, 6)
        message = b"prefer data shards"
        chunks = code.encode(message)
        assert code.decode([chunks[5], *chunks[:3], chunks[4]]) == message
        assert code.decode_cache_info()["misses"] == 0

    def test_partial_survivors_use_cache(self):
        code = ReedSolomonCode(3, 6)
        message = b"cache the decode plan" * 3
        chunks = code.encode(message)
        survivors = [chunks[0], chunks[4], chunks[5]]
        assert code.decode(survivors) == message
        assert code.decode(survivors) == message
        info = code.decode_cache_info()
        assert info["misses"] == 1 and info["hits"] == 1

    def test_cache_keyed_by_survivor_set(self):
        code = ReedSolomonCode(2, 5)
        chunks = code.encode(b"many survivor sets")
        code.decode([chunks[0], chunks[3]])
        code.decode([chunks[1], chunks[3]])
        code.decode([chunks[0], chunks[3]])
        info = code.decode_cache_info()
        assert info["misses"] == 2 and info["hits"] == 1

    def test_cache_is_lru_bounded(self):
        code = ReedSolomonCode(2, 5)
        code.DECODE_CACHE_SIZE = 2  # shadow the class default
        message = b"bounded"
        chunks = code.encode(message)
        survivor_sets = [[chunks[0], chunks[2]], [chunks[0], chunks[3]],
                         [chunks[0], chunks[4]], [chunks[1], chunks[2]]]
        for survivors in survivor_sets:
            assert code.decode(survivors) == message
        info = code.decode_cache_info()
        assert info["size"] == 2
        assert info["misses"] == 4
        # Least-recently-used plan was evicted; re-decoding it misses again.
        assert code.decode(survivor_sets[0]) == message
        assert code.decode_cache_info()["misses"] == 5
        # Most-recent plan is still cached.
        assert code.decode(survivor_sets[-1]) == message
        assert code.decode_cache_info()["hits"] == 1

    def test_cache_is_byte_bounded(self):
        code = ReedSolomonCode(2, 6)
        code.DECODE_CACHE_BYTES = 1  # every second plan must evict
        message = b"tiny byte budget"
        chunks = code.encode(message)
        for parity in range(2, 6):
            assert code.decode([chunks[0], chunks[parity]]) == message
        info = code.decode_cache_info()
        assert info["size"] == 1  # never below one entry, never above budget
        assert info["misses"] == 4
        # Accounting matches the one surviving plan (a 1x2 inverse row).
        assert info["nbytes"] == 2

    def test_small_missing_sets_skip_gather_tables(self):
        # The kernel ignores gather tables for <=4 output rows, so plans
        # with few missing data shards must not build (or cache) them.
        code = ReedSolomonCode(8, 12)
        message = b"partial survivors" * 11
        chunks = code.encode(message)
        survivors = chunks[1:8] + [chunks[9]]  # one missing data shard
        assert code.decode(survivors) == message
        plan = next(iter(code._decode_plans.values()))
        assert plan.missing == (0,)
        assert plan.tables is None

    @settings(max_examples=40, deadline=None)
    @given(st.binary(min_size=0, max_size=300),
           st.integers(min_value=1, max_value=6),
           st.integers(min_value=0, max_value=6),
           st.randoms(use_true_random=False))
    def test_random_erasure_patterns(self, message, k, extra, rng):
        """Any k-subset reconstructs, whatever mix of data/parity."""
        code = ReedSolomonCode(k, k + extra)
        chunks = code.encode(message)
        for _ in range(3):
            survivors = rng.sample(chunks, k)
            assert code.decode(survivors) == message

    def test_one_byte_message(self):
        code = ReedSolomonCode(3, 7)
        chunks = code.encode(b"z")
        assert code.decode(chunks[4:]) == b"z"


class TestLargeBlocks:
    def test_datablock_sized_roundtrip(self):
        # A paper-sized datablock: 2000 requests x 128 B = 256 KB.
        rng = random.Random(7)
        message = rng.randbytes(2000 * 128)
        code = leopard_code(faults=10, replicas=31)
        chunks = code.encode(message)
        subset = rng.sample(chunks, 11)
        assert code.decode(subset) == message

    def test_chunk_size_amortization(self):
        # The per-chunk size must shrink ~1/(f+1): the §V-B claim that
        # responding costs α/(f+1) + O(log n).
        message = b"q" * 100_000
        small = leopard_code(1, 4)
        large = leopard_code(10, 31)
        small_chunk = len(small.encode(message)[0].data)
        large_chunk = len(large.encode(message)[0].data)
        assert small_chunk > 4 * large_chunk
