"""Shamir secret-sharing tests: reconstruction and threshold properties."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto import shamir


class TestSplitValidation:
    def test_rejects_out_of_range_secret(self):
        with pytest.raises(shamir.ShamirError):
            shamir.split(shamir.PRIME, 2, 3)

    def test_rejects_zero_threshold(self):
        with pytest.raises(shamir.ShamirError):
            shamir.split(1, 0, 3)

    def test_rejects_fewer_shares_than_threshold(self):
        with pytest.raises(shamir.ShamirError):
            shamir.split(1, 4, 3)

    def test_share_xs_are_one_based_and_distinct(self):
        shares = shamir.split(123, 3, 7, random.Random(1))
        assert [s.x for s in shares] == list(range(1, 8))


class TestReconstruction:
    @settings(max_examples=30, deadline=None)
    @given(st.integers(min_value=0, max_value=shamir.PRIME - 1),
           st.integers(min_value=1, max_value=6),
           st.integers(min_value=0, max_value=4),
           st.randoms(use_true_random=False))
    def test_any_threshold_subset_reconstructs(self, secret, t, extra, rng):
        n = t + extra
        shares = shamir.split(secret, t, n, random.Random(rng.random()))
        subset = rng.sample(shares, t)
        assert shamir.reconstruct(subset, t) == secret

    def test_all_shares_reconstruct(self):
        shares = shamir.split(98765, 4, 9, random.Random(2))
        assert shamir.reconstruct(shares, 4) == 98765

    def test_below_threshold_raises(self):
        shares = shamir.split(55, 3, 5, random.Random(3))
        with pytest.raises(shamir.ShamirError):
            shamir.reconstruct(shares[:2], 3)

    def test_duplicates_do_not_satisfy_threshold(self):
        shares = shamir.split(55, 3, 5, random.Random(4))
        with pytest.raises(shamir.ShamirError):
            shamir.reconstruct([shares[0]] * 5, 3)

    def test_below_threshold_subset_gives_no_information(self):
        # With t-1 shares, every candidate secret is consistent with some
        # polynomial: verify two different dealer secrets can produce the
        # same t-1 shares (information-theoretic hiding, spot check).
        rng = random.Random(5)
        shares_a = shamir.split(111, 2, 3, rng)
        # A degree-1 polynomial through (1, shares_a[0].y) with a
        # different secret exists: construct it explicitly.
        x1, y1 = shares_a[0].x, shares_a[0].y
        other_secret = 999
        slope = ((y1 - other_secret) * pow(x1, -1, shamir.PRIME)) % shamir.PRIME
        y_other = (other_secret + slope * x1) % shamir.PRIME
        assert y_other == y1  # same single share, different secret


class TestLagrange:
    def test_rejects_duplicate_points(self):
        with pytest.raises(shamir.ShamirError):
            shamir.lagrange_coefficients_at_zero([1, 1, 2])

    def test_rejects_zero_point(self):
        with pytest.raises(shamir.ShamirError):
            shamir.lagrange_coefficients_at_zero([0, 1, 2])

    def test_coefficients_sum_to_one(self):
        # Interpolating the constant polynomial 1 at zero must give 1.
        coefficients = shamir.lagrange_coefficients_at_zero([1, 2, 5, 9])
        assert sum(coefficients) % shamir.PRIME == 1

    @given(st.lists(st.integers(min_value=1, max_value=200),
                    min_size=1, max_size=8, unique=True))
    def test_interpolation_of_linear_polynomial(self, xs):
        # p(x) = 7 + 3x: interpolation at 0 from any points must give 7.
        shares = [shamir.Share(x, (7 + 3 * x) % shamir.PRIME) for x in xs]
        coefficients = shamir.lagrange_coefficients_at_zero(xs)
        value = sum(c * s.y for c, s in zip(coefficients, shares)) % shamir.PRIME
        if len(xs) >= 2:
            assert value == 7
