"""Hashing-primitive tests."""

from __future__ import annotations

import hashlib

from hypothesis import given, strategies as st

from repro.crypto.hashing import DIGEST_SIZE, combine, digest, digest_hex


class FakeHashable:
    def __init__(self, payload: bytes) -> None:
        self.payload = payload

    def canonical_bytes(self) -> bytes:
        return self.payload


class TestDigest:
    def test_matches_sha256(self):
        assert digest(b"abc") == hashlib.sha256(b"abc").digest()

    def test_size_is_beta(self):
        assert len(digest(b"x")) == DIGEST_SIZE == 32

    def test_accepts_hashable_objects(self):
        assert digest(FakeHashable(b"abc")) == digest(b"abc")

    def test_accepts_bytearray_and_memoryview(self):
        assert digest(bytearray(b"abc")) == digest(b"abc")
        assert digest(memoryview(b"abc")) == digest(b"abc")

    def test_hex_form(self):
        assert digest_hex(b"abc") == digest(b"abc").hex()


class TestCombine:
    def test_length_framing_prevents_ambiguity(self):
        # ("ab", "c") and ("a", "bc") must hash differently.
        assert combine(b"ab", b"c") != combine(b"a", b"bc")

    def test_empty_parts_are_distinct(self):
        assert combine() != combine(b"")
        assert combine(b"") != combine(b"", b"")

    @given(st.lists(st.binary(max_size=16), max_size=5))
    def test_deterministic(self, parts):
        assert combine(*parts) == combine(*parts)

    @given(st.binary(max_size=16), st.binary(max_size=16))
    def test_order_matters(self, a, b):
        if a != b:
            assert combine(a, b) != combine(b, a)
