"""Threshold-signature tests: the TS = (TSig, TVrf, TSR) API of §III-B."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto import threshold


@pytest.fixture(scope="module")
def scheme_and_signers():
    return threshold.generate(3, 4, seed=11)


class TestShares:
    def test_share_verifies(self, scheme_and_signers):
        scheme, signers = scheme_and_signers
        share = signers[0].sign(b"message")
        assert scheme.verify_share(share, b"message")

    def test_share_fails_other_message(self, scheme_and_signers):
        scheme, signers = scheme_and_signers
        share = signers[0].sign(b"message")
        assert not scheme.verify_share(share, b"other")

    def test_share_fails_wrong_signer_claim(self, scheme_and_signers):
        scheme, signers = scheme_and_signers
        share = signers[0].sign(b"m")
        forged = threshold.SignatureShare(1, share.value)
        assert not scheme.verify_share(forged, b"m")

    def test_out_of_range_signer_rejected(self, scheme_and_signers):
        scheme, _ = scheme_and_signers
        assert not scheme.verify_share(
            threshold.SignatureShare(99, 123), b"m")

    def test_wire_sizes_match_bls(self, scheme_and_signers):
        scheme, signers = scheme_and_signers
        share = signers[0].sign(b"m")
        combined = scheme.combine(
            [s.sign(b"m") for s in signers[:3]], b"m")
        assert share.size_bytes() == 48  # κ in the paper
        assert combined.size_bytes() == 48


class TestCombine:
    def test_combine_exact_threshold(self, scheme_and_signers):
        scheme, signers = scheme_and_signers
        shares = [s.sign(b"payload") for s in signers[:3]]
        signature = scheme.combine(shares, b"payload")
        assert scheme.verify(signature, b"payload")

    def test_combine_any_subset_gives_same_signature(self,
                                                     scheme_and_signers):
        scheme, signers = scheme_and_signers
        all_shares = [s.sign(b"same") for s in signers]
        import itertools
        signatures = {
            scheme.combine(list(subset), b"same").value
            for subset in itertools.combinations(all_shares, 3)}
        assert len(signatures) == 1

    def test_combine_below_threshold_raises(self, scheme_and_signers):
        scheme, signers = scheme_and_signers
        shares = [s.sign(b"p") for s in signers[:2]]
        with pytest.raises(threshold.ThresholdError):
            scheme.combine(shares, b"p")

    def test_invalid_shares_do_not_count(self, scheme_and_signers):
        scheme, signers = scheme_and_signers
        shares = [s.sign(b"p") for s in signers[:2]]
        shares.append(threshold.SignatureShare(3, 424242))
        with pytest.raises(threshold.ThresholdError):
            scheme.combine(shares, b"p")

    def test_duplicate_signers_do_not_count(self, scheme_and_signers):
        scheme, signers = scheme_and_signers
        share = signers[0].sign(b"p")
        with pytest.raises(threshold.ThresholdError):
            scheme.combine([share, share, share], b"p")

    def test_combined_fails_on_other_message(self, scheme_and_signers):
        scheme, signers = scheme_and_signers
        signature = scheme.combine(
            [s.sign(b"a") for s in signers[:3]], b"a")
        assert not scheme.verify(signature, b"b")


class TestGenerate:
    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=1, max_value=4),
           st.integers(min_value=0, max_value=3),
           st.integers(min_value=0, max_value=2 ** 32))
    def test_generate_roundtrip(self, t, extra, seed):
        n = t + extra
        scheme, signers = threshold.generate(t, n, seed=seed)
        message = seed.to_bytes(5, "big")
        shares = [s.sign(message) for s in signers[:t]]
        assert scheme.verify(scheme.combine(shares, message), message)

    def test_deterministic_from_seed(self):
        a, _ = threshold.generate(3, 4, seed=5)
        b, _ = threshold.generate(3, 4, seed=5)
        assert a.public_key == b.public_key

    def test_different_seeds_differ(self):
        a, _ = threshold.generate(3, 4, seed=5)
        b, _ = threshold.generate(3, 4, seed=6)
        assert a.public_key != b.public_key

    def test_leopard_parameters(self):
        # n = 3f+1 = 7, quorum 2f+1 = 5.
        scheme, signers = threshold.generate(5, 7, seed=1)
        assert scheme.threshold == 5
        assert scheme.total == 7
        shares = [s.sign(b"x") for s in signers[2:7]]
        assert scheme.verify(scheme.combine(shares, b"x"), b"x")


class TestBatchVerify:
    """The aggregate verify_shares API (ROADMAP: batch share verification)."""

    def test_all_valid_shares_pass(self, scheme_and_signers):
        scheme, signers = scheme_and_signers
        shares = [s.sign(b"m") for s in signers]
        assert scheme.verify_shares(shares, b"m") == shares

    def test_invalid_shares_filtered(self, scheme_and_signers):
        scheme, signers = scheme_and_signers
        good = [s.sign(b"m") for s in signers[:3]]
        bad = [threshold.SignatureShare(3, 12345),
               threshold.SignatureShare(99, 1)]
        assert scheme.verify_shares(good + bad, b"m") == good

    def test_duplicate_signers_deduped_first_wins(self, scheme_and_signers):
        scheme, signers = scheme_and_signers
        share = signers[0].sign(b"m")
        forged_dup = threshold.SignatureShare(0, share.value + 1)
        assert scheme.verify_shares([share, forged_dup], b"m") == [share]

    def test_matches_single_share_verification(self, scheme_and_signers):
        scheme, signers = scheme_and_signers
        shares = [s.sign(b"payload") for s in signers]
        shares.append(threshold.SignatureShare(1, 7))  # dup signer, bogus
        batch = scheme.verify_shares(shares, b"payload")
        singly = [s for s in shares[:4]
                  if scheme.verify_share(s, b"payload")]
        assert batch == singly

    def test_precomputed_element_equivalent(self, scheme_and_signers):
        scheme, signers = scheme_and_signers
        share = signers[2].sign(b"m")
        element = threshold.message_element(b"m")
        assert scheme.verify_share(share, b"m", element=element)
        assert not scheme.verify_share(share, b"other",
                                       element=threshold.message_element(
                                           b"other"))

    def test_combine_preverified_skips_recheck(self, scheme_and_signers):
        scheme, signers = scheme_and_signers
        shares = [s.sign(b"m") for s in signers[:3]]
        combined = scheme.combine(shares, b"m", preverified=True)
        assert scheme.verify(combined, b"m")

    def test_combine_preverified_still_needs_threshold(
            self, scheme_and_signers):
        scheme, signers = scheme_and_signers
        shares = [s.sign(b"m") for s in signers[:2]]
        with pytest.raises(threshold.ThresholdError):
            scheme.combine(shares, b"m", preverified=True)
