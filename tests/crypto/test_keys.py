"""Key-registry tests."""

from __future__ import annotations

import pytest

from repro.crypto.keys import KeyRegistry, PLAIN_SIGNATURE_SIZE


class TestRegistry:
    def test_rejects_insufficient_n(self):
        with pytest.raises(ValueError):
            KeyRegistry(3, 1)

    def test_threshold_scheme_is_2f_plus_1(self, registry4):
        assert registry4.scheme.threshold == 3
        assert registry4.scheme.total == 4

    def test_signers_are_distinct(self, registry4):
        shares = {registry4.signer(i).sign(b"m").value for i in range(4)}
        assert len(shares) == 4

    def test_plain_sign_verify(self, registry4):
        signature = registry4.plain_sign(2, b"view-change")
        assert registry4.plain_verify(signature, b"view-change")

    def test_plain_sign_fails_other_message(self, registry4):
        signature = registry4.plain_sign(2, b"a")
        assert not registry4.plain_verify(signature, b"b")

    def test_plain_sign_binds_signer(self, registry4):
        from repro.crypto.keys import PlainSignature
        signature = registry4.plain_sign(2, b"m")
        forged = PlainSignature(3, signature.tag)
        assert not registry4.plain_verify(forged, b"m")

    def test_plain_signature_size(self, registry4):
        assert registry4.plain_sign(0, b"m").size_bytes() \
            == PLAIN_SIGNATURE_SIZE

    def test_threshold_end_to_end(self, registry7):
        scheme = registry7.scheme
        shares = [registry7.signer(i).sign(b"block") for i in (0, 2, 3, 5, 6)]
        assert scheme.verify(scheme.combine(shares, b"block"), b"block")
