"""Field-axiom and matrix-algebra tests for GF(2^8)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.crypto import gf256

elements = st.integers(min_value=0, max_value=255)
nonzero = st.integers(min_value=1, max_value=255)


class TestScalarArithmetic:
    def test_addition_is_xor(self):
        assert gf256.add(0b1010, 0b0110) == 0b1100

    def test_add_equals_sub(self):
        assert gf256.add(77, 140) == gf256.sub(77, 140)

    @given(elements)
    def test_additive_inverse_is_self(self, a):
        assert gf256.add(a, a) == 0

    @given(elements, elements)
    def test_mul_commutative(self, a, b):
        assert gf256.mul(a, b) == gf256.mul(b, a)

    @given(elements, elements, elements)
    def test_mul_associative(self, a, b, c):
        assert gf256.mul(gf256.mul(a, b), c) == gf256.mul(a, gf256.mul(b, c))

    @given(elements, elements, elements)
    def test_distributive(self, a, b, c):
        left = gf256.mul(a, gf256.add(b, c))
        right = gf256.add(gf256.mul(a, b), gf256.mul(a, c))
        assert left == right

    @given(elements)
    def test_one_is_multiplicative_identity(self, a):
        assert gf256.mul(a, 1) == a

    @given(elements)
    def test_zero_annihilates(self, a):
        assert gf256.mul(a, 0) == 0

    @given(nonzero)
    def test_inverse(self, a):
        assert gf256.mul(a, gf256.inv(a)) == 1

    @given(nonzero, nonzero)
    def test_div_is_mul_by_inverse(self, a, b):
        assert gf256.div(a, b) == gf256.mul(a, gf256.inv(b))

    def test_div_by_zero_raises(self):
        with pytest.raises(ZeroDivisionError):
            gf256.div(5, 0)

    def test_inv_zero_raises(self):
        with pytest.raises(ZeroDivisionError):
            gf256.inv(0)

    @given(nonzero, st.integers(min_value=0, max_value=512))
    def test_power_matches_repeated_mul(self, a, e):
        expected = 1
        for _ in range(e):
            expected = gf256.mul(expected, a)
        assert gf256.power(a, e) == expected

    @given(nonzero)
    def test_negative_power(self, a):
        assert gf256.power(a, -1) == gf256.inv(a)

    def test_power_zero_base(self):
        assert gf256.power(0, 0) == 1
        assert gf256.power(0, 3) == 0
        with pytest.raises(ZeroDivisionError):
            gf256.power(0, -1)


class TestVectorOps:
    @given(elements, st.binary(min_size=1, max_size=64))
    def test_mul_vector_matches_scalar(self, scalar, data):
        vec = np.frombuffer(data, dtype=np.uint8)
        out = gf256.mul_vector(scalar, vec)
        assert list(out) == [gf256.mul(scalar, int(v)) for v in vec]

    @given(elements, st.binary(min_size=1, max_size=64),
           st.binary(min_size=1, max_size=64))
    def test_addmul_matches_scalar(self, scalar, acc_data, vec_data):
        size = min(len(acc_data), len(vec_data))
        acc = np.frombuffer(acc_data[:size], dtype=np.uint8).copy()
        vec = np.frombuffer(vec_data[:size], dtype=np.uint8)
        expected = [a ^ gf256.mul(scalar, int(v)) for a, v in zip(acc, vec)]
        gf256.addmul_vector(acc, scalar, vec)
        assert list(acc) == expected

    def test_addmul_scalar_zero_is_noop(self):
        acc = np.array([1, 2, 3], dtype=np.uint8)
        gf256.addmul_vector(acc, 0, np.array([9, 9, 9], dtype=np.uint8))
        assert list(acc) == [1, 2, 3]


class TestMatrixOps:
    def test_identity_multiplication(self):
        identity = [[1, 0], [0, 1]]
        m = [[3, 7], [9, 2]]
        assert gf256.matrix_mul(identity, m) == m
        assert gf256.matrix_mul(m, identity) == m

    def test_invert_round_trip(self):
        m = [[1, 2, 3], [4, 5, 6], [7, 8, 10]]
        inv = gf256.matrix_invert(m)
        product = gf256.matrix_mul(m, inv)
        size = len(m)
        expected = [[1 if i == j else 0 for j in range(size)]
                    for i in range(size)]
        assert product == expected

    def test_singular_matrix_raises(self):
        with pytest.raises(ValueError):
            gf256.matrix_invert([[1, 2], [1, 2]])

    def test_dimension_mismatch_raises(self):
        with pytest.raises(ValueError):
            gf256.matrix_mul([[1, 2]], [[1, 2]])

    def test_vandermonde_rows_independent(self):
        # Any k rows of an n x k Vandermonde matrix must be invertible.
        vand = gf256.vandermonde(8, 3)
        import itertools
        for rows in itertools.combinations(range(8), 3):
            sub = [vand[r] for r in rows]
            gf256.matrix_invert(sub)  # must not raise

    def test_vandermonde_shape(self):
        vand = gf256.vandermonde(5, 4)
        assert len(vand) == 5
        assert all(len(row) == 4 for row in vand)
        assert vand[0] == [1, 0, 0, 0]
        assert vand[1] == [1, 1, 1, 1]


matrix_dims = st.integers(min_value=1, max_value=9)


def random_matrix(rng, rows, cols):
    return np.frombuffer(
        bytes(rng.randrange(256) for _ in range(rows * cols)),
        dtype=np.uint8).reshape(rows, cols)


class TestBatchedKernels:
    """The numpy kernels must agree with the scalar reference API."""

    @given(elements, elements)
    def test_nibble_tables_agree_with_log_tables(self, c, x):
        split = (int(gf256._LOW_NIBBLE[c, x & 0x0F])
                 ^ int(gf256._HIGH_NIBBLE[c, x >> 4]))
        assert split == gf256.mul(c, x)

    @given(st.integers(min_value=1, max_value=12),
           st.integers(min_value=1, max_value=12))
    def test_vandermonde_np_matches_scalar(self, rows, cols):
        assert (gf256.vandermonde_np(rows, cols).tolist()
                == gf256.vandermonde(rows, cols))

    @given(matrix_dims, matrix_dims, st.randoms(use_true_random=False))
    def test_gather_tables_entries(self, rows, cols, rng):
        matrix = random_matrix(rng, rows, cols)
        tables = gf256.gather_tables(matrix)
        assert tables.shape == (cols, 256, rows)
        for _ in range(10):
            j, v, i = (rng.randrange(cols), rng.randrange(256),
                       rng.randrange(rows))
            assert tables[j, v, i] == gf256.mul(int(matrix[i, j]), v)

    @given(matrix_dims, matrix_dims,
           st.integers(min_value=0, max_value=40),
           st.randoms(use_true_random=False))
    def test_matrix_mul_bytes_matches_scalar(self, rows, cols, size, rng):
        matrix = random_matrix(rng, rows, cols)
        if size == 0:
            out = gf256.matrix_mul_bytes(
                matrix, np.zeros((cols, 0), dtype=np.uint8))
            assert out.shape == (rows, 0)
            return
        data = random_matrix(rng, cols, size)
        expected = gf256.matrix_mul(matrix.tolist(), data.tolist())
        assert gf256.matrix_mul_bytes(matrix, data).tolist() == expected
        # Both the small-rows fallback and the transposed-gather path are
        # exercised by the dimension strategy (rows <= 4 and rows > 4).
        tables = gf256.gather_tables(matrix)
        if rows > 4:
            assert gf256.matrix_mul_bytes(
                matrix, data, tables=tables).tolist() == expected
        assert gf256.matrix_vector_bytes(
            matrix[0], data).tolist() == expected[0]

    def test_matrix_mul_bytes_dimension_mismatch(self):
        with pytest.raises(ValueError):
            gf256.matrix_mul_bytes(
                np.zeros((2, 3), dtype=np.uint8),
                np.zeros((4, 5), dtype=np.uint8))

    @given(st.integers(min_value=1, max_value=10),
           st.randoms(use_true_random=False))
    def test_matrix_invert_np_matches_scalar(self, size, rng):
        vand = gf256.vandermonde_np(size + 4, size)
        picked = sorted(rng.sample(range(size + 4), size))
        sub = vand[picked]
        inverse = gf256.matrix_invert_np(sub)
        assert inverse.tolist() == gf256.matrix_invert(sub.tolist())
        product = gf256.matrix_mul_bytes(sub, inverse)
        assert product.tolist() == np.eye(size, dtype=np.uint8).tolist()

    def test_matrix_invert_np_singular_raises(self):
        with pytest.raises(ValueError):
            gf256.matrix_invert_np(
                np.array([[1, 2], [1, 2]], dtype=np.uint8))

    def test_matrix_invert_np_non_square_raises(self):
        with pytest.raises(ValueError):
            gf256.matrix_invert_np(np.zeros((2, 3), dtype=np.uint8))
