"""Merkle-tree tests: proofs for every leaf, tamper detection, sizes."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.merkle import MerkleProof, MerkleTree, verify_proof


class TestConstruction:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            MerkleTree([])

    def test_single_leaf(self):
        tree = MerkleTree([b"only"])
        assert tree.leaf_count == 1
        proof = tree.proof(0)
        assert proof.siblings == ()
        assert verify_proof(tree.root, b"only", proof)

    def test_root_changes_with_leaves(self):
        a = MerkleTree([b"a", b"b"])
        b = MerkleTree([b"a", b"c"])
        assert a.root != b.root

    def test_leaf_order_matters(self):
        a = MerkleTree([b"a", b"b"])
        b = MerkleTree([b"b", b"a"])
        assert a.root != b.root

    def test_leaf_interior_domain_separation(self):
        # A two-leaf tree's root must differ from the leaf hash of the
        # concatenation (no second-preimage between layers).
        tree = MerkleTree([b"x", b"y"])
        flat = MerkleTree([b"x" + b"y"])
        assert tree.root != flat.root


class TestProofs:
    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.binary(min_size=0, max_size=32),
                    min_size=1, max_size=33))
    def test_every_leaf_proves(self, leaves):
        tree = MerkleTree(leaves)
        for index, leaf in enumerate(leaves):
            proof = tree.proof(index)
            assert verify_proof(tree.root, leaf, proof)

    def test_proof_fails_for_wrong_leaf(self):
        leaves = [bytes([i]) for i in range(7)]
        tree = MerkleTree(leaves)
        proof = tree.proof(3)
        assert not verify_proof(tree.root, b"forged", proof)

    def test_proof_fails_for_wrong_index_leaf(self):
        leaves = [bytes([i]) for i in range(8)]
        tree = MerkleTree(leaves)
        assert not verify_proof(tree.root, leaves[2], tree.proof(5))

    def test_proof_fails_with_tampered_sibling(self):
        leaves = [bytes([i]) for i in range(6)]
        tree = MerkleTree(leaves)
        proof = tree.proof(1)
        tampered = MerkleProof(proof.leaf_index, tuple(
            (side, b"\x00" * 32) for side, _ in proof.siblings))
        assert not verify_proof(tree.root, leaves[1], tampered)

    def test_out_of_range_index(self):
        tree = MerkleTree([b"a", b"b"])
        with pytest.raises(IndexError):
            tree.proof(2)

    def test_proof_depth_is_logarithmic(self):
        # n chunks -> proofs carry <= ceil(log2 n) siblings: the β·log n
        # term in the paper's retrieval cost analysis (§V-B).
        tree = MerkleTree([bytes([i]) for i in range(128)])
        assert all(len(tree.proof(i).siblings) <= 7 for i in range(128))

    def test_proof_wire_size(self):
        tree = MerkleTree([bytes([i]) for i in range(16)])
        proof = tree.proof(5)
        assert proof.size_bytes() == 4 + 33 * len(proof.siblings)


class TestOddShapes:
    @pytest.mark.parametrize("count", [2, 3, 5, 9, 17, 31])
    def test_odd_leaf_counts(self, count):
        leaves = [bytes([i]) * 3 for i in range(count)]
        tree = MerkleTree(leaves)
        for index in range(count):
            assert verify_proof(tree.root, leaves[index], tree.proof(index))

    def test_duplicate_leaves_still_prove_positionally(self):
        leaves = [b"same"] * 4
        tree = MerkleTree(leaves)
        for index in range(4):
            assert verify_proof(tree.root, b"same", tree.proof(index))
