"""Shared stats layer: interning, array-backed counters, layering."""

from __future__ import annotations

from repro.stats import NicStats, class_name, intern_class


class TestInterning:
    def test_intern_is_stable(self):
        a = intern_class("stats-test-class-a")
        b = intern_class("stats-test-class-b")
        assert a != b
        assert intern_class("stats-test-class-a") == a
        assert class_name(a) == "stats-test-class-a"


class TestNicStats:
    def test_record_send_many_equals_repeated_sends(self):
        batched = NicStats()
        scalar = NicStats()
        batched.record_send_many("datablock", 1000, 5)
        for _ in range(5):
            scalar.record_send("datablock", 1000)
        assert batched.sent_bytes == scalar.sent_bytes == {"datablock": 5000}
        assert batched.sent_msgs == scalar.sent_msgs == {"datablock": 5}

    def test_bump_recv_matches_record_recv(self):
        by_id = NicStats()
        by_name = NicStats()
        class_id = intern_class("vote")
        for _ in range(3):
            by_id.bump_recv(class_id, 76)
            by_name.record_recv("vote", 76)
        assert by_id.recv_bytes == by_name.recv_bytes == {"vote": 228}
        assert by_id.recv_msgs == by_name.recv_msgs == {"vote": 3}

    def test_views_hide_zero_classes(self):
        stats = NicStats()
        intern_class("quiet-class")  # interned but never recorded
        stats.record_send("datablock", 10)
        assert "quiet-class" not in stats.sent_bytes
        assert stats.recv_bytes == {}

    def test_totals(self):
        stats = NicStats()
        stats.record_send("a", 10)
        stats.record_send_many("b", 20, 3)
        stats.record_recv("c", 5)
        assert stats.total_sent() == 70
        assert stats.total_recv() == 5
        assert stats.total_sent_msgs() == 4
        assert stats.total_recv_msgs() == 1

    def test_instances_are_independent(self):
        one = NicStats()
        two = NicStats()
        one.record_send("datablock", 42)
        assert two.sent_bytes == {}


class TestLayering:
    def test_net_does_not_import_sim_for_byte_accounting(self):
        """The transport accounts bytes via repro.stats, not repro.sim."""
        import ast
        import inspect

        import repro.net.transport as transport

        tree = ast.parse(inspect.getsource(transport))
        imported = [
            node.module for node in ast.walk(tree)
            if isinstance(node, ast.ImportFrom) and node.module
        ] + [
            alias.name for node in ast.walk(tree)
            if isinstance(node, ast.Import) for alias in node.names
        ]
        assert not any(name.startswith("repro.sim") for name in imported)

    def test_both_backends_share_one_nicstats_class(self):
        from repro.net.transport import NicStats as live_stats
        from repro.sim.network import NicStats as sim_stats
        from repro.stats import NicStats as shared_stats

        assert live_stats is shared_stats
        assert sim_stats is shared_stats
