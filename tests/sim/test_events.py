"""Event-queue tests: ordering, determinism, bounded execution."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.sim.events import EventQueue


class TestScheduling:
    def test_runs_in_time_order(self):
        queue = EventQueue()
        seen = []
        queue.schedule(3.0, lambda: seen.append("c"))
        queue.schedule(1.0, lambda: seen.append("a"))
        queue.schedule(2.0, lambda: seen.append("b"))
        queue.run_until(10.0)
        assert seen == ["a", "b", "c"]

    def test_fifo_for_equal_timestamps(self):
        queue = EventQueue()
        seen = []
        for tag in range(5):
            queue.schedule(1.0, lambda t=tag: seen.append(t))
        queue.run_until(1.0)
        assert seen == [0, 1, 2, 3, 4]

    def test_past_scheduling_rejected(self):
        queue = EventQueue()
        queue.schedule(1.0, lambda: None)
        queue.run_until(2.0)
        with pytest.raises(SimulationError):
            queue.schedule(1.5, lambda: None)

    def test_schedule_in_is_relative(self):
        queue = EventQueue()
        times = []
        queue.schedule(1.0, lambda: queue.schedule_in(
            0.5, lambda: times.append(queue.now)))
        queue.run_until(5.0)
        assert times == [1.5]

    def test_clock_advances_to_deadline_when_idle(self):
        queue = EventQueue()
        queue.run_until(7.0)
        assert queue.now == 7.0

    def test_clock_does_not_pass_pending_events(self):
        queue = EventQueue()
        queue.schedule(5.0, lambda: None)
        queue.run_until(2.0)
        assert queue.now == 2.0
        assert queue.pending == 1


class TestBulkScheduling:
    def test_schedule_many_runs_in_time_order(self):
        queue = EventQueue()
        seen = []
        queue.schedule_many([
            (3.0, lambda: seen.append("c")),
            (1.0, lambda: seen.append("a")),
            (2.0, lambda: seen.append("b")),
        ])
        queue.run_until(10.0)
        assert seen == ["a", "b", "c"]

    def test_schedule_many_fifo_for_equal_timestamps(self):
        queue = EventQueue()
        seen = []
        queue.schedule_many(
            (1.0, lambda t=tag: seen.append(t)) for tag in range(20))
        queue.run_until(1.0)
        assert seen == list(range(20))

    def test_schedule_many_interleaves_with_schedule(self):
        queue = EventQueue()
        seen = []
        queue.schedule(1.0, lambda: seen.append("x"))
        queue.schedule_many([(1.0, lambda: seen.append("y"))])
        queue.schedule(1.0, lambda: seen.append("z"))
        queue.run_until(1.0)
        assert seen == ["x", "y", "z"]

    def test_schedule_many_rejects_past(self):
        queue = EventQueue()
        queue.schedule(1.0, lambda: None)
        queue.run_until(2.0)
        with pytest.raises(SimulationError):
            queue.schedule_many([(3.0, lambda: None), (1.0, lambda: None)])

    def test_schedule_many_bulk_heapify_path(self):
        # A batch large relative to the heap takes the extend+heapify
        # branch; ordering must be identical to per-event pushes.
        queue = EventQueue()
        seen = []
        queue.schedule(5.0, lambda: seen.append("late"))
        queue.schedule_many(
            (float(100 - i) / 100.0, lambda t=i: seen.append(t))
            for i in range(32))
        queue.run_until(10.0)
        assert seen[:-1] == list(reversed(range(32)))
        assert seen[-1] == "late"

    def test_schedule_call_passes_payload(self):
        queue = EventQueue()
        seen = []
        queue.schedule_call(1.0, seen.append, "payload")
        queue.run_until(2.0)
        assert seen == ["payload"]

    def test_schedule_fanout_orders_by_index_on_ties(self):
        queue = EventQueue()
        seen = []
        queue.schedule_fanout([2.0, 1.0, 1.0, 2.0], seen.append,
                              ["a", "b", "c", "d"])
        queue.run_until(5.0)
        assert seen == ["b", "c", "a", "d"]

    def test_schedule_fanout_rejects_past(self):
        queue = EventQueue()
        queue.schedule(1.0, lambda: None)
        queue.run_until(2.0)
        with pytest.raises(SimulationError):
            queue.schedule_fanout([3.0, 1.0], lambda arg: None, [0, 1])
        assert queue.pending == 0

    def test_schedule_fanout_empty(self):
        queue = EventQueue()
        assert queue.schedule_fanout([], lambda arg: None, []) == 0


class TestCascades:
    def test_event_scheduling_events(self):
        queue = EventQueue()
        hits = []

        def chain(depth):
            hits.append(depth)
            if depth < 5:
                queue.schedule_in(0.1, lambda: chain(depth + 1))

        queue.schedule(0.0, lambda: chain(0))
        queue.run_until(10.0)
        assert hits == [0, 1, 2, 3, 4, 5]

    def test_max_events_guard(self):
        queue = EventQueue()

        def forever():
            queue.schedule_in(0.001, forever)

        queue.schedule(0.0, forever)
        executed = queue.run_until(1000.0, max_events=50)
        assert executed == 50

    def test_run_until_idle(self):
        queue = EventQueue()
        for i in range(10):
            queue.schedule(float(i), lambda: None)
        assert queue.run_until_idle() == 10
        assert queue.pending == 0

    def test_processed_counter(self):
        queue = EventQueue()
        queue.schedule(0.0, lambda: None)
        queue.schedule(1.0, lambda: None)
        queue.run_until(5.0)
        assert queue.processed == 2
