"""Event-queue tests: ordering, determinism, bounded execution."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.sim.events import LATE_TOLERANCE, EventQueue

#: Both scheduler backends satisfy the same contract; every test in this
#: module runs against each via this fixture.
@pytest.fixture(params=["heap", "calendar"])
def queue(request):
    return EventQueue(backend=request.param)


class TestScheduling:
    def test_runs_in_time_order(self, queue):
        seen = []
        queue.schedule(3.0, lambda: seen.append("c"))
        queue.schedule(1.0, lambda: seen.append("a"))
        queue.schedule(2.0, lambda: seen.append("b"))
        queue.run_until(10.0)
        assert seen == ["a", "b", "c"]

    def test_fifo_for_equal_timestamps(self, queue):
        seen = []
        for tag in range(5):
            queue.schedule(1.0, lambda t=tag: seen.append(t))
        queue.run_until(1.0)
        assert seen == [0, 1, 2, 3, 4]

    def test_past_scheduling_rejected(self, queue):
        queue.schedule(1.0, lambda: None)
        queue.run_until(2.0)
        with pytest.raises(SimulationError):
            queue.schedule(1.5, lambda: None)

    def test_schedule_in_is_relative(self, queue):
        times = []
        queue.schedule(1.0, lambda: queue.schedule_in(
            0.5, lambda: times.append(queue.now)))
        queue.run_until(5.0)
        assert times == [1.5]

    def test_clock_advances_to_deadline_when_idle(self, queue):
        queue.run_until(7.0)
        assert queue.now == 7.0

    def test_clock_does_not_pass_pending_events(self, queue):
        queue.schedule(5.0, lambda: None)
        queue.run_until(2.0)
        assert queue.now == 2.0
        assert queue.pending == 1


class TestBulkScheduling:
    def test_schedule_many_runs_in_time_order(self, queue):
        seen = []
        queue.schedule_many([
            (3.0, lambda: seen.append("c")),
            (1.0, lambda: seen.append("a")),
            (2.0, lambda: seen.append("b")),
        ])
        queue.run_until(10.0)
        assert seen == ["a", "b", "c"]

    def test_schedule_many_fifo_for_equal_timestamps(self, queue):
        seen = []
        queue.schedule_many(
            (1.0, lambda t=tag: seen.append(t)) for tag in range(20))
        queue.run_until(1.0)
        assert seen == list(range(20))

    def test_schedule_many_interleaves_with_schedule(self, queue):
        seen = []
        queue.schedule(1.0, lambda: seen.append("x"))
        queue.schedule_many([(1.0, lambda: seen.append("y"))])
        queue.schedule(1.0, lambda: seen.append("z"))
        queue.run_until(1.0)
        assert seen == ["x", "y", "z"]

    def test_schedule_many_rejects_past(self, queue):
        queue.schedule(1.0, lambda: None)
        queue.run_until(2.0)
        with pytest.raises(SimulationError):
            queue.schedule_many([(3.0, lambda: None), (1.0, lambda: None)])

    def test_schedule_many_bulk_heapify_path(self, queue):
        # A batch large relative to the heap takes the extend+heapify
        # branch; ordering must be identical to per-event pushes.
        seen = []
        queue.schedule(5.0, lambda: seen.append("late"))
        queue.schedule_many(
            (float(100 - i) / 100.0, lambda t=i: seen.append(t))
            for i in range(32))
        queue.run_until(10.0)
        assert seen[:-1] == list(reversed(range(32)))
        assert seen[-1] == "late"

    def test_schedule_call_passes_payload(self, queue):
        seen = []
        queue.schedule_call(1.0, seen.append, "payload")
        queue.run_until(2.0)
        assert seen == ["payload"]

    def test_schedule_fanout_orders_by_index_on_ties(self, queue):
        seen = []
        queue.schedule_fanout([2.0, 1.0, 1.0, 2.0], seen.append,
                              ["a", "b", "c", "d"])
        queue.run_until(5.0)
        assert seen == ["b", "c", "a", "d"]

    def test_schedule_fanout_rejects_past(self, queue):
        queue.schedule(1.0, lambda: None)
        queue.run_until(2.0)
        with pytest.raises(SimulationError):
            queue.schedule_fanout([3.0, 1.0], lambda arg: None, [0, 1])
        assert queue.pending == 0

    def test_schedule_fanout_empty(self, queue):
        assert queue.schedule_fanout([], lambda arg: None, []) == 0


class TestLateClamp:
    """Timestamps a few ulps before ``now`` clamp instead of raising.

    The cumsum egress ramp computes arrival vectors as ``start +
    per_copy * ramp``; re-deriving the same instant through a different
    float association order can land a handful of ulps below the clock.
    Those are physically meaningless (1 ns of simulated time vs ~1 ms
    propagation delays), so the queue clamps-and-counts them; anything
    beyond the tolerance stays a hard error.
    """

    def _advance(self, queue, to=2.0):
        queue.schedule(to, lambda: None)
        queue.run_until(to)
        return queue.now

    def test_schedule_clamps_ulp_late(self, queue):
        now = self._advance(queue)
        seen = []
        barely_late = now - now * 1e-16  # a few ulps below the clock
        assert barely_late < now
        queue.schedule(barely_late, lambda: seen.append(queue.now))
        assert queue.late_clamped == 1
        queue.run_until(now)
        assert seen == [now]

    def test_schedule_call_and_push_clamp(self, queue):
        now = self._advance(queue)
        seen = []
        queue.schedule_call(now - 1e-10, seen.append, "a")
        queue.push(now - 1e-10, seen.append, "b")
        assert queue.late_clamped == 2
        queue.run_until(now)
        assert seen == ["a", "b"]

    def test_fanout_clamps_ulp_late_arrivals(self, queue):
        now = self._advance(queue)
        seen = []
        times = [now - 1e-10, now, now + 0.5, now + 1.0, now + 1.5]
        queue.schedule_fanout(times, seen.append, list(range(5)))
        assert queue.late_clamped == 1
        queue.run_until_idle()
        assert seen == [0, 1, 2, 3, 4]
        assert queue.now == now + 1.5

    def test_schedule_many_clamps_within_tolerance(self, queue):
        now = self._advance(queue)
        seen = []
        queue.schedule_many([
            (now - 1e-10, lambda: seen.append("late")),
            (now + 0.1, lambda: seen.append("future")),
        ])
        assert queue.late_clamped == 1
        queue.run_until_idle()
        assert seen == ["late", "future"]

    def test_beyond_tolerance_still_raises(self, queue):
        now = self._advance(queue)
        for call in (
                lambda: queue.schedule(now - 1e-6, lambda: None),
                lambda: queue.schedule_call(now - 1e-6, print, None),
                lambda: queue.push(now - 1e-6, print, None),
                lambda: queue.schedule_many([(now - 1e-6, lambda: None)]),
                lambda: queue.schedule_fanout(
                    [now - 1e-6] + [now + i for i in range(4)],
                    print, list(range(5))),
        ):
            with pytest.raises(SimulationError):
                call()
        assert queue.pending == 0
        assert queue.late_clamped == 0

    def test_clamp_counter_in_occupancy(self, queue):
        now = self._advance(queue)
        queue.schedule(now - 1e-10, lambda: None)
        occupancy = queue.occupancy()
        assert occupancy["late_clamped"] == 1
        assert occupancy["pending"] == 1
        assert occupancy["backend"] in ("heap", "calendar")
        assert LATE_TOLERANCE == 1e-9


class TestCascades:
    def test_event_scheduling_events(self, queue):
        hits = []

        def chain(depth):
            hits.append(depth)
            if depth < 5:
                queue.schedule_in(0.1, lambda: chain(depth + 1))

        queue.schedule(0.0, lambda: chain(0))
        queue.run_until(10.0)
        assert hits == [0, 1, 2, 3, 4, 5]

    def test_max_events_guard(self, queue):

        def forever():
            queue.schedule_in(0.001, forever)

        queue.schedule(0.0, forever)
        executed = queue.run_until(1000.0, max_events=50)
        assert executed == 50

    def test_run_until_idle(self, queue):
        for i in range(10):
            queue.schedule(float(i), lambda: None)
        assert queue.run_until_idle() == 10
        assert queue.pending == 0

    def test_processed_counter(self, queue):
        queue.schedule(0.0, lambda: None)
        queue.schedule(1.0, lambda: None)
        queue.run_until(5.0)
        assert queue.processed == 2
