"""Fault-behaviour unit tests."""

from __future__ import annotations

from dataclasses import dataclass

import pytest

from repro.interfaces import Broadcast, Delayed, Send, SetTimer
from repro.sim.faults import (
    Combined,
    Crash,
    DelaySend,
    DropIncoming,
    FaultBehavior,
    HONEST,
    Mute,
    SelectiveDisseminator,
    fault_from_spec,
    fault_to_spec,
    partition_behavior,
)


@dataclass(frozen=True)
class Msg:
    msg_class: str

    def size_bytes(self) -> int:
        return 10


class TestHonest:
    def test_passthrough(self):
        effects = [Send(1, Msg("vote"))]
        assert HONEST.filter_effects(effects, 0.0) == effects
        assert not HONEST.drop_incoming(0, Msg("vote"), 0.0)
        assert not HONEST.crashed


class TestCrash:
    def test_before_crash_time(self):
        crash = Crash(at=5.0)
        effects = [Send(1, Msg("vote"))]
        assert crash.filter_effects(effects, 1.0) == effects
        assert not crash.drop_incoming(0, Msg("vote"), 1.0)

    def test_after_crash_time(self):
        crash = Crash(at=5.0)
        assert crash.filter_effects([Send(1, Msg("vote"))], 6.0) == []
        assert crash.drop_incoming(0, Msg("vote"), 6.0)
        assert crash.crashed


class TestSelectiveDisseminator:
    def test_rewrites_datablock_broadcasts(self):
        fault = SelectiveDisseminator(frozenset({1, 2}))
        effects = fault.filter_effects(
            [Broadcast(Msg("datablock"))], 0.0)
        assert all(isinstance(e, Send) for e in effects)
        assert sorted(e.dest for e in effects) == [1, 2]

    def test_leaves_other_classes_alone(self):
        fault = SelectiveDisseminator(frozenset({1}))
        effects = [Broadcast(Msg("vote")), Send(3, Msg("datablock"))]
        assert fault.filter_effects(effects, 0.0) == effects


class TestDropIncoming:
    def test_drops_by_class(self):
        fault = DropIncoming(frozenset({"datablock"}))
        assert fault.drop_incoming(0, Msg("datablock"), 0.0)
        assert not fault.drop_incoming(0, Msg("vote"), 0.0)

    def test_drops_by_sender(self):
        fault = DropIncoming(frozenset({"datablock"}),
                             from_senders=frozenset({3}))
        assert fault.drop_incoming(3, Msg("datablock"), 0.0)
        assert not fault.drop_incoming(4, Msg("datablock"), 0.0)


class TestMute:
    def test_suppresses_sends_and_broadcasts(self):
        fault = Mute(frozenset({"vote"}))
        effects = [Send(1, Msg("vote")), Broadcast(Msg("vote")),
                   Send(1, Msg("ready"))]
        filtered = fault.filter_effects(effects, 0.0)
        assert len(filtered) == 1
        assert filtered[0].msg.msg_class == "ready"


class TestCombined:
    def test_chains_filters_and_ors_drops(self):
        fault = Combined((
            Mute(frozenset({"vote"})),
            DropIncoming(frozenset({"datablock"})),
        ))
        filtered = fault.filter_effects(
            [Send(1, Msg("vote")), Send(1, Msg("query"))], 0.0)
        assert len(filtered) == 1
        assert fault.drop_incoming(0, Msg("datablock"), 0.0)
        assert not fault.drop_incoming(0, Msg("vote"), 0.0)
        assert not fault.crashed

    def test_combined_crash(self):
        fault = Combined((Crash(at=0.0), Mute(frozenset())))
        fault.drop_incoming(0, Msg("x"), 1.0)
        assert fault.crashed


class TestDelaySend:
    def test_wraps_sends_and_broadcasts(self):
        fault = DelaySend(delay=0.05)
        effects = fault.filter_effects(
            [Send(1, Msg("vote")), Broadcast(Msg("datablock"))], 0.0)
        assert all(isinstance(e, Delayed) for e in effects)
        assert all(e.delay == 0.05 for e in effects)
        assert isinstance(effects[0].effect, Send)
        assert isinstance(effects[1].effect, Broadcast)

    def test_class_filter(self):
        fault = DelaySend(delay=0.05, msg_classes=frozenset({"datablock"}))
        effects = fault.filter_effects(
            [Send(1, Msg("vote")), Broadcast(Msg("datablock"))], 0.0)
        assert isinstance(effects[0], Send)  # vote untouched
        assert isinstance(effects[1], Delayed)

    def test_non_network_effects_untouched(self):
        fault = DelaySend(delay=0.05)
        timer = SetTimer("t", 1.0)
        assert fault.filter_effects([timer], 0.0) == [timer]

    def test_does_not_delay_incoming(self):
        assert not DelaySend(delay=0.05).drop_incoming(0, Msg("vote"), 0.0)


class TestFaultSpecs:
    @pytest.mark.parametrize("fault", [
        Crash(at=2.5),
        SelectiveDisseminator(frozenset({1, 2})),
        DropIncoming(frozenset({"datablock"}), from_senders=frozenset({3})),
        DropIncoming(msg_classes=None, from_senders=frozenset({3})),
        Mute(frozenset({"vote"})),
        DelaySend(delay=0.1, msg_classes=frozenset({"datablock"})),
        DelaySend(delay=0.1),
        Combined((Mute(frozenset({"vote"})), Crash(at=1.0))),
    ])
    def test_round_trip(self, fault):
        spec = fault_to_spec(fault)
        rebuilt = fault_from_spec(spec)
        assert type(rebuilt) is type(fault)
        assert fault_to_spec(rebuilt) == spec

    def test_honest_maps_to_none(self):
        assert fault_to_spec(HONEST) is None
        assert fault_from_spec(None) is HONEST

    def test_custom_subclass_has_no_spec(self):
        class Weird(FaultBehavior):
            def filter_effects(self, effects, now):
                return []

        with pytest.raises(ValueError):
            fault_to_spec(Weird())
        with pytest.raises(ValueError):
            fault_from_spec({"kind": "weird"})

    def test_spec_is_plain_json(self):
        import json

        spec = fault_to_spec(Combined((
            SelectiveDisseminator(frozenset({2, 1})),
            DelaySend(delay=0.1))))
        assert json.loads(json.dumps(spec)) == spec


class TestPartitionBehavior:
    GROUPS = [frozenset({3}), frozenset({0, 1, 2})]

    def test_grouped_node_drops_cross_cut_traffic(self):
        fault = partition_behavior(3, self.GROUPS)
        assert fault.drop_incoming(0, Msg("datablock"), 0.0)
        assert not fault.drop_incoming(3, Msg("datablock"), 0.0)

    def test_same_group_traffic_flows(self):
        fault = partition_behavior(0, self.GROUPS)
        assert not fault.drop_incoming(1, Msg("vote"), 0.0)
        assert fault.drop_incoming(3, Msg("vote"), 0.0)

    def test_ungrouped_node_unaffected(self):
        assert partition_behavior(7, self.GROUPS) is HONEST

    def test_single_group_is_no_partition(self):
        assert partition_behavior(0, [frozenset({0, 1})]) is HONEST
