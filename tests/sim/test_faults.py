"""Fault-behaviour unit tests."""

from __future__ import annotations

from dataclasses import dataclass

from repro.interfaces import Broadcast, Send
from repro.sim.faults import (
    Combined,
    Crash,
    DropIncoming,
    HONEST,
    Mute,
    SelectiveDisseminator,
)


@dataclass(frozen=True)
class Msg:
    msg_class: str

    def size_bytes(self) -> int:
        return 10


class TestHonest:
    def test_passthrough(self):
        effects = [Send(1, Msg("vote"))]
        assert HONEST.filter_effects(effects, 0.0) == effects
        assert not HONEST.drop_incoming(0, Msg("vote"), 0.0)
        assert not HONEST.crashed


class TestCrash:
    def test_before_crash_time(self):
        crash = Crash(at=5.0)
        effects = [Send(1, Msg("vote"))]
        assert crash.filter_effects(effects, 1.0) == effects
        assert not crash.drop_incoming(0, Msg("vote"), 1.0)

    def test_after_crash_time(self):
        crash = Crash(at=5.0)
        assert crash.filter_effects([Send(1, Msg("vote"))], 6.0) == []
        assert crash.drop_incoming(0, Msg("vote"), 6.0)
        assert crash.crashed


class TestSelectiveDisseminator:
    def test_rewrites_datablock_broadcasts(self):
        fault = SelectiveDisseminator(frozenset({1, 2}))
        effects = fault.filter_effects(
            [Broadcast(Msg("datablock"))], 0.0)
        assert all(isinstance(e, Send) for e in effects)
        assert sorted(e.dest for e in effects) == [1, 2]

    def test_leaves_other_classes_alone(self):
        fault = SelectiveDisseminator(frozenset({1}))
        effects = [Broadcast(Msg("vote")), Send(3, Msg("datablock"))]
        assert fault.filter_effects(effects, 0.0) == effects


class TestDropIncoming:
    def test_drops_by_class(self):
        fault = DropIncoming(frozenset({"datablock"}))
        assert fault.drop_incoming(0, Msg("datablock"), 0.0)
        assert not fault.drop_incoming(0, Msg("vote"), 0.0)

    def test_drops_by_sender(self):
        fault = DropIncoming(frozenset({"datablock"}),
                             from_senders=frozenset({3}))
        assert fault.drop_incoming(3, Msg("datablock"), 0.0)
        assert not fault.drop_incoming(4, Msg("datablock"), 0.0)


class TestMute:
    def test_suppresses_sends_and_broadcasts(self):
        fault = Mute(frozenset({"vote"}))
        effects = [Send(1, Msg("vote")), Broadcast(Msg("vote")),
                   Send(1, Msg("ready"))]
        filtered = fault.filter_effects(effects, 0.0)
        assert len(filtered) == 1
        assert filtered[0].msg.msg_class == "ready"


class TestCombined:
    def test_chains_filters_and_ors_drops(self):
        fault = Combined((
            Mute(frozenset({"vote"})),
            DropIncoming(frozenset({"datablock"})),
        ))
        filtered = fault.filter_effects(
            [Send(1, Msg("vote")), Send(1, Msg("query"))], 0.0)
        assert len(filtered) == 1
        assert fault.drop_incoming(0, Msg("datablock"), 0.0)
        assert not fault.drop_incoming(0, Msg("vote"), 0.0)
        assert not fault.crashed

    def test_combined_crash(self):
        fault = Combined((Crash(at=0.0), Mute(frozenset())))
        fault.drop_incoming(0, Msg("x"), 1.0)
        assert fault.crashed
