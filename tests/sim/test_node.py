"""SimNode tests: effect interpretation, timers, CPU lanes, faults."""

from __future__ import annotations

from dataclasses import dataclass, field

import pytest

from repro.interfaces import (
    Broadcast,
    CancelTimer,
    Executed,
    Send,
    SetTimer,
    Trace,
)
from repro.sim.faults import Crash, DropIncoming
from repro.sim.metrics import MetricsCollector
from repro.sim.network import Network
from repro.sim.runner import Simulation


@dataclass(frozen=True)
class Ping:
    tag: str = "ping"
    msg_class: str = "control"

    def size_bytes(self) -> int:
        return 100


@dataclass(frozen=True)
class Bulk:
    msg_class: str = "datablock"
    request_count: int = 10

    def size_bytes(self) -> int:
        return 10_000


@dataclass
class RecorderCore:
    """A scriptable core that records deliveries and emits queued effects."""

    node_id: int
    script: dict = field(default_factory=dict)
    received: list = field(default_factory=list)
    timers: list = field(default_factory=list)
    start_effects: list = field(default_factory=list)

    def start(self, now):
        return list(self.start_effects)

    def on_message(self, sender, msg, now):
        self.received.append((sender, msg, now))
        return list(self.script.get("on_message", []))

    def on_timer(self, key, now):
        self.timers.append((key, now))
        return list(self.script.get("on_timer", []))


def make_sim(node_count=3, replica_count=3, **net_kwargs):
    defaults = dict(bandwidth_bps=1e9, base_delay=0.001, jitter=0.0, seed=0)
    defaults.update(net_kwargs)
    network = Network(node_count, **defaults)
    return Simulation(network, replica_count=replica_count,
                      metrics=MetricsCollector())


class TestRouting:
    def test_send_delivers(self):
        sim = make_sim()
        a = RecorderCore(0, start_effects=[Send(1, Ping())])
        b = RecorderCore(1)
        sim.add_node(a)
        sim.add_node(b)
        sim.run(1.0)
        assert len(b.received) == 1
        assert b.received[0][0] == 0

    def test_broadcast_excludes_self_and_listed(self):
        sim = make_sim(node_count=4, replica_count=4)
        cores = [RecorderCore(i) for i in range(4)]
        cores[0].start_effects = [Broadcast(Ping(), exclude=(2,))]
        for core in cores:
            sim.add_node(core)
        sim.run(1.0)
        assert len(cores[0].received) == 0
        assert len(cores[1].received) == 1
        assert len(cores[2].received) == 0
        assert len(cores[3].received) == 1

    def test_broadcast_reaches_replicas_only(self):
        sim = make_sim(node_count=4, replica_count=2)
        cores = [RecorderCore(i) for i in range(4)]
        cores[0].start_effects = [Broadcast(Ping())]
        for core in cores:
            sim.add_node(core)
        sim.run(1.0)
        assert len(cores[1].received) == 1
        assert len(cores[2].received) == 0  # a client, not a replica

    def test_duplicate_node_id_rejected(self):
        from repro.errors import SimulationError
        sim = make_sim()
        sim.add_node(RecorderCore(0))
        with pytest.raises(SimulationError):
            sim.add_node(RecorderCore(0))

    def test_out_of_range_node_id_rejected(self):
        from repro.errors import SimulationError
        sim = make_sim()
        with pytest.raises(SimulationError):
            sim.add_node(RecorderCore(17))


class TestTimers:
    def test_timer_fires_once(self):
        sim = make_sim()
        core = RecorderCore(0, start_effects=[SetTimer("t", 0.1)])
        sim.add_node(core)
        sim.run(1.0)
        assert [key for key, _ in core.timers] == ["t"]

    def test_timer_rearm_replaces(self):
        sim = make_sim()
        core = RecorderCore(0, start_effects=[
            SetTimer("t", 0.5), SetTimer("t", 0.1)])
        sim.add_node(core)
        sim.run(1.0)
        assert len(core.timers) == 1
        assert core.timers[0][1] == pytest.approx(0.1)

    def test_timer_cancel(self):
        sim = make_sim()
        core = RecorderCore(0, start_effects=[
            SetTimer("t", 0.1), CancelTimer("t")])
        sim.add_node(core)
        sim.run(1.0)
        assert core.timers == []

    def test_tuple_timer_keys(self):
        sim = make_sim()
        core = RecorderCore(0, start_effects=[
            SetTimer(("retr", b"x"), 0.1)])
        sim.add_node(core)
        sim.run(1.0)
        assert core.timers[0][0] == ("retr", b"x")


class TestCpuLanes:
    def test_data_plane_cost_delays_handling(self):
        sim = make_sim()
        costs = {"datablock": 0.5, "control": 0.0}

        def cpu(msg, receiving):
            return costs[msg.msg_class] if receiving else 0.0

        sender = RecorderCore(0, start_effects=[
            Send(1, Bulk()), Send(1, Ping())])
        receiver = RecorderCore(1)
        sim.add_node(sender)
        sim.add_node(receiver, cpu_model=cpu)
        sim.run(1.0)
        kinds = [type(msg).__name__ for _, msg, _ in receiver.received]
        times = {type(msg).__name__: now
                 for _, msg, now in receiver.received}
        assert set(kinds) == {"Bulk", "Ping"}
        # The control message is NOT stuck behind the 0.5 s data job.
        assert times["Ping"] < 0.1
        assert times["Bulk"] >= 0.5

    def test_same_lane_serializes(self):
        sim = make_sim()

        def cpu(msg, receiving):
            return 0.2 if receiving else 0.0

        sender = RecorderCore(0, start_effects=[
            Send(1, Bulk()), Send(1, Bulk())])
        receiver = RecorderCore(1)
        sim.add_node(sender)
        sim.add_node(receiver, cpu_model=cpu)
        sim.run(1.0)
        first, second = (now for _, _, now in receiver.received)
        assert second - first == pytest.approx(0.2, abs=1e-3)


class TestFaultsAndMetrics:
    def test_crash_stops_recurring_timer(self):
        # Regression: the recurring-timer fast path must not bypass the
        # fault hooks — a Crash-faulted node's heartbeat stops at its
        # crash time exactly as on the reference engine.  (One fire may
        # slip through right after the crash — Crash tracks time through
        # the fault hooks, so the first post-crash tick still reaches the
        # core with its effects suppressed; that matches the seed.)
        sim = make_sim()
        core = RecorderCore(
            0,
            start_effects=[SetTimer("hb", 0.1)],
            script={"on_timer": [SetTimer("hb", 0.1)]})
        sim.add_node(core, fault=Crash(at=0.35))
        sim.run(2.0)
        fired = [now for _, now in core.timers]
        assert fired == pytest.approx([0.1, 0.2, 0.3, 0.4])

    def test_crashed_node_is_silent(self):
        sim = make_sim()
        a = RecorderCore(0, start_effects=[Send(1, Ping())])
        b = RecorderCore(1, script={"on_message": [Send(0, Ping())]})
        sim.add_node(a)
        sim.add_node(b, fault=Crash(at=0.0))
        sim.run(1.0)
        assert b.received == []
        assert a.received == []

    def test_drop_incoming_filters(self):
        sim = make_sim()
        a = RecorderCore(0, start_effects=[Send(1, Bulk()), Send(1, Ping())])
        b = RecorderCore(1)
        sim.add_node(a)
        sim.add_node(b, fault=DropIncoming(frozenset({"datablock"})))
        sim.run(1.0)
        assert [type(m).__name__ for _, m, _ in b.received] == ["Ping"]

    def test_executed_effect_recorded(self):
        sim = make_sim()
        core = RecorderCore(0, start_effects=[Executed(42)])
        sim.add_node(core)
        sim.run(1.0)
        assert sim.metrics.executed_requests[0] == 42

    def test_ack_trace_recorded(self):
        sim = make_sim()
        core = RecorderCore(0, start_effects=[
            Trace("ack", {"submitted_at": 0.0})])
        sim.add_node(core)
        sim.run(1.0)
        assert len(sim.metrics.latencies) == 1

    def test_phase_trace_recorded(self):
        sim = make_sim()
        core = RecorderCore(0, start_effects=[
            Trace("phase", {"phase": "agreement", "duration": 0.5})])
        sim.add_node(core)
        sim.run(1.0)
        assert sim.metrics.phase_durations["agreement"] == 0.5

    def test_unknown_trace_ignored(self):
        sim = make_sim()
        core = RecorderCore(0, start_effects=[Trace("debug", {})])
        sim.add_node(core)
        sim.run(1.0)  # must not raise
