"""NIC-model tests: serialization math, throttling, byte accounting."""

from __future__ import annotations

from dataclasses import dataclass

import pytest

from repro.errors import ConfigError
from repro.sim.network import Network, Nic


@dataclass(frozen=True)
class FakeMsg:
    size: int
    msg_class: str = "test"

    def size_bytes(self) -> int:
        return self.size


def make_network(**kwargs) -> Network:
    defaults = dict(node_count=4, bandwidth_bps=8e6, base_delay=0.01,
                    jitter=0.0, seed=1)
    defaults.update(kwargs)
    return Network(**defaults)


class TestNic:
    def test_rejects_nonpositive_bandwidth(self):
        with pytest.raises(ConfigError):
            Nic(0)

    def test_directional_split(self):
        nic = Nic(8e6)
        assert nic.directional_bps == 4e6

    def test_tx_serialization_time(self):
        nic = Nic(8e6)  # 4 Mbps per direction
        done = nic.occupy_tx(0.0, 500_000)  # 4 Mbit -> 1 second
        assert done == pytest.approx(1.0)

    def test_tx_queueing(self):
        nic = Nic(8e6)
        nic.occupy_tx(0.0, 500_000)
        done = nic.occupy_tx(0.0, 500_000)
        assert done == pytest.approx(2.0)

    def test_tx_idle_gap_not_accumulated(self):
        nic = Nic(8e6)
        nic.occupy_tx(0.0, 500_000)
        done = nic.occupy_tx(5.0, 500_000)  # idle since t=1
        assert done == pytest.approx(6.0)

    def test_rx_independent_of_tx(self):
        nic = Nic(8e6)
        nic.occupy_tx(0.0, 500_000)
        done = nic.occupy_rx(0.0, 500_000)
        assert done == pytest.approx(1.0)

    def test_backlog(self):
        nic = Nic(8e6)
        nic.occupy_tx(0.0, 500_000)
        assert nic.backlog(0.25) == pytest.approx(0.75)
        assert nic.backlog(2.0) == 0.0


class TestTransmission:
    def test_two_phase_delivery_time(self):
        network = make_network()
        msg = FakeMsg(500_000)
        arrival = network.send_phase(0, msg, 0.0)
        assert arrival == pytest.approx(1.01)  # 1 s serialize + 10 ms prop
        delivered = network.receive_phase(1, msg, arrival)
        assert delivered == pytest.approx(2.01)

    def test_sender_serializes_multicast_copies(self):
        # The Eq. (1) effect: copies queue behind each other at the sender.
        network = make_network()
        msg = FakeMsg(500_000)
        arrivals = [network.send_phase(0, msg, 0.0) for _ in range(3)]
        assert arrivals == pytest.approx([1.01, 2.01, 3.01])

    def test_accounting(self):
        network = make_network()
        msg = FakeMsg(1000, "datablock")
        arrival = network.send_phase(0, msg, 0.0)
        network.receive_phase(2, msg, arrival)
        assert network.stats(0).sent_bytes == {"datablock": 1000}
        assert network.stats(0).sent_msgs == {"datablock": 1}
        assert network.stats(2).recv_bytes == {"datablock": 1000}
        assert network.stats(1).recv_bytes == {}

    def test_throttling(self):
        network = make_network()
        network.set_bandwidth(0, 2e6)  # 1 Mbps per direction
        msg = FakeMsg(125_000)  # 1 Mbit
        arrival = network.send_phase(0, msg, 0.0)
        assert arrival == pytest.approx(1.01)

    def test_set_all_bandwidth(self):
        network = make_network()
        network.set_all_bandwidth(2e6)
        assert all(nic.bandwidth_bps == 2e6 for nic in network.nics)

    def test_throttle_rejects_nonpositive(self):
        network = make_network()
        with pytest.raises(ConfigError):
            network.set_bandwidth(0, 0)


class TestPartialSynchrony:
    def test_pre_gst_extra_delay(self):
        network = make_network(gst=10.0, pre_gst_extra_delay=1.0)
        delays_before = [network.propagation_delay(0.0) for _ in range(50)]
        delays_after = [network.propagation_delay(20.0) for _ in range(50)]
        assert max(delays_after) <= 0.01 + 1e-9
        assert max(delays_before) > 0.01
        assert all(d <= 1.01 for d in delays_before)

    def test_pre_gst_delay_sampled_at_wire_departure(self):
        # Regression: a message enqueued before GST behind a NIC backlog
        # that only *departs* after GST must not suffer the adversarial
        # pre-GST delay (the adversary controls the network, not the
        # sender's local queue).
        network = make_network(gst=1.5, pre_gst_extra_delay=100.0)
        msg = FakeMsg(500_000)  # 1 s of serialization per copy
        first = network.send_phase(0, msg, 0.0)   # departs at 1.0 < GST
        second = network.send_phase(0, msg, 0.0)  # departs at 2.0 > GST
        assert first >= 1.0 + 0.01  # may include the adversarial extra
        # The queued copy departs at t=2.0 > GST: base delay only.
        assert second == pytest.approx(2.0 + 0.01)

    def test_broadcast_pre_gst_delay_per_departure(self):
        # Batched fast path: within one multicast, copies departing
        # before GST get the extra delay, copies departing after do not.
        from repro.sim.events import EventQueue

        network = make_network(gst=2.5, pre_gst_extra_delay=100.0)
        queue = EventQueue()

        class _Router:
            def __init__(self):
                self.arrivals = []

            def deliver_at(self, src, dest, msg, delivered):
                self.arrivals.append((dest, delivered))

        router = _Router()
        msg = FakeMsg(500_000)  # 1 s per copy
        network.send_broadcast(0, [1, 2, 3], msg, 0.0, queue, router)
        queue.run_until_idle()
        arrival_by_dest = dict(router.arrivals)
        # Copies depart at 1.0 and 2.0 (< GST): adversarially delayed
        # far beyond base propagation.  The copy departing at 3.0 (> GST)
        # arrives after base delay + its own rx serialization only.
        assert arrival_by_dest[3] == pytest.approx(3.0 + 0.01 + 1.0)
        assert arrival_by_dest[1] > 1.5
        assert arrival_by_dest[2] > 2.5

    def test_jitter_bounds(self):
        network = make_network(jitter=0.005)
        delays = [network.propagation_delay(0.0) for _ in range(100)]
        assert all(0.01 <= d <= 0.015 for d in delays)

    def test_deterministic_for_seed(self):
        a = make_network(jitter=0.005, seed=9)
        b = make_network(jitter=0.005, seed=9)
        assert [a.propagation_delay(0.0) for _ in range(10)] == \
            [b.propagation_delay(0.0) for _ in range(10)]

    def test_node_count_validation(self):
        with pytest.raises(ConfigError):
            Network(0)


class TestHalfDuplexAccounting:
    """Property tests: NIC busy time and backlog under interleaved sends.

    The half-duplex invariant the whole cost model rests on: every byte
    through a direction occupies that direction's serializer for exactly
    ``bytes * 8 / directional_bps`` seconds, with no time created or
    destroyed by queueing, and the egress backlog is always the exact
    remaining busy time.
    """

    def test_total_tx_busy_time_equals_bits_over_rate(self):
        import random

        rng = random.Random(7)
        for _ in range(20):
            bandwidth = rng.choice([2e6, 8e6, 1e9])
            nic = Nic(bandwidth)
            total_bytes = 0
            now = 0.0
            busy = 0.0
            for _ in range(50):
                size = rng.randrange(1, 200_000)
                start = max(nic.tx_busy_until, now)
                done = nic.occupy_tx(now, size)
                total_bytes += size
                busy += done - start
                # Random interleaving: sometimes let the NIC idle,
                # sometimes pile on while busy.
                now += rng.choice([0.0, rng.uniform(0, 0.5)])
            expected = total_bytes * 8.0 / nic.directional_bps
            assert busy == pytest.approx(expected, rel=1e-9)

    def test_total_rx_busy_time_equals_bits_over_rate(self):
        import random

        rng = random.Random(8)
        nic = Nic(8e6)
        total_bytes = 0
        busy = 0.0
        arrival = 0.0
        for _ in range(100):
            size = rng.randrange(1, 100_000)
            start = max(nic.rx_busy_until, arrival)
            done = nic.occupy_rx(arrival, size)
            total_bytes += size
            busy += done - start
            arrival += rng.uniform(0.0, 0.2)
        assert busy == pytest.approx(
            total_bytes * 8.0 / nic.directional_bps, rel=1e-9)

    def test_backlog_monotone_consistent_under_interleaved_sends(self):
        import random

        rng = random.Random(9)
        nic = Nic(8e6)
        now = 0.0
        for _ in range(200):
            action = rng.random()
            if action < 0.6:
                size = rng.randrange(1, 150_000)
                before = nic.backlog(now)
                nic.occupy_tx(now, size)
                after = nic.backlog(now)
                # A send extends the backlog by exactly its own
                # serialization time.
                assert after == pytest.approx(
                    before + size * 8.0 / nic.directional_bps, rel=1e-9)
            else:
                advance = rng.uniform(0.0, 0.3)
                before = nic.backlog(now)
                now += advance
                after = nic.backlog(now)
                # Time drains backlog at unit rate, floored at idle.
                assert after == pytest.approx(
                    max(before - advance, 0.0), abs=1e-9)
            assert nic.backlog(now) >= 0.0

    def test_batched_broadcast_matches_scalar_egress_accounting(self):
        # The vectorized departure ramp must serialize copies exactly
        # like n-1 scalar occupy_tx calls (Eq. (1)).
        from repro.sim.events import EventQueue

        scalar = Nic(8e6)
        msg = FakeMsg(125_000, "datablock")
        for _ in range(5):
            scalar.occupy_tx(0.0, msg.size_bytes())

        network = make_network(node_count=6)
        queue = EventQueue()
        network.send_broadcast(0, [1, 2, 3, 4, 5], msg, 0.0, queue, None)
        nic = network.nics[0]
        assert nic.tx_busy_until == pytest.approx(scalar.tx_busy_until)
        assert nic.stats.sent_bytes == {"datablock": 5 * 125_000}
        assert nic.stats.sent_msgs == {"datablock": 5}
