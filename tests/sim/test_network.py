"""NIC-model tests: serialization math, throttling, byte accounting."""

from __future__ import annotations

from dataclasses import dataclass

import pytest

from repro.errors import ConfigError
from repro.sim.network import Network, Nic


@dataclass(frozen=True)
class FakeMsg:
    size: int
    msg_class: str = "test"

    def size_bytes(self) -> int:
        return self.size


def make_network(**kwargs) -> Network:
    defaults = dict(node_count=4, bandwidth_bps=8e6, base_delay=0.01,
                    jitter=0.0, seed=1)
    defaults.update(kwargs)
    return Network(**defaults)


class TestNic:
    def test_rejects_nonpositive_bandwidth(self):
        with pytest.raises(ConfigError):
            Nic(0)

    def test_directional_split(self):
        nic = Nic(8e6)
        assert nic.directional_bps == 4e6

    def test_tx_serialization_time(self):
        nic = Nic(8e6)  # 4 Mbps per direction
        done = nic.occupy_tx(0.0, 500_000)  # 4 Mbit -> 1 second
        assert done == pytest.approx(1.0)

    def test_tx_queueing(self):
        nic = Nic(8e6)
        nic.occupy_tx(0.0, 500_000)
        done = nic.occupy_tx(0.0, 500_000)
        assert done == pytest.approx(2.0)

    def test_tx_idle_gap_not_accumulated(self):
        nic = Nic(8e6)
        nic.occupy_tx(0.0, 500_000)
        done = nic.occupy_tx(5.0, 500_000)  # idle since t=1
        assert done == pytest.approx(6.0)

    def test_rx_independent_of_tx(self):
        nic = Nic(8e6)
        nic.occupy_tx(0.0, 500_000)
        done = nic.occupy_rx(0.0, 500_000)
        assert done == pytest.approx(1.0)

    def test_backlog(self):
        nic = Nic(8e6)
        nic.occupy_tx(0.0, 500_000)
        assert nic.backlog(0.25) == pytest.approx(0.75)
        assert nic.backlog(2.0) == 0.0


class TestTransmission:
    def test_two_phase_delivery_time(self):
        network = make_network()
        msg = FakeMsg(500_000)
        arrival = network.send_phase(0, msg, 0.0)
        assert arrival == pytest.approx(1.01)  # 1 s serialize + 10 ms prop
        delivered = network.receive_phase(1, msg, arrival)
        assert delivered == pytest.approx(2.01)

    def test_sender_serializes_multicast_copies(self):
        # The Eq. (1) effect: copies queue behind each other at the sender.
        network = make_network()
        msg = FakeMsg(500_000)
        arrivals = [network.send_phase(0, msg, 0.0) for _ in range(3)]
        assert arrivals == pytest.approx([1.01, 2.01, 3.01])

    def test_accounting(self):
        network = make_network()
        msg = FakeMsg(1000, "datablock")
        arrival = network.send_phase(0, msg, 0.0)
        network.receive_phase(2, msg, arrival)
        assert network.stats(0).sent_bytes == {"datablock": 1000}
        assert network.stats(0).sent_msgs == {"datablock": 1}
        assert network.stats(2).recv_bytes == {"datablock": 1000}
        assert network.stats(1).recv_bytes == {}

    def test_throttling(self):
        network = make_network()
        network.set_bandwidth(0, 2e6)  # 1 Mbps per direction
        msg = FakeMsg(125_000)  # 1 Mbit
        arrival = network.send_phase(0, msg, 0.0)
        assert arrival == pytest.approx(1.01)

    def test_set_all_bandwidth(self):
        network = make_network()
        network.set_all_bandwidth(2e6)
        assert all(nic.bandwidth_bps == 2e6 for nic in network.nics)

    def test_throttle_rejects_nonpositive(self):
        network = make_network()
        with pytest.raises(ConfigError):
            network.set_bandwidth(0, 0)


class TestPartialSynchrony:
    def test_pre_gst_extra_delay(self):
        network = make_network(gst=10.0, pre_gst_extra_delay=1.0)
        delays_before = [network.propagation_delay(0.0) for _ in range(50)]
        delays_after = [network.propagation_delay(20.0) for _ in range(50)]
        assert max(delays_after) <= 0.01 + 1e-9
        assert max(delays_before) > 0.01
        assert all(d <= 1.01 for d in delays_before)

    def test_jitter_bounds(self):
        network = make_network(jitter=0.005)
        delays = [network.propagation_delay(0.0) for _ in range(100)]
        assert all(0.01 <= d <= 0.015 for d in delays)

    def test_deterministic_for_seed(self):
        a = make_network(jitter=0.005, seed=9)
        b = make_network(jitter=0.005, seed=9)
        assert [a.propagation_delay(0.0) for _ in range(10)] == \
            [b.propagation_delay(0.0) for _ in range(10)]

    def test_node_count_validation(self):
        with pytest.raises(ConfigError):
            Network(0)
