"""Heap/calendar backend equivalence: identical event sequences.

The determinism contract (DESIGN.md §5) says execution order is the
global ``(time, sequence)`` order.  Both scheduler backends must realise
it bit-for-bit: same callbacks, same timestamps, same tiebreaks, on any
workload.  These tests drive randomized scheduling programs and a full
Leopard deployment through both backends and require exact equality.
"""

from __future__ import annotations

import json
import random

import pytest

from repro.errors import ConfigError
from repro.sim.events import (
    CalendarEventQueue,
    EventQueue,
    HeapEventQueue,
    set_default_backend,
)

BACKENDS = ("heap", "calendar")


class TestFactory:
    def test_backend_selection(self):
        assert isinstance(EventQueue(backend="heap"), HeapEventQueue)
        assert isinstance(EventQueue(backend="calendar"),
                          CalendarEventQueue)

    def test_unknown_backend_rejected(self):
        with pytest.raises(ConfigError):
            EventQueue(backend="wheel")

    def test_default_backend_switch(self):
        assert isinstance(EventQueue(), CalendarEventQueue)
        set_default_backend("heap")
        try:
            assert isinstance(EventQueue(), HeapEventQueue)
        finally:
            set_default_backend("calendar")
        with pytest.raises(ConfigError):
            set_default_backend("wheel")

    def test_direct_subclass_construction(self):
        queue = CalendarEventQueue(bucket_width=1e-3, bucket_count=64)
        assert queue.occupancy()["bucket_count"] == 64
        with pytest.raises(ConfigError):
            CalendarEventQueue(bucket_width=0.0)
        with pytest.raises(ConfigError):
            CalendarEventQueue(bucket_count=1)


def _run_program(backend: str, seed: int) -> tuple[list, dict]:
    """One pseudo-random scheduling program, traced.

    The rng is consumed both while scheduling and *inside callbacks*
    (cascades), so any divergence in execution order immediately
    derails the whole trace — a strict equivalence probe.
    """
    queue = EventQueue(backend=backend, bucket_width=0.25,
                       bucket_count=16)
    rng = random.Random(seed)
    trace: list[tuple[float, object]] = []
    counter = iter(range(1_000_000))

    def record(tag):
        trace.append((queue.now, tag))
        roll = rng.random()
        if roll < 0.2:
            # Cascade: reschedule from within a callback, sometimes at
            # the exact current timestamp (tie with pending events).
            delay = 0.0 if roll < 0.05 else rng.random() * 7.0
            queue.push(queue.now + delay, record, next(counter))
        elif roll < 0.25:
            queue.schedule_fanout(
                [queue.now + rng.random() * 9.0 for _ in range(6)],
                record, [next(counter) for _ in range(6)])

    for _ in range(120):
        op = rng.random()
        now = queue.now
        if op < 0.35:
            queue.push(now + rng.random() * 10.0, record, next(counter))
        elif op < 0.5:
            count = rng.randrange(4, 24)
            base = now + rng.random() * 5.0
            # Ramp plus jitter, with deliberate exact ties.
            times = [base + (i // 3) * 0.05 + rng.choice([0.0, 0.013])
                     for i in range(count)]
            queue.schedule_fanout(times, record,
                                  [next(counter) for _ in range(count)])
        elif op < 0.6:
            queue.schedule_many(
                [(now + rng.random() * 3.0, (lambda t=next(counter):
                                             record(t)))
                 for _ in range(rng.randrange(1, 8))])
        elif op < 0.7:
            tag = next(counter)
            queue.schedule(now + rng.random() * 40.0,
                           lambda t=tag: record(t))
        elif op < 0.9:
            queue.run_until(now + rng.random() * 6.0)
        else:
            queue.run_until(now + rng.random() * 2.0,
                            max_events=rng.randrange(1, 20))
    queue.run_until_idle()
    state = {"processed": queue.processed, "pending": queue.pending,
             "now": queue.now, "late_clamped": queue.late_clamped}
    return trace, state


class TestRandomizedEquivalence:
    @pytest.mark.parametrize("seed", range(8))
    def test_identical_traces(self, seed):
        heap_trace, heap_state = _run_program("heap", seed)
        cal_trace, cal_state = _run_program("calendar", seed)
        assert len(heap_trace) > 100
        assert heap_trace == cal_trace
        assert heap_state == cal_state

    def test_narrow_and_wide_buckets_agree(self):
        # Bucket geometry must never change execution order.
        def run(width, count):
            queue = CalendarEventQueue(bucket_width=width,
                                       bucket_count=count)
            seen = []
            rng = random.Random(99)
            for _ in range(300):
                queue.push(queue.now + rng.random() * 3.0, seen.append,
                           len(seen))
                if rng.random() < 0.3:
                    queue.run_until(queue.now + rng.random())
            queue.run_until_idle()
            return seen

        assert run(1e-3, 4096) == run(0.5, 8) == run(10.0, 2)


class TestLeopardSimEquivalence:
    """A full n=64 Leopard run must produce byte-identical reports."""

    #: Report keys that depend on wall-clock, not simulated behaviour.
    WALL_CLOCK_KEYS = ("sim_events_per_sec", "event_queue", "perf")

    @staticmethod
    def _report(backend: str) -> dict:
        from repro.harness.cluster import build_leopard_cluster
        from repro.harness.experiments import _leopard_config

        cluster = build_leopard_cluster(
            n=64, seed=11, config=_leopard_config(64), warmup=0.0,
            queue_backend=backend)
        cluster.run(0.3)
        report = cluster.report()
        occupancy = report["event_queue"]
        for key in TestLeopardSimEquivalence.WALL_CLOCK_KEYS:
            report.pop(key)
        return report, occupancy

    def test_byte_identical_reports(self):
        heap_report, heap_occ = self._report("heap")
        cal_report, cal_occ = self._report("calendar")
        assert json.dumps(heap_report, sort_keys=True) \
            == json.dumps(cal_report, sort_keys=True)
        # The engines really did run on different backends…
        assert heap_occ["backend"] == "heap"
        assert cal_occ["backend"] == "calendar"
        # …through a real workload.
        assert heap_report["events_processed"] > 10_000
        assert heap_report["throughput_rps"] == cal_report["throughput_rps"]


class TestWaveEquivalence:
    """Wave aggregation must not change *anything* but the event count.

    The wave tier collapses each broadcast wave into one processed
    event, but every arrival still fires at its exact ``(time, seq)``
    with the clock stepped — so a waves-on run of the full n=64 Leopard
    deployment must render a byte-identical report, modulo the engine
    counters that deliberately differ (``events_processed`` shrinks;
    ``event_queue`` gains non-zero wave counters).
    """

    ENGINE_KEYS = TestLeopardSimEquivalence.WALL_CLOCK_KEYS \
        + ("events_processed",)

    @staticmethod
    def _report(waves: bool) -> tuple[dict, dict, int]:
        from repro.harness.cluster import build_leopard_cluster
        from repro.harness.experiments import _leopard_config

        cluster = build_leopard_cluster(
            n=64, seed=11, config=_leopard_config(64), warmup=0.0,
            queue_backend="calendar", waves=waves)
        cluster.run(0.3)
        report = cluster.report()
        occupancy = report["event_queue"]
        processed = report["events_processed"]
        for key in TestWaveEquivalence.ENGINE_KEYS:
            report.pop(key)
        return report, occupancy, processed

    def test_byte_identical_reports_waves_on_vs_off(self):
        scalar_report, scalar_occ, scalar_events = self._report(False)
        wave_report, wave_occ, wave_events = self._report(True)
        assert json.dumps(scalar_report, sort_keys=True) \
            == json.dumps(wave_report, sort_keys=True)
        # The wave run really aggregated…
        assert not scalar_occ["waves"]
        assert wave_occ["waves"]
        assert wave_occ["wave_events"] > 0
        assert wave_occ["wave_receivers"] > wave_occ["wave_events"]
        assert wave_occ["wave_slabs"] > 0
        # …and each drained run counted as one processed event.
        assert wave_events < scalar_events
        assert scalar_events - wave_events \
            == wave_occ["wave_receivers"] - wave_occ["wave_events"]
