"""Simulation-assembly tests."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.sim.metrics import MetricsCollector
from repro.sim.network import Network
from repro.sim.runner import Simulation

from tests.sim.test_node import Ping, RecorderCore
from repro.interfaces import Send


class TestSimulation:
    def make(self, nodes=3, replicas=3):
        network = Network(nodes, bandwidth_bps=1e9, jitter=0.0, seed=0)
        return Simulation(network, replica_count=replicas,
                          metrics=MetricsCollector())

    def test_replica_count_validation(self):
        network = Network(2, seed=0)
        with pytest.raises(SimulationError):
            Simulation(network, replica_count=3)

    def test_run_advances_clock(self):
        sim = self.make()
        sim.run(2.5)
        assert sim.now == pytest.approx(2.5)
        sim.run(1.0)
        assert sim.now == pytest.approx(3.5)

    def test_run_returns_executed_count(self):
        sim = self.make()
        sim.add_node(RecorderCore(0, start_effects=[Send(1, Ping())]))
        sim.add_node(RecorderCore(1))
        executed = sim.run(1.0)
        # Boot events for both nodes plus the transmission's events.
        assert executed >= 3
        assert executed == sim.events_processed
        assert sim.run(1.0) == 0  # idle window: nothing executed

    def test_events_per_sec_tracks_wall_clock(self):
        sim = self.make()
        sim.add_node(RecorderCore(0, start_effects=[Send(1, Ping())]))
        sim.add_node(RecorderCore(1))
        sim.run(1.0)
        assert sim.wall_seconds > 0.0
        assert sim.events_per_sec() == pytest.approx(
            sim.events_processed / sim.wall_seconds)

    def test_cluster_report_surfaces_engine_counters(self):
        from repro.harness.cluster import build_leopard_cluster

        cluster = build_leopard_cluster(4, seed=0, warmup=0.0)
        cluster.run(0.3)
        report = cluster.report()
        assert report["schema"] == 7
        assert report["events_processed"] > 0
        assert report["sim_events_per_sec"] > 0

    def test_node_and_core_lookup(self):
        sim = self.make()
        core = RecorderCore(1)
        node = sim.add_node(core)
        assert sim.node(1) is node
        assert sim.core(1) is core

    def test_delivery_to_unregistered_node_is_dropped(self):
        sim = self.make()
        sender = RecorderCore(0, start_effects=[Send(2, Ping())])
        sim.add_node(sender)
        sim.run(1.0)  # node 2 never added; must not raise

    def test_metrics_shared(self):
        sim = self.make()
        from repro.interfaces import Executed
        sim.add_node(RecorderCore(0, start_effects=[Executed(5)]))
        sim.add_node(RecorderCore(1, start_effects=[Executed(7)]))
        sim.run(0.1)
        assert sim.metrics.executed_requests == {0: 5, 1: 7}
