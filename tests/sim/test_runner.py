"""Simulation-assembly tests."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.sim.metrics import MetricsCollector
from repro.sim.network import Network
from repro.sim.runner import Simulation

from tests.sim.test_node import Ping, RecorderCore
from repro.interfaces import Send


class TestSimulation:
    def make(self, nodes=3, replicas=3):
        network = Network(nodes, bandwidth_bps=1e9, jitter=0.0, seed=0)
        return Simulation(network, replica_count=replicas,
                          metrics=MetricsCollector())

    def test_replica_count_validation(self):
        network = Network(2, seed=0)
        with pytest.raises(SimulationError):
            Simulation(network, replica_count=3)

    def test_run_advances_clock(self):
        sim = self.make()
        sim.run(2.5)
        assert sim.now == pytest.approx(2.5)
        sim.run(1.0)
        assert sim.now == pytest.approx(3.5)

    def test_node_and_core_lookup(self):
        sim = self.make()
        core = RecorderCore(1)
        node = sim.add_node(core)
        assert sim.node(1) is node
        assert sim.core(1) is core

    def test_delivery_to_unregistered_node_is_dropped(self):
        sim = self.make()
        sender = RecorderCore(0, start_effects=[Send(2, Ping())])
        sim.add_node(sender)
        sim.run(1.0)  # node 2 never added; must not raise

    def test_metrics_shared(self):
        sim = self.make()
        from repro.interfaces import Executed
        sim.add_node(RecorderCore(0, start_effects=[Executed(5)]))
        sim.add_node(RecorderCore(1, start_effects=[Executed(7)]))
        sim.run(0.1)
        assert sim.metrics.executed_requests == {0: 5, 1: 7}
