"""Metrics-collector tests."""

from __future__ import annotations

import math

import pytest

from repro.sim.metrics import (
    LatencySample,
    MetricsCollector,
    bandwidth_report,
    node_bandwidth_bps,
    utilization_breakdown,
)
from repro.sim.network import Network


class TestThroughput:
    def test_counts_after_warmup_only(self):
        metrics = MetricsCollector(warmup=1.0)
        metrics.record_execution(0, 100, 0.5)
        metrics.record_execution(0, 100, 1.5)
        assert metrics.executed_requests[0] == 100

    def test_throughput_division(self):
        metrics = MetricsCollector()
        metrics.record_execution(2, 500, 0.1)
        assert metrics.throughput(2, 2.0) == 250.0

    def test_zero_duration(self):
        metrics = MetricsCollector()
        assert metrics.throughput(0, 0.0) == 0.0

    def test_unknown_node(self):
        metrics = MetricsCollector()
        assert metrics.throughput(9, 1.0) == 0.0


class TestLatency:
    def test_mean(self):
        metrics = MetricsCollector()
        metrics.record_ack(0.0, 1.0)
        metrics.record_ack(1.0, 4.0)
        assert metrics.mean_latency() == pytest.approx(2.0)

    def test_empty_is_nan(self):
        metrics = MetricsCollector()
        assert math.isnan(metrics.mean_latency())
        assert math.isnan(metrics.latency_percentile(50))

    def test_percentiles(self):
        metrics = MetricsCollector()
        for i in range(11):
            metrics.record_ack(0.0, float(i))
        assert metrics.latency_percentile(0) == 0.0
        assert metrics.latency_percentile(50) == 5.0
        assert metrics.latency_percentile(100) == 10.0

    def test_warmup_filters_acks(self):
        metrics = MetricsCollector(warmup=2.0)
        metrics.record_ack(0.0, 1.0)
        metrics.record_ack(0.0, 3.0)
        assert len(metrics.latencies) == 1

    def test_sample_latency(self):
        assert LatencySample(1.0, 3.5).latency == 2.5


class TestPhases:
    def test_breakdown_normalizes(self):
        metrics = MetricsCollector()
        metrics.record_phase("a", 1.0, 1.0)
        metrics.record_phase("b", 3.0, 1.0)
        shares = metrics.phase_breakdown()
        assert shares["a"] == pytest.approx(0.25)
        assert shares["b"] == pytest.approx(0.75)

    def test_empty_breakdown(self):
        assert MetricsCollector().phase_breakdown() == {}


class TestBandwidthReports:
    def _loaded_network(self):
        from tests.sim.test_network import FakeMsg
        network = Network(2, bandwidth_bps=1e9, jitter=0.0, seed=0)
        msg = FakeMsg(1000, "datablock")
        arrival = network.send_phase(0, msg, 0.0)
        network.receive_phase(1, msg, arrival)
        small = FakeMsg(10, "vote")
        arrival = network.send_phase(0, small, 0.0)
        network.receive_phase(1, small, arrival)
        return network

    def test_bandwidth_report(self):
        network = self._loaded_network()
        report = bandwidth_report(network, 0, duration=2.0)
        assert report["send"]["datablock"] == pytest.approx(4000.0)
        assert report["send"]["vote"] == pytest.approx(40.0)

    def test_utilization_breakdown_sums_to_one(self):
        network = self._loaded_network()
        breakdown = utilization_breakdown(network, 1)
        total = sum(breakdown["send"].values()) + \
            sum(breakdown["recv"].values())
        assert total == pytest.approx(1.0)

    def test_utilization_empty_node(self):
        network = Network(2, seed=0)
        assert utilization_breakdown(network, 0) == {"send": {}, "recv": {}}

    def test_node_bandwidth(self):
        network = self._loaded_network()
        assert node_bandwidth_bps(network, 0, 1.0) == pytest.approx(8080.0)
        assert node_bandwidth_bps(network, 0, 0.0) == 0.0


class TestPerfWiring:
    """MetricsCollector carries data-plane perf counters (ROADMAP item)."""

    def test_collector_has_perf_counters(self):
        from repro.sim.metrics import MetricsCollector
        collector = MetricsCollector()
        collector.perf.incr("coding/encoded_datablocks")
        with collector.perf.timed("coding/encode"):
            pass
        snapshot = collector.perf.snapshot()
        assert snapshot["counts"]["coding/encoded_datablocks"] == 1
        assert "coding/encode" in snapshot["seconds"]

    def test_retrieval_records_into_attached_counters(self):
        from repro.core.datablock_pool import DatablockPool
        from repro.core.retrieval import RetrievalManager
        from repro.messages.leopard import Datablock, Query
        from repro.perf import PerfCounters

        perf = PerfCounters()
        responder = RetrievalManager(4, 1, replica_id=0)
        responder.perf = perf
        datablock = Datablock(2, 1, 10, 128)
        pool = DatablockPool()
        pool.add(datablock)
        responses = responder.make_responses(
            3, Query((datablock.digest(),)), pool)
        assert len(responses) == 1
        snapshot = perf.snapshot()
        assert snapshot["counts"]["coding/encoded_datablocks"] == 1
        assert snapshot["seconds"]["coding/encode"] > 0
        assert snapshot["seconds"]["hashing/merkle"] > 0

        # Decode side: feed chunks to a querier wired to the same sink.
        querier = RetrievalManager(4, 1, replica_id=3)
        querier.perf = perf
        querier.note_missing(datablock.digest())
        recovered = None
        for index in range(4):
            other = RetrievalManager(4, 1, replica_id=index)
            response = other.make_responses(
                3, Query((datablock.digest(),)), pool)[0]
            recovered = querier.on_response(response) or recovered
        assert recovered == datablock
        assert perf.snapshot()["counts"]["coding/decoded_datablocks"] >= 1
        assert perf.snapshot()["seconds"]["coding/decode"] > 0

    def test_cluster_report_includes_perf_breakdown(self):
        from repro.harness.cluster import build_leopard_cluster

        cluster = build_leopard_cluster(4, seed=0, warmup=0.1)
        cluster.run(0.5)
        report = cluster.report()
        assert report["backend"] == "sim"
        assert set(report["perf"]) == {"counts", "seconds"}
        # Every replica shares the collector's counters object.
        for replica in cluster.replicas:
            assert replica.retrieval.perf is cluster.metrics.perf
