"""Wave-aggregation tier: unit, property and chaos-regression tests.

The wave tier (``repro.sim.events``) collapses each eligible broadcast
wave into one *processed* event while still firing every arrival at its
exact ``(time, sequence)``.  These tests pin the three load-bearing
claims:

* the tier is calendar-only and opt-in (the heap reference engine
  rejects it),
* wave delivery is behaviourally invisible — reports, quorum counters
  and commit counts match scalar delivery under randomized fault and
  bandwidth mixes (hypothesis),
* faults injected *mid-run* by chaos scenarios demote already-registered
  waves for the victim to scalar fallbacks instead of delivering past
  the fault.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.faults import Crash, DelaySend, DropIncoming, Mute
from repro.sim.events import (
    CalendarEventQueue,
    EventQueue,
    HeapEventQueue,
    set_default_waves,
)


class TestWaveConfig:
    def test_heap_backend_rejects_waves(self):
        with pytest.raises(ConfigError):
            EventQueue(backend="heap", waves=True)
        with pytest.raises(ConfigError):
            HeapEventQueue(waves=True)

    def test_heap_set_waves_rejects_enable(self):
        queue = EventQueue(backend="heap")
        with pytest.raises(ConfigError):
            queue.set_waves(True)
        queue.set_waves(False)  # disabling is always legal
        assert not queue.wave_enabled

    def test_calendar_toggles(self):
        queue = CalendarEventQueue()
        assert not queue.wave_enabled  # opt-in
        queue.set_waves(True)
        assert queue.wave_enabled
        queue.set_waves(False)
        assert not queue.wave_enabled
        assert CalendarEventQueue(waves=True).wave_enabled

    def test_default_waves_switch(self):
        assert not EventQueue(backend="calendar").wave_enabled
        set_default_waves(True)
        try:
            assert EventQueue(backend="calendar").wave_enabled
            # An explicit argument still wins over the default.
            assert not EventQueue(backend="calendar",
                                  waves=False).wave_enabled
        finally:
            set_default_waves(False)
        assert not EventQueue(backend="calendar").wave_enabled

    def test_occupancy_keys_identical_across_backends(self):
        heap_occ = EventQueue(backend="heap").occupancy()
        cal_occ = EventQueue(backend="calendar").occupancy()
        assert set(heap_occ) == set(cal_occ)
        for key in ("wave_events", "wave_receivers", "wave_slabs",
                    "wave_pending", "scalar_fallbacks"):
            assert heap_occ[key] == 0
        assert heap_occ["waves"] is False


class TestWaveQueueSemantics:
    """Direct queue-level checks of the wave primitives."""

    def test_schedule_wave_fires_in_global_order(self):
        queue = CalendarEventQueue(bucket_width=0.25, waves=True)
        fired: list[tuple[float, object]] = []

        def arrive_many(times, args, start, stop):
            consumed = 0
            for i in range(start, stop):
                queue._now = times[i]
                fired.append((times[i], args[i]))
                consumed += 1
            return consumed

        queue.schedule_wave([0.1, 0.2, 0.4], arrive_many,
                            ["a", "b", "c"])
        queue.push(0.3, lambda tag: fired.append((queue.now, tag)),
                   "scalar")
        queue.run_until_idle()
        assert fired == [(0.1, "a"), (0.2, "b"), (0.3, "scalar"),
                         (0.4, "c")]
        occ = queue.occupancy()
        assert occ["wave_slabs"] == 1
        assert occ["wave_receivers"] == 3
        # Interrupted by the scalar event: two drained runs.
        assert occ["wave_events"] == 2
        assert queue.processed == 3  # 2 runs + 1 scalar event

    def test_wave_push_preserves_fifo_per_stream(self):
        queue = CalendarEventQueue(bucket_width=0.25, waves=True)
        fired: list[object] = []
        queue.wave_push(0.1, fired.append, "s0-first", 0)
        queue.wave_push(0.1, fired.append, "s0-second", 0)
        queue.wave_push(0.05, fired.append, "s1-first", 1)
        queue.run_until_idle()
        assert fired == ["s1-first", "s0-first", "s0-second"]
        assert queue.occupancy()["scalar_fallbacks"] == 0

    def test_wave_push_non_monotone_falls_back_to_scalar(self):
        queue = CalendarEventQueue(bucket_width=0.25, waves=True)
        fired: list[object] = []
        queue.wave_push(0.2, fired.append, "late", 0)
        queue.wave_push(0.1, fired.append, "early", 0)  # violates FIFO
        queue.run_until_idle()
        assert fired == ["early", "late"]  # still exact global order
        assert queue.occupancy()["scalar_fallbacks"] == 1

    def test_wave_pending_counts_toward_queue_depth(self):
        queue = CalendarEventQueue(bucket_width=0.25, waves=True)
        queue.schedule_wave([1.0, 2.0], lambda *a: 0, [None, None])
        queue.wave_push(1.5, lambda _: None, None, 0)
        assert queue.pending == 3

    def test_run_until_respects_deadline_mid_slab(self):
        queue = CalendarEventQueue(bucket_width=0.25, waves=True)
        fired: list[float] = []

        def arrive_many(times, args, start, stop):
            consumed = 0
            for i in range(start, stop):
                queue._now = times[i]
                fired.append(times[i])
                consumed += 1
            return consumed

        queue.schedule_wave([0.1, 0.2, 0.9], arrive_many,
                            [None, None, None])
        queue.run_until(0.5)
        assert fired == [0.1, 0.2]
        queue.run_until_idle()
        assert fired == [0.1, 0.2, 0.9]


def _quorum_snapshot(cluster) -> list:
    """Per-replica ReadyTracker state, JSON-comparable."""
    snapshot = []
    for replica_id, core in enumerate(cluster.replicas):
        ready = getattr(core, "ready", None)
        if ready is None:
            continue
        snapshot.append([
            replica_id,
            ready.ready_count,
            sorted((digest.hex(), sorted(replicas))
                   for digest, replicas in ready._ready_from.items()),
        ])
    return snapshot


def _leopard_run(n, seed, waves, faults=None, bandwidth=None,
                 duration=0.25):
    from repro.harness.cluster import build_leopard_cluster, \
        throttle_all_replicas

    cluster = build_leopard_cluster(
        n=n, seed=seed, warmup=0.0, faults=faults,
        queue_backend="calendar", waves=waves)
    if bandwidth is not None:
        throttle_all_replicas(cluster, bandwidth)
    cluster.run(duration)
    report = cluster.report()
    occupancy = report["event_queue"]
    for key in ("sim_events_per_sec", "event_queue", "perf",
                "events_processed"):
        report.pop(key)
    return report, occupancy, _quorum_snapshot(cluster)


FAULT_KINDS = (None, Crash(at=0.05),
               Mute(msg_classes=frozenset({"ready"})),
               DropIncoming(msg_classes=None),
               DelaySend(delay=0.02))


class TestWaveScalarProperty:
    """Hypothesis: wave delivery ≡ scalar delivery under fault mixes."""

    @settings(max_examples=8, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(seed=st.integers(min_value=0, max_value=2**16),
           fault_picks=st.lists(
               st.integers(min_value=0, max_value=len(FAULT_KINDS) - 1),
               min_size=2, max_size=2),
           throttled=st.booleans())
    def test_wave_matches_scalar(self, seed, fault_picks, throttled):
        n = 8
        faults = {}
        # Fault replicas 2 and 5: never the leader (0) and never the
        # measurement replica, with n=8 tolerating f=2.
        for replica_id, pick in zip((2, 5), fault_picks):
            kind = FAULT_KINDS[pick]
            if kind is not None:
                faults[replica_id] = kind
        bandwidth = 200e6 if throttled else None
        scalar = _leopard_run(n, seed, waves=False, faults=dict(faults),
                              bandwidth=bandwidth)
        wave = _leopard_run(n, seed, waves=True, faults=dict(faults),
                            bandwidth=bandwidth)
        assert json.dumps(scalar[0], sort_keys=True) \
            == json.dumps(wave[0], sort_keys=True)
        assert scalar[2] == wave[2]  # quorum counters match exactly
        if faults:
            # Faulted receivers must have been demoted to scalar events.
            assert wave[1]["scalar_fallbacks"] > 0


class TestChaosWaveDemotion:
    """Mid-run chaos faults demote registered waves for the victim."""

    @staticmethod
    def _chaos_run(waves: bool) -> tuple[dict, dict]:
        from repro.harness.cluster import build_leopard_cluster
        from repro.net.chaos import load_scenario, schedule_scenario_sim

        cluster = build_leopard_cluster(
            n=64, seed=7, warmup=0.0, queue_backend="calendar",
            waves=waves)
        schedule_scenario_sim(cluster, load_scenario("crash-restart"))
        cluster.run(0.4)
        report = cluster.report()
        occupancy = report["event_queue"]
        for key in ("sim_events_per_sec", "event_queue", "perf",
                    "events_processed"):
            report.pop(key)
        return report, occupancy

    def test_crash_restart_commits_match_scalar(self):
        scalar_report, _ = self._chaos_run(False)
        wave_report, wave_occ = self._chaos_run(True)
        assert wave_report["executed_requests"] \
            == scalar_report["executed_requests"]
        assert wave_report["acked_bundles"] \
            == scalar_report["acked_bundles"]
        # The whole report matches, not just the commit counts.
        assert json.dumps(scalar_report, sort_keys=True) \
            == json.dumps(wave_report, sort_keys=True)
        assert wave_occ["wave_events"] > 0

    def test_mid_run_fault_demotes_registered_waves(self):
        """A wave registered *before* the fault lands must not deliver
        on the wave fast path after it: the fire-time eligibility check
        demotes the victim's arrival to an exact scalar event."""
        from repro.faults import Crash
        from repro.harness.cluster import build_leopard_cluster

        cluster = build_leopard_cluster(
            n=4, seed=3, warmup=0.0, queue_backend="calendar",
            waves=True, prime=False)
        sim = cluster.sim
        queue = sim.queue
        cluster.run(0.05)  # boot; let the protocol circulate

        # Hand-register a broadcast wave from the leader, then crash a
        # receiver before any of its arrivals fire.
        from repro.messages.leopard import Ready
        msg = Ready(block_digest=b"\x5a" * 32)
        pending_before = queue._wave_pending
        sim.network.send_broadcast(0, [1, 2, 3], msg, sim.now, queue,
                                   sim)
        assert queue._wave_pending > pending_before  # wave registered
        fallbacks_before = queue.occupancy()["scalar_fallbacks"]
        crash = Crash(at=sim.now)
        crash._now = sim.now
        cluster.set_fault(2, crash)
        cluster.run(0.05)
        assert queue.occupancy()["scalar_fallbacks"] > fallbacks_before
