"""Smoke tests: the example scripts must stay runnable."""

from __future__ import annotations

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, timeout: float = 240.0) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True, text=True, timeout=timeout)
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "safety holds" in out
        assert "requests/second" in out

    def test_capacity_planning(self):
        out = run_example("capacity_planning.py")
        assert "scaling factor" in out
        assert "Gbps at the leader" in out

    @pytest.mark.slow
    def test_byzantine_recovery(self):
        out = run_example("byzantine_recovery.py")
        assert "safety held" in out
        assert "erasure-coded retrieval" in out

    @pytest.mark.slow
    def test_supply_chain(self):
        out = run_example("supply_chain.py")
        assert "every honest organization holds the same ledger prefix" \
            in out
