#!/usr/bin/env python3
"""A consortium supply chain on Leopard — the paper's §I motivation.

Sixteen organizations (replicas) run a permissioned ledger recording
shipment events.  Each organization's regional clients submit to their
nearest replica (the deterministic assignment µ of §IV-A1); every event is
confirmed by the BFT protocol and acknowledged back to the submitting
region.  One organization is Byzantine and tries the selective-
dissemination attack; the erasure-coded retrieval mechanism keeps the
ledger live without touching the leader.

Run:  python examples/supply_chain.py
"""

from __future__ import annotations

from repro.core.config import LeopardConfig
from repro.harness import build_leopard_cluster
from repro.sim.faults import SelectiveDisseminator


REGIONS = [
    "Rotterdam", "Singapore", "Shanghai", "Los Angeles", "Hamburg",
    "Dubai", "Santos", "Busan", "Antwerp", "Qingdao", "Piraeus",
    "Savannah", "Felixstowe", "Colombo", "Manzanillo",
]


def main() -> None:
    n = 16
    config = LeopardConfig(
        n=n,
        datablock_size=400,
        bftblock_max_links=20,
        max_batch_delay=0.1,
        retrieval_timeout=0.2,
        progress_timeout=5.0,
    )
    leader = config.leader_of(1)
    # Organization 5 is Byzantine: it forwards its shipment batches to
    # just enough replicas for a ready quorum and starves the rest.
    faulty = 5
    victims = {3, 7}
    targets = frozenset(r for r in range(n)
                        if r != faulty and r not in victims)
    cluster = build_leopard_cluster(
        n=n, seed=7, config=config, warmup=0.5, total_rate=30_000,
        faults={faulty: SelectiveDisseminator(targets)})

    print(f"consortium of {n} organizations, leader is org {leader}")
    print(f"org {faulty} is Byzantine (selective dissemination; "
          f"orgs {sorted(victims)} are starved)\n")
    cluster.run(5.0)

    print(f"ledger throughput: {cluster.throughput():,.0f} events/second")
    print(f"regional ack latency: {cluster.mean_latency():.3f} s mean, "
          f"{cluster.metrics.latency_percentile(99):.3f} s p99\n")

    print("per-organization view of the ledger:")
    for replica in cluster.replicas:
        region = REGIONS[replica.node_id % len(REGIONS)]
        recovered = replica.retrieval.recovered_count
        note = ""
        if replica.node_id == faulty:
            note = "  <- Byzantine"
        elif recovered:
            note = f"  <- recovered {recovered} starved batches"
        print(f"  org {replica.node_id:2d} ({region:12s}): "
              f"{len(replica.ledger.log):4d} blocks, "
              f"{replica.total_executed:8,} events{note}")

    honest = [r for r in cluster.replicas if r.node_id != faulty]
    logs = [[e.block_digest for e in r.ledger.log] for r in honest]
    shortest = min(len(log) for log in logs)
    assert all(log[:shortest] == logs[0][:shortest] for log in logs)
    print("\nevery honest organization holds the same ledger prefix; the")
    print("starved organizations recovered the Byzantine org's batches via")
    print("(f+1, n) erasure-coded retrieval without overloading the leader.")


if __name__ == "__main__":
    main()
