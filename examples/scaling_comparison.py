#!/usr/bin/env python3
"""Leopard vs HotStuff as the cluster grows — the paper's headline claim.

Runs both systems back-to-back on the identical simulated substrate at a
few scales (simulated), extends the curves with the calibrated analytical
model up to n = 600, and prints the scaling-factor arithmetic from §V-B
that explains the shapes.

Run:  python examples/scaling_comparison.py          (a few minutes)
"""

from __future__ import annotations

from repro.analysis import scaling_factor as sf
from repro.core.config import LeopardConfig, table2_parameters
from repro.harness import build_hotstuff_cluster, build_leopard_cluster
from repro.harness.experiments import hotstuff_model_rps, leopard_model_rps


SIM_SCALES = (16, 32)
MODEL_SCALES = (64, 128, 300, 600)


def run_leopard(n: int) -> float:
    datablock, links = table2_parameters(n)
    config = LeopardConfig(
        n=n, datablock_size=datablock, bftblock_max_links=links)
    cluster = build_leopard_cluster(n=n, seed=1, config=config)
    cluster.run(cluster.warmup + 3.0)
    return cluster.throughput()


def run_hotstuff(n: int) -> float:
    cluster = build_hotstuff_cluster(n=n, seed=1)
    cluster.run(cluster.warmup + 3.0)
    return cluster.throughput()


def main() -> None:
    print(f"{'n':>5} {'Leopard (rps)':>16} {'HotStuff (rps)':>16} "
          f"{'ratio':>7}  source")
    for n in SIM_SCALES:
        leopard = run_leopard(n)
        hotstuff = run_hotstuff(n)
        print(f"{n:>5} {leopard:>16,.0f} {hotstuff:>16,.0f} "
              f"{leopard / hotstuff:>7.2f}  simulated")
    for n in MODEL_SCALES:
        leopard = leopard_model_rps(n)
        hotstuff = hotstuff_model_rps(n)
        print(f"{n:>5} {leopard:>16,.0f} {hotstuff:>16,.0f} "
              f"{leopard / hotstuff:>7.2f}  model")

    print("\nwhy (paper §V-B): bits moved per confirmed request bit")
    print(f"{'n':>5} {'SF Leopard':>12} {'SF leader-based':>16} "
          f"{'gamma L':>8} {'gamma HS':>9}")
    for n in (16, 64, 300, 600):
        datablock, links = table2_parameters(n)
        params = sf.LeopardParameters(
            n=n, datablock_requests=datablock, bftblock_links=links)
        print(f"{n:>5} {sf.leopard_scaling_factor(params):>12.3f} "
              f"{sf.leader_based_scaling_factor(n):>16.0f} "
              f"{sf.leopard_scaling_up_gamma(params):>8.3f} "
              f"{sf.leader_based_scaling_up_gamma(n):>9.4f}")
    print("\nLeopard's scaling factor is a small constant (~2), so its")
    print("throughput is scale-independent; a leader-based protocol's is")
    print("O(n), so its throughput decays as the cluster grows (Eq. (1)).")


if __name__ == "__main__":
    main()
