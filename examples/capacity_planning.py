#!/usr/bin/env python3
"""Capacity planning with the §V-B cost model — a downstream-user utility.

Given a target request rate, a payload size and a replica count, this
script answers the questions an operator would ask before deploying
Leopard: how much per-replica bandwidth is needed, how should the batch
parameters α and τ be set (the Table II rule α = λ(n-1)), and what would
the same hardware yield under a leader-disseminating protocol.

Run:  python examples/capacity_planning.py
"""

from __future__ import annotations

from repro.analysis import scaling_factor as sf


DEPLOYMENTS = [
    # (name, replicas, target requests/s, payload bytes)
    ("regional consortium", 31, 50_000, 256),
    ("national settlement network", 130, 100_000, 128),
    ("global committee (PoS-style)", 601, 80_000, 128),
]


def plan(name: str, n: int, target_rps: float, payload: int) -> None:
    # Batch sizing per the paper's rule: α = λ(n-1), λ ≈ one request.
    lam_bits = payload * 8.0 * 8  # ~8 requests per replica-slot of α
    alpha_bits = sf.alpha_for_constant_sf(n, lam_bits)
    datablock_requests = max(1, int(alpha_bits / (payload * 8)))
    links = max(10, min(400, n))
    params = sf.LeopardParameters(
        n=n, payload=payload, datablock_requests=datablock_requests,
        bftblock_links=links)

    leopard_sf = sf.leopard_scaling_factor(params)
    leader_sf = sf.leader_based_scaling_factor(n)
    payload_bits = payload * 8.0
    required_capacity = target_rps * payload_bits * leopard_sf
    leader_based_capacity = target_rps * payload_bits * leader_sf

    print(f"— {name}: n={n}, target {target_rps:,.0f} req/s, "
          f"{payload} B payloads")
    print(f"   datablock size α: {datablock_requests:,} requests "
          f"({alpha_bits / 8 / 1e3:.0f} KB); BFTblock links τ: {links}")
    print(f"   Leopard scaling factor: {leopard_sf:.3f} "
          f"(leader-based: {leader_sf:.0f})")
    print(f"   required per-replica capacity: "
          f"{required_capacity / 1e6:,.0f} Mbps total (in+out)")
    print(f"   same target on a leader-based protocol would need "
          f"{leader_based_capacity / 1e9:,.1f} Gbps at the leader")
    gamma = sf.leopard_scaling_up_gamma(params)
    print(f"   scaling up: each added Mbps of capacity buys "
          f"{gamma / payload_bits * 1e6:,.0f} extra req/s "
          f"(γ = {gamma:.2f})")
    retrieval = sf.selective_attack_overhead(params)
    print(f"   worst-case selective-attack overhead: "
          f"{100 * (retrieval):.0f}% extra per-replica traffic\n")


def main() -> None:
    print("Leopard capacity planning (cost model of paper §V-B)\n")
    for deployment in DEPLOYMENTS:
        plan(*deployment)
    print("note: CPU ceilings depend on the execution workload; see")
    print("repro.analysis.calibration for the simulator's CPU model.")


if __name__ == "__main__":
    main()
