#!/usr/bin/env python3
"""Quickstart: a 4-replica Leopard cluster confirming client requests.

Builds the smallest optimal-resilience deployment (n = 3f+1 = 4), drives it
with a saturating client load for three simulated seconds, and prints the
numbers the paper cares about: server-side throughput, client-side latency,
and the (identical) replicated logs.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro.core.config import LeopardConfig
from repro.harness import build_leopard_cluster


def main() -> None:
    config = LeopardConfig(
        n=4,
        datablock_size=500,       # α: requests per datablock
        bftblock_max_links=20,    # τ: datablock links per BFTblock
        max_batch_delay=0.05,
    )
    cluster = build_leopard_cluster(
        n=4, seed=42, config=config, warmup=0.5, total_rate=60_000)

    print("running 3 simulated seconds of saturated load...")
    cluster.run(3.0)

    print(f"throughput : {cluster.throughput():>10,.0f} requests/second")
    print(f"latency    : {cluster.mean_latency():>10.3f} seconds (mean)")
    print(f"p95 latency: {cluster.metrics.latency_percentile(95):>10.3f} "
          f"seconds")
    leader_mbps = cluster.leader_bandwidth_bps() / 1e6
    print(f"leader NIC : {leader_mbps:>10.1f} Mbps "
          f"(the leader never ships request payloads)")

    print("\nreplicated logs (first 5 positions, all replicas):")
    for replica in cluster.replicas:
        role = "leader " if replica.is_leader else "replica"
        prefix = " ".join(
            entry.block_digest.hex()[:8]
            for entry in replica.ledger.log[:5])
        print(f"  {role} {replica.node_id}: {prefix} "
              f"({len(replica.ledger.log)} blocks, "
              f"{replica.total_executed:,} requests executed)")

    logs = [[e.block_digest for e in r.ledger.log]
            for r in cluster.replicas]
    shortest = min(len(log) for log in logs)
    assert all(log[:shortest] == logs[0][:shortest] for log in logs), \
        "safety violation!"
    print("\nall honest logs agree on their common prefix — safety holds.")


if __name__ == "__main__":
    main()
