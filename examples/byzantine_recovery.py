#!/usr/bin/env python3
"""Byzantine-failure walkthrough: selective attack, then a leader crash.

Act 1 — a faulty non-leader replica runs the §IV-A2 selective attack,
sending its datablocks to the bare ready quorum; the starved replica
recovers them with (f+1, n) Reed--Solomon chunks and Merkle proofs
(Algorithm 3) and keeps voting.

Act 2 — the leader crashes; progress stalls; replicas exchange signed
timeouts, the round-robin successor collects 2f+1 view-change messages and
multicasts a new-view with a redo schedule (Appendix A); confirmation
resumes under the new leader.

Run:  python examples/byzantine_recovery.py
"""

from __future__ import annotations

from repro.core.config import LeopardConfig
from repro.harness import build_leopard_cluster
from repro.sim.faults import Crash, SelectiveDisseminator


def main() -> None:
    n = 7
    config = LeopardConfig(
        n=n,
        datablock_size=200,
        bftblock_max_links=10,
        max_batch_delay=0.05,
        retrieval_timeout=0.15,
        progress_timeout=0.6,
        checkpoint_period=20,
    )
    leader = config.leader_of(1)        # replica 1
    faulty_creator = 3                  # runs the selective attack
    victim = 2                          # never receives 3's datablocks
    crash_at = 2.5                      # the leader dies mid-run

    targets = frozenset(
        r for r in range(n) if r not in (faulty_creator, victim))
    faults = {
        faulty_creator: SelectiveDisseminator(targets),
        leader: Crash(at=crash_at),
    }
    cluster = build_leopard_cluster(
        n=n, seed=99, config=config, warmup=0.2, total_rate=20_000,
        faults=faults)

    print(f"n={n} (f={config.f}); leader={leader}; "
          f"selective attacker={faulty_creator}; starved victim={victim}")
    print(f"leader will crash at t={crash_at}s\n")

    print("--- act 1: selective dissemination attack ---")
    cluster.run(2.4)
    victim_replica = cluster.replicas[victim]
    print(f"t={cluster.sim.now:.1f}s  victim recovered "
          f"{victim_replica.retrieval.recovered_count} datablocks via "
          f"erasure-coded retrieval;")
    resp_bytes = cluster.network.stats(victim).recv_bytes.get('resp', 0)
    print(f"         retrieval traffic at the victim: "
          f"{resp_bytes / 1e3:.1f} KB total")
    print(f"         victim executed {victim_replica.total_executed:,} "
          f"requests — liveness preserved, view still "
          f"{victim_replica.view}\n")

    print("--- act 2: leader crash and view-change ---")
    cluster.run(5.0)
    measure = cluster.replicas[cluster.measure_replica]
    honest = [r for r in cluster.replicas
              if r.node_id not in (leader,)]
    views = {r.node_id: r.view for r in honest}
    print(f"t={cluster.sim.now:.1f}s  views after the crash: {views}")
    if measure.vc_triggered_at and measure.vc_entered_at:
        print(f"         view-change took "
              f"{measure.vc_entered_at - measure.vc_triggered_at:.3f}s "
              f"after triggering "
              f"(triggered {measure.vc_triggered_at - crash_at:.2f}s "
              f"after the crash)")
    new_leader = cluster.replicas[2 % n]
    print(f"         new leader is replica {new_leader.node_id} "
          f"(round-robin successor)")
    before = measure.total_executed
    cluster.run(2.0)
    print(f"         requests executed since the new view: "
          f"{measure.total_executed - before:,} — confirmation resumed\n")

    logs = [[e.block_digest for e in r.ledger.log] for r in honest]
    shortest = min(len(log) for log in logs)
    assert all(log[:shortest] == logs[0][:shortest] for log in logs)
    print("honest logs agree across the attack and the view-change —")
    print("safety held while both recovery mechanisms restored liveness.")


if __name__ == "__main__":
    main()
