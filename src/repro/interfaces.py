"""Sans-io protocol interfaces shared by Leopard, the baselines and the sim.

Every replica and client in this repository is a *pure state machine*: it
consumes messages and timer firings and returns a list of :class:`Effect`
values describing what it wants done (send a message, set a timer, report
committed requests).  The discrete-event simulator in :mod:`repro.sim`
interprets those effects against a modelled network; unit tests interpret
them directly.  This is the layering that makes a 600-replica protocol
testable function-by-function (DESIGN.md §5).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Protocol, runtime_checkable


@runtime_checkable
class Message(Protocol):
    """Anything that can cross the simulated wire.

    ``msg_class`` buckets bytes for the bandwidth-breakdown tables (paper
    Table III); ``size_bytes`` drives NIC serialization time.
    """

    @property
    def msg_class(self) -> str:
        """Accounting bucket, e.g. ``"datablock"`` or ``"vote"``."""
        ...

    def size_bytes(self) -> int:
        """Total wire size of the message in bytes."""
        ...


#: Message classes processed on the data plane.  Modelled nodes have two
#: processing lanes (the paper's c5.xlarge instances have 4 vCPUs): heavy
#: per-request payload work (datablock/client/chunk processing) must not
#: head-of-line-block the consensus-critical control messages (votes,
#: proofs, readies), exactly as a threaded implementation separates them.
DATA_PLANE_CLASSES = frozenset({"datablock", "client", "resp", "block"})


class Effect:
    """Base class for protocol-core outputs."""

    __slots__ = ()


@dataclass(slots=True)
class Send(Effect):
    """Unicast ``msg`` to node ``dest``."""

    dest: int
    msg: Message


@dataclass(slots=True)
class Broadcast(Effect):
    """Send ``msg`` to every *replica* except the sender and ``exclude``.

    The simulator expands a broadcast into n-1 unicasts that serialize
    through the sender's NIC one after another — the cost model behind the
    paper's Eq. (1).
    """

    msg: Message
    exclude: tuple[int, ...] = ()


@dataclass(slots=True)
class SetTimer(Effect):
    """Arm (or re-arm) the timer ``key`` to fire ``delay`` seconds from now."""

    key: Hashable
    delay: float


@dataclass(slots=True)
class CancelTimer(Effect):
    """Disarm the timer ``key`` if armed."""

    key: Hashable


@dataclass(slots=True)
class Executed(Effect):
    """Report requests executed (committed and applied) by this node.

    Attributes:
        count: number of requests executed.
        info: optional protocol-specific commit identities — Leopard and
            PBFT cores pass the executed sequence numbers, HotStuff the
            executed heights, as a tuple.  The tracing layer
            (:mod:`repro.obs`) joins these against the proposal that
            carried each request to measure the agreement phase; tests
            may inspect them directly.
    """

    count: int
    info: object = None


@dataclass(slots=True)
class Trace(Effect):
    """Structured trace point for instrumentation (latency breakdowns)."""

    kind: str
    data: dict = field(default_factory=dict)


@dataclass(slots=True)
class Delayed(Effect):
    """Apply ``effect`` after ``delay`` seconds of host time.

    Produced by fault behaviours (:class:`repro.faults.DelaySend`) that
    model slow/lagging replicas: the hosting backend — the simulator's
    event queue or the live runtime's event loop — interprets the inner
    effect late, without the core knowing it was delayed.  Honest cores
    never emit this directly.
    """

    delay: float
    effect: Effect


class ProtocolCore(Protocol):
    """The sans-io surface that hosts (simulator or tests) drive."""

    node_id: int

    def start(self, now: float) -> list[Effect]:
        """Called once when the node boots; returns initial effects."""
        ...

    def on_message(self, sender: int, msg: Message, now: float
                   ) -> list[Effect]:
        """Handle one delivered message."""
        ...

    def on_timer(self, key: Hashable, now: float) -> list[Effect]:
        """Handle the firing of timer ``key``."""
        ...


def cpu_cost_zero(msg: Message, receiving: bool) -> float:
    """A cost model that charges nothing — used by pure-logic unit tests."""
    return 0.0
