"""Length-prefixed binary codec for every protocol message.

Frame layout (big-endian)::

    u32  payload_length      # bytes following this field
    u8   type tag            # registry entry of the message class
    u32  sender              # node id of the transmitting node
    ...  body                # per-type fields; nested items length-prefixed
    ...  zero padding        # up to the cost model's wire size

**Size parity.**  The abstract cost model (:mod:`repro.messages.base`)
prices each message as a 32-byte envelope plus its content terms; this
codec reconciles that envelope against its actual 9 framing bytes by
letting per-message metadata spill into the envelope allowance and by
padding the frame tail, so that ``len(encode(sender, msg)) ==
msg.size_bytes()`` holds exactly for every protocol message — the live
transport therefore moves the same byte counts the simulator charges.

Payload-carrying messages (request bundles, datablocks, PBFT pre-prepares,
HotStuff blocks) transfer ``request_count * payload_size`` filler bytes in
place of real request payloads: everywhere in this reproduction payloads
are synthetic (see :meth:`repro.messages.leopard.Datablock.body`), but the
bytes still cross the wire so bandwidth and backpressure are real.

If a pathological message's metadata outgrows its modelled size (e.g. a
datablock with zero requests), the frame grows past the model rather than
truncating; decoding is always driven by the length prefix.
"""

from __future__ import annotations

import struct
from typing import Callable

from repro.crypto.keys import PlainSignature
from repro.crypto.merkle import MerkleProof
from repro.crypto.threshold import SignatureShare, ThresholdSignature
from repro.messages.client import Ack, RequestBundle
from repro.messages.hotstuff import HSBlock, HSNewView, HSVote, QuorumCert
from repro.messages.leopard import (
    BFTblock,
    BundleSpan,
    CheckpointProof,
    CheckpointShare,
    ChunkResponse,
    Datablock,
    NewViewMsg,
    NotarizedEntry,
    Proof,
    Query,
    Ready,
    TimeoutMsg,
    ViewChangeMsg,
    Vote,
)
from repro.messages.pbft import Commit, Prepare, PrePrepare
from repro.messages.recovery import (
    LedgerSegment,
    SegmentEntry,
    StateRequest,
    StateSnapshot,
)

#: Upper bound on one frame; protects stream readers from garbage lengths.
MAX_FRAME_BYTES = 256 * 1024 * 1024

#: Bytes of the length prefix itself.
LENGTH_PREFIX = 4

_HEADER = struct.Struct("!IBI")  # payload_length, type tag, sender
_FIELD_BYTES = 32  # threshold-scheme field elements (256-bit prime)


class CodecError(ValueError):
    """Raised on malformed frames or unregistered message types."""


# ---------------------------------------------------------------------------
# Primitive readers/writers
# ---------------------------------------------------------------------------


class _Writer:
    """Accumulates body bytes for one frame."""

    __slots__ = ("parts",)

    def __init__(self) -> None:
        self.parts: list[bytes] = []

    def u8(self, value: int) -> None:
        self.parts.append(value.to_bytes(1, "big"))

    def u16(self, value: int) -> None:
        self.parts.append(value.to_bytes(2, "big"))

    def u32(self, value: int) -> None:
        self.parts.append(value.to_bytes(4, "big"))

    def u64(self, value: int) -> None:
        self.parts.append(value.to_bytes(8, "big"))

    def f64(self, value: float) -> None:
        self.parts.append(struct.pack("!d", value))

    def raw(self, data: bytes) -> None:
        self.parts.append(data)

    def hash32(self, data: bytes) -> None:
        if len(data) != 32:
            raise CodecError(f"expected a 32-byte digest, got {len(data)}")
        self.parts.append(data)

    def vbytes16(self, data: bytes) -> None:
        self.u16(len(data))
        self.parts.append(data)

    def vbytes32(self, data: bytes) -> None:
        self.u32(len(data))
        self.parts.append(data)

    def size(self) -> int:
        return sum(len(part) for part in self.parts)

    def body(self) -> bytes:
        return b"".join(self.parts)


class _Reader:
    """Sequential reader over one frame's body."""

    __slots__ = ("data", "pos")

    def __init__(self, data: memoryview) -> None:
        self.data = data
        self.pos = 0

    def _take(self, count: int) -> memoryview:
        end = self.pos + count
        if end > len(self.data):
            raise CodecError("truncated frame body")
        view = self.data[self.pos:end]
        self.pos = end
        return view

    def u8(self) -> int:
        return self._take(1)[0]

    def u16(self) -> int:
        return int.from_bytes(self._take(2), "big")

    def u32(self) -> int:
        return int.from_bytes(self._take(4), "big")

    def u64(self) -> int:
        return int.from_bytes(self._take(8), "big")

    def f64(self) -> float:
        return struct.unpack("!d", self._take(8))[0]

    def raw(self, count: int) -> bytes:
        return bytes(self._take(count))

    def hash32(self) -> bytes:
        return bytes(self._take(32))

    def vbytes16(self) -> bytes:
        return self.raw(self.u16())

    def vbytes32(self) -> bytes:
        return self.raw(self.u32())


# -- shared sub-structures ---------------------------------------------------


def _w_share(w: _Writer, share: SignatureShare) -> None:
    w.u32(share.signer)
    w.raw(share.value.to_bytes(_FIELD_BYTES, "big"))


def _r_share(r: _Reader) -> SignatureShare:
    signer = r.u32()
    value = int.from_bytes(r.raw(_FIELD_BYTES), "big")
    return SignatureShare(signer, value)


def _w_tsig(w: _Writer, sig: ThresholdSignature) -> None:
    w.raw(sig.value.to_bytes(_FIELD_BYTES, "big"))


def _r_tsig(r: _Reader) -> ThresholdSignature:
    return ThresholdSignature(int.from_bytes(r.raw(_FIELD_BYTES), "big"))


def _w_plainsig(w: _Writer, sig: PlainSignature) -> None:
    w.u32(sig.signer)
    w.vbytes16(sig.tag)


def _r_plainsig(r: _Reader) -> PlainSignature:
    return PlainSignature(r.u32(), r.vbytes16())


def _w_spans(w: _Writer, spans: tuple[BundleSpan, ...]) -> None:
    w.u32(len(spans))
    for span in spans:
        w.u32(span.client_id)
        w.u64(span.bundle_id)
        w.u32(span.count)
        w.f64(span.submitted_at)


def _r_spans(r: _Reader) -> tuple[BundleSpan, ...]:
    count = r.u32()
    return tuple(
        BundleSpan(r.u32(), r.u64(), r.u32(), r.f64())
        for _ in range(count))


def _w_merkle_proof(w: _Writer, proof: MerkleProof) -> None:
    w.u32(proof.leaf_index)
    w.u16(len(proof.siblings))
    for is_right, sibling in proof.siblings:
        w.u8(1 if is_right else 0)
        w.hash32(sibling)


def _r_merkle_proof(r: _Reader) -> MerkleProof:
    leaf_index = r.u32()
    count = r.u16()
    siblings = tuple((r.u8() == 1, r.hash32()) for _ in range(count))
    return MerkleProof(leaf_index, siblings)


def _pad_filler(w: _Writer, count: int) -> None:
    """Stand-in for ``count`` bytes of real request payload."""
    if count > 0:
        w.raw(bytes(count))


def _w_nested(w: _Writer,
              encode_body: Callable[[_Writer, object], None],
              obj) -> None:
    """Encode ``obj`` as a u32-length-prefixed nested blob."""
    inner = _Writer()
    encode_body(inner, obj)
    w.vbytes32(inner.body())


def _read_nested(r: _Reader, decode_body: Callable[[_Reader], object]
                 ) -> object:
    blob = r.vbytes32()
    return decode_body(_Reader(memoryview(blob)))


# ---------------------------------------------------------------------------
# Per-type body codecs
# ---------------------------------------------------------------------------


def _enc_request_bundle(w: _Writer, msg: RequestBundle) -> None:
    w.u32(msg.client_id)
    w.u64(msg.bundle_id)
    w.u32(msg.count)
    w.u32(msg.payload_size)
    w.f64(msg.submitted_at)
    w.u8(1 if msg.timeout_flagged else 0)
    # Request payloads (count * payload_size filler); padding completes it.


def _dec_request_bundle(r: _Reader) -> RequestBundle:
    return RequestBundle(
        client_id=r.u32(), bundle_id=r.u64(), count=r.u32(),
        payload_size=r.u32(), submitted_at=r.f64(),
        timeout_flagged=r.u8() == 1)


def _enc_ack(w: _Writer, msg: Ack) -> None:
    w.u32(msg.client_id)
    w.u64(msg.bundle_id)
    w.u32(msg.count)
    w.f64(msg.submitted_at)
    w.f64(msg.executed_at)


def _dec_ack(r: _Reader) -> Ack:
    return Ack(client_id=r.u32(), bundle_id=r.u64(), count=r.u32(),
               submitted_at=r.f64(), executed_at=r.f64())


def _enc_datablock_meta(w: _Writer, msg: Datablock) -> None:
    """The datablock header (no payload bytes) — reused by ChunkResponse."""
    w.u32(msg.creator)
    w.u64(msg.counter)
    w.u32(msg.request_count)
    w.u32(msg.payload_size)
    w.f64(msg.created_at)
    _w_spans(w, msg.spans)


def _dec_datablock_meta(r: _Reader) -> Datablock:
    return Datablock(
        creator=r.u32(), counter=r.u64(), request_count=r.u32(),
        payload_size=r.u32(), created_at=r.f64(), spans=_r_spans(r))


def _enc_datablock(w: _Writer, msg: Datablock) -> None:
    _enc_datablock_meta(w, msg)
    # body_size() filler + padding follow.


def _enc_ready(w: _Writer, msg: Ready) -> None:
    w.hash32(msg.block_digest)


def _dec_ready(r: _Reader) -> Ready:
    return Ready(r.hash32())


def _enc_bftblock(w: _Writer, msg: BFTblock) -> None:
    w.u64(msg.view)
    w.u64(msg.sn)
    w.f64(msg.proposed_at)
    if msg.leader_share is None:
        w.u8(0)
    else:
        w.u8(1)
        _w_share(w, msg.leader_share)
    w.u32(len(msg.links))
    for link in msg.links:
        w.hash32(link)


def _dec_bftblock(r: _Reader) -> BFTblock:
    view = r.u64()
    sn = r.u64()
    proposed_at = r.f64()
    share = _r_share(r) if r.u8() == 1 else None
    links = tuple(r.hash32() for _ in range(r.u32()))
    return BFTblock(view=view, sn=sn, links=links, leader_share=share,
                    proposed_at=proposed_at)


def _enc_vote(w: _Writer, msg: Vote) -> None:
    w.u8(msg.round)
    w.hash32(msg.block_digest)
    w.vbytes16(msg.signed_payload)
    _w_share(w, msg.share)


def _dec_vote(r: _Reader) -> Vote:
    return Vote(round=r.u8(), block_digest=r.hash32(),
                signed_payload=r.vbytes16(), share=_r_share(r))


def _enc_proof(w: _Writer, msg: Proof) -> None:
    w.u8(msg.round)
    w.hash32(msg.block_digest)
    w.vbytes16(msg.signed_payload)
    _w_tsig(w, msg.signature)
    if msg.prior_signature is None:
        w.u8(0)
    else:
        w.u8(1)
        _w_tsig(w, msg.prior_signature)


def _dec_proof(r: _Reader) -> Proof:
    round_ = r.u8()
    block_digest = r.hash32()
    signed_payload = r.vbytes16()
    signature = _r_tsig(r)
    prior = _r_tsig(r) if r.u8() == 1 else None
    return Proof(round=round_, block_digest=block_digest,
                 signed_payload=signed_payload, signature=signature,
                 prior_signature=prior)


def _enc_query(w: _Writer, msg: Query) -> None:
    w.u32(len(msg.block_digests))
    for block_digest in msg.block_digests:
        w.hash32(block_digest)


def _dec_query(r: _Reader) -> Query:
    return Query(tuple(r.hash32() for _ in range(r.u32())))


def _enc_chunk_response(w: _Writer, msg: ChunkResponse) -> None:
    w.hash32(msg.block_digest)
    w.hash32(msg.root)
    w.u32(msg.chunk_index)
    w.vbytes32(msg.chunk_data)
    _w_merkle_proof(w, msg.proof)
    _enc_datablock_meta(w, msg.meta)


def _dec_chunk_response(r: _Reader) -> ChunkResponse:
    return ChunkResponse(
        block_digest=r.hash32(), root=r.hash32(), chunk_index=r.u32(),
        chunk_data=r.vbytes32(), proof=_r_merkle_proof(r),
        meta=_dec_datablock_meta(r))


def _enc_checkpoint_share(w: _Writer, msg: CheckpointShare) -> None:
    w.u64(msg.sn)
    w.hash32(msg.state_digest)
    _w_share(w, msg.share)


def _dec_checkpoint_share(r: _Reader) -> CheckpointShare:
    return CheckpointShare(sn=r.u64(), state_digest=r.hash32(),
                           share=_r_share(r))


def _enc_checkpoint_proof(w: _Writer, msg: CheckpointProof) -> None:
    w.u64(msg.sn)
    w.hash32(msg.state_digest)
    _w_tsig(w, msg.signature)


def _dec_checkpoint_proof(r: _Reader) -> CheckpointProof:
    return CheckpointProof(sn=r.u64(), state_digest=r.hash32(),
                           signature=_r_tsig(r))


def _enc_timeout(w: _Writer, msg: TimeoutMsg) -> None:
    w.u64(msg.view)
    _w_plainsig(w, msg.signature)


def _dec_timeout(r: _Reader) -> TimeoutMsg:
    return TimeoutMsg(view=r.u64(), signature=_r_plainsig(r))


def _enc_viewchange(w: _Writer, msg: ViewChangeMsg) -> None:
    w.u64(msg.new_view)
    if msg.checkpoint is None:
        w.u8(0)
    else:
        w.u8(1)
        _w_nested(w, _enc_checkpoint_proof, msg.checkpoint)
    w.u32(len(msg.entries))
    for entry in msg.entries:
        inner = _Writer()
        _w_nested(inner, _enc_bftblock, entry.block)
        _w_tsig(inner, entry.notarization)
        w.vbytes32(inner.body())
    _w_plainsig(w, msg.signature)


def _dec_viewchange(r: _Reader) -> ViewChangeMsg:
    new_view = r.u64()
    checkpoint = None
    if r.u8() == 1:
        checkpoint = _read_nested(r, _dec_checkpoint_proof)
    entries = []
    for _ in range(r.u32()):
        inner = _Reader(memoryview(r.vbytes32()))
        block = _read_nested(inner, _dec_bftblock)
        notarization = _r_tsig(inner)
        entries.append(NotarizedEntry(block, notarization))
    signature = _r_plainsig(r)
    return ViewChangeMsg(new_view=new_view, checkpoint=checkpoint,
                         entries=tuple(entries), signature=signature)


def _enc_new_view(w: _Writer, msg: NewViewMsg) -> None:
    w.u64(msg.new_view)
    w.u32(len(msg.view_changes))
    for vc_msg in msg.view_changes:
        _w_nested(w, _enc_viewchange, vc_msg)
    w.u32(len(msg.redo))
    for block in msg.redo:
        _w_nested(w, _enc_bftblock, block)
    _w_plainsig(w, msg.signature)


def _dec_new_view(r: _Reader) -> NewViewMsg:
    new_view = r.u64()
    view_changes = tuple(
        _read_nested(r, _dec_viewchange) for _ in range(r.u32()))
    redo = tuple(_read_nested(r, _dec_bftblock) for _ in range(r.u32()))
    signature = _r_plainsig(r)
    return NewViewMsg(new_view=new_view, view_changes=view_changes,
                      redo=redo, signature=signature)


# -- PBFT --------------------------------------------------------------------


def _enc_preprepare(w: _Writer, msg: PrePrepare) -> None:
    w.u64(msg.view)
    w.u64(msg.sn)
    w.u32(msg.request_count)
    w.u32(msg.payload_size)
    w.f64(msg.proposed_at)
    _w_spans(w, msg.spans)


def _dec_preprepare(r: _Reader) -> PrePrepare:
    return PrePrepare(
        view=r.u64(), sn=r.u64(), request_count=r.u32(),
        payload_size=r.u32(), proposed_at=r.f64(), spans=_r_spans(r))


def _enc_prepare(w: _Writer, msg: Prepare) -> None:
    w.u64(msg.view)
    w.u64(msg.sn)
    w.hash32(msg.block_digest)
    w.u32(msg.voter)


def _dec_prepare(r: _Reader) -> Prepare:
    return Prepare(view=r.u64(), sn=r.u64(), block_digest=r.hash32(),
                   voter=r.u32())


def _enc_commit(w: _Writer, msg: Commit) -> None:
    w.u64(msg.view)
    w.u64(msg.sn)
    w.hash32(msg.block_digest)
    w.u32(msg.voter)


def _dec_commit(r: _Reader) -> Commit:
    return Commit(view=r.u64(), sn=r.u64(), block_digest=r.hash32(),
                  voter=r.u32())


# -- HotStuff ----------------------------------------------------------------


def _enc_qc(w: _Writer, qc: QuorumCert) -> None:
    w.hash32(qc.block_digest)
    w.u64(qc.height)
    w.u32(qc.signer_count)


def _dec_qc(r: _Reader) -> QuorumCert:
    return QuorumCert(block_digest=r.hash32(), height=r.u64(),
                      signer_count=r.u32())


def _enc_hsblock(w: _Writer, msg: HSBlock) -> None:
    w.u64(msg.height)
    w.hash32(msg.parent_digest)
    if msg.justify is None:
        w.u8(0)
    else:
        w.u8(1)
        _w_nested(w, _enc_qc, msg.justify)
    w.u32(msg.request_count)
    w.u32(msg.payload_size)
    w.f64(msg.proposed_at)
    _w_spans(w, msg.spans)


def _dec_hsblock(r: _Reader) -> HSBlock:
    height = r.u64()
    parent = r.hash32()
    justify = _read_nested(r, _dec_qc) if r.u8() == 1 else None
    return HSBlock(
        height=height, parent_digest=parent, justify=justify,
        request_count=r.u32(), payload_size=r.u32(), proposed_at=r.f64(),
        spans=_r_spans(r))


def _enc_hsvote(w: _Writer, msg: HSVote) -> None:
    w.u64(msg.height)
    w.hash32(msg.block_digest)
    w.u32(msg.voter)


def _dec_hsvote(r: _Reader) -> HSVote:
    return HSVote(height=r.u64(), block_digest=r.hash32(), voter=r.u32())


def _enc_hsnewview(w: _Writer, msg: HSNewView) -> None:
    w.u64(msg.view)
    if msg.high_qc is None:
        w.u8(0)
    else:
        w.u8(1)
        _w_nested(w, _enc_qc, msg.high_qc)


def _dec_hsnewview(r: _Reader) -> HSNewView:
    view = r.u64()
    high_qc = _read_nested(r, _dec_qc) if r.u8() == 1 else None
    return HSNewView(view=view, high_qc=high_qc)


# -- Recovery ----------------------------------------------------------------


def _enc_state_request(w: _Writer, msg: StateRequest) -> None:
    w.u64(msg.start_sn)
    w.u64(msg.end_sn)


def _dec_state_request(r: _Reader) -> StateRequest:
    return StateRequest(start_sn=r.u64(), end_sn=r.u64())


def _enc_state_snapshot(w: _Writer, msg: StateSnapshot) -> None:
    w.u64(msg.last_executed)
    w.hash32(msg.state_digest)
    if msg.checkpoint is None:
        w.u8(0)
    else:
        w.u8(1)
        _w_nested(w, _enc_checkpoint_proof, msg.checkpoint)


def _dec_state_snapshot(r: _Reader) -> StateSnapshot:
    last_executed = r.u64()
    state_digest = r.hash32()
    checkpoint = _read_nested(r, _dec_checkpoint_proof) \
        if r.u8() == 1 else None
    return StateSnapshot(last_executed=last_executed,
                         state_digest=state_digest, checkpoint=checkpoint)


def _enc_ledger_segment(w: _Writer, msg: LedgerSegment) -> None:
    w.u64(msg.start_sn)
    w.u32(len(msg.entries))
    for entry in msg.entries:
        w.u64(entry.sn)
        w.hash32(entry.digest)
        w.u32(entry.request_count)


def _dec_ledger_segment(r: _Reader) -> LedgerSegment:
    start_sn = r.u64()
    entries = tuple(
        SegmentEntry(sn=r.u64(), digest=r.hash32(), request_count=r.u32())
        for _ in range(r.u32()))
    return LedgerSegment(start_sn=start_sn, entries=entries)


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

#: tag -> (message class, encode_body, decode_body).  Tags are wire ABI:
#: never renumber an existing entry, only append.
_REGISTRY: dict[int, tuple[type, Callable, Callable]] = {
    1: (RequestBundle, _enc_request_bundle, _dec_request_bundle),
    2: (Ack, _enc_ack, _dec_ack),
    3: (Datablock, _enc_datablock, _dec_datablock_meta),
    4: (Ready, _enc_ready, _dec_ready),
    5: (BFTblock, _enc_bftblock, _dec_bftblock),
    6: (Vote, _enc_vote, _dec_vote),
    7: (Proof, _enc_proof, _dec_proof),
    8: (Query, _enc_query, _dec_query),
    9: (ChunkResponse, _enc_chunk_response, _dec_chunk_response),
    10: (CheckpointShare, _enc_checkpoint_share, _dec_checkpoint_share),
    11: (CheckpointProof, _enc_checkpoint_proof, _dec_checkpoint_proof),
    12: (TimeoutMsg, _enc_timeout, _dec_timeout),
    13: (ViewChangeMsg, _enc_viewchange, _dec_viewchange),
    14: (NewViewMsg, _enc_new_view, _dec_new_view),
    20: (PrePrepare, _enc_preprepare, _dec_preprepare),
    21: (Prepare, _enc_prepare, _dec_prepare),
    22: (Commit, _enc_commit, _dec_commit),
    30: (HSBlock, _enc_hsblock, _dec_hsblock),
    31: (HSVote, _enc_hsvote, _dec_hsvote),
    32: (HSNewView, _enc_hsnewview, _dec_hsnewview),
    40: (StateRequest, _enc_state_request, _dec_state_request),
    41: (StateSnapshot, _enc_state_snapshot, _dec_state_snapshot),
    42: (LedgerSegment, _enc_ledger_segment, _dec_ledger_segment),
}

_TAG_BY_TYPE: dict[type, int] = {
    cls: tag for tag, (cls, _, _) in _REGISTRY.items()}


def registered_message_types() -> dict[type, int]:
    """Every encodable message class and its wire type tag."""
    return dict(_TAG_BY_TYPE)


# ---------------------------------------------------------------------------
# Top-level encode / decode
# ---------------------------------------------------------------------------


def encode(sender: int, msg) -> bytes:
    """Encode one message into a full frame (length prefix included).

    The frame is padded to ``msg.size_bytes()`` — the abstract cost model's
    wire size — whenever the encoded fields fit within it (they do for all
    protocol-generated messages); otherwise the frame grows past the model.
    """
    tag = _TAG_BY_TYPE.get(type(msg))
    if tag is None:
        raise CodecError(f"unregistered message type {type(msg).__name__}")
    writer = _Writer()
    _REGISTRY[tag][1](writer, msg)
    body = writer.body()
    target = msg.size_bytes()
    padding = target - _HEADER.size - len(body)
    if padding > 0:
        body += bytes(padding)
    payload_length = _HEADER.size - LENGTH_PREFIX + len(body)
    return _HEADER.pack(payload_length, tag, sender) + body


def decode_payload(payload: bytes | memoryview) -> tuple[int, object]:
    """Decode a frame payload (everything after the length prefix).

    Returns ``(sender, message)``.  Trailing padding is ignored.
    """
    view = memoryview(payload)
    if len(view) < _HEADER.size - LENGTH_PREFIX:
        raise CodecError("frame shorter than its header")
    tag = view[0]
    sender = int.from_bytes(view[1:5], "big")
    entry = _REGISTRY.get(tag)
    if entry is None:
        raise CodecError(f"unknown message type tag {tag}")
    reader = _Reader(view[_HEADER.size - LENGTH_PREFIX:])
    try:
        msg = entry[2](reader)
    except CodecError:
        raise
    except (ValueError, struct.error, OverflowError) as exc:
        raise CodecError(f"malformed {entry[0].__name__} frame: {exc}") \
            from exc
    return sender, msg


def decode(frame: bytes | memoryview) -> tuple[int, object]:
    """Decode one full frame (as produced by :func:`encode`)."""
    view = memoryview(frame)
    if len(view) < LENGTH_PREFIX:
        raise CodecError("frame shorter than its length prefix")
    payload_length = int.from_bytes(view[:LENGTH_PREFIX], "big")
    if payload_length > MAX_FRAME_BYTES:
        raise CodecError(f"frame length {payload_length} exceeds cap")
    if LENGTH_PREFIX + payload_length != len(view):
        raise CodecError(
            f"frame length mismatch: prefix says {payload_length}, "
            f"got {len(view) - LENGTH_PREFIX}")
    return decode_payload(view[LENGTH_PREFIX:])
