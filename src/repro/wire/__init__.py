"""Binary wire codec for running Leopard over real sockets.

:mod:`repro.wire.codec` turns every protocol message in
:mod:`repro.messages` into a compact length-prefixed binary frame and back,
with the invariant that the encoded frame is exactly as large as the
abstract cost model says (``len(encode(sender, msg)) == msg.size_bytes()``)
— so the bytes the live transport pushes through TCP are the bytes the
simulator charges to its modelled NICs.
"""

from repro.wire.codec import (
    CodecError,
    decode,
    decode_payload,
    encode,
    registered_message_types,
)

__all__ = [
    "CodecError",
    "decode",
    "decode_payload",
    "encode",
    "registered_message_types",
]
