"""Multi-process live deployment: one OS process per replica.

The in-process :class:`repro.net.live.LiveCluster` hosts every core on a
single asyncio event loop, so however many replicas it boots, one GIL
executes all of them — fine for protocol smoke tests, useless for
stressing the CPU model the simulator claims to reproduce.  This module
launches **one OS process per replica** instead:

* the parent picks a free localhost port for every node up front, so the
  complete host:port address book is known before anything boots;
* each replica child is ``python -m repro.harness.procs --replica-spec
  <file>``: it rebuilds its core from the (protocol, n, node_id, seed)
  spec — key material is dealt deterministically from the seed, so no
  secrets cross process boundaries — binds its listener at its published
  port, serves until the spec's absolute stop time, then writes a JSON
  summary (executed requests, per-class byte counters, transport health,
  recovery counters) and exits 0;
* each child also persists a **durable state snapshot** (its executed
  ledger tail) every :data:`SNAPSHOT_PERIOD` seconds via atomic
  tmp-then-replace writes; a chaos-respawned child finds its
  predecessor's snapshot at the same path, restores the executed prefix
  from disk *before* booting, and then catches up the rest over the
  wire through :class:`repro.core.recovery.RecoveryManager`;
* rendezvous needs no barrier: every outbound link is a reconnecting
  :class:`repro.net.transport.PeerConnection`, so frames sent before a
  peer has bound simply wait in the bounded queue and flow on connect;
* the parent hosts the load-generating clients (latency is measured
  client-side, so acks terminate where the latency clock lives), reaps
  every child on **every** exit path via :class:`ProcessSupervisor`, and
  merges the child summaries with its client metrics into the shared
  :func:`repro.stats.standard_report` schema.

All processes share one wall-clock epoch (``time.time()`` at spawn), so
cross-process timestamps — bundle submission times in spans, proposal
times in blocks — stay comparable to within OS clock granularity.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import signal
import socket
import subprocess
import sys
import tempfile
import time
from pathlib import Path

from repro.errors import ConfigError
from repro.faults import FaultBehavior, fault_from_spec, fault_to_spec
from repro.net.chaos import PROCESS_OPS, ChaosScenario
from repro.net.live import transport_summary
from repro.net.node import LiveNode
from repro.net.protocols import default_live_config_for, get_protocol
from repro.net.transport import Router
from repro.obs.timeseries import TimeSeries
from repro.obs.tracer import RingTracer, merge_trace_parts
from repro.stats import MetricsCollector, NicStats, standard_report

#: Seconds a child gets to exit after its stop time before SIGTERM.
CHILD_EXIT_GRACE = 10.0

#: Seconds between parent health polls of the replica children.
POLL_INTERVAL = 0.25

#: Seconds the parent waits for every replica child to bind its listener
#: before declaring the deployment failed.  Generous: on a loaded CI
#: host, n python interpreters importing numpy can take a while.
BOOT_TIMEOUT = 30.0

#: Seconds between durable state snapshots in each replica child.
SNAPSHOT_PERIOD = 0.5

#: Executed-tail length persisted per snapshot (matches the in-core
#: :data:`repro.core.recovery.ExecutionLog.TAIL_LIMIT` retention).
SNAPSHOT_TAIL = 4096


def _snapshot_state(core, saved_at: float) -> dict | None:
    """Project a core's executed tail into a JSON-durable snapshot.

    Uses the recovery manager's own serve-side callbacks, so the persisted
    entries are byte-for-byte what the replica would send a catching-up
    peer over the wire.
    """
    recovery = getattr(core, "recovery", None)
    if recovery is None:
        return None
    tip = recovery.local_tip()
    entries = recovery.entries_between(max(0, tip - SNAPSHOT_TAIL), tip)
    return {
        "last_executed": tip,
        "entries": [[entry.sn, entry.digest.hex(), entry.request_count]
                    for entry in entries],
        "saved_at": saved_at,
    }


def _restore_state(core, snapshot: dict) -> int:
    """Reload a durable snapshot into a freshly built core (pre-boot)."""
    from repro.messages.recovery import SegmentEntry

    entries = [SegmentEntry(int(sn), bytes.fromhex(digest), int(count))
               for sn, digest, count in snapshot.get("entries", [])]
    return core.restore_entries(entries)


def pick_free_ports(count: int, host: str = "127.0.0.1") -> list[int]:
    """Reserve ``count`` distinct free TCP ports on ``host``.

    All sockets are bound before any is closed, so the returned ports are
    pairwise distinct.  The usual caveat applies: the ports are free *at
    return time*; the window until the cluster binds them is tiny and
    localhost-only, the same trade every multi-process test harness makes.
    """
    sockets: list[socket.socket] = []
    try:
        for _ in range(count):
            sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            sock.bind((host, 0))
            sockets.append(sock)
        return [sock.getsockname()[1] for sock in sockets]
    finally:
        for sock in sockets:
            sock.close()


class ProcessSupervisor:
    """Spawn, monitor and reap a set of child processes.

    Use as a context manager: whatever happens inside the ``with`` block
    — normal completion, a crashed child, an exception in the parent —
    ``__exit__`` terminates and *reaps* every child, so no orphaned
    replica keeps a listener bound after the run (the ``make live-smoke``
    orphan bug, now gated by a test).
    """

    #: Initial delay between failed respawn attempts (seconds).
    RESPAWN_BACKOFF = 0.1
    #: Dial attempts before :meth:`respawn` gives up.
    RESPAWN_ATTEMPTS = 4

    def __init__(self, term_grace: float = 3.0) -> None:
        self.term_grace = term_grace
        self.procs: dict[str, subprocess.Popen] = {}
        #: Children whose death is scenario-induced (chaos ``crash``):
        #: excluded from :meth:`failed` so the health poll does not abort
        #: the run over an injected fault.
        self.expected_exits: set[str] = set()
        self.respawns = 0
        self._spawn_args: dict[str, tuple] = {}

    def spawn(self, name: str, cmd: list[str],
              env: dict | None = None,
              log_path: Path | None = None) -> subprocess.Popen:
        """Launch one child, teeing its stdout/stderr to ``log_path``."""
        log_file = open(log_path, "wb") if log_path is not None \
            else subprocess.DEVNULL
        try:
            proc = subprocess.Popen(
                cmd, env=env, stdout=log_file, stderr=subprocess.STDOUT)
        finally:
            if log_path is not None:
                log_file.close()  # the child holds its own descriptor
        self.procs[name] = proc
        self._spawn_args[name] = (cmd, env, log_path)
        return proc

    def kill(self, name: str) -> None:
        """SIGKILL one child (chaos ``crash``): an *expected* death."""
        proc = self.procs[name]
        self.expected_exits.add(name)
        if proc.poll() is None:
            try:
                proc.kill()
            except OSError:
                pass
        try:
            proc.wait(timeout=self.term_grace)
        except subprocess.TimeoutExpired:
            pass

    def respawn(self, name: str) -> subprocess.Popen:
        """Relaunch a killed child (chaos ``restart``), with backoff.

        Retries the launch a few times with exponential backoff — a
        restarted replica re-binds the port its predecessor held, which
        can linger briefly in ``TIME_WAIT``-adjacent states.
        """
        cmd, env, log_path = self._spawn_args[name]
        backoff = self.RESPAWN_BACKOFF
        last_error: Exception | None = None
        for attempt in range(self.RESPAWN_ATTEMPTS):
            if attempt:
                time.sleep(backoff)
                backoff *= 2.0
            try:
                proc = self.spawn(name, cmd, env=env, log_path=log_path)
            except OSError as exc:
                last_error = exc
                continue
            self.expected_exits.discard(name)
            self.respawns += 1
            return proc
        raise RuntimeError(
            f"failed to respawn {name} after "
            f"{self.RESPAWN_ATTEMPTS} attempts: {last_error}")

    def failed(self) -> dict[str, int]:
        """Children that exited non-zero, excluding expected deaths."""
        return {name: proc.returncode
                for name, proc in self.procs.items()
                if proc.poll() is not None and proc.returncode != 0
                and name not in self.expected_exits}

    def wait_all(self, timeout: float) -> dict[str, int | None]:
        """Wait (reaping) up to ``timeout`` s; stragglers get terminated.

        Returns:
            ``name -> exit code`` (negative for signal deaths, ``None``
            only if a child somehow survives SIGKILL).
        """
        deadline = time.monotonic() + timeout
        for name, proc in self.procs.items():
            remaining = max(0.0, deadline - time.monotonic())
            try:
                proc.wait(timeout=remaining)
            except subprocess.TimeoutExpired:
                pass
        self.terminate_all()
        return {name: proc.returncode for name, proc in self.procs.items()}

    def terminate_all(self) -> None:
        """SIGTERM every survivor, escalate to SIGKILL, reap everything."""
        survivors = [proc for proc in self.procs.values()
                     if proc.poll() is None]
        for proc in survivors:
            try:
                proc.terminate()
            except OSError:
                pass
        deadline = time.monotonic() + self.term_grace
        for proc in survivors:
            remaining = max(0.0, deadline - time.monotonic())
            try:
                proc.wait(timeout=remaining)
            except subprocess.TimeoutExpired:
                try:
                    proc.kill()
                except OSError:
                    pass
        for proc in survivors:
            if proc.poll() is None:
                try:
                    proc.wait(timeout=self.term_grace)
                except subprocess.TimeoutExpired:
                    pass
        # Reap already-exited children too (collect their exit status).
        for proc in self.procs.values():
            if proc.poll() is None:
                continue
            try:
                proc.wait(timeout=0)
            except subprocess.TimeoutExpired:
                pass

    def __enter__(self) -> "ProcessSupervisor":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.terminate_all()


# ---------------------------------------------------------------------------
# Child side: host one replica core until the spec's stop time
# ---------------------------------------------------------------------------


def run_replica_from_spec(spec: dict) -> dict:
    """Child entry: boot one replica, serve, return its summary dict."""
    protocol = spec["protocol"]
    n = int(spec["n"])
    node_id = int(spec["node_id"])
    epoch = float(spec["epoch"])
    stop_at_unix = float(spec["stop_at_unix"])
    proto = get_protocol(protocol)
    config = default_live_config_for(
        protocol, n, payload_size=int(spec["payload_size"]),
        datablock_size=int(spec["datablock_size"]))
    context = proto.make_context(config, int(spec["seed"]))
    core = proto.make_replica(node_id, config, context)
    # Durable crash-recovery: a snapshot file left by a predecessor
    # process (this child is a chaos respawn) is reloaded *before* boot,
    # so the replica restarts from its persisted executed prefix instead
    # of seed-rebuilding — then catches up the rest over the wire.
    snapshot_path = spec.get("snapshot_path")
    snapshot_period = float(spec.get("snapshot_period") or 0.0)
    restored_from_disk = False
    if snapshot_path and Path(snapshot_path).exists():
        try:
            snapshot = json.loads(Path(snapshot_path).read_text())
        except (OSError, ValueError):
            snapshot = None  # torn write at SIGKILL: fall back to wire
        if snapshot and hasattr(core, "restore_entries"):
            _restore_state(core, snapshot)
            restored_from_disk = True
        if hasattr(core, "begin_recovery"):
            core.begin_recovery()
    snapshots_persisted = 0
    metrics = MetricsCollector(warmup=float(spec["warmup"]),
                               timeseries=TimeSeries())
    if hasattr(core, "attach_perf"):
        core.attach_perf(metrics.perf)
    address_book = {int(key): (host, int(port))
                    for key, (host, port) in spec["address_book"].items()}
    host, port = address_book[node_id]
    router = Router(node_id, address_book, host=host, port=port)

    def clock() -> float:
        return time.time() - epoch

    # Static fault behaviours travel as plain-JSON specs (the behaviour
    # object itself never crosses the process boundary).
    fault = fault_from_spec(spec.get("fault"))
    node = LiveNode(core, router, range(n), metrics, clock, fault=fault)
    trace_capacity = spec.get("trace_capacity")
    tracer = RingTracer(int(trace_capacity)) if trace_capacity else None
    if tracer is not None:
        node.install_tracer(tracer)

    async def sample_loop(series: TimeSeries) -> None:
        while True:
            await asyncio.sleep(series.interval)
            series.sample(clock(),
                          backlog_s=router.backlog_seconds(),
                          queue_depth=router.queued_bytes())

    async def snapshot_loop() -> None:
        # Durability loop: atomic tmp-then-replace writes, so a SIGKILL
        # mid-write leaves the previous complete snapshot, never a torn
        # one.  The written entries come from the same serve-side
        # callbacks that answer wire fetches.
        nonlocal snapshots_persisted
        target = Path(snapshot_path)
        tmp = target.with_suffix(".snap.tmp")
        while True:
            await asyncio.sleep(snapshot_period)
            state = _snapshot_state(core, clock())
            if state is None:
                return
            try:
                tmp.write_text(json.dumps(state))
                tmp.replace(target)
            except OSError:
                continue  # disk hiccup: keep the previous snapshot
            snapshots_persisted += 1

    async def serve() -> float:
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        # The parent ends a run with SIGTERM — a *graceful* stop: flush
        # the summary before exiting so even torn-down runs leave data.
        # ``stop_at_unix`` is only a fallback ceiling for an orphaned
        # child whose parent died without signalling.
        loop.add_signal_handler(signal.SIGTERM, stop.set)
        await node.start()
        node.boot()
        sampler = loop.create_task(sample_loop(metrics.timeseries)) \
            if metrics.timeseries is not None else None
        snapshotter = loop.create_task(snapshot_loop()) \
            if snapshot_path and snapshot_period > 0 else None
        remaining = stop_at_unix - time.time()
        if remaining > 0:
            try:
                await asyncio.wait_for(stop.wait(), timeout=remaining)
            except asyncio.TimeoutError:
                pass
        stopped_at = clock()
        for task in (sampler, snapshotter):
            if task is None:
                continue
            task.cancel()
            try:
                await task
            except asyncio.CancelledError:
                pass
        await node.shutdown()
        return stopped_at

    stopped_at = asyncio.run(serve())
    listener = router.listener
    return {
        "node_id": node_id,
        "protocol": protocol,
        "executed_requests": metrics.executed_requests.get(node_id, 0),
        "stopped_at": stopped_at,
        "sent_bytes": router.stats.sent_bytes,
        "sent_msgs": router.stats.sent_msgs,
        "recv_bytes": router.stats.recv_bytes,
        "recv_msgs": router.stats.recv_msgs,
        "events_processed": router.stats.total_recv_msgs(),
        "dropped_frames": router.dropped_frames(),
        "unroutable_frames": router.unroutable_frames,
        "decode_errors": listener.decode_errors if listener else 0,
        "handler_errors": listener.handler_errors if listener else 0,
        "reconnects": router.reconnects(),
        "backoff_retries": router.backoff_retries(),
        "timeseries": metrics.timeseries.to_jsonable()
        if metrics.timeseries is not None else None,
        "perf": metrics.perf.snapshot(),
        "trace": tracer.to_jsonable() if tracer is not None else None,
        "recovery": core.recovery_summary()
        if hasattr(core, "recovery_summary") else None,
        "snapshots_persisted": snapshots_persisted,
        "restored_from_disk": restored_from_disk,
    }


def _child_main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.harness.procs",
        description="Host one live replica process (internal entry "
                    "point of the --processes deployment mode).")
    parser.add_argument("--replica-spec", required=True,
                        help="path to the JSON replica spec")
    args = parser.parse_args(argv)
    spec = json.loads(Path(args.replica_spec).read_text())
    summary = run_replica_from_spec(spec)
    report_path = Path(spec["report_path"])
    tmp_path = report_path.with_suffix(".tmp")
    tmp_path.write_text(json.dumps(summary, sort_keys=True))
    tmp_path.replace(report_path)  # atomic: parent never reads half a file
    return 0


# ---------------------------------------------------------------------------
# Parent side: spawn replicas, host clients, merge the report
# ---------------------------------------------------------------------------


def _child_env() -> dict:
    """Environment for replica children: repro importable, else inherited."""
    import repro

    package_root = os.path.dirname(
        os.path.dirname(os.path.abspath(repro.__file__)))
    env = dict(os.environ)
    existing = env.get("PYTHONPATH", "")
    env["PYTHONPATH"] = (package_root + os.pathsep + existing
                         if existing else package_root)
    return env


def _wait_replicas_listening(supervisor: ProcessSupervisor,
                             address_book: dict[int, tuple[str, int]],
                             replica_ids: range,
                             timeout: float = BOOT_TIMEOUT) -> None:
    """Block until every replica child's listener accepts connections.

    Measurement starts only once the whole cluster is actually up, so a
    slow child boot (cold interpreter, loaded CI host) lengthens the run
    instead of silently eating the measurement window.
    """
    deadline = time.monotonic() + timeout
    pending = set(replica_ids)
    while pending:
        failed = supervisor.failed()
        if failed:
            raise RuntimeError(
                f"replica process(es) died during boot: {failed}")
        if time.monotonic() > deadline:
            raise RuntimeError(
                f"replicas {sorted(pending)} not listening after "
                f"{timeout:.0f}s")
        for replica_id in sorted(pending):
            host, port = address_book[replica_id]
            try:
                probe = socket.create_connection((host, port), timeout=0.2)
            except OSError:
                continue
            probe.close()
            pending.discard(replica_id)
        if pending:
            time.sleep(0.1)


async def _serve_clients(clients: list, n: int,
                         address_book: dict[int, tuple[str, int]],
                         metrics: MetricsCollector, epoch: float,
                         stop_at_unix: float,
                         supervisor: ProcessSupervisor,
                         chaos_events: list | None = None,
                         chaos_applied: list | None = None,
                         tracer=None) -> list[Router]:
    """Host the client cores in-parent until stop time or a child death.

    With ``chaos_events`` (resolved crash/restart events, sorted by
    time), the parent doubles as the chaos controller: it SIGKILLs and
    respawns replica children at the scripted offsets from ``epoch``,
    appending each executed event to ``chaos_applied``.
    """
    def clock() -> float:
        return time.time() - epoch

    pending = list(chaos_events or [])
    nodes = []
    for core in clients:
        host, port = address_book[core.node_id]
        router = Router(core.node_id, address_book, host=host, port=port)
        node = LiveNode(core, router, range(n), metrics, clock)
        if tracer is not None:
            node.install_tracer(tracer)
        nodes.append(node)
    try:
        await asyncio.gather(*(node.start() for node in nodes))
        for node in nodes:
            node.boot()
        while time.time() < stop_at_unix:
            failed = supervisor.failed()
            if failed:
                raise RuntimeError(
                    f"replica process(es) died mid-run: {failed}")
            while pending and pending[0].at <= clock():
                event = pending.pop(0)
                name = f"replica-{event.args['node']}"
                if event.op == "crash":
                    supervisor.kill(name)
                else:  # "restart" — the scheduler validated the op set
                    supervisor.respawn(name)
                if chaos_applied is not None:
                    chaos_applied.append(event.to_jsonable())
                if metrics.timeseries is not None:
                    metrics.timeseries.annotate(
                        clock(), event.op, event.describe())
            sleep_until = stop_at_unix
            if pending:
                sleep_until = min(sleep_until, epoch + pending[0].at)
            await asyncio.sleep(
                min(POLL_INTERVAL, max(0.0, sleep_until - time.time())))
    finally:
        await asyncio.gather(*(node.shutdown() for node in nodes))
    return [node.router for node in nodes]


def run_live_processes(n: int = 4, client_count: int = 1,
                       duration: float = 5.0,
                       protocol: str = "leopard",
                       total_rate: float = 4000.0, bundle_size: int = 200,
                       payload_size: int = 128, datablock_size: int = 100,
                       seed: int = 0, warmup: float = 0.0,
                       host: str = "127.0.0.1",
                       faults: dict[int, FaultBehavior] | None = None,
                       scenario: ChaosScenario | None = None,
                       tracer: RingTracer | None = None) -> dict:
    """Boot one process per replica, serve ``duration`` s, merge reports.

    Returns the :func:`repro.stats.standard_report` dict with a
    ``deployment`` section describing the process topology and the exit
    code of every replica child.

    ``duration`` counts *measured* seconds: the clock starts once every
    replica child's listener accepts connections, so slow child boots
    (cold interpreters on a loaded CI host) lengthen the run instead of
    eating the window.  ``warmup`` must be 0 in this mode: replica
    children only know their own process clock (which starts at spawn,
    before the measurement epoch), so a child-side warmup window would
    be consumed by boot time while the parent still shrank the
    measurement denominator — silently inflating reported throughput.

    Fault injection crosses the process boundary two ways: static
    ``faults`` ship as plain-JSON specs inside each child's replica spec
    (the child rebuilds the behaviour locally), and a chaos ``scenario``
    is executed by the parent against the *real processes* — ``crash``
    is a SIGKILL, ``restart`` a respawn on the same port.  Scenario ops
    beyond crash/restart (partitions, shaping, mid-run fault swaps)
    would need an in-child control channel and are rejected up front;
    use the in-process mode for those.

    Telemetry crosses the boundary the same way: each child buckets its
    own executions into a :class:`repro.obs.timeseries.TimeSeries` on
    its process clock and ships the raw buckets (plus its perf-counter
    snapshot and, with a ``tracer``, its ring-buffer trace) home in the
    summary; the parent shifts them onto the measurement epoch and
    merges them with its client-side series, so the report's
    ``timeseries``/``trace`` sections look exactly like an in-process
    run's.

    Raises:
        ConfigError: for a nonzero ``warmup`` (see above), no clients,
            a non-serializable fault, or a scenario with ops this mode
            cannot execute.
        RuntimeError: if any replica child crashes during boot or
            mid-run (scenario-killed children excepted), never starts
            listening, or fails to produce its summary (children are
            reaped on every one of those paths).
    """
    if client_count < 1:
        raise ConfigError("need at least one client")
    if warmup != 0.0:
        raise ConfigError(
            "warmup is not supported in --processes mode: replica "
            "children cannot gate it on the measurement epoch; use the "
            "in-process mode for warmup-windowed runs")
    faults = dict(faults or {})
    proto = get_protocol(protocol)
    config = default_live_config_for(protocol, n,
                                     payload_size=payload_size,
                                     datablock_size=datablock_size)
    if len(faults) > config.f:
        raise ConfigError(
            f"at most f={config.f} faulty replicas allowed")
    fault_specs = {replica_id: fault_to_spec(fault)
                   for replica_id, fault in faults.items()}
    leader = config.leader_of(1)
    measure_replica = next(replica_id for replica_id in range(n)
                           if replica_id != leader)
    ports = pick_free_ports(n + client_count, host)
    address_book = {node_id: (host, ports[node_id])
                    for node_id in range(n + client_count)}
    metrics = MetricsCollector(warmup=warmup, timeseries=TimeSeries())
    per_client_rate = total_rate / client_count
    clients = [proto.make_client(n + index, config, per_client_rate,
                                 bundle_size, False, 2.0)
               for index in range(client_count)]

    chaos_events: list = []
    chaos_applied: list = []
    if scenario is not None:
        unsupported = scenario.ops() - PROCESS_OPS
        if unsupported:
            raise ConfigError(
                f"scenario {scenario.name!r} uses ops "
                f"{sorted(unsupported)} the --processes mode cannot "
                "execute (only crash/restart act on real processes); "
                "run it in-process instead")
        primaries = frozenset(
            p for p in (getattr(c, "primary", getattr(c, "target", None))
                        for c in clients) if p is not None)
        resolved = scenario.resolve(n, leader, measure_replica, primaries)
        chaos_events = sorted(resolved.events, key=lambda e: e.at)
        duration = max(duration, resolved.duration() + 0.5)

    spawn_epoch = time.time()
    # Fallback ceiling only: children normally stop on the parent's
    # SIGTERM; this bounds an orphaned child whose parent died.
    ceiling_unix = spawn_epoch + BOOT_TIMEOUT + duration \
        + 3.0 * CHILD_EXIT_GRACE
    env = _child_env()
    exit_codes: dict[str, int | None] = {}
    with tempfile.TemporaryDirectory(prefix="repro-procs-") as tmp:
        tmpdir = Path(tmp)
        report_paths: dict[int, Path] = {}
        log_paths: dict[int, Path] = {}
        with ProcessSupervisor(term_grace=CHILD_EXIT_GRACE) as supervisor:
            for replica_id in range(n):
                report_paths[replica_id] = \
                    tmpdir / f"replica-{replica_id}.json"
                log_paths[replica_id] = tmpdir / f"replica-{replica_id}.log"
                spec = {
                    "protocol": protocol,
                    "n": n,
                    "node_id": replica_id,
                    "seed": seed,
                    "epoch": spawn_epoch,
                    "stop_at_unix": ceiling_unix,
                    "warmup": warmup,
                    "payload_size": payload_size,
                    "datablock_size": datablock_size,
                    "address_book": address_book,
                    "report_path": str(report_paths[replica_id]),
                    "fault": fault_specs.get(replica_id),
                    "trace_capacity": tracer.capacity
                    if tracer is not None else None,
                    # Stable path across respawns: a chaos-restarted
                    # child finds its predecessor's snapshot here and
                    # restores from disk instead of seed-rebuilding.
                    "snapshot_path":
                        str(tmpdir / f"replica-{replica_id}.snapshot.json"),
                    "snapshot_period": SNAPSHOT_PERIOD,
                }
                spec_path = tmpdir / f"replica-{replica_id}.spec.json"
                spec_path.write_text(json.dumps(spec))
                supervisor.spawn(
                    f"replica-{replica_id}",
                    [sys.executable, "-m", "repro.harness.procs",
                     "--replica-spec", str(spec_path)],
                    env=env, log_path=log_paths[replica_id])
            try:
                _wait_replicas_listening(supervisor, address_book,
                                         range(n))
                # The measurement clock starts only now, with the whole
                # cluster listening: ``duration`` means measured seconds,
                # not "boot time plus whatever was left".
                epoch = time.time()
                client_routers = asyncio.run(_serve_clients(
                    clients, n, address_book, metrics, epoch,
                    epoch + duration, supervisor,
                    chaos_events=chaos_events,
                    chaos_applied=chaos_applied,
                    tracer=tracer))
            except RuntimeError as exc:
                raise RuntimeError(
                    f"{exc}; logs: {_tail_logs(log_paths)}") from exc
            elapsed = time.time() - epoch
            # Graceful end-of-run: SIGTERM makes each child flush its
            # summary and exit 0 (terminate_all also reaps).
            supervisor.terminate_all()
            exit_codes = {name: proc.returncode
                          for name, proc in supervisor.procs.items()}
            respawns = supervisor.respawns
            killed_for_good = {
                int(name.split("-", 1)[1])
                for name in supervisor.expected_exits}

        summaries: dict[int, dict] = {}
        for replica_id, path in report_paths.items():
            if not path.exists():
                if replica_id in killed_for_good:
                    # Scenario-crashed and never restarted: SIGKILL left
                    # no summary by design.  A zeroed stub keeps the
                    # report shape whole (the replica really did nothing
                    # measurable after its crash).
                    summaries[replica_id] = _stub_summary(replica_id,
                                                          protocol)
                    continue
                raise RuntimeError(
                    f"replica {replica_id} produced no summary "
                    f"(exit code {exit_codes.get(f'replica-{replica_id}')}"
                    f"); logs: {_tail_logs(log_paths)}")
            summaries[replica_id] = json.loads(path.read_text())

    faults_section = None
    if fault_specs or chaos_applied or scenario is not None:
        faults_section = {
            "injected": {str(replica_id): spec for replica_id, spec
                         in sorted(fault_specs.items())},
            "scenario": scenario.name if scenario is not None else None,
            "events_applied": chaos_applied,
            "restarts": respawns,
            "shaping": None,  # needs the in-process shaper; not available
        }
    # Children timestamp on their process clock (epoch = spawn); the
    # parent measures from the post-boot epoch.  Shifting by the delta
    # lands every child bucket and trace event on the measurement clock.
    child_shift = epoch - spawn_epoch
    series = metrics.timeseries
    for replica_id, summary in sorted(summaries.items()):
        if series is not None and summary.get("timeseries"):
            series.merge_raw(summary["timeseries"], shift=child_shift,
                             samples=replica_id == measure_replica)
        if summary.get("perf"):
            metrics.perf.merge_snapshot(summary["perf"])
    timeseries_section = series.section(
        measure_replica=measure_replica,
        end=elapsed) if series is not None else None
    trace_section = None
    if tracer is not None and tracer.enabled:
        parts = [(tracer.to_jsonable(), 0.0)]
        parts.extend((summary["trace"], child_shift)
                     for _, summary in sorted(summaries.items())
                     if summary.get("trace"))
        trace_section = merge_trace_parts(parts)
    return _merge_report(protocol=protocol, n=n, metrics=metrics,
                         summaries=summaries, client_routers=client_routers,
                         measure_replica=measure_replica, warmup=warmup,
                         elapsed=elapsed, exit_codes=exit_codes,
                         faults=faults_section, respawns=respawns,
                         timeseries=timeseries_section,
                         trace=trace_section)


def _stub_summary(replica_id: int, protocol: str) -> dict:
    """A zeroed child summary for a scenario-killed, never-restarted replica."""
    return {
        "node_id": replica_id,
        "protocol": protocol,
        "executed_requests": 0,
        "stopped_at": 0.0,
        "sent_bytes": {}, "sent_msgs": {},
        "recv_bytes": {}, "recv_msgs": {},
        "events_processed": 0,
        "dropped_frames": 0, "unroutable_frames": 0,
        "decode_errors": 0, "handler_errors": 0,
        "reconnects": 0, "backoff_retries": 0,
        "timeseries": None, "perf": None, "trace": None,
        "recovery": None, "snapshots_persisted": 0,
        "restored_from_disk": False,
    }


def _tail_logs(log_paths: dict[int, Path], limit: int = 400) -> dict:
    tails = {}
    for replica_id, path in log_paths.items():
        try:
            text = path.read_text(errors="replace")
        except OSError:
            continue
        if text.strip():
            tails[replica_id] = text[-limit:]
    return tails


def _merge_report(*, protocol: str, n: int, metrics: MetricsCollector,
                  summaries: dict[int, dict],
                  client_routers: list[Router], measure_replica: int,
                  warmup: float, elapsed: float,
                  exit_codes: dict[str, int | None],
                  faults: dict | None = None,
                  respawns: int = 0,
                  timeseries: dict | None = None,
                  trace: dict | None = None) -> dict:
    """Fold child summaries + parent client metrics into one report."""
    byte_stats: dict[int, NicStats] = {}
    events = sum(router.stats.total_recv_msgs()
                 for router in client_routers)
    transport = transport_summary(client_routers)
    for replica_id, summary in sorted(summaries.items()):
        metrics.executed_requests[replica_id] = \
            summary["executed_requests"]
        stats = NicStats()
        for msg_class, count in summary["sent_bytes"].items():
            stats.add_counts(msg_class, sent_bytes=count,
                             sent_msgs=summary["sent_msgs"].get(
                                 msg_class, 0))
        for msg_class, count in summary["recv_bytes"].items():
            stats.add_counts(msg_class, recv_bytes=count,
                             recv_msgs=summary["recv_msgs"].get(
                                 msg_class, 0))
        byte_stats[replica_id] = stats
        events += summary["events_processed"]
        transport["dropped_frames"] += summary["dropped_frames"]
        transport["unroutable_frames"] += summary["unroutable_frames"]
        transport["decode_errors"] += summary["decode_errors"]
        transport["handler_errors"] += summary["handler_errors"]
        transport["reconnects"] += summary.get("reconnects", 0)
        transport["backoff_retries"] += summary.get("backoff_retries", 0)
    # The measurement window is the parent's client-serving span: replica
    # children boot before it and are stopped after it, so commits only
    # happen inside it.
    duration = max(elapsed - warmup, 0.0)
    recovery_replicas: dict[str, dict] = {}
    snapshots_persisted = 0
    restored_from_disk: list[int] = []
    for replica_id, summary in sorted(summaries.items()):
        snapshots_persisted += summary.get("snapshots_persisted", 0)
        if summary.get("restored_from_disk"):
            restored_from_disk.append(replica_id)
        if summary.get("recovery") is not None:
            recovery_replicas[str(replica_id)] = summary["recovery"]
    recovery = None
    if (snapshots_persisted or restored_from_disk
            or any(info.get("rounds", 0)
                   for info in recovery_replicas.values())):
        recovery = {
            "replicas": recovery_replicas,
            "snapshots_persisted": snapshots_persisted,
            "restored_from_disk": restored_from_disk,
        }
    report = standard_report(
        backend="live",
        protocol=protocol,
        n=n,
        duration=duration,
        metrics=metrics,
        byte_stats=byte_stats,
        measure_replica=measure_replica,
        events_processed=events,
        events_per_sec=events / elapsed if elapsed > 0 else 0.0,
        faults=faults,
        timeseries=timeseries,
        recovery=recovery,
    )
    report["transport"] = transport
    report["deployment"] = {
        "mode": "processes",
        "replica_processes": n,
        "exit_codes": dict(sorted(exit_codes.items())),
        "respawns": respawns,
    }
    if trace is not None:
        report["trace"] = trace
    return report


if __name__ == "__main__":
    raise SystemExit(_child_main(sys.argv[1:]))
