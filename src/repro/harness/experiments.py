"""One function per paper table/figure (see DESIGN.md §4 for the index).

Every function returns an :class:`ExperimentResult` whose rows mirror the
series the paper plots.  Scales are laptop-calibrated: the default
("quick") grids simulate the small/medium scales and extend the curve with
the calibrated analytical model (rows marked ``model``); setting the
environment variable ``REPRO_FULL=1`` unlocks the paper's full grids
(n up to 600 on the scalar engine, plus wave-engine anchor points at
n=1000), which take tens of minutes.
"""

from __future__ import annotations

import os

from repro.analysis.calibration import DEFAULT_COSTS, CostModel
from repro.core.config import LeopardConfig, table2_parameters
from repro.harness.cluster import (
    build_hotstuff_cluster,
    build_leopard_cluster,
    build_pbft_cluster,
)
from repro.harness.tables import ExperimentResult
from repro.sim.faults import Crash, SelectiveDisseminator
from repro.sim.metrics import utilization_breakdown
from repro.sim.network import DEFAULT_BANDWIDTH_BPS


def full_scale() -> bool:
    """Whether the paper-scale grids are enabled (REPRO_FULL=1)."""
    return os.environ.get("REPRO_FULL") == "1"


# ----------------------------------------------------------------------
# Analytical ceilings (used for `model` rows extending simulated curves)
# ----------------------------------------------------------------------

def leopard_model_rps(n: int, costs: CostModel = DEFAULT_COSTS,
                      bandwidth_bps: float = DEFAULT_BANDWIDTH_BPS,
                      payload: int = 128) -> float:
    """Calibrated throughput ceiling for Leopard at scale ``n``."""
    cpu = 1.0 / costs.leopard_verify_exec_per_request
    nic = (bandwidth_bps / 2.0) / (payload * 8.0)
    return min(cpu, nic)


def hotstuff_model_rps(n: int, costs: CostModel = DEFAULT_COSTS,
                       bandwidth_bps: float = DEFAULT_BANDWIDTH_BPS,
                       payload: int = 128) -> float:
    """Calibrated ceiling for HotStuff: leader NIC egress vs leader CPU."""
    nic = (bandwidth_bps / 2.0) / (payload * 8.0 * max(1, n - 1))
    cpu = 1.0 / (costs.hotstuff_ingest_per_request
                 + costs.hotstuff_exec_per_request
                 + costs.per_send_byte * payload * (n - 1))
    return min(nic, cpu)


def pbft_model_rps(n: int, costs: CostModel = DEFAULT_COSTS,
                   bandwidth_bps: float = DEFAULT_BANDWIDTH_BPS,
                   payload: int = 128) -> float:
    """Calibrated ceiling for PBFT / BFT-SMaRt."""
    nic = (bandwidth_bps / 2.0) / (payload * 8.0 * max(1, n - 1))
    cpu = 1.0 / (costs.pbft_ingest_per_request
                 + costs.pbft_exec_per_request
                 + costs.per_send_byte * payload * (n - 1))
    return min(nic, cpu)


def _leopard_config(n: int, **overrides) -> LeopardConfig:
    datablock, links = table2_parameters(n)
    params = {"n": n, "datablock_size": datablock,
              "bftblock_max_links": links}
    params.update(overrides)
    return LeopardConfig(**params)


# ----------------------------------------------------------------------
# Fig. 1 — HotStuff & BFT-SMaRt throughput vs n (128 B / 1024 B payload)
# ----------------------------------------------------------------------

def fig1_baseline_scaling(duration: float = 3.0) -> ExperimentResult:
    """Throughput of the two baselines as scale grows (paper Fig. 1)."""
    result = ExperimentResult(
        "fig1", "baseline throughput vs n (HotStuff, BFT-SMaRt)",
        ["protocol", "payload", "n", "throughput_rps", "source"])
    hs_sim = (16, 32, 64) if not full_scale() else (16, 32, 64, 128, 256)
    pbft_sim = (16, 32) if not full_scale() else (16, 32, 64)
    model_ns = (128, 256, 400, 600)
    for payload in (128, 1024):
        from repro.baselines.hotstuff.config import HotStuffConfig
        from repro.baselines.pbft.config import PbftConfig
        for n in hs_sim:
            cluster = build_hotstuff_cluster(
                n=n, seed=1, config=HotStuffConfig(n=n, payload_size=payload))
            cluster.run(cluster.warmup + duration)
            result.rows.append(
                ("hotstuff", payload, n, cluster.throughput(), "sim"))
        for n in model_ns:
            if n <= hs_sim[-1]:
                continue
            result.rows.append((
                "hotstuff", payload, n,
                hotstuff_model_rps(n, payload=payload), "model"))
        for n in pbft_sim:
            cluster = build_pbft_cluster(
                n=n, seed=1, config=PbftConfig(n=n, payload_size=payload))
            cluster.run(cluster.warmup + duration)
            result.rows.append(
                ("bft-smart", payload, n, cluster.throughput(), "sim"))
        for n in model_ns:
            if n <= pbft_sim[-1]:
                continue
            result.rows.append((
                "bft-smart", payload, n,
                pbft_model_rps(n, payload=payload), "model"))
    result.notes.append(
        "model rows extend simulated curves with the calibrated analytical "
        "ceiling (leader NIC/CPU bound); set REPRO_FULL=1 for larger grids")
    return result


# ----------------------------------------------------------------------
# Fig. 2 — HotStuff throughput + leader bandwidth vs n
# ----------------------------------------------------------------------

def fig2_leader_bottleneck(duration: float = 3.0) -> ExperimentResult:
    """HotStuff throughput vs the leader's bandwidth utilization (Fig. 2)."""
    result = ExperimentResult(
        "fig2", "HotStuff throughput and leader bandwidth vs n",
        ["n", "throughput_rps", "leader_bandwidth_gbps"])
    ns = (4, 16, 32, 64) if not full_scale() else (4, 16, 32, 64, 128, 256)
    for n in ns:
        cluster = build_hotstuff_cluster(n=n, seed=2)
        cluster.run(cluster.warmup + duration)
        result.rows.append((
            n, cluster.throughput(),
            cluster.leader_bandwidth_bps() / 1e9))
    result.notes.append(
        "expected shape: throughput decreases while leader bandwidth "
        "rises toward NIC saturation (paper Fig. 2)")
    return result


# ----------------------------------------------------------------------
# Table I — amortized complexity comparison (analytical)
# ----------------------------------------------------------------------

def table1_amortized_costs() -> ExperimentResult:
    """The paper's Table I, from the closed-form model."""
    from repro.analysis.scaling_factor import table1_rows

    result = ExperimentResult(
        "table1", "amortized cost when the leader is honest and after GST",
        ["protocol", "leader_comm", "replica_comm", "scaling_factor",
         "voting_optimistic", "voting_faulty"])
    for row in table1_rows():
        result.rows.append((
            row.protocol, row.leader_communication,
            row.replica_communication, row.scaling_factor,
            row.voting_rounds_optimistic, row.voting_rounds_faulty))
    return result


# ----------------------------------------------------------------------
# Fig. 6 — HotStuff throughput vs batch size
# ----------------------------------------------------------------------

def fig6_hotstuff_batch(duration: float = 3.0) -> ExperimentResult:
    """HotStuff throughput on varying batch sizes (paper Fig. 6)."""
    from repro.baselines.hotstuff.config import HotStuffConfig

    result = ExperimentResult(
        "fig6", "HotStuff throughput vs batch size",
        ["n", "batch_size", "throughput_rps"])
    ns = (32, 64) if not full_scale() else (32, 64, 128, 256)
    batches = (100, 200, 400, 800, 1200)
    for n in ns:
        for batch in batches:
            cluster = build_hotstuff_cluster(
                n=n, seed=3, config=HotStuffConfig(n=n, batch_size=batch))
            cluster.run(cluster.warmup + duration)
            result.rows.append((n, batch, cluster.throughput()))
    result.notes.append("expected shape: rises with batch size, then flat")
    return result


# ----------------------------------------------------------------------
# Fig. 7 — Leopard throughput vs BFTblock size (τ)
# ----------------------------------------------------------------------

def fig7_bftblock_batch(duration: float = 3.0) -> ExperimentResult:
    """Leopard throughput on varying BFTblock sizes (paper Fig. 7)."""
    result = ExperimentResult(
        "fig7", "Leopard throughput vs BFTblock size (datablock links)",
        ["n", "bftblock_links", "throughput_rps"])
    ns = (32, 64) if not full_scale() else (32, 64, 128, 256, 400, 600)
    links_grid = (1, 5, 10, 50, 100, 400)
    for n in ns:
        for links in links_grid:
            config = _leopard_config(n, bftblock_max_links=links)
            cluster = build_leopard_cluster(n=n, seed=4, config=config)
            cluster.run(cluster.warmup + duration)
            result.rows.append((n, links, cluster.throughput()))
    result.notes.append(
        "expected shape: throughput rises then stabilizes; larger n needs "
        "a larger batch to amortize vote processing (paper Fig. 7)")
    return result


# ----------------------------------------------------------------------
# Fig. 8 — Leopard throughput vs datablock size (α)
# ----------------------------------------------------------------------

def fig8_datablock_batch(duration: float = 3.0) -> ExperimentResult:
    """Leopard throughput on varying datablock sizes (paper Fig. 8)."""
    result = ExperimentResult(
        "fig8", "Leopard throughput vs datablock size",
        ["bftblock_links", "n", "datablock_size", "throughput_rps"])
    small_ns = (32, 64) if not full_scale() else (32, 64, 128)
    large_ns = (64,) if not full_scale() else (256, 400, 600)
    sizes = (250, 500, 1000, 2000, 4000)
    for n in small_ns:
        for size in sizes:
            config = _leopard_config(
                n, datablock_size=size, bftblock_max_links=10)
            cluster = build_leopard_cluster(n=n, seed=5, config=config)
            cluster.run(cluster.warmup + duration)
            result.rows.append((10, n, size, cluster.throughput()))
    for n in large_ns:
        for size in (2000, 3000, 4000, 5000):
            config = _leopard_config(
                n, datablock_size=size, bftblock_max_links=100)
            cluster = build_leopard_cluster(n=n, seed=5, config=config)
            cluster.run(cluster.warmup + duration)
            result.rows.append((100, n, size, cluster.throughput()))
    result.notes.append(
        "top block: BFTblock size fixed at 10; bottom: fixed at 100 "
        "(paper Fig. 8)")
    return result


# ----------------------------------------------------------------------
# Table II — batch parameters used for the headline comparison
# ----------------------------------------------------------------------

def table2_batch_parameters() -> ExperimentResult:
    """The paper's Table II parameter choices."""
    result = ExperimentResult(
        "table2", "implementation parameters of batch sizes",
        ["n", "leopard_datablock", "leopard_bftblock", "hotstuff_batch"])
    for n in (32, 64, 128, 256, 400, 600):
        datablock, links = table2_parameters(n)
        hotstuff = 800 if n <= 300 else "-"
        result.rows.append((n, datablock, links, hotstuff))
    return result


# ----------------------------------------------------------------------
# Fig. 9 — the headline: Leopard vs HotStuff throughput at scale
# ----------------------------------------------------------------------

def fig9_throughput_scaling(duration: float = 3.0) -> ExperimentResult:
    """Leopard vs HotStuff throughput as n grows (paper Fig. 9)."""
    result = ExperimentResult(
        "fig9", "throughput of Leopard and HotStuff at different scales",
        ["protocol", "n", "throughput_rps", "source"])
    leo_sim = (16, 32, 64) if not full_scale() else (32, 64, 128, 256, 400, 600)
    hs_sim = (16, 32, 64) if not full_scale() else (32, 64, 128, 256, 300)
    model_ns = (128, 256, 300, 400, 600)
    for n in leo_sim:
        cluster = build_leopard_cluster(n=n, seed=6, config=_leopard_config(n))
        cluster.run(cluster.warmup + duration)
        result.rows.append(("leopard", n, cluster.throughput(), "sim"))
    if full_scale():
        # The n=1000 point is only tractable with the wave tier: the
        # scalar engine takes hours at this scale, the wave engine
        # produces the byte-identical report in minutes.
        n = 1000
        cluster = build_leopard_cluster(
            n=n, seed=6, config=_leopard_config(n),
            queue_backend="calendar", waves=True)
        cluster.run(cluster.warmup + duration)
        result.rows.append(("leopard", n, cluster.throughput(), "sim-waves"))
    for n in model_ns:
        if n <= leo_sim[-1]:
            continue
        result.rows.append(("leopard", n, leopard_model_rps(n), "model"))
    for n in hs_sim:
        cluster = build_hotstuff_cluster(n=n, seed=6)
        cluster.run(cluster.warmup + duration)
        result.rows.append(("hotstuff", n, cluster.throughput(), "sim"))
    for n in model_ns:
        if n <= hs_sim[-1] or n > 300:
            continue  # the paper's HotStuff could not run beyond n = 300
        result.rows.append(("hotstuff", n, hotstuff_model_rps(n), "model"))
    result.notes.append(
        "expected: Leopard ~flat at the 10^5 level up to n=600; HotStuff "
        "declining; ~5x gap at n=300 (paper Fig. 9)")
    return result


# ----------------------------------------------------------------------
# Fig. 10 — effectiveness of scaling up (throughput & latency vs bandwidth)
# ----------------------------------------------------------------------

def fig10_scaling_up(duration_factor: float = 6.0) -> ExperimentResult:
    """Throughput/latency under throttled per-replica bandwidth (Fig. 10)."""
    result = ExperimentResult(
        "fig10", "throughput and latency vs per-replica bandwidth",
        ["protocol", "n", "bandwidth_mbps", "goodput_mbps", "latency_s"])
    ns = (4, 16) if not full_scale() else (4, 16, 32, 64, 128)
    bandwidths = (20e6, 40e6, 80e6, 100e6, 200e6)
    for n in ns:
        for bw in bandwidths:
            payload_bits = 128 * 8
            # Offered load just below the throttled capacity so latency
            # reflects batching+dissemination, not unbounded queueing.
            leo_cap = min((bw / 2.0) / payload_bits,
                          leopard_model_rps(n))
            datablock = 2000
            dissemination = (datablock * payload_bits * (n - 1)) / (bw / 2.0)
            config = _leopard_config(
                n, datablock_size=datablock, bftblock_max_links=100,
                retrieval_timeout=max(0.5, 3.0 * dissemination),
                progress_timeout=max(5.0, 10.0 * dissemination),
                max_batch_delay=1.0)
            warmup = max(2.0, 3.0 * dissemination)
            cluster = build_leopard_cluster(
                n=n, seed=8, config=config, bandwidth_bps=bw,
                total_rate=0.9 * leo_cap, warmup=warmup)
            cluster.run(warmup + duration_factor * max(1.0, dissemination))
            result.rows.append((
                "leopard", n, bw / 1e6, cluster.throughput_bps() / 1e6,
                cluster.mean_latency()))
            hs_cap = min((bw / 2.0) / (payload_bits * (n - 1)),
                         hotstuff_model_rps(n, bandwidth_bps=bw))
            # HotStuff needs a 3-chain before anything commits; at
            # heavily throttled bandwidth block intervals stretch to
            # seconds, so give it a proportionally longer run.
            hs_block_interval = (800 * payload_bits * (n - 1)) / (bw / 2.0)
            hs_run = max(duration_factor, 8.0 * hs_block_interval)
            cluster = build_hotstuff_cluster(
                n=n, seed=8, bandwidth_bps=bw, total_rate=0.9 * hs_cap,
                warmup=2.0)
            cluster.run(2.0 + hs_run)
            result.rows.append((
                "hotstuff", n, bw / 1e6, cluster.throughput_bps() / 1e6,
                cluster.mean_latency()))
    if full_scale():
        # One waves-on anchor at the paper's largest scale and the top
        # bandwidth: the Leopard slope claim is per-n, so a single
        # n=1000 point suffices and stays tractable (scalar would not).
        n, bw = 1000, bandwidths[-1]
        payload_bits = 128 * 8
        leo_cap = min((bw / 2.0) / payload_bits, leopard_model_rps(n))
        datablock = 2000
        dissemination = (datablock * payload_bits * (n - 1)) / (bw / 2.0)
        config = _leopard_config(
            n, datablock_size=datablock, bftblock_max_links=100,
            retrieval_timeout=max(0.5, 3.0 * dissemination),
            progress_timeout=max(5.0, 10.0 * dissemination),
            max_batch_delay=1.0)
        warmup = max(2.0, 3.0 * dissemination)
        cluster = build_leopard_cluster(
            n=n, seed=8, config=config, bandwidth_bps=bw,
            total_rate=0.9 * leo_cap, warmup=warmup,
            queue_backend="calendar", waves=True)
        cluster.run(warmup + duration_factor * max(1.0, dissemination))
        result.rows.append((
            "leopard", n, bw / 1e6, cluster.throughput_bps() / 1e6,
            cluster.mean_latency()))
    result.notes.append(
        "expected: goodput linear in bandwidth; Leopard slope ~1/2 at all "
        "n, HotStuff slope ~1/(n-1); Leopard latency above HotStuff, "
        "narrowing as bandwidth grows (paper Fig. 10)")
    return result


# ----------------------------------------------------------------------
# Table III — bandwidth utilization breakdown (n = 32)
# ----------------------------------------------------------------------

def table3_bandwidth_breakdown(duration: float = 3.0) -> ExperimentResult:
    """Per-message-class bandwidth shares at n = 32 (paper Table III)."""
    n = 32
    cluster = build_leopard_cluster(n=n, seed=9, config=_leopard_config(n))
    cluster.run(cluster.warmup + duration)
    result = ExperimentResult(
        "table3", "bandwidth utilization breakdown of Leopard (n=32)",
        ["role", "direction", "class", "percent"])
    for role, node in (("leader", cluster.leader),
                       ("replica", cluster.measure_replica)):
        breakdown = utilization_breakdown(cluster.network, node)
        for direction in ("send", "recv"):
            for cls, fraction in sorted(
                    breakdown[direction].items(),
                    key=lambda item: -item[1]):
                result.rows.append(
                    (role, direction, cls, 100.0 * fraction))
    result.notes.append(
        "expected: >96% of the leader's receive traffic is datablocks; "
        "votes under 1% (paper Table III)")
    return result


# ----------------------------------------------------------------------
# Table IV — latency breakdown (n = 32)
# ----------------------------------------------------------------------

def table4_latency_breakdown(duration: float = 4.0) -> ExperimentResult:
    """Per-phase latency shares at n = 32 (paper Table IV)."""
    n = 32
    cluster = build_leopard_cluster(
        n=n, seed=10, config=_leopard_config(n), trace_phases=True)
    cluster.run(cluster.warmup + duration)
    shares = cluster.metrics.phase_breakdown()
    result = ExperimentResult(
        "table4", "latency breakdown of Leopard (n=32)",
        ["phase", "percent"])
    for phase in ("generation", "dissemination", "agreement", "response"):
        result.rows.append((phase, 100.0 * shares.get(phase, 0.0)))
    result.notes.append(
        "expected: dissemination is the largest share (~50% in the "
        "paper), response under 1% (paper Table IV)")
    return result


# ----------------------------------------------------------------------
# Fig. 11 — leader bandwidth usage in both systems
# ----------------------------------------------------------------------

def fig11_leader_bandwidth(duration: float = 3.0) -> ExperimentResult:
    """Leader bandwidth in Leopard vs HotStuff (paper Fig. 11)."""
    result = ExperimentResult(
        "fig11", "bandwidth usage of the leader",
        ["protocol", "n", "leader_bandwidth_mbps"])
    ns = (4, 16, 32, 64) if not full_scale() else (4, 16, 32, 64, 128, 256)
    for n in ns:
        cluster = build_leopard_cluster(
            n=n, seed=11, config=_leopard_config(n))
        cluster.run(cluster.warmup + duration)
        result.rows.append(
            ("leopard", n, cluster.leader_bandwidth_bps() / 1e6))
    for n in ns:
        cluster = build_hotstuff_cluster(n=n, seed=11)
        cluster.run(cluster.warmup + duration)
        result.rows.append(
            ("hotstuff", n, cluster.leader_bandwidth_bps() / 1e6))
    result.notes.append(
        "expected: HotStuff's leader rises toward NIC saturation; "
        "Leopard's stays under ~0.5 Gbps at every scale (paper Fig. 11)")
    return result


# ----------------------------------------------------------------------
# Fig. 12 + Table V — retrieval cost and time
# ----------------------------------------------------------------------

def fig12_retrieval(datablock_requests: int = 2000) -> ExperimentResult:
    """Cost/time of retrieving one datablock (paper Fig. 12 + Table V)."""
    result = ExperimentResult(
        "fig12", "datablock retrieval: communication and time cost",
        ["n", "recover_kb", "respond_kb", "time_ms"])
    ns = (4, 7, 16, 32) if not full_scale() else (4, 7, 16, 32, 64, 128)
    for n in ns:
        config = _leopard_config(
            n, datablock_size=datablock_requests, bftblock_max_links=10,
            retrieval_timeout=0.02, progress_timeout=30.0,
            max_batch_delay=3.0)
        f = config.f
        leader = 1 % n
        # The faulty creator sends its datablocks to just enough replicas
        # for a ready quorum (leader + itself + 2f-1 others); the rest of
        # the honest replicas must retrieve (the §IV-A2 selective attack).
        faulty = next(r for r in range(n)
                      if r != leader and r != 2)
        others = [r for r in range(n)
                  if r not in (leader, faulty, 2)][: 2 * f - 1]
        targets = frozenset([leader] + others)
        cluster = build_leopard_cluster(
            n=n, seed=12, config=config, warmup=0.0,
            total_rate=min(40_000.0, 6_000.0 * (n - 1)),
            faults={faulty: SelectiveDisseminator(targets)})
        cluster.run(6.0)
        victim = cluster.replicas[2]
        stats = cluster.network.stats(2)
        recovered = victim.retrieval.recovered_count
        if recovered == 0:
            result.rows.append((n, float("nan"), float("nan"),
                                float("nan")))
            continue
        recover_kb = (stats.recv_bytes.get("resp", 0) / recovered) / 1e3
        responders = [r for r in targets if r != leader]
        respond_totals = []
        for responder in responders:
            sent = cluster.network.stats(responder).sent_bytes.get("resp", 0)
            answered = cluster.replicas[responder].retrieval.responses_sent
            if answered:
                respond_totals.append(sent / answered)
        respond_kb = (sum(respond_totals) / len(respond_totals) / 1e3
                      if respond_totals else float("nan"))
        times = [t for _, t in victim.retrieval.recovery_times]
        time_ms = 1000.0 * sum(times) / len(times)
        result.rows.append((n, recover_kb, respond_kb, time_ms))
    result.notes.append(
        "expected: recover cost ~flat in n (325->356 KB in the paper); "
        "respond cost collapsing (163->8 KB); time tens of ms "
        "(paper Fig. 12 + Table V; time here includes the query timer)")
    return result


# ----------------------------------------------------------------------
# Fig. 13 — view-change time and communication cost
# ----------------------------------------------------------------------

def fig13_viewchange() -> ExperimentResult:
    """View-change time/communication after a leader crash (Fig. 13)."""
    result = ExperimentResult(
        "fig13", "view-change time and communication cost",
        ["n", "time_s", "total_comm_mb", "leader_send_mb",
         "leader_recv_mb", "replica_send_kb", "replica_recv_kb"])
    ns = (4, 8, 13, 32) if not full_scale() else (4, 8, 13, 32, 64, 128, 400)
    for n in ns:
        config = _leopard_config(
            n, datablock_size=500, bftblock_max_links=10,
            progress_timeout=0.5)
        leader = 1 % n
        cluster = build_leopard_cluster(
            n=n, seed=13, config=config,
            total_rate=min(60_000.0, 6_000.0 * (n - 1)),
            warmup=0.0, faults={leader: Crash(at=1.0)})
        new_leader = 2 % n
        deadline = 60.0
        measure = cluster.replicas[cluster.measure_replica]
        while cluster.sim.now < deadline and measure.view < 2:
            cluster.run(0.5)
        if measure.vc_entered_at is None or measure.vc_triggered_at is None:
            result.rows.append((n,) + (float("nan"),) * 6)
            continue
        # Time cost: from the trigger to the first confirmation reached
        # under the new leader (covers the redo of outstanding blocks).
        exec_marker = cluster.metrics.last_execution.get(
            cluster.measure_replica, 0.0)
        while (cluster.sim.now < deadline
               and cluster.metrics.last_execution.get(
                   cluster.measure_replica, 0.0)
               <= max(exec_marker, measure.vc_entered_at)):
            cluster.run(0.25)
        resumed_at = cluster.metrics.last_execution.get(
            cluster.measure_replica, cluster.sim.now)
        elapsed = resumed_at - measure.vc_triggered_at
        total = 0
        for node in range(n):
            total += cluster.network.stats(node).sent_bytes.get(
                "viewchange", 0)
        lead_stats = cluster.network.stats(new_leader)
        replica_sends = []
        replica_recvs = []
        for node in range(n):
            if node in (leader, new_leader):
                continue
            stats = cluster.network.stats(node)
            replica_sends.append(stats.sent_bytes.get("viewchange", 0))
            replica_recvs.append(stats.recv_bytes.get("viewchange", 0))
        result.rows.append((
            n, elapsed, total / 1e6,
            lead_stats.sent_bytes.get("viewchange", 0) / 1e6,
            lead_stats.recv_bytes.get("viewchange", 0) / 1e6,
            sum(replica_sends) / max(1, len(replica_sends)) / 1e3,
            sum(replica_recvs) / max(1, len(replica_recvs)) / 1e3,
        ))
    result.notes.append(
        "expected: time grows with n but stays in seconds; total "
        "communication dominated by the new leader's O(n) new-view "
        "multicast (paper Fig. 13)")
    return result


ALL_EXPERIMENTS = {
    "fig1": fig1_baseline_scaling,
    "fig2": fig2_leader_bottleneck,
    "table1": table1_amortized_costs,
    "fig6": fig6_hotstuff_batch,
    "fig7": fig7_bftblock_batch,
    "fig8": fig8_datablock_batch,
    "table2": table2_batch_parameters,
    "fig9": fig9_throughput_scaling,
    "fig10": fig10_scaling_up,
    "table3": table3_bandwidth_breakdown,
    "table4": table4_latency_breakdown,
    "fig11": fig11_leader_bandwidth,
    "fig12": fig12_retrieval,
    "fig13": fig13_viewchange,
}
