"""Plain-text rendering of experiment results (the paper's rows/series)."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class ExperimentResult:
    """Rows regenerating one of the paper's tables or figures.

    Attributes:
        name: experiment id, e.g. ``"fig9"``.
        title: human-readable description.
        headers: column names.
        rows: data rows (tuples matching ``headers``).
        notes: provenance notes (simulated vs analytical, grid trimming).
    """

    name: str
    title: str
    headers: list[str]
    rows: list[tuple] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def render(self) -> str:
        """Format as an aligned ASCII table."""
        columns = [list(map(_fmt, column))
                   for column in zip(*([tuple(self.headers)] + [
                       tuple(row) for row in self.rows]))]
        widths = [max(len(cell) for cell in column) for column in columns]
        lines = [f"== {self.name}: {self.title} =="]
        header = " | ".join(
            h.ljust(w) for h, w in zip(self.headers, widths))
        lines.append(header)
        lines.append("-+-".join("-" * w for w in widths))
        for row in self.rows:
            lines.append(" | ".join(
                _fmt(cell).ljust(width)
                for cell, width in zip(row, widths)))
        for note in self.notes:
            lines.append(f"  note: {note}")
        return "\n".join(lines)


def _fmt(value) -> str:
    if isinstance(value, float):
        if value != value:  # NaN
            return "-"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        return f"{value:.3f}"
    return str(value)


def render_all(results: list[ExperimentResult]) -> str:
    """Render several results separated by blank lines."""
    return "\n\n".join(result.render() for result in results)
