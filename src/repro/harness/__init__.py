"""Experiment harness: cluster builders, workloads, per-figure experiments."""

from repro.harness.cluster import (
    Cluster,
    build_hotstuff_cluster,
    build_leopard_cluster,
    build_pbft_cluster,
    throttle_all_replicas,
)
from repro.harness.experiments import ALL_EXPERIMENTS, full_scale
from repro.harness.tables import ExperimentResult, render_all

__all__ = [
    "ALL_EXPERIMENTS",
    "Cluster",
    "ExperimentResult",
    "build_hotstuff_cluster",
    "build_leopard_cluster",
    "build_pbft_cluster",
    "full_scale",
    "render_all",
    "throttle_all_replicas",
]
