"""Cluster builders: assemble simulated Leopard/HotStuff/PBFT deployments.

A :class:`Cluster` bundles the simulation, the replica cores, the client
cores and the measurement conventions shared by every experiment:

* node ids ``0..n-1`` are replicas, ``n..n+m-1`` are clients;
* throughput is measured server-side at an honest non-leader replica over
  the post-warmup window (paper §VI);
* latency is measured client-side from acknowledgements.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace as dc_replace
from typing import Callable

from repro.analysis.calibration import (
    CostModel,
    DEFAULT_COSTS,
    client_cpu_model,
    hotstuff_cpu_model,
    leopard_cpu_model,
    pbft_cpu_model,
)
from repro.core.client import LeopardClient
from repro.core.config import LeopardConfig
from repro.core.replica import LeopardReplica
from repro.crypto.keys import KeyRegistry
from repro.errors import ConfigError
from repro.faults import (
    HONEST,
    Combined,
    Crash,
    FaultBehavior,
    fault_from_spec,
    fault_to_spec,
    partition_behavior,
)
from repro.obs.timeseries import TimeSeries
from repro.sim.metrics import (
    MetricsCollector,
    node_bandwidth_bps,
    standard_report,
)
from repro.sim.network import DEFAULT_BANDWIDTH_BPS, Network
from repro.sim.runner import Simulation


@dataclass
class Cluster:
    """A ready-to-run simulated deployment."""

    sim: Simulation
    protocol: str
    n: int
    replicas: list
    clients: list
    measure_replica: int
    warmup: float
    leader: int
    run_seconds: float = 0.0
    faults: dict[int, FaultBehavior] = field(default_factory=dict)
    #: ``replica_id -> fresh core`` factory the builders install so a
    #: chaos ``restart`` can rebuild a crashed replica from genesis.
    rebuild_replica: Callable | None = None
    restarts: int = 0
    chaos_log: list = field(default_factory=list)
    scenario_name: str | None = None
    partition_groups: list = field(default_factory=list)
    #: Lifecycle tracer (``install_tracer``); ``None`` keeps the hot
    #: paths structurally untouched.
    tracer: object | None = None
    _sampler_installed: bool = field(default=False, repr=False)

    @property
    def metrics(self) -> MetricsCollector:
        """The shared metrics sink."""
        return self.sim.metrics

    @property
    def network(self) -> Network:
        """The shared network model."""
        return self.sim.network

    def run(self, seconds: float) -> int:
        """Advance the simulation by ``seconds`` of virtual time.

        Returns:
            Number of events the engine executed during this call.
        """
        self._install_sampler()
        executed = self.sim.run(seconds)
        self.run_seconds = self.sim.now
        return executed

    def install_tracer(self, tracer) -> None:
        """Record lifecycle traces for every node in this cluster.

        Wraps each hosted core in the :mod:`repro.obs` boundary tracer;
        chaos restarts re-wrap the rebuilt core automatically.
        """
        self.tracer = tracer
        for node in self.sim.nodes.values():
            node.install_tracer(tracer)

    def _install_sampler(self) -> None:
        """Arm the recurring time-series host sampler (first run only).

        Samples the measure replica's NIC backlog and the scheduler's
        pending-event depth into the metrics' :class:`TimeSeries` every
        interval — a handful of read-only events per simulated second.
        """
        series = self.metrics.timeseries
        if self._sampler_installed or series is None:
            return
        self._sampler_installed = True
        queue = self.sim.queue
        nic = self.network.nics[self.measure_replica]
        interval = series.interval

        def tick() -> None:
            now = queue.now
            backlog = nic.tx_busy_until - now
            series.sample(now,
                          backlog_s=backlog if backlog > 0 else 0.0,
                          queue_depth=queue.pending)
            queue.schedule(now + interval, tick)

        queue.schedule(queue.now + interval, tick)

    def measurement_window(self) -> float:
        """Seconds of post-warmup time the metrics cover."""
        return max(self.run_seconds - self.warmup, 0.0)

    def throughput(self) -> float:
        """Requests/second executed at the measurement replica."""
        return self.metrics.throughput(
            self.measure_replica, self.measurement_window())

    def throughput_bps(self) -> float:
        """Goodput in payload bits/second (Fig. 10's unit)."""
        payload = self.replicas[0].config.payload_size \
            if self.protocol == "leopard" \
            else self.replicas[0].payload_size
        return self.throughput() * payload * 8.0

    def mean_latency(self) -> float:
        """Mean client-observed latency in seconds."""
        return self.metrics.mean_latency()

    def leader_bandwidth_bps(self) -> float:
        """The leader's total (send+receive) bandwidth utilization."""
        return node_bandwidth_bps(
            self.network, self.leader, self.run_seconds)

    def report(self) -> dict:
        """Backend-neutral run report (same schema as a live run's).

        Replica byte counters come from the modelled NICs; a live cluster
        produces the identical structure from real socket counters, so the
        two are directly comparable (see :mod:`repro.net.live`).
        """
        report = standard_report(
            backend="sim",
            protocol=self.protocol,
            n=self.n,
            duration=self.measurement_window(),
            metrics=self.metrics,
            byte_stats={node_id: self.network.stats(node_id)
                        for node_id in range(self.n)},
            measure_replica=self.measure_replica,
            events_processed=self.sim.events_processed,
            events_per_sec=self.sim.events_per_sec(),
            event_queue=self.sim.queue.occupancy(),
            faults=self.faults_summary(),
            timeseries=self.timeseries_section(),
            recovery=self.recovery_section(),
        )
        if self.tracer is not None and getattr(self.tracer, "enabled",
                                               False):
            report["trace"] = self.tracer.to_jsonable()
        return report

    def recovery_section(self) -> dict | None:
        """The report's ``recovery`` section (``None`` for a clean run)."""
        from repro.core.recovery import recovery_section
        return recovery_section(self.replicas)

    def timeseries_section(self) -> dict | None:
        """Rendered interval curve (``None`` without a collector)."""
        series = self.metrics.timeseries
        if series is None:
            return None
        return series.section(measure_replica=self.measure_replica,
                              end=self.run_seconds)

    # ------------------------------------------------------------------
    # Chaos (the simulated backend of repro.net.chaos scenarios)
    # ------------------------------------------------------------------

    def _effective_fault(self, replica_id: int) -> FaultBehavior:
        base = self.faults.get(replica_id, HONEST)
        part = partition_behavior(replica_id, self.partition_groups) \
            if self.partition_groups else HONEST
        if base is HONEST:
            return part
        if part is HONEST:
            return base
        return Combined((base, part))

    def _refresh_fault(self, replica_id: int) -> None:
        node = self.sim.nodes[replica_id]
        fault = self._effective_fault(replica_id)
        node.fault = fault
        node._honest = fault is HONEST

    def set_fault(self, replica_id: int, fault: FaultBehavior) -> None:
        """Hot-swap one replica's base fault behaviour mid-simulation."""
        if replica_id == self.measure_replica and fault is not HONEST:
            raise ConfigError("the measurement replica must stay honest")
        if fault is HONEST:
            self.faults.pop(replica_id, None)
        else:
            self.faults[replica_id] = fault
        self._refresh_fault(replica_id)

    def restart_replica(self, replica_id: int) -> None:
        """Replace a crashed replica's core and arm catch-up.

        The simulated analogue of killing and respawning a process: the
        node keeps its id, NIC and CPU lanes, but hosts a fresh core with
        empty state, cleared timers and an honest behaviour.  The fresh
        core begins recovery on boot — it solicits peer snapshots,
        installs the checkpoint-anchored prefix, and replays forward into
        live agreement (:mod:`repro.core.recovery`); recovery traffic
        flows through the modelled NICs like any other message.
        """
        if self.rebuild_replica is None:
            raise ConfigError(
                f"{self.protocol} cluster has no replica rebuild factory")
        node = self.sim.nodes[replica_id]
        if not node.fault.crashed:
            raise ConfigError(
                f"replica {replica_id} is not crashed; only a crashed "
                "replica can be restarted")
        core = self.rebuild_replica(replica_id)
        node.core = core
        self.replicas[replica_id] = core
        self.faults.pop(replica_id, None)
        self._refresh_fault(replica_id)
        node._timer_generation.clear()
        if hasattr(core, "backlog_probe"):
            core.backlog_probe = node._backlog_probe
        if hasattr(core, "begin_recovery"):
            core.begin_recovery()
        if self.tracer is not None:
            node.install_tracer(self.tracer)
        node.boot()
        self.restarts += 1

    def apply_chaos_event(self, event) -> None:
        """Execute one resolved chaos event at the current sim time.

        Scheduled by :func:`repro.net.chaos.schedule_scenario_sim`;
        ``shape``/``unshape`` never reach here (the scheduler rejects
        them — the simulator models bandwidth at the NIC layer).
        """
        args = event.args
        if event.op == "partition":
            self.partition_groups = [frozenset(group)
                                     for group in args["groups"]]
            for replica_id in range(self.n):
                self._refresh_fault(replica_id)
        elif event.op == "heal":
            self.partition_groups = []
            for replica_id in range(self.n):
                self._refresh_fault(replica_id)
        elif event.op == "crash":
            crash = Crash(at=self.sim.now)
            crash._now = self.sim.now  # latch crashed immediately
            self.set_fault(args["node"], crash)
        elif event.op == "restart":
            self.restart_replica(args["node"])
        elif event.op == "fault":
            self.set_fault(args["node"], fault_from_spec(args["spec"]))
        elif event.op == "unfault":
            self.set_fault(args["node"], HONEST)
        else:
            raise ConfigError(
                f"chaos op {event.op!r} is not simulatable")
        self.chaos_log.append(event.to_jsonable())
        series = self.metrics.timeseries
        if series is not None:
            series.annotate(self.sim.now, event.op, event.describe())

    def faults_summary(self) -> dict | None:
        """The report's ``faults`` section (``None`` for a clean run)."""
        if not (self.faults or self.chaos_log or self.restarts
                or self.scenario_name):
            return None

        def spec_or_custom(fault):
            try:
                return fault_to_spec(fault)
            except ValueError:
                return {"kind": "custom", "repr": repr(fault)}

        return {
            "injected": {str(replica_id): spec_or_custom(fault)
                         for replica_id, fault in sorted(self.faults.items())},
            "scenario": self.scenario_name,
            "events_applied": list(self.chaos_log),
            "restarts": self.restarts,
            "shaping": None,  # live-only; key kept for shape parity
        }


def _bucket_width_hint(n: int, block_bytes: int, bandwidth_bps: float,
                       fanout: int = 1) -> float:
    """Calendar bucket width sized from the NIC serialization quantum.

    ``fanout`` captures the protocol's traffic shape.  For all-to-all
    dissemination (Leopard: every replica multicasts datablocks, so the
    global event stream is dense) a bucket spans about a quarter of one
    wire copy's serialization time — wide enough that a coalesced
    arrival slab crosses few buckets, narrow enough that a copy's
    follow-on events (rx serialization + CPU occupancy, at least one
    further quantum) land beyond the bucket being drained.  For
    leader-based dissemination (HotStuff/PBFT: one sender, ~n× sparser
    events) pass ``fanout = n - 1`` so a bucket spans a slice of the
    whole egress ramp instead; per-copy-sized buckets there would mean
    one cursor advance per event.  Clamped so degenerate payloads (tiny
    control messages, throttled NICs) still get useful buckets.
    """
    # bytes*16/bandwidth == bytes*8/(bandwidth/2): one copy's wire time
    # at the NIC's half-duplex per-direction share (Nic.occupy_tx).
    quantum = max(1, block_bytes) * 16.0 / bandwidth_bps
    return min(4e-3, max(5e-5, max(1, fanout) * quantum / 4.0))


def _pick_measure_replica(n: int, leader: int, faulty: set[int]) -> int:
    for candidate in range(n):
        if candidate != leader and candidate not in faulty:
            return candidate
    raise ConfigError("no honest non-leader replica available to measure")


def build_leopard_cluster(
        n: int,
        seed: int = 0,
        config: LeopardConfig | None = None,
        costs: CostModel = DEFAULT_COSTS,
        bandwidth_bps: float = DEFAULT_BANDWIDTH_BPS,
        total_rate: float | None = None,
        clients_per_replica: int = 1,
        bundle_size: int = 500,
        warmup: float | None = None,
        faults: dict[int, FaultBehavior] | None = None,
        resubmit: bool = False,
        trace_phases: bool = False,
        gst: float = 0.0,
        queue_backend: str | None = None,
        waves: bool | None = None,
        prime: bool = True,
) -> Cluster:
    """Build a Leopard deployment of ``n`` replicas plus load clients.

    Args:
        n: replica count (3f+1 fault tolerance, as all paper experiments).
        seed: determinism seed (keys, jitter).
        config: protocol configuration; defaults to ``LeopardConfig(n)``.
        costs: CPU calibration.
        bandwidth_bps: per-node NIC capacity (Fig. 10 throttles this).
        total_rate: offered load in requests/s across all clients; defaults
            to a saturating 1.6x of the calibrated capacity ceiling.
        clients_per_replica: client nodes per non-leader replica.
        bundle_size: requests per client submission.
        warmup: metrics warmup window (seconds).  Defaults to an
            estimate of the saturation ramp: the flow-control window
            admits W·(n-1) datablocks in flight, which take roughly
            W·(n-1)·α·t_verify seconds to stream through each data plane
            ("each lasting until the measurement is stabilized", §VI).
        faults: optional ``replica_id -> FaultBehavior`` map (≤ f entries).
        resubmit: enable client re-submission on ack timeout.
        trace_phases: collect the Table IV latency-phase breakdown.
        gst: global stabilization time of the partial-synchrony model.
        queue_backend: event-queue backend (``"calendar"`` / ``"heap"``);
            ``None`` uses the process default.
        waves: enable the calendar backend's wave-aggregation tier
            (byte-identical execution, collapsed ``events_processed``);
            ``None`` uses the process default
            (:func:`repro.sim.events.set_default_waves`).
        prime: inject the initial saturating request burst into every
            client (the paper's steady-saturation setup).  Disable for
            targeted workloads — e.g. the n = 1000 single-block commit
            smoke, where an all-replica burst would cost O(n²·blocks)
            Ready events.
    """
    config = config if config is not None else LeopardConfig(n=n)
    if config.n != n:
        raise ConfigError("config.n must match the requested cluster size")
    faults = dict(faults or {})
    if len(faults) > config.f:
        raise ConfigError(f"at most f={config.f} faulty replicas allowed")
    client_count = max(1, (n - 1) * clients_per_replica)
    if total_rate is None:
        total_rate = 1.6 / costs.leopard_verify_exec_per_request
    if warmup is None:
        ramp = (config.max_outstanding_datablocks * (n - 1)
                * config.datablock_size
                * costs.leopard_verify_exec_per_request)
        warmup = 1.0 + 3.0 * ramp
        if config.progress_timeout < warmup:
            # The saturation ramp at large n exceeds the default
            # view-change trigger; a fault-free stress run must not
            # misread pipeline fill as a dead leader (the paper: "the
            # timer ... should be set appropriately").
            config = dc_replace(config, progress_timeout=2.0 * warmup)
    network = Network(n + client_count, bandwidth_bps=bandwidth_bps,
                      gst=gst, seed=seed)
    metrics = MetricsCollector(warmup=warmup, timeseries=TimeSeries())
    sim = Simulation(
        network, replica_count=n, metrics=metrics,
        queue_backend=queue_backend, waves=waves,
        bucket_width=_bucket_width_hint(
            n, config.datablock_size * config.payload_size, bandwidth_bps))
    registry = KeyRegistry(n, config.f, seed=seed)
    leader = config.leader_of(1)
    measure = _pick_measure_replica(n, leader, set(faults))

    replicas = []
    # One shared cost-model closure per role: every replica host holding
    # the same callable lets the broadcast fast path memoize the
    # per-message CPU cost across all n-1 copies.
    replica_cpu = leopard_cpu_model(costs)
    for replica_id in range(n):
        replica_config = config
        if trace_phases and replica_id == measure:
            replica_config = dc_replace(config, trace_phases=True)
        replica = LeopardReplica(replica_id, replica_config, registry)
        replica.attach_perf(metrics.perf)
        sim.add_node(replica, cpu_model=replica_cpu,
                     fault=faults.get(replica_id, HONEST))
        replicas.append(replica)

    clients = []
    client_cpu = client_cpu_model(costs)
    per_client_rate = total_rate / client_count
    for index in range(client_count):
        client_id = n + index
        client = LeopardClient(
            client_id, config, rate=per_client_rate,
            bundle_size=bundle_size, resubmit=resubmit,
            trace_phases=trace_phases)
        sim.add_node(client, cpu_model=client_cpu)
        clients.append(client)

    cluster = Cluster(sim=sim, protocol="leopard", n=n, replicas=replicas,
                      clients=clients, measure_replica=measure,
                      warmup=warmup, leader=leader, faults=faults)

    def _rebuild_leopard(replica_id: int, config=config, registry=registry,
                         metrics=metrics):
        replica = LeopardReplica(replica_id, config, registry)
        replica.attach_perf(metrics.perf)
        return replica

    cluster.rebuild_replica = _rebuild_leopard
    # Prime the mempools so datablocks are full from the start; the paper
    # stress-tests "with a saturated request rate ... until the measurement
    # is stabilized".
    if prime:
        burst = max(1, math.ceil(
            2 * config.datablock_size / max(1, clients_per_replica)))
        _prime_leopard(cluster, burst)
    return cluster


def _prime_leopard(cluster: Cluster, burst: int) -> None:
    """Inject an initial request burst directly into client submission."""
    from repro.messages.client import RequestBundle

    for client in cluster.clients:
        bundle = RequestBundle(client.node_id, 0, burst,
                               client.config.payload_size, 0.0)
        target = client.primary
        cluster.sim.queue.schedule(
            0.0,
            lambda t=target, b=bundle, c=client.node_id:
            cluster.sim.deliver(c, t, b))


def throttle_all_replicas(cluster: Cluster, bandwidth_bps: float) -> None:
    """NetEm stand-in: throttle every replica NIC (paper §VI-B)."""
    for replica_id in range(cluster.n):
        cluster.network.set_bandwidth(replica_id, bandwidth_bps)


def build_hotstuff_cluster(
        n: int,
        seed: int = 0,
        config: "HotStuffConfig | None" = None,
        costs: CostModel = DEFAULT_COSTS,
        bandwidth_bps: float = DEFAULT_BANDWIDTH_BPS,
        total_rate: float | None = None,
        client_count: int = 4,
        bundle_size: int = 500,
        warmup: float = 1.0,
        faults: dict[int, FaultBehavior] | None = None,
        queue_backend: str | None = None,
        waves: bool | None = None,
) -> Cluster:
    """Build a chained-HotStuff deployment (clients submit to the leader).

    Parameters mirror :func:`build_leopard_cluster`; ``total_rate``
    defaults to a load saturating the leader's calibrated ceiling.
    """
    from repro.baselines.client import BaselineClient
    from repro.baselines.hotstuff.config import HotStuffConfig
    from repro.baselines.hotstuff.replica import HotStuffReplica

    config = config if config is not None else HotStuffConfig(n=n)
    if config.n != n:
        raise ConfigError("config.n must match the requested cluster size")
    faults = dict(faults or {})
    if total_rate is None:
        # Offered load comfortably above both the CPU and the NIC ceiling.
        nic_ceiling = (bandwidth_bps / 2.0) / (
            config.payload_size * 8.0 * max(1, n - 1))
        cpu_ceiling = 1.0 / (costs.hotstuff_ingest_per_request
                             + costs.hotstuff_exec_per_request
                             + costs.per_send_byte * config.payload_size
                             * (n - 1))
        total_rate = 1.5 * min(nic_ceiling, cpu_ceiling)
    network = Network(n + client_count, bandwidth_bps=bandwidth_bps,
                      seed=seed)
    metrics = MetricsCollector(warmup=warmup, timeseries=TimeSeries())
    sim = Simulation(
        network, replica_count=n, metrics=metrics,
        queue_backend=queue_backend, waves=waves,
        bucket_width=_bucket_width_hint(
            n, config.payload_size * bundle_size, bandwidth_bps,
            fanout=n - 1))
    leader = config.leader_of(1)
    measure = _pick_measure_replica(n, leader, set(faults))

    replicas = []
    replica_cpu = hotstuff_cpu_model(costs)
    for replica_id in range(n):
        replica = HotStuffReplica(replica_id, config)
        sim.add_node(replica, cpu_model=replica_cpu,
                     fault=faults.get(replica_id, HONEST))
        replicas.append(replica)

    clients = []
    client_cpu = client_cpu_model(costs)
    per_client_rate = total_rate / client_count
    for index in range(client_count):
        client = BaselineClient(
            n + index, target=leader, rate=per_client_rate,
            payload_size=config.payload_size, bundle_size=bundle_size)
        sim.add_node(client, cpu_model=client_cpu)
        clients.append(client)

    cluster = Cluster(sim=sim, protocol="hotstuff", n=n, replicas=replicas,
                      clients=clients, measure_replica=measure,
                      warmup=warmup, leader=leader, faults=faults)
    cluster.rebuild_replica = \
        lambda replica_id, config=config: HotStuffReplica(replica_id, config)
    return cluster


def build_pbft_cluster(
        n: int,
        seed: int = 0,
        config: "PbftConfig | None" = None,
        costs: CostModel = DEFAULT_COSTS,
        bandwidth_bps: float = DEFAULT_BANDWIDTH_BPS,
        total_rate: float | None = None,
        client_count: int = 4,
        bundle_size: int = 500,
        warmup: float = 1.0,
        faults: dict[int, FaultBehavior] | None = None,
        queue_backend: str | None = None,
        waves: bool | None = None,
) -> Cluster:
    """Build a PBFT / BFT-SMaRt deployment (Fig. 1 baseline)."""
    from repro.baselines.client import BaselineClient
    from repro.baselines.pbft.config import PbftConfig
    from repro.baselines.pbft.replica import PbftReplica

    config = config if config is not None else PbftConfig(n=n)
    if config.n != n:
        raise ConfigError("config.n must match the requested cluster size")
    faults = dict(faults or {})
    if total_rate is None:
        nic_ceiling = (bandwidth_bps / 2.0) / (
            config.payload_size * 8.0 * max(1, n - 1))
        cpu_ceiling = 1.0 / (costs.pbft_ingest_per_request
                             + costs.pbft_exec_per_request
                             + costs.per_send_byte * config.payload_size
                             * (n - 1))
        total_rate = 1.5 * min(nic_ceiling, cpu_ceiling)
    network = Network(n + client_count, bandwidth_bps=bandwidth_bps,
                      seed=seed)
    metrics = MetricsCollector(warmup=warmup, timeseries=TimeSeries())
    sim = Simulation(
        network, replica_count=n, metrics=metrics,
        queue_backend=queue_backend, waves=waves,
        bucket_width=_bucket_width_hint(
            n, config.payload_size * bundle_size, bandwidth_bps,
            fanout=n - 1))
    leader = config.leader_of(1)
    measure = _pick_measure_replica(n, leader, set(faults))

    replicas = []
    replica_cpu = pbft_cpu_model(costs)
    for replica_id in range(n):
        replica = PbftReplica(replica_id, config)
        sim.add_node(replica, cpu_model=replica_cpu,
                     fault=faults.get(replica_id, HONEST))
        replicas.append(replica)

    clients = []
    client_cpu = client_cpu_model(costs)
    per_client_rate = total_rate / client_count
    for index in range(client_count):
        client = BaselineClient(
            n + index, target=leader, rate=per_client_rate,
            payload_size=config.payload_size, bundle_size=bundle_size)
        sim.add_node(client, cpu_model=client_cpu)
        clients.append(client)

    cluster = Cluster(sim=sim, protocol="pbft", n=n, replicas=replicas,
                      clients=clients, measure_replica=measure,
                      warmup=warmup, leader=leader, faults=faults)
    cluster.rebuild_replica = \
        lambda replica_id, config=config: PbftReplica(replica_id, config)
    return cluster
