"""Command-line entry point: regenerate the paper's tables and figures.

Usage::

    python -m repro.harness.cli              # list available experiments
    python -m repro.harness.cli fig9 table3  # run selected experiments
    python -m repro.harness.cli all          # run everything (slow)

Set ``REPRO_FULL=1`` for the paper-scale grids.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.harness.experiments import ALL_EXPERIMENTS, full_scale


def main(argv: list[str] | None = None) -> int:
    """Run the requested experiments and print their tables."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the Leopard paper's tables and figures.")
    parser.add_argument(
        "experiments", nargs="*",
        help="experiment ids (e.g. fig9 table3), or 'all'")
    parser.add_argument(
        "--list", action="store_true", help="list experiment ids and exit")
    args = parser.parse_args(argv)

    if args.list or not args.experiments:
        print("available experiments:")
        for name in ALL_EXPERIMENTS:
            print(f"  {name}")
        print(f"\npaper-scale grids: {'ON' if full_scale() else 'off'} "
              f"(set REPRO_FULL=1 to enable)")
        return 0

    selected = (list(ALL_EXPERIMENTS) if args.experiments == ["all"]
                else args.experiments)
    unknown = [name for name in selected if name not in ALL_EXPERIMENTS]
    if unknown:
        print(f"unknown experiments: {', '.join(unknown)}",
              file=sys.stderr)
        return 2
    for name in selected:
        started = time.time()
        result = ALL_EXPERIMENTS[name]()
        print(result.render())
        print(f"  [{name} took {time.time() - started:.1f}s]\n")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
