"""Command-line entry point: experiments and the live-cluster runtime.

Usage::

    python -m repro.harness.cli              # list available experiments
    python -m repro.harness.cli fig9 table3  # run selected experiments
    python -m repro.harness.cli all          # run everything (slow)

    # Boot a real localhost cluster (asyncio TCP replicas + load client):
    python -m repro.harness.cli run-live --replicas 4 --clients 1 \
        --duration 5

    # Any of the paper's three protocols, in-process or one OS process
    # per replica:
    python -m repro.harness.cli run-live --protocol pbft --processes

    # Run the same point under the simulator and the live runtime and
    # reconcile the deltas:
    python -m repro.harness.cli calibrate --protocol hotstuff \
        --duration 2 --output calibration_hotstuff.json

    # Execute a declarative trial matrix (resumable, parallel) and
    # render a cross-protocol report from the longitudinal store:
    python -m repro.harness.cli expt run \
        --config benchmarks/experiments/smoke.yaml \
        --store artifacts/expt-smoke/store.jsonl
    python -m repro.harness.cli expt report \
        --store artifacts/expt-smoke/store.jsonl

Set ``REPRO_FULL=1`` for the paper-scale grids.  ``run-live`` prints the
same metrics schema the simulated experiments use, so a live localhost
run is directly comparable with a simulated one.
"""

from __future__ import annotations

import argparse
import json
import math
import sys
import time


def _render_live_report(report: dict) -> str:
    """Human-readable summary of a live run's standard report."""
    latency = report["latency_s"]

    def fmt_ms(value: float) -> str:
        return "n/a" if math.isnan(value) else f"{value * 1e3:.1f} ms"

    mode = report.get("deployment", {}).get("mode", "in-process")
    lines = [
        f"live run: n={report['n']} {report['protocol']} over TCP "
        f"[{mode}] ({report['duration_s']:.1f}s measured at replica "
        f"{report['measure_replica']})",
        f"  throughput: {report['throughput_rps']:.0f} req/s",
        f"  latency:    mean {fmt_ms(latency['mean'])}, "
        f"p50 {fmt_ms(latency['p50'])}, p99 {fmt_ms(latency['p99'])}",
        f"  acked bundles: {report['acked_bundles']}",
        f"  transport: dropped={report['transport']['dropped_frames']} "
        f"unroutable={report['transport']['unroutable_frames']} "
        f"decode_errors={report['transport']['decode_errors']} "
        f"handler_errors={report['transport']['handler_errors']}",
    ]
    measure_bytes = report["bytes_by_class"].get(
        report["measure_replica"], {"sent": {}, "recv": {}})
    sent = ", ".join(f"{cls}={count}" for cls, count
                     in sorted(measure_bytes["sent"].items()))
    recv = ", ".join(f"{cls}={count}" for cls, count
                     in sorted(measure_bytes["recv"].items()))
    lines.append(f"  bytes sent by class: {sent or '-'}")
    lines.append(f"  bytes recv by class: {recv or '-'}")
    faults = report.get("faults")
    if faults:
        injected = ", ".join(
            f"{node}:{spec.get('kind', '?')}"
            for node, spec in sorted(faults.get("injected", {}).items()))
        lines.append(
            f"  faults: scenario={faults.get('scenario') or '-'} "
            f"events_applied={len(faults.get('events_applied') or [])} "
            f"restarts={faults.get('restarts', 0)} "
            f"injected=[{injected or '-'}]")
        shaping = faults.get("shaping")
        if shaping:
            lines.append(
                f"  shaping: links={len(shaping.get('links', {}))} "
                f"shaped={shaping.get('frames_shaped', 0)} "
                f"delayed={shaping.get('frames_delayed', 0)} "
                f"lost={shaping.get('frames_lost', 0)}")
    # Schema-tolerant: sim-backed reports carry scheduler occupancy;
    # live runs (and committed schema-4 artifacts) have none, and
    # schema-5 artifacts predate the wave counters.
    queue = report.get("event_queue")
    if queue:
        line = (f"  event queue: backend={queue.get('backend', '?')} "
                f"max_pending={queue.get('max_pending', 0)}")
        if queue.get("waves"):
            line += (f" wave_events={queue.get('wave_events', 0)} "
                     f"wave_receivers={queue.get('wave_receivers', 0)} "
                     f"scalar_fallbacks="
                     f"{queue.get('scalar_fallbacks', 0)}")
        lines.append(line)
    # Schema-tolerant: pre-schema-7 artifacts carry no recovery section.
    recovery = report.get("recovery")
    if recovery:
        recovering = {rid: info for rid, info
                      in sorted(recovery.get("replicas", {}).items())
                      if info.get("rounds", 0)}
        per_replica = ", ".join(
            f"{rid}:{'done' if info.get('complete') else 'INCOMPLETE'}"
            f"(+{info.get('installed_entries', 0)} entries, "
            f"{info.get('segments_fetched', 0)} segments)"
            for rid, info in recovering.items())
        lines.append(
            f"  recovery: catch-ups=[{per_replica or '-'}] "
            f"snapshots_persisted="
            f"{recovery.get('snapshots_persisted', 0)} "
            f"restored_from_disk="
            f"{recovery.get('restored_from_disk') or []}")
    # Schema-tolerant: committed schema-4 artifacts have no timeseries.
    series = report.get("timeseries")
    if series and series.get("intervals"):
        rates = [entry["throughput_rps"] for entry in series["intervals"]]
        lines.append(
            f"  timeseries: {len(rates)} x {series['interval_s']:.2f}s "
            f"intervals, throughput min {min(rates):.0f} / "
            f"max {max(rates):.0f} req/s, "
            f"{len(series.get('annotations') or [])} annotations")
    return "\n".join(lines)


def _write_report(report: dict, output: str | None) -> None:
    if output:
        with open(output, "w") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
        print(f"report written to {output}")


def run_live_command(argv: list[str]) -> int:
    """The ``run-live`` subcommand: boot a localhost TCP cluster."""
    from repro.net.protocols import LIVE_PROTOCOLS

    parser = argparse.ArgumentParser(
        prog="repro-experiments run-live",
        description="Run a live localhost BFT cluster over real TCP "
                    "sockets (any of the paper's three protocols, "
                    "in-process or one OS process per replica).")
    parser.add_argument("--protocol", choices=LIVE_PROTOCOLS,
                        default="leopard",
                        help="which protocol to boot (default leopard)")
    parser.add_argument("--processes", action="store_true",
                        help="launch one OS process per replica instead "
                             "of hosting every core on one event loop")
    parser.add_argument("--replicas", type=int, default=4,
                        help="replica count n (3f+1; default 4)")
    parser.add_argument("--clients", type=int, default=1,
                        help="load-generating clients (default 1)")
    parser.add_argument("--duration", type=float, default=5.0,
                        help="seconds of real time to serve (default 5)")
    parser.add_argument("--rate", type=float, default=4000.0,
                        help="offered load, requests/second total")
    parser.add_argument("--bundle-size", type=int, default=200,
                        help="requests per client submission")
    parser.add_argument("--payload", type=int, default=128,
                        help="bytes per request payload")
    parser.add_argument("--datablock-size", type=int, default=100,
                        help="requests per batch (the paper's alpha for "
                             "Leopard, the block batch for baselines)")
    parser.add_argument("--seed", type=int, default=0,
                        help="determinism seed for key dealing")
    parser.add_argument("--warmup", type=float, default=0.0,
                        help="seconds of metrics warmup")
    parser.add_argument("--min-committed", type=int, default=None,
                        help="exit non-zero unless at least this many "
                             "requests committed (smoke gating)")
    parser.add_argument("--require-recovery", action="store_true",
                        help="exit non-zero unless at least one replica "
                             "completed a verified catch-up (non-zero "
                             "segments fetched) AND its executed ledger "
                             "prefix re-converged with the quorum "
                             "(crash-recovery smoke gating)")
    parser.add_argument("--scenario", default=None, metavar="SPEC",
                        help="chaos scenario to run against the cluster: "
                             "a builtin name (smoke, partition-heal, "
                             "crash-restart, crash-recover, "
                             "slow-replica), a scenario "
                             "file path, or inline 'at T op args' text")
    parser.add_argument("--json", action="store_true",
                        help="print the full report as JSON")
    parser.add_argument("--output", default=None, metavar="FILE",
                        help="also write the full report JSON to FILE "
                             "(CI artifact path)")
    args = parser.parse_args(argv)

    scenario = None
    if args.scenario is not None:
        from repro.errors import ConfigError
        from repro.net.chaos import load_scenario

        try:
            scenario = load_scenario(args.scenario)
        except ConfigError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2

    if args.processes:
        if args.warmup:
            parser.error("--warmup is not supported with --processes "
                         "(replica children cannot gate it on the "
                         "measurement epoch); use in-process mode")
        from repro.harness.procs import run_live_processes

        report = run_live_processes(
            n=args.replicas, client_count=args.clients,
            duration=args.duration, protocol=args.protocol,
            total_rate=args.rate, bundle_size=args.bundle_size,
            payload_size=args.payload,
            datablock_size=args.datablock_size, seed=args.seed,
            warmup=args.warmup, scenario=scenario)
    else:
        from repro.net.live import run_live_sync
        from repro.net.protocols import default_live_config_for

        config = default_live_config_for(
            args.protocol, args.replicas, payload_size=args.payload,
            datablock_size=args.datablock_size)
        report = run_live_sync(
            n=args.replicas, client_count=args.clients,
            duration=args.duration, protocol=args.protocol,
            config=config, total_rate=args.rate,
            bundle_size=args.bundle_size, seed=args.seed,
            warmup=args.warmup, scenario=scenario)

    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        print(_render_live_report(report))
    _write_report(report, args.output)

    if args.min_committed is not None:
        committed = report["executed_requests"].get(
            report["measure_replica"], 0)
        if committed < args.min_committed:
            print(f"FAIL: {committed} requests committed "
                  f"< required {args.min_committed}", file=sys.stderr)
            return 1
        print(f"live smoke OK: {committed} requests committed "
              f">= {args.min_committed}")

    if args.require_recovery:
        from repro.core.recovery import check_convergence

        recovery = report.get("recovery") or {}
        recovering = {rid: info for rid, info
                      in recovery.get("replicas", {}).items()
                      if info.get("rounds", 0)}
        if not recovering:
            print("FAIL: no replica performed a catch-up round "
                  "(recovery section empty)", file=sys.stderr)
            return 1
        for rid, info in sorted(recovering.items()):
            if not info.get("complete"):
                print(f"FAIL: replica {rid} catch-up incomplete "
                      f"({info.get('rounds', 0)} rounds, "
                      f"{info.get('solicits', 0)} solicits)",
                      file=sys.stderr)
                return 1
            if not info.get("segments_fetched", 0):
                print(f"FAIL: replica {rid} completed without fetching "
                      "any ledger segments", file=sys.stderr)
                return 1
            converged, detail = check_convergence(report, int(rid))
            if not converged:
                print(f"FAIL: replica {rid} did not re-converge: "
                      f"{detail}", file=sys.stderr)
                return 1
        if args.processes and not recovery.get("restored_from_disk"):
            print("FAIL: respawned replica did not restore from its "
                  "durable snapshot", file=sys.stderr)
            return 1
        recovered = ", ".join(sorted(recovering))
        print(f"recovery smoke OK: replica(s) {recovered} caught up "
              f"and re-converged"
              + (f" (restored from disk: "
                 f"{recovery.get('restored_from_disk')})"
                 if args.processes else ""))
    return 0


def _render_calibration(report: dict) -> str:
    """Human-readable summary of a live-vs-sim reconciliation."""
    def fmt(value: float) -> str:
        return "n/a" if value is None or math.isnan(value) \
            else f"{value:.3g}"

    ratio = report["deltas"]["throughput_rps"]["ratio_live_over_sim"]
    lines = [
        f"calibration: {report['protocol']} n={report['n']} "
        f"rate={report['total_rate']:.0f} req/s "
        f"payload={report['payload_size']}B "
        f"({report['duration_s']:.1f}s per backend)",
        f"  throughput: live {report['live']['throughput_rps']:.0f} "
        f"vs sim {report['sim']['throughput_rps']:.0f} req/s "
        f"(ratio {fmt(ratio)})",
        f"  latency p50: live "
        f"{fmt(report['deltas']['latency_p50_s']['live'])}s "
        f"vs sim {fmt(report['deltas']['latency_p50_s']['sim'])}s",
        f"  suggested cost scale: "
        f"{fmt(report['suggested_cost_scale'])}",
    ]
    return "\n".join(lines)


def _render_faulted_calibration(report: dict) -> str:
    """Human-readable summary of a faulted live-vs-sim reconciliation."""
    def fmt(value: float) -> str:
        return "n/a" if value is None or math.isnan(value) \
            else f"{value:.3g}"

    deg = report["degradation"]
    verdict = "within" if deg["within_bound"] else "OUTSIDE"
    lines = [
        f"faulted calibration: {report['protocol']} n={report['n']} "
        f"scenario={report['scenario']}",
        "  clean point:",
        "    " + _render_calibration(report["clean"]).replace(
            "\n", "\n    "),
        "  faulted point:",
        "    " + _render_calibration(report["faulted"]).replace(
            "\n", "\n    "),
        f"  degradation (faulted/clean tput): "
        f"live {fmt(deg['live'])} vs sim {fmt(deg['sim'])}",
        f"  degradation gap (live/sim): "
        f"{fmt(deg['gap_ratio_live_over_sim'])} — {verdict} bound "
        f"{deg['max_degradation_gap']:.3g}x",
    ]
    # Schema-tolerant: pre-schema-5 artifacts carry no timeline bracket.
    for backend, bracket in sorted((deg.get("timeline") or {}).items()):
        lines.append(
            f"  {backend} dip (req/s): pre {fmt(bracket['pre_rps'])} "
            f"-> during {fmt(bracket['during_rps'])} "
            f"-> post {fmt(bracket['post_rps'])} "
            f"(fault window {bracket['fault_at']:.2f}s"
            f"-{bracket['recover_at']:.2f}s)")
    return "\n".join(lines)


def calibrate_command(argv: list[str]) -> int:
    """The ``calibrate`` subcommand: one point under both backends."""
    from repro.net.protocols import LIVE_PROTOCOLS

    parser = argparse.ArgumentParser(
        prog="repro-experiments calibrate",
        description="Run one (protocol, n, rate, payload) point under "
                    "both the simulator and the live runtime, and emit "
                    "a reconciliation report of the deltas against the "
                    "calibration constants.")
    parser.add_argument("--protocol", choices=LIVE_PROTOCOLS,
                        default="leopard")
    parser.add_argument("--replicas", type=int, default=4,
                        help="replica count n (default 4)")
    parser.add_argument("--rate", type=float, default=2000.0,
                        help="offered load, requests/second total")
    parser.add_argument("--payload", type=int, default=128,
                        help="bytes per request payload")
    parser.add_argument("--duration", type=float, default=2.0,
                        help="measured seconds per backend (default 2)")
    parser.add_argument("--bundle-size", type=int, default=100)
    parser.add_argument("--datablock-size", type=int, default=100)
    parser.add_argument("--warmup", type=float, default=0.25,
                        help="seconds of metrics warmup per backend")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--min-committed", type=int, default=None,
                        help="exit non-zero unless both backends "
                             "committed at least this many requests")
    parser.add_argument("--queue-backend", choices=("calendar", "heap"),
                        default=None,
                        help="event-queue backend for the simulated side")
    parser.add_argument("--use-host-preset", action="store_true",
                        help="run with the committed per-host CostModel "
                             "preset applied to the simulated side "
                             "(a calibrated host should then reconcile "
                             "at a ratio near 1)")
    parser.add_argument("--scenario", default=None, metavar="SPEC",
                        help="reconcile a *faulted* point: run the chaos "
                             "scenario (a sim-compatible builtin like "
                             "crash-restart, a file, or inline text) on "
                             "both backends next to a clean twin and "
                             "gate on the degradation gap")
    parser.add_argument("--max-degradation-gap", type=float, default=2.0,
                        metavar="RATIO",
                        help="with --scenario: fail unless the live/sim "
                             "degradation-ratio gap lies within "
                             "[1/RATIO, RATIO] (default 2.0)")
    parser.add_argument("--sweep", action="store_true",
                        help="reconcile the default (n, rate, payload) "
                             "grid instead of a single point")
    parser.add_argument("--apply-presets", default=None, metavar="FILE",
                        nargs="?", const="",
                        help="fold the sweep's combined cost scale into "
                             "the per-host preset file (default: the "
                             "committed benchmarks/CALIBRATION_presets"
                             ".json); implies --sweep")
    parser.add_argument("--json", action="store_true",
                        help="print the full report as JSON")
    parser.add_argument("--output", default=None, metavar="FILE",
                        help="also write the report JSON to FILE "
                             "(CI artifact path)")
    args = parser.parse_args(argv)

    from repro.analysis.calibration import (
        DEFAULT_COSTS,
        DEFAULT_PRESETS_PATH,
        compare_live_sim,
        host_cost_preset,
        save_host_preset,
        sweep_live_sim,
    )

    if args.queue_backend:
        from repro.sim.events import set_default_backend

        set_default_backend(args.queue_backend)

    costs = DEFAULT_COSTS
    if args.use_host_preset:
        costs = host_cost_preset(args.protocol)
        if costs is DEFAULT_COSTS:
            print("note: no committed preset for this host/protocol; "
                  "running with default costs")

    if args.scenario is not None:
        if args.sweep or args.apply_presets is not None:
            parser.error("--scenario cannot be combined with --sweep/"
                         "--apply-presets (the degradation gate is a "
                         "single-point comparison)")
        from repro.analysis.calibration import compare_faulted_live_sim
        from repro.errors import ConfigError
        from repro.net.chaos import load_scenario

        try:
            scenario = load_scenario(args.scenario)
        except ConfigError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        report = compare_faulted_live_sim(
            protocol=args.protocol, scenario=scenario, n=args.replicas,
            total_rate=args.rate, payload_size=args.payload,
            duration=args.duration, bundle_size=args.bundle_size,
            datablock_size=args.datablock_size, seed=args.seed,
            warmup=args.warmup, costs=costs,
            max_degradation_gap=args.max_degradation_gap)
        if args.json:
            print(json.dumps(report, indent=2, sort_keys=True))
        else:
            print(_render_faulted_calibration(report))
        _write_report(report, args.output)
        if args.min_committed is not None:
            for label, point in (("clean", report["clean"]),
                                 ("faulted", report["faulted"])):
                for backend in ("live", "sim"):
                    sub = point[backend]
                    committed = sub["executed_requests"].get(
                        sub["measure_replica"], 0)
                    if committed < args.min_committed:
                        print(f"FAIL: {backend} backend committed "
                              f"{committed} < required "
                              f"{args.min_committed} ({label} point)",
                              file=sys.stderr)
                        return 1
        deg = report["degradation"]
        if not deg["within_bound"]:
            print(f"FAIL: live/sim degradation gap "
                  f"{deg['gap_ratio_live_over_sim']:.3g} outside "
                  f"[{1.0 / args.max_degradation_gap:.3g}, "
                  f"{args.max_degradation_gap:.3g}]", file=sys.stderr)
            return 1
        print(f"faulted calibration OK: degradation gap "
              f"{deg['gap_ratio_live_over_sim']:.3g} within "
              f"{args.max_degradation_gap:.3g}x")
        return 0

    if args.sweep or args.apply_presets is not None:
        from repro.analysis.calibration import DEFAULT_SWEEP_GRID

        # The point flags join the default grid rather than being
        # silently ignored, so `--sweep --rate 4000` really sweeps the
        # rate the user asked about.
        grid = tuple(dict.fromkeys(
            DEFAULT_SWEEP_GRID
            + ((args.replicas, args.rate, args.payload),)))
        report = sweep_live_sim(
            protocol=args.protocol, grid=grid, duration=args.duration,
            bundle_size=args.bundle_size,
            datablock_size=args.datablock_size, seed=args.seed,
            warmup=args.warmup, costs=costs)
        if args.json:
            print(json.dumps(report, indent=2, sort_keys=True))
        else:
            for point in report["points"]:
                print(_render_calibration(point))
            combined = report["combined_cost_scale"]
            print(f"combined cost scale over {len(report['points'])} "
                  f"points: "
                  f"{combined:.3g}" if combined is not None else
                  "combined cost scale: n/a")
        _write_report(report, args.output)
        if args.min_committed is not None:
            for point in report["points"]:
                for backend in ("live", "sim"):
                    sub = point[backend]
                    committed = sub["executed_requests"].get(
                        sub["measure_replica"], 0)
                    if committed < args.min_committed:
                        print(f"FAIL: {backend} backend committed "
                              f"{committed} < required "
                              f"{args.min_committed} at n={point['n']}",
                              file=sys.stderr)
                        return 1
            print(f"calibration sweep OK: every backend of every point "
                  f"committed >= {args.min_committed}")
        # Presets only persist after the commit gate: a run the gate
        # rejects must not re-baseline the committed file.
        if args.apply_presets is not None:
            if report["combined_cost_scale"] is None:
                print("FAIL: sweep produced no usable cost scale; "
                      "presets not updated", file=sys.stderr)
                return 1
            path = args.apply_presets or DEFAULT_PRESETS_PATH
            save_host_preset(report, path)
            print(f"updated per-host cost presets in {path}")
        return 0

    report = compare_live_sim(
        protocol=args.protocol, n=args.replicas, total_rate=args.rate,
        payload_size=args.payload, duration=args.duration,
        bundle_size=args.bundle_size,
        datablock_size=args.datablock_size, seed=args.seed,
        warmup=args.warmup, costs=costs)

    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        print(_render_calibration(report))
    _write_report(report, args.output)

    if args.min_committed is not None:
        for backend in ("live", "sim"):
            sub = report[backend]
            committed = sub["executed_requests"].get(
                sub["measure_replica"], 0)
            if committed < args.min_committed:
                print(f"FAIL: {backend} backend committed {committed} "
                      f"< required {args.min_committed}", file=sys.stderr)
                return 1
        print(f"calibration smoke OK: both backends committed "
              f">= {args.min_committed}")
    return 0


def _traced_sim_run(args, tracer, scenario) -> dict:
    """One simulated run with lifecycle tracing, in the live topology.

    Mirrors the sim side of :func:`repro.analysis.calibration.
    compare_live_sim`: the same live smoke config and client topology,
    so a sim trace and a live trace of the same point line up
    phase-for-phase.
    """
    from repro.harness.cluster import (
        build_hotstuff_cluster,
        build_leopard_cluster,
        build_pbft_cluster,
    )
    from repro.net.protocols import default_live_config_for

    config = default_live_config_for(
        args.protocol, args.replicas, payload_size=args.payload,
        datablock_size=args.datablock_size)
    if args.protocol == "leopard":
        cluster = build_leopard_cluster(
            args.replicas, seed=args.seed, config=config,
            total_rate=args.rate, clients_per_replica=1,
            bundle_size=args.bundle_size, warmup=0.0, prime=False)
    elif args.protocol == "pbft":
        cluster = build_pbft_cluster(
            args.replicas, seed=args.seed, config=config,
            total_rate=args.rate, client_count=1,
            bundle_size=args.bundle_size, warmup=0.0)
    else:
        cluster = build_hotstuff_cluster(
            args.replicas, seed=args.seed, config=config,
            total_rate=args.rate, client_count=1,
            bundle_size=args.bundle_size, warmup=0.0)
    cluster.install_tracer(tracer)
    run_seconds = args.duration
    if scenario is not None:
        from repro.net.chaos import schedule_scenario_sim

        run_seconds = max(run_seconds, scenario.duration() + 0.5)
        cluster.scenario_name = scenario.name
        schedule_scenario_sim(cluster, scenario)
    cluster.run(run_seconds)
    return cluster.report()


def trace_command(argv: list[str]) -> int:
    """The ``trace`` subcommand: record and render request lifecycles."""
    from repro.net.protocols import LIVE_PROTOCOLS

    parser = argparse.ArgumentParser(
        prog="repro-experiments trace",
        description="Run one traced deployment (simulated or live, "
                    "in-process or one OS process per replica), "
                    "reconstruct per-request lifecycles — submit, "
                    "batch, proposal, commit, ack — and render them as "
                    "a text timeline and/or a Chrome trace_event JSON "
                    "for chrome://tracing / Perfetto.")
    parser.add_argument("--backend", choices=("sim", "live"),
                        default="sim",
                        help="execution backend to trace (default sim)")
    parser.add_argument("--processes", action="store_true",
                        help="live backend only: one OS process per "
                             "replica; per-child ring traces are merged "
                             "onto the parent's measurement clock")
    parser.add_argument("--protocol", choices=LIVE_PROTOCOLS,
                        default="leopard")
    parser.add_argument("--replicas", type=int, default=4,
                        help="replica count n (default 4)")
    parser.add_argument("--clients", type=int, default=1,
                        help="live-backend client count (default 1)")
    parser.add_argument("--duration", type=float, default=2.0,
                        help="seconds to serve/simulate (default 2)")
    parser.add_argument("--rate", type=float, default=2000.0,
                        help="offered load, requests/second total")
    parser.add_argument("--bundle-size", type=int, default=100)
    parser.add_argument("--payload", type=int, default=128)
    parser.add_argument("--datablock-size", type=int, default=100)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--capacity", type=int, default=65536,
                        help="ring-buffer capacity in events")
    parser.add_argument("--trace-sample", type=int, default=1,
                        metavar="K",
                        help="record only every K-th request lifecycle "
                             "(bundle id divisible by K); aggregate "
                             "events are always kept (default 1: "
                             "record everything)")
    parser.add_argument("--limit", type=int, default=10,
                        help="request rows in the text timeline")
    parser.add_argument("--scenario", default=None, metavar="SPEC",
                        help="chaos scenario to run during the traced "
                             "run (annotations land in the timeline)")
    parser.add_argument("--chrome", default=None, metavar="FILE",
                        help="export a validated Chrome trace_event "
                             "JSON document to FILE")
    parser.add_argument("--json", action="store_true",
                        help="print lifecycles + phase summary as JSON "
                             "instead of the text timeline")
    parser.add_argument("--output", default=None, metavar="FILE",
                        help="also write the full run report (including "
                             "the raw trace) to FILE")
    parser.add_argument("--require-request", action="store_true",
                        help="exit non-zero unless at least one request "
                             "has a complete committed lifecycle "
                             "(smoke gating)")
    args = parser.parse_args(argv)
    if args.processes and args.backend != "live":
        parser.error("--processes requires --backend live")

    scenario = None
    if args.scenario is not None:
        from repro.errors import ConfigError
        from repro.net.chaos import load_scenario

        try:
            scenario = load_scenario(args.scenario)
        except ConfigError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2

    from repro.obs import (
        RingTracer,
        build_lifecycles,
        chrome_trace,
        render_timeline,
        summarize_lifecycles,
        validate_chrome_trace,
    )

    try:
        tracer = RingTracer(capacity=args.capacity,
                            sample=args.trace_sample)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.backend == "sim":
        report = _traced_sim_run(args, tracer, scenario)
    elif args.processes:
        from repro.harness.procs import run_live_processes

        report = run_live_processes(
            n=args.replicas, client_count=args.clients,
            duration=args.duration, protocol=args.protocol,
            total_rate=args.rate, bundle_size=args.bundle_size,
            payload_size=args.payload,
            datablock_size=args.datablock_size, seed=args.seed,
            scenario=scenario, tracer=tracer)
    else:
        from repro.net.live import run_live_sync
        from repro.net.protocols import default_live_config_for

        config = default_live_config_for(
            args.protocol, args.replicas, payload_size=args.payload,
            datablock_size=args.datablock_size)
        report = run_live_sync(
            n=args.replicas, client_count=args.clients,
            duration=args.duration, protocol=args.protocol,
            config=config, total_rate=args.rate,
            bundle_size=args.bundle_size, seed=args.seed,
            scenario=scenario, tracer=tracer)

    trace = report.get("trace") or tracer.to_jsonable()
    annotations = (report.get("timeseries") or {}).get("annotations", [])
    lifecycles = build_lifecycles(trace["events"],
                                  measure_replica=report["measure_replica"])
    complete = sum(1 for lc in lifecycles if lc["complete"])

    if args.json:
        print(json.dumps({
            "backend": report["backend"],
            "protocol": report["protocol"],
            "n": report["n"],
            "deployment": report.get("deployment"),
            "events_recorded": len(trace["events"]),
            "events_dropped": trace.get("dropped", 0),
            "lifecycles": lifecycles,
            "phase_summary": summarize_lifecycles(lifecycles),
            "annotations": annotations,
        }, indent=2, sort_keys=True))
    else:
        mode = (report.get("deployment") or {}).get("mode", "in-process")
        print(f"traced {report['backend']} run: n={report['n']} "
              f"{report['protocol']} [{mode}], "
              f"{len(trace['events'])} events recorded "
              f"({trace.get('dropped', 0)} dropped)")
        print(render_timeline(lifecycles, annotations, limit=args.limit))
    _write_report(report, args.output)

    if args.chrome:
        doc = chrome_trace(lifecycles, annotations)
        spans = validate_chrome_trace(doc)
        with open(args.chrome, "w") as handle:
            json.dump(doc, handle, indent=2, sort_keys=True)
        print(f"chrome trace written to {args.chrome} "
              f"({spans} spans; load in chrome://tracing or Perfetto)")

    if args.require_request and complete == 0:
        print("FAIL: no request completed a traced lifecycle "
              "(submit through commit)", file=sys.stderr)
        return 1
    if args.require_request:
        print(f"trace smoke OK: {complete} committed lifecycles traced")
    return 0


def _expt_run(argv: list[str]) -> int:
    """``expt run``: execute a declarative trial matrix, locally parallel."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments expt run",
        description="Expand a YAML/JSON experiment config into concrete "
                    "trials and execute them in parallel, one "
                    "standard_report per trial.  Re-invocations resume: "
                    "trials whose result file exists and validates are "
                    "skipped; raising trials retry with the same seed.")
    parser.add_argument("--config", required=True, metavar="FILE",
                        help="experiment config (.yaml/.yml/.json)")
    parser.add_argument("--results-dir", default=None, metavar="DIR",
                        help="per-trial result files land here (default "
                             "artifacts/expt/<name>/results)")
    parser.add_argument("--store", default=None, metavar="FILE",
                        help="also append the trial results to this "
                             "longitudinal JSONL store")
    parser.add_argument("--jobs", type=int, default=None,
                        help="parallel worker processes (default: "
                             "min(trials, cpu count); 0 = inline serial)")
    parser.add_argument("--retries", type=int, default=2,
                        help="retries per raising trial, same seed "
                             "(default 2)")
    parser.add_argument("--no-resume", action="store_true",
                        help="re-run every trial even when a valid "
                             "result file exists")
    parser.add_argument("--json", action="store_true",
                        help="print the run summary as JSON")
    args = parser.parse_args(argv)

    from repro.errors import ConfigError
    from repro.expt import load_config, run_experiment
    from repro.expt.store import ResultsStore

    try:
        config = load_config(args.config)
    except ConfigError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    results_dir = args.results_dir or f"artifacts/expt/{config.name}/results"
    print(f"experiment {config.name}: {len(config.trials)} trials "
          f"-> {results_dir}")
    summary = run_experiment(
        config, results_dir, jobs=args.jobs, retries=args.retries,
        resume=not args.no_resume, progress=print)
    if args.store:
        appended = ResultsStore(args.store).ingest_results_dir(results_dir)
        summary["store"] = args.store
        summary["store_rows_appended"] = appended
        print(f"store: appended {appended} trial rows to {args.store}")
    if args.json:
        print(json.dumps(summary, indent=2, sort_keys=True))
    else:
        print(f"executed {len(summary['executed'])}, "
              f"resumed past {len(summary['skipped'])}, "
              f"failed {len(summary['failed'])} "
              f"({summary['elapsed_s']:.1f}s)")
    if summary["failed"]:
        for trial_id, error in summary["failed"].items():
            print(f"FAIL: {trial_id}: {error}", file=sys.stderr)
        return 1
    return 0


def _expt_report(argv: list[str]) -> int:
    """``expt report``: render a store as markdown/HTML."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments expt report",
        description="Render cross-protocol comparison tables (bootstrap "
                    "confidence intervals, speedups and rank tests vs a "
                    "named baseline) and throughput-vs-n curves from a "
                    "longitudinal results store.")
    parser.add_argument("--store", required=True, metavar="FILE",
                        help="the JSONL results store")
    parser.add_argument("--baseline", default="pbft",
                        choices=("leopard", "pbft", "hotstuff"),
                        help="baseline protocol for speedups/rank tests "
                             "(default pbft, the paper's BFT-SMaRt "
                             "stand-in)")
    parser.add_argument("--markdown", default=None, metavar="FILE",
                        help="write the markdown report here "
                             "(default: print to stdout)")
    parser.add_argument("--html", default=None, metavar="FILE",
                        help="also write a standalone HTML report "
                             "(tables + inline SVG scaling curves)")
    args = parser.parse_args(argv)

    from repro.expt.report import render_html, render_markdown
    from repro.expt.store import ResultsStore

    store = ResultsStore(args.store)
    if not store.path.exists():
        print(f"error: no store at {args.store}", file=sys.stderr)
        return 2
    markdown = render_markdown(store, baseline=args.baseline)
    if args.markdown:
        with open(args.markdown, "w", encoding="utf-8") as handle:
            handle.write(markdown + "\n")
        print(f"markdown report written to {args.markdown}")
    else:
        print(markdown)
    if args.html:
        with open(args.html, "w", encoding="utf-8") as handle:
            handle.write(render_html(store, baseline=args.baseline) + "\n")
        print(f"html report written to {args.html}")
    return 0


def _expt_ingest(argv: list[str]) -> int:
    """``expt ingest``: fold artifacts into a store."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments expt ingest",
        description="Append artifacts to a longitudinal store: trial "
                    "result files, repro.perf benchmark reports "
                    "(BENCH_micro_coding.json / BENCH_sim_eventloop"
                    ".json), or CALIBRATION_presets.json.  Ingestion "
                    "is lossless (bench rows keep the original row "
                    "verbatim, host fingerprints are preserved) and "
                    "idempotent unless --run-label marks a fresh "
                    "longitudinal observation.")
    parser.add_argument("--store", required=True, metavar="FILE")
    parser.add_argument("--run-label", default=None, metavar="LABEL",
                        help="key suffix distinguishing this ingestion "
                             "from earlier ones of the same artifact "
                             "(CI passes the workflow run id)")
    parser.add_argument("paths", nargs="+", metavar="PATH",
                        help="artifact files, or directories of trial "
                             "result files")
    args = parser.parse_args(argv)

    import os

    from repro.expt.store import ResultsStore

    store = ResultsStore(args.store)
    total = 0
    for path in args.paths:
        if os.path.isdir(path):
            appended = store.ingest_results_dir(path)
        else:
            try:
                appended = store.ingest_artifact(
                    path, run_label=args.run_label)
            except (ValueError, OSError) as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 2
        print(f"{path}: appended {appended} rows")
        total += appended
    print(f"store {args.store}: {total} rows appended")
    return 0


def expt_command(argv: list[str]) -> int:
    """The ``expt`` subcommand family: run / report / ingest."""
    if argv and argv[0] == "run":
        return _expt_run(argv[1:])
    if argv and argv[0] == "report":
        return _expt_report(argv[1:])
    if argv and argv[0] == "ingest":
        return _expt_ingest(argv[1:])
    print("usage: expt {run,report,ingest} ...\n"
          "  run     execute a declarative trial matrix (parallel, "
          "resumable)\n"
          "  report  render markdown/HTML tables + curves from a store\n"
          "  ingest  fold BENCH_*/CALIBRATION_*/trial artifacts into a "
          "store", file=sys.stderr)
    return 2


def main(argv: list[str] | None = None) -> int:
    """Run the requested experiments (or the live cluster) and report."""
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    if argv and argv[0] == "run-live":
        return run_live_command(argv[1:])
    if argv and argv[0] == "calibrate":
        return calibrate_command(argv[1:])
    if argv and argv[0] == "trace":
        return trace_command(argv[1:])
    if argv and argv[0] == "expt":
        return expt_command(argv[1:])

    from repro.harness.experiments import ALL_EXPERIMENTS, full_scale

    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the Leopard paper's tables and figures, "
                    "boot a live cluster with 'run-live', reconcile "
                    "the backends with 'calibrate', or record request "
                    "lifecycles with 'trace'.")
    parser.add_argument(
        "experiments", nargs="*",
        help="experiment ids (e.g. fig9 table3), 'all', 'run-live', "
             "'calibrate', 'trace', or 'expt'")
    parser.add_argument(
        "--list", action="store_true", help="list experiment ids and exit")
    parser.add_argument(
        "--queue-backend", choices=("calendar", "heap"), default=None,
        help="discrete-event scheduler backend for every simulated "
             "cluster (default: calendar; 'heap' replays grids on the "
             "measured reference engine)")
    parser.add_argument(
        "--waves", action="store_true",
        help="enable the calendar backend's wave-aggregation tier for "
             "every simulated cluster (byte-identical reports, far "
             "fewer processed events on saturated broadcast grids; "
             "requires the calendar backend)")
    args = parser.parse_args(argv)

    if args.queue_backend:
        from repro.sim.events import set_default_backend

        set_default_backend(args.queue_backend)
    if args.waves:
        if args.queue_backend == "heap":
            print("error: --waves requires the calendar queue backend",
                  file=sys.stderr)
            return 2
        from repro.sim.events import set_default_waves

        set_default_waves(True)

    if args.list or not args.experiments:
        print("available experiments:")
        for name in ALL_EXPERIMENTS:
            print(f"  {name}")
        print("\nlive cluster: run-live --protocol "
              "{leopard,pbft,hotstuff} [--processes] --replicas N "
              "--clients C --duration S (see run-live --help)")
        print("live-vs-sim reconciliation: calibrate --protocol P "
              "--duration S (see calibrate --help)")
        print("request-lifecycle tracing: trace --backend {sim,live} "
              "[--processes] [--chrome FILE] (see trace --help)")
        print("experiment service: expt run --config FILE | expt report "
              "--store FILE | expt ingest (see expt --help)")
        print(f"paper-scale grids: {'ON' if full_scale() else 'off'} "
              f"(set REPRO_FULL=1 to enable)")
        return 0

    selected = (list(ALL_EXPERIMENTS) if args.experiments == ["all"]
                else args.experiments)
    unknown = [name for name in selected if name not in ALL_EXPERIMENTS]
    if unknown:
        print(f"unknown experiments: {', '.join(unknown)}",
              file=sys.stderr)
        return 2
    for name in selected:
        started = time.time()
        result = ALL_EXPERIMENTS[name]()
        print(result.render())
        print(f"  [{name} took {time.time() - started:.1f}s]\n")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
