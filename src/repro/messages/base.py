"""Wire-size model shared by all protocol messages.

Sizes follow the parameters the paper fixes for its evaluation (§V-B,
footnote 7): β = 32-byte hashes (SHA-256), κ = 48-byte threshold-BLS
signatures/shares, 128-byte request payloads by default.  Every message adds
a fixed :data:`HEADER_SIZE` envelope (type tag, sender, view/sequence
framing), mirroring what a compact binary codec would emit.
"""

from __future__ import annotations

from repro.crypto.hashing import DIGEST_SIZE
from repro.crypto.keys import PLAIN_SIGNATURE_SIZE
from repro.crypto.threshold import SIGNATURE_SIZE

#: Fixed per-message envelope: type tag, sender id, instance framing.
HEADER_SIZE = 32

#: β in the paper's cost model.
HASH_SIZE = DIGEST_SIZE

#: κ in the paper's cost model.
VOTE_SIZE = SIGNATURE_SIZE

#: Size of an ordinary (non-threshold) signature.
SIG_SIZE = PLAIN_SIGNATURE_SIZE

#: Default request payload size used throughout the evaluation (bytes).
DEFAULT_PAYLOAD = 128
