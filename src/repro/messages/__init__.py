"""Wire messages for Leopard, HotStuff, PBFT and clients."""

from repro.messages.base import (
    DEFAULT_PAYLOAD,
    HASH_SIZE,
    HEADER_SIZE,
    SIG_SIZE,
    VOTE_SIZE,
)
from repro.messages.client import Ack, RequestBundle

__all__ = [
    "Ack",
    "DEFAULT_PAYLOAD",
    "HASH_SIZE",
    "HEADER_SIZE",
    "RequestBundle",
    "SIG_SIZE",
    "VOTE_SIZE",
]
