"""Messages for the chained-HotStuff baseline (paper §II, [30]).

Faithful to the cost profile of ``libhotstuff`` (the implementation the
paper compares against): the leader batches *full request payloads* into
each block — the O(n) leader dissemination cost of the paper's Eq. (1) —
votes are ordinary signatures sent to the leader, and a quorum certificate
is a vector of 2f+1 signatures carried in the next block (pipelining: one
vote round per block amortized).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.crypto.hashing import digest
from repro.messages.base import HASH_SIZE, HEADER_SIZE, SIG_SIZE
from repro.messages.leopard import BundleSpan


@dataclass(frozen=True, slots=True)
class QuorumCert:
    """A QC over one block: 2f+1 ordinary signatures (vector, not threshold)."""

    block_digest: bytes
    height: int
    signer_count: int

    def size_bytes(self) -> int:
        return HASH_SIZE + 8 + SIG_SIZE * self.signer_count


@dataclass(frozen=True, slots=True)
class HSBlock:
    """A chained-HotStuff block: payloads + parent link + embedded QC.

    Attributes:
        height: position in the chain (one block per height; stable leader).
        parent_digest: hash link to the parent block.
        justify: QC for the parent (None only for the genesis child).
        request_count: number of requests batched in.
        payload_size: bytes per request.
        spans: client provenance for acknowledgements (same device as
            Leopard's datablocks; see DESIGN.md §5).
        proposed_at: instrumentation timestamp (excluded from digest).
    """

    height: int
    parent_digest: bytes
    justify: QuorumCert | None
    request_count: int
    payload_size: int
    spans: tuple[BundleSpan, ...] = ()
    proposed_at: float = 0.0
    _digest_cache: bytes | None = field(
        default=None, init=False, repr=False, compare=False)

    msg_class = "block"

    def canonical_bytes(self) -> bytes:
        justify_digest = (self.justify.block_digest
                          if self.justify is not None else b"")
        return b"".join([
            b"hsblock",
            self.height.to_bytes(8, "big"),
            self.parent_digest,
            justify_digest,
            self.request_count.to_bytes(4, "big"),
            self.payload_size.to_bytes(4, "big"),
        ])

    def digest(self) -> bytes:
        """SHA-256 identity of this block (memoized — the instance is
        frozen, so every chain/vote/execute lookup reuses one hash)."""
        cached = self._digest_cache
        if cached is None:
            cached = digest(self.canonical_bytes())
            object.__setattr__(self, "_digest_cache", cached)
        return cached

    def size_bytes(self) -> int:
        justify_size = (self.justify.size_bytes()
                        if self.justify is not None else 0)
        return (HEADER_SIZE + 8 + HASH_SIZE + justify_size
                + BundleSpan.WIRE_SIZE * len(self.spans)
                + self.request_count * self.payload_size)


@dataclass(frozen=True, slots=True)
class HSVote:
    """One replica's signature on a block, sent to the leader."""

    height: int
    block_digest: bytes
    voter: int

    msg_class = "vote"

    def size_bytes(self) -> int:
        return HEADER_SIZE + 8 + HASH_SIZE + SIG_SIZE


@dataclass(frozen=True, slots=True)
class HSNewView:
    """Pacemaker view-change message (timeout path; not on the hot path)."""

    view: int
    high_qc: QuorumCert | None

    msg_class = "viewchange"

    def size_bytes(self) -> int:
        qc_size = self.high_qc.size_bytes() if self.high_qc is not None else 0
        return HEADER_SIZE + 8 + qc_size + SIG_SIZE
