"""Messages for the PBFT / BFT-SMaRt baseline (paper Fig. 1, [4], [8]).

The classic three-phase pattern: the leader's pre-prepare carries full
request payloads; prepare and commit votes are *broadcast all-to-all* —
the O(n²) vote traffic that, together with leader dissemination, gives
PBFT its scaling profile in the paper's Fig. 1 and Table I.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.crypto.hashing import digest
from repro.messages.base import HASH_SIZE, HEADER_SIZE, SIG_SIZE
from repro.messages.leopard import BundleSpan


@dataclass(frozen=True, slots=True)
class PrePrepare:
    """⟨PRE-PREPARE, v, sn, batch⟩ with full payloads, leader to all."""

    view: int
    sn: int
    request_count: int
    payload_size: int
    spans: tuple[BundleSpan, ...] = ()
    proposed_at: float = 0.0
    _digest_cache: bytes | None = field(
        default=None, init=False, repr=False, compare=False)

    msg_class = "block"

    def canonical_bytes(self) -> bytes:
        return b"".join([
            b"preprepare",
            self.view.to_bytes(8, "big"),
            self.sn.to_bytes(8, "big"),
            self.request_count.to_bytes(4, "big"),
            self.payload_size.to_bytes(4, "big"),
        ])

    def digest(self) -> bytes:
        """SHA-256 identity of this pre-prepare (memoized — the instance
        is frozen, so every prepare/commit lookup reuses one hash)."""
        cached = self._digest_cache
        if cached is None:
            cached = digest(self.canonical_bytes())
            object.__setattr__(self, "_digest_cache", cached)
        return cached

    def size_bytes(self) -> int:
        return (HEADER_SIZE + 16 + SIG_SIZE
                + BundleSpan.WIRE_SIZE * len(self.spans)
                + self.request_count * self.payload_size)


@dataclass(frozen=True, slots=True)
class Prepare:
    """⟨PREPARE, v, sn, d, i⟩ — broadcast by every replica."""

    view: int
    sn: int
    block_digest: bytes
    voter: int

    msg_class = "vote"

    def size_bytes(self) -> int:
        return HEADER_SIZE + 16 + HASH_SIZE + SIG_SIZE


@dataclass(frozen=True, slots=True)
class Commit:
    """⟨COMMIT, v, sn, d, i⟩ — broadcast by every replica."""

    view: int
    sn: int
    block_digest: bytes
    voter: int

    msg_class = "vote"

    def size_bytes(self) -> int:
        return HEADER_SIZE + 16 + HASH_SIZE + SIG_SIZE
