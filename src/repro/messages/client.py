"""Client-facing traffic: request bundles and acknowledgements.

Client traffic is modelled at *bundle* granularity (DESIGN.md §5): a bundle
stands for ``count`` identically-sized requests submitted together by one
client, carrying a single submission timestamp for latency measurement.  Its
wire size is exactly ``count * payload_size`` plus the envelope, so replica
NICs see the same byte stream as if requests arrived individually.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.messages.base import HEADER_SIZE


@dataclass(frozen=True, slots=True)
class RequestBundle:
    """``count`` pending requests from one client.

    Attributes:
        client_id: node id of the submitting client.
        bundle_id: client-local sequence number.
        count: number of requests in the bundle.
        payload_size: bytes per request (128 in the paper's default setup).
        submitted_at: client clock at submission (latency anchor).
        timeout_flagged: True when this is a re-submission carrying the
            special time-out tag that can trigger a view-change (Appendix A).
    """

    client_id: int
    bundle_id: int
    count: int
    payload_size: int
    submitted_at: float
    timeout_flagged: bool = False

    msg_class = "client"

    def size_bytes(self) -> int:
        """Envelope plus the raw request payloads."""
        return HEADER_SIZE + self.count * self.payload_size


@dataclass(frozen=True, slots=True)
class Ack:
    """Confirmation of one bundle span back to the submitting client.

    Attributes:
        client_id: destination client.
        bundle_id: the bundle (or span of it) being acknowledged.
        count: number of requests acknowledged.
        submitted_at: echoed submission timestamp.
        executed_at: replica clock at execution (for the Table IV
            "response to the client" phase).
    """

    client_id: int
    bundle_id: int
    count: int
    submitted_at: float
    executed_at: float

    msg_class = "ack"

    def size_bytes(self) -> int:
        """Small fixed-size receipt."""
        return HEADER_SIZE + 16
