"""Recovery traffic: state solicitation, snapshots, ledger segments.

A rebooted replica catches up in two phases (``repro.core.recovery``):
it broadcasts a :class:`StateRequest` with an empty range to solicit
:class:`StateSnapshot` replies (each peer's executed tip plus, for
Leopard, its latest threshold-signed ``CheckpointProof`` — the paper's
Algorithm 4 certificate, which is what makes a single honest snapshot
sufficient to anchor safety), then fetches the executed-prefix window as
:class:`LedgerSegment` ranges from individual peers.

All three messages ride the ``recovery`` message class: control-plane
CPU lane in the simulator, ordinary frames on the live transport, and
the usual size-parity invariant (``len(encode(...)) == size_bytes()``)
so simulated recovery costs match the bytes a live catch-up moves.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.messages.base import HASH_SIZE, HEADER_SIZE, VOTE_SIZE
from repro.messages.leopard import CheckpointProof


@dataclass(frozen=True, slots=True)
class SegmentEntry:
    """One executed log position as transferred during catch-up.

    The backend-neutral projection of an executed block: enough to
    extend a recovering replica's ledger prefix (serial number, the
    digest safety compares across replicas, and the request count so
    installed prefixes keep byte-honest execution totals).
    """

    sn: int
    digest: bytes
    request_count: int

    #: Encoded size of one entry: u64 sn + 32-byte digest + u32 count.
    WIRE_SIZE = 44


@dataclass(frozen=True, slots=True)
class StateRequest:
    """Solicit recovery state from a peer.

    An empty range (``start_sn == end_sn == 0``) asks for a
    :class:`StateSnapshot`; a non-empty range asks for the
    :class:`LedgerSegment` covering ``(start_sn, end_sn]``.
    """

    start_sn: int
    end_sn: int

    msg_class = "recovery"

    def size_bytes(self) -> int:
        """Envelope plus the two range bounds."""
        return HEADER_SIZE + 16


@dataclass(frozen=True, slots=True)
class StateSnapshot:
    """A peer's recovery snapshot: executed tip + latest checkpoint.

    Attributes:
        last_executed: the sender's executed-prefix tip.
        state_digest: the sender's current ledger state digest.
        checkpoint: the sender's latest stable ``CheckpointProof``
            (Leopard only; ``None`` for the baselines, which anchor on
            f+1 matching segment copies instead).
    """

    last_executed: int
    state_digest: bytes
    checkpoint: CheckpointProof | None = None

    msg_class = "recovery"

    def size_bytes(self) -> int:
        """Envelope, tip, digest, and the optional certificate."""
        size = HEADER_SIZE + 8 + HASH_SIZE + 1
        if self.checkpoint is not None:
            size += 8 + HASH_SIZE + VOTE_SIZE
        return size


@dataclass(frozen=True, slots=True)
class LedgerSegment:
    """A contiguous run of executed log entries starting above ``start_sn``.

    Peers serve at most their retained window (the serve-from-checkpoint
    cap): a truncated reply still carries whatever suffix of the
    requested range the sender holds.
    """

    start_sn: int
    entries: tuple[SegmentEntry, ...]

    msg_class = "recovery"

    def size_bytes(self) -> int:
        """Envelope plus the packed entries."""
        return HEADER_SIZE + 8 + SegmentEntry.WIRE_SIZE * len(self.entries)
