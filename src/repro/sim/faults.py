"""Backward-compatible re-export of :mod:`repro.faults`.

Fault behaviours started life simulator-only; they now live in the
backend-neutral :mod:`repro.faults` so the live runtime
(:mod:`repro.net`) can host the identical adversary without importing
simulator machinery.  Existing imports through this module keep working
— including identity checks against :data:`~repro.faults.HONEST`, which
is the same object.
"""

from __future__ import annotations

from repro.faults import (
    HONEST,
    Combined,
    Crash,
    DelaySend,
    DropIncoming,
    FaultBehavior,
    Mute,
    SelectiveDisseminator,
    fault_from_spec,
    fault_to_spec,
    partition_behavior,
)

__all__ = [
    "HONEST",
    "Combined",
    "Crash",
    "DelaySend",
    "DropIncoming",
    "FaultBehavior",
    "Mute",
    "SelectiveDisseminator",
    "fault_from_spec",
    "fault_to_spec",
    "partition_behavior",
]
