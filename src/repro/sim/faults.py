"""Composable Byzantine fault behaviours for simulated replicas.

The paper's adversary (§III-A) fully controls up to f replicas.  Rather than
writing bespoke malicious replicas for every experiment, hosts wrap their
protocol core with a :class:`FaultBehavior` that intercepts the sans-io
boundary: outgoing effects can be rewritten/suppressed and incoming messages
dropped.  Behaviours compose, so "selective disseminator that also withholds
votes" is a one-liner in tests.

Provided behaviours cover the attacks the paper analyses:

* :class:`Crash` — fail-stop (used for view-change experiments, §VI-D2).
* :class:`SelectiveDisseminator` — sends its datablocks only to a chosen
  subset including the leader (the liveness attack of §IV-A2).
* :class:`DropIncoming` — pretends not to receive selected message classes
  (e.g. drops honest replicas' datablocks, §V-B case (b)).
* :class:`Mute` — suppresses selected outgoing message classes
  (e.g. vote withholding).
* :class:`DelaySend` — a slow/lagging replica.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.interfaces import Broadcast, Effect, Message, Send


class FaultBehavior:
    """Base behaviour: fully honest (identity pass-through)."""

    def filter_effects(self, effects: list[Effect], now: float
                       ) -> list[Effect]:
        """Rewrite the effects a core emitted before they reach the network."""
        return effects

    def drop_incoming(self, sender: int, msg: Message, now: float) -> bool:
        """Return True to silently discard an incoming message."""
        return False

    @property
    def crashed(self) -> bool:
        """Crashed nodes neither send nor receive anything."""
        return False


HONEST = FaultBehavior()


@dataclass
class Crash(FaultBehavior):
    """Fail-stop at time ``at`` (immediately by default)."""

    at: float = 0.0
    _now: float = field(default=0.0, repr=False)

    def filter_effects(self, effects: list[Effect], now: float
                       ) -> list[Effect]:
        self._now = now
        return [] if now >= self.at else effects

    def drop_incoming(self, sender: int, msg: Message, now: float) -> bool:
        self._now = now
        return now >= self.at

    @property
    def crashed(self) -> bool:
        return self._now >= self.at


@dataclass
class SelectiveDisseminator(FaultBehavior):
    """Multicasts datablocks only to ``targets`` (which includes the leader).

    This is the selective attack of §IV-A2: the faulty replica's datablocks
    reach the leader (so they get linked into BFTblocks) but not enough
    replicas to vote, forcing the retrieval mechanism to engage.
    """

    targets: frozenset[int]
    msg_classes: frozenset[str] = frozenset({"datablock"})

    def filter_effects(self, effects: list[Effect], now: float
                       ) -> list[Effect]:
        rewritten: list[Effect] = []
        for effect in effects:
            if (isinstance(effect, Broadcast)
                    and effect.msg.msg_class in self.msg_classes):
                rewritten.extend(
                    Send(dest, effect.msg) for dest in sorted(self.targets))
            else:
                rewritten.append(effect)
        return rewritten


@dataclass
class DropIncoming(FaultBehavior):
    """Discards incoming messages of the given classes (optionally by sender)."""

    msg_classes: frozenset[str]
    from_senders: frozenset[int] | None = None

    def drop_incoming(self, sender: int, msg: Message, now: float) -> bool:
        if msg.msg_class not in self.msg_classes:
            return False
        return self.from_senders is None or sender in self.from_senders


@dataclass
class Mute(FaultBehavior):
    """Suppresses outgoing messages of the given classes (vote withholding)."""

    msg_classes: frozenset[str]

    def filter_effects(self, effects: list[Effect], now: float
                       ) -> list[Effect]:
        kept: list[Effect] = []
        for effect in effects:
            if isinstance(effect, (Send, Broadcast)) \
                    and effect.msg.msg_class in self.msg_classes:
                continue
            kept.append(effect)
        return kept


@dataclass
class Combined(FaultBehavior):
    """Applies several behaviours in order (effects chain, drops OR)."""

    behaviors: tuple[FaultBehavior, ...]

    def filter_effects(self, effects: list[Effect], now: float
                       ) -> list[Effect]:
        for behavior in self.behaviors:
            effects = behavior.filter_effects(effects, now)
        return effects

    def drop_incoming(self, sender: int, msg: Message, now: float) -> bool:
        return any(b.drop_incoming(sender, msg, now) for b in self.behaviors)

    @property
    def crashed(self) -> bool:
        return any(b.crashed for b in self.behaviors)
