"""Deterministic discrete-event engine with selectable scheduler backends.

Every entry is a ``(time, sequence, callback, arg)`` tuple.  The
``sequence`` tiebreaker makes execution order fully deterministic for equal
timestamps, which in turn makes every experiment in this repository
reproducible bit-for-bit from its seed (DESIGN.md §5).  Two backends
implement the same contract and execute *identical* event sequences (same
callbacks, same timestamps, same tiebreaks — property-tested in
``tests/sim/test_queue_equivalence.py``):

* ``backend="heap"`` — a single binary heap, the measured reference
  engine.  At paper-scale saturation (n = 300) the heap holds ~65k
  pending arrivals, so every push/pop pair pays ``log(65k)`` tuple
  comparisons.
* ``backend="calendar"`` (default) — a two-tier calendar/ladder queue:
  a rotating ring of fixed-width time buckets covers the near horizon
  (``bucket_width`` is sized from the NIC serialization quantum), and
  an overflow heap stages far-future events (timers, view-change
  alarms, pre-GST delays) that migrate into the ring as the horizon
  advances.  Inserts into the ring are O(1) appends; a bucket is
  ordered lazily — one Timsort pass — only when the clock enters it,
  and drains through an index pointer with no heap discipline at all.
  A broadcast's coalesced arrival slab (see
  :meth:`CalendarEventQueue.schedule_fanout`) enters pre-sorted, so its
  lazy sort degenerates to a single verify pass.

Determinism argument for the calendar backend: bucket ``k`` covers the
half-open interval ``[k·w, (k+1)·w)``, so every entry in bucket ``k``
precedes every entry in bucket ``k+1``; within a bucket, entries are
ordered by the same global ``(time, sequence)`` key the heap uses; and
overflow entries migrate into the ring strictly before the cursor reaches
their bucket.  Concatenating per-bucket order over the bucket sequence is
therefore exactly the global ``(time, sequence)`` order.

Three allocation-control mechanisms keep the engine out of the profile at
paper scale (n = 300–1000, where one broadcast is ~n-1 events):

* **Payload-carrying entries**: every entry carries an optional argument
  for its callback (:meth:`EventQueue.schedule_call` and the unchecked
  hot-path :meth:`EventQueue.push`), so hot paths enqueue a *shared*
  bound method plus a small payload instead of binding a fresh closure
  per event.
* **Typed event records** (:class:`EventRecord`): per-transmission state
  lives in one ``__slots__`` record whose bound methods are the queue
  callbacks — a broadcast allocates one record for all n-1 copies.
* **Bulk scheduling** (:meth:`EventQueue.schedule_fanout` /
  :meth:`EventQueue.schedule_many`): a multicast enqueues all its
  arrival events in one call; the calendar backend slices the already
  cumsum-sorted arrival slab into per-bucket segments with zero
  per-event Python work.

On top of the two scalar tiers the calendar backend optionally runs a
**wave tier** (:meth:`CalendarEventQueue.schedule_wave`, opt-in via
``waves=True`` / :func:`set_default_waves`): broadcast fan-outs and
their follow-on delivery chains register as *streams* — pre-sorted
arrival slabs, per-(node, lane) monotone FIFO deques, and single
jittered-unicast entries — merged tournament-style through one head
heap keyed by the same global ``(time, sequence)`` order.  The run
loop drains a maximal run of consecutive wave micro-events (bounded
strictly below every visible scalar candidate and below the first
unloaded ring bucket, re-checked per micro-event) and counts the whole
run as **one** processed event.  Every micro-event still executes at
its exact timestamp with its exact sequence number, so a wave-enabled
run is event-for-event identical to the scalar engine — same RNG draw
order, same stats, byte-identical reports — and only the
queue-internal counters (``processed``, the ``event_queue`` report
section) differ.  See ``README.md`` ("Event engine") for the
eligibility and fallback rules.
"""

from __future__ import annotations

import heapq
from bisect import bisect_left, bisect_right, insort
from collections import deque
from heapq import heappop, heappush, heapreplace
from itertools import repeat
from typing import Callable, Hashable, Iterable, Sequence

import numpy as np

from repro.errors import ConfigError, SimulationError

#: Sentinel marking an entry whose callback takes no argument.
_NO_ARG = object()

#: How far before ``now`` a timestamp may land and still be *clamped* to
#: ``now`` instead of rejected.  Float accumulation along the vectorized
#: egress ramp (``start + per_copy * ramp``) can round an arrival a few
#: ulps below the clock when the first copy's departure is re-derived
#: through a different association order; 1 ns of simulated time is far
#: below every modelled delay (propagation is ~1 ms) yet many orders of
#: magnitude above ulp noise, so clamping inside this band is physically
#: meaningless while anything beyond it is a real scheduling bug.
LATE_TOLERANCE = 1e-9

#: Backend chosen by ``EventQueue()`` when none is requested (see
#: :func:`set_default_backend`).
DEFAULT_BACKEND = "calendar"

#: Whether ``EventQueue()`` enables the wave-aggregation tier when the
#: caller passes ``waves=None`` (see :func:`set_default_waves`).  Off by
#: default: wave runs collapse many micro-events into one *processed*
#: event, so ``events_processed`` is no longer comparable with the
#: scalar engines (everything else in a run report stays byte-identical).
DEFAULT_WAVES = False

#: Runaway guard: a single wave run drains at most this many
#: micro-events before handing control back to the scalar merge loop
#: (the run counter and ``max_events`` stay meaningful for self-feeding
#: streams under ``run_until_idle``).
WAVE_RUN_CAP = 4096

#: Simulated-seconds window a slab-merge round coalesces.  When many
#: concurrent broadcast ramps interleave (saturated all-to-all traffic),
#: per-slab batches degenerate to one element each; a merge round
#: extracts every mergeable slab's prefix up to ``now + WINDOW`` into
#: one combined slab so the drain loop batches across broadcasts.  The
#: window bounds how often an element can be re-merged (a merged slab's
#: remainder may join a later round), keeping merge work O(log) per
#: element; ~16 default buckets ≈ a couple dozen arrivals per ramp.
WAVE_MERGE_WINDOW = 4e-3

_INF = float("inf")

#: ``slab[6]`` marker for a slab produced by :meth:`_merge_slabs`:
#: its ``args`` are already ``(single_callback, arg)`` pairs.
_MERGED = object()

#: Default calendar bucket width in seconds.  Sized around the NIC
#: serialization quantum at paper defaults (one ~256 KB datablock copy
#: serializes in ~340 µs at 6 Gbps effective): a bucket must be narrow
#: enough that a message's *follow-on* events (rx completion + CPU-lane
#: occupancy) land in a later bucket, keeping the running bucket
#: append-only while it drains.
DEFAULT_BUCKET_WIDTH = 2.5e-4

#: Simulated seconds the bucket ring should span when ``bucket_count``
#: is not given: ``count = clamp(HORIZON / width, 256, 65536)``.  Sized
#: to cover the NIC egress backlog a saturating workload builds up (the
#: cumsum ramps push arrivals several simulated seconds ahead), so those
#: arrivals are cheap ring appends rather than overflow-heap round
#: trips.  Anything beyond the ring (protocol timers, view-change
#: alarms, pre-GST adversarial deliveries) stages in the overflow heap
#: and migrates in as the horizon advances.
DEFAULT_HORIZON = 8.0


def set_default_backend(backend: str) -> None:
    """Select the backend ``EventQueue()`` constructs by default.

    The harness CLI's ``--queue-backend`` flag routes here so whole
    experiment grids can be replayed on the reference heap engine.
    """
    global DEFAULT_BACKEND
    if backend not in _BACKENDS:
        raise ConfigError(
            f"unknown event-queue backend {backend!r}; "
            f"choose from {sorted(_BACKENDS)}")
    DEFAULT_BACKEND = backend


def set_default_waves(enabled: bool) -> None:
    """Select whether ``EventQueue(waves=None)`` enables the wave tier.

    The harness CLI's ``--waves`` flag routes here so whole experiment
    grids can run wave-aggregated without threading a parameter through
    every builder.  Only the calendar backend honours it; the heap
    reference engine ignores the default (and rejects an explicit
    ``waves=True``).
    """
    global DEFAULT_WAVES
    DEFAULT_WAVES = bool(enabled)


class EventRecord:
    """Base class for typed, allocation-light event payloads.

    Subclasses declare ``__slots__`` for their state; their bound methods
    (or the instance itself, via ``__call__``) go into the queue where a
    closure would otherwise be allocated.  The queue never compares
    callbacks (the sequence number always breaks timestamp ties first),
    so records need no ordering methods.
    """

    __slots__ = ()


class EventQueue:
    """A minimal, fast discrete-event scheduler (backend factory).

    ``EventQueue(backend="heap")`` returns the binary-heap reference
    engine, ``EventQueue(backend="calendar")`` the two-tier calendar
    queue; with no backend argument the process-wide default applies
    (:func:`set_default_backend`).  Both expose one API, so hosts and
    the network model stay backend-agnostic.
    """

    #: Name reported by :meth:`occupancy` (overridden per backend).
    backend = "abstract"

    #: Whether the wave-aggregation tier is active.  Class attribute so
    #: scalar backends answer ``False`` with no per-instance state; the
    #: calendar backend shadows it with an instance flag.
    wave_enabled = False

    __slots__ = ("_sequence", "_now", "_processed", "_late_clamped",
                 "_max_pending")

    def __new__(cls, backend: str | None = None, **kwargs):
        if cls is EventQueue:
            name = DEFAULT_BACKEND if backend is None else backend
            try:
                cls = _BACKENDS[name]
            except KeyError:
                raise ConfigError(
                    f"unknown event-queue backend {name!r}; "
                    f"choose from {sorted(_BACKENDS)}") from None
        return object.__new__(cls)

    def __init__(self, backend: str | None = None, **kwargs) -> None:
        self._sequence = 0
        self._now = 0.0
        self._processed = 0
        self._late_clamped = 0
        self._max_pending = 0

    # -- shared surface -------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def processed(self) -> int:
        """Number of events executed so far."""
        return self._processed

    @property
    def late_clamped(self) -> int:
        """Events whose timestamp was clamped up to ``now`` (ulp noise)."""
        return self._late_clamped

    def schedule_in(self, delay: float, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` to run ``delay`` seconds from now."""
        self.schedule(self._now + delay, callback)

    def schedule(self, when: float, callback: Callable[[], None]) -> None:
        """Schedule zero-argument ``callback`` at absolute time ``when``.

        Raises:
            SimulationError: if ``when`` is in the past by more than
                :data:`LATE_TOLERANCE` (timestamps inside the tolerance
                band are clamped to ``now`` and counted).
        """
        self.push(when, callback, _NO_ARG)

    def schedule_call(self, when: float, callback: Callable,
                      arg: object) -> None:
        """Schedule ``callback(arg)`` at absolute time ``when``.

        The allocation-light sibling of :meth:`schedule`: the payload
        rides in the queue entry itself, so hot paths pass a shared bound
        method plus an argument instead of binding a closure per event.

        Raises:
            SimulationError: as :meth:`schedule`.
        """
        self.push(when, callback, arg)

    def _late(self, when: float) -> float:
        """Clamp a barely-late timestamp to ``now``, or reject it."""
        now = self._now
        if now - when <= LATE_TOLERANCE:
            self._late_clamped += 1
            return now
        raise SimulationError(
            f"cannot schedule event at {when} before now={now}")

    def set_waves(self, enabled: bool) -> None:
        """Enable or disable the wave-aggregation tier.

        The scalar backends have no wave tier: disabling is a no-op,
        enabling raises.
        """
        if enabled:
            raise ConfigError(
                f"wave aggregation requires the calendar backend "
                f"(this queue is {self.backend!r})")

    def occupancy(self) -> dict:
        """Queue-occupancy counters for the run report (sampled).

        ``max_pending`` is a high-water mark sampled at bulk-insert and
        run boundaries, not per push.  Calendar-specific counters are
        ``None``/0 on the heap backend so both emit identical keys.
        """
        return {
            "backend": self.backend,
            "pending": self.pending,
            "max_pending": self._max_pending,
            "late_clamped": self._late_clamped,
            "bucket_width": None,
            "bucket_count": None,
            "bucket_loads": 0,
            "bucket_events": 0,
            "fanout_slabs": 0,
            "active_slabs": 0,
            "slab_pending": 0,
            "overflow_migrated": 0,
            "waves": self.wave_enabled,
            "wave_events": 0,
            "wave_receivers": 0,
            "wave_slabs": 0,
            "wave_merges": 0,
            "wave_pending": 0,
            "scalar_fallbacks": 0,
        }


class HeapEventQueue(EventQueue):
    """The binary-heap reference backend (one global heap)."""

    backend = "heap"

    __slots__ = ("_heap",)

    def __init__(self, backend: str | None = None,
                 bucket_width: float | None = None,
                 bucket_count: int | None = None,
                 waves: bool | None = None) -> None:
        # Calendar sizing hints are accepted (and ignored) so callers can
        # thread one parameter set through either backend.  An *explicit*
        # waves=True is a configuration error (the process default is
        # ignored: the reference engine must stay runnable while waves
        # are the default elsewhere).
        super().__init__()
        if waves:
            raise ConfigError(
                "wave aggregation requires the calendar backend")
        self._heap: list[tuple[float, int, Callable, object]] = []

    @property
    def pending(self) -> int:
        """Number of events not yet executed."""
        return len(self._heap)

    def push(self, when: float, callback: Callable, arg: object) -> None:
        """Unchecked-fast-path insert shared by all scalar scheduling."""
        if when < self._now:
            when = self._late(when)
        sequence = self._sequence + 1
        self._sequence = sequence
        heappush(self._heap, (when, sequence, callback, arg))

    def _bulk_insert(self, batch: list[tuple[float, int, Callable, object]]
                     ) -> None:
        heap = self._heap
        # heapify is O(len(heap) + m); m pushes are O(m log len(heap)).
        if len(batch) > 8 and len(batch) * 10 >= len(heap):
            heap.extend(batch)
            heapq.heapify(heap)
        else:
            # Drive the push loop from C (map over the C heappush).
            deque(map(heapq.heappush, repeat(heap), batch), maxlen=0)
        if len(heap) > self._max_pending:
            self._max_pending = len(heap)

    def schedule_many(
            self,
            events: Iterable[tuple[float, Callable[[], None]]]) -> int:
        """Schedule a batch of ``(when, callback)`` events in one call.

        Sequence numbers are assigned in iteration order, so equal
        timestamps within a batch execute in the order given — identical
        to a loop of :meth:`schedule` calls.  Large batches (relative to
        the pending heap) are appended and re-heapified in one pass.

        Returns:
            Number of events scheduled.

        Raises:
            SimulationError: if any ``when`` is in the past beyond the
                clamp tolerance (no events from the batch are scheduled).
        """
        now = self._now
        sequence = self._sequence
        clamped = 0
        batch: list[tuple[float, int, Callable, object]] = []
        for when, callback in events:
            if when < now:
                if now - when > LATE_TOLERANCE:
                    raise SimulationError(
                        f"cannot schedule event at {when} before now={now}")
                when = now
                clamped += 1
            sequence += 1
            batch.append((when, sequence, callback, _NO_ARG))
        self._sequence = sequence
        self._late_clamped += clamped
        self._bulk_insert(batch)
        return len(batch)

    def schedule_fanout(self, times: Sequence[float], callback: Callable,
                        args: Sequence) -> int:
        """Schedule ``callback(args[i])`` at ``times[i]`` for every ``i``.

        The broadcast fast path: one shared callback (typically a bound
        method of an :class:`EventRecord`), one batch of timestamps, one
        batch of per-event payloads — zero per-event closures, one bulk
        heap insert.  Sequence order follows index order, so equal
        timestamps fire in fan-out order.

        Raises:
            SimulationError: if any time is in the past beyond the clamp
                tolerance (nothing is scheduled).
        """
        count = len(times)
        if count == 0:
            return 0
        if isinstance(times, np.ndarray):
            times = times.tolist()
        now = self._now
        low = min(times)
        if low < now:
            if now - low > LATE_TOLERANCE:
                raise SimulationError(
                    f"cannot schedule event at {low} before now={now}")
            self._late_clamped += sum(1 for t in times if t < now)
            times = [t if t >= now else now for t in times]
        sequence = self._sequence
        # zip builds the heap entries entirely in C.
        batch = list(zip(times, range(sequence + 1, sequence + 1 + count),
                         repeat(callback), args))
        self._sequence = sequence + count
        self._bulk_insert(batch)
        return count

    def run_until(self, deadline: float, max_events: int | None = None
                  ) -> int:
        """Run events with timestamps ``<= deadline``.

        Args:
            deadline: simulated time to stop at (the clock is advanced to
                ``deadline`` even if the queue drains earlier).
            max_events: optional hard cap on events executed, as a runaway
                guard for property tests.

        Returns:
            Number of events executed during this call.
        """
        executed = 0
        heap = self._heap
        pop = heapq.heappop
        no_arg = _NO_ARG
        if len(heap) > self._max_pending:
            self._max_pending = len(heap)
        while heap and heap[0][0] <= deadline:
            if max_events is not None and executed >= max_events:
                break
            when, _, callback, arg = pop(heap)
            self._now = when
            self._processed += 1
            executed += 1
            if arg is no_arg:
                callback()
            else:
                callback(arg)
        if not heap or heap[0][0] > deadline:
            self._now = max(self._now, deadline)
        return executed

    def run_until_idle(self, max_events: int = 10_000_000) -> int:
        """Run until the queue drains (bounded by ``max_events``)."""
        executed = 0
        heap = self._heap
        pop = heapq.heappop
        no_arg = _NO_ARG
        if len(heap) > self._max_pending:
            self._max_pending = len(heap)
        while heap and executed < max_events:
            when, _, callback, arg = pop(heap)
            self._now = when
            self._processed += 1
            executed += 1
            if arg is no_arg:
                callback()
            else:
                callback(arg)
        return executed


class CalendarEventQueue(EventQueue):
    """Two-tier calendar/ladder backend: bucket ring + overflow heap.

    Structure (see the module docstring for the determinism argument):

    * ``_buckets`` — ring of ``bucket_count`` append-only lists; the
      absolute bucket of a timestamp is ``int(t / width)``, mapping to
      slot ``b % bucket_count``.  The ring covers absolute buckets
      ``(_cur_abs, _horizon_abs)``; scalar inserts are plain appends
      with **no ordering discipline at insert time**.
    * ``_current`` — the bucket the cursor is in, as an *ascending*
      ``(time, seq)`` list drained by an index pointer (``_cur_pos``) —
      O(1) per event, no heap sift, no element shifting.  The list is
      Timsort-ed once when the clock enters the bucket; since appends
      arrive in near-time-order (and coalesced broadcast slabs arrive
      fully sorted), that sort mostly degenerates to a single verify
      pass.  The rare insert *into* the already-running bucket (a CPU
      lane completing within the same bucket) is a C-level
      ``bisect.insort`` bounded below by the drain pointer.
    * ``_overflow`` — heap of events at or beyond the horizon (protocol
      timers, view-change alarms, pre-GST deliveries).  Whenever the
      cursor advances the horizon follows, and ripe overflow entries
      migrate into the ring — always strictly before the clock can
      reach their bucket.
    * ``_waves`` — the opt-in wave tier (``waves=True``): a head heap of
      ``(time, seq, kind, stream...)`` entries merging broadcast-arrival
      slabs (kind 0, drained as batch segments), per-(node, lane)
      monotone FIFO deques (kind 1, delivery continuations) and single
      jittered-unicast entries (kind 2).  A maximal drained run counts
      as one processed event; see :meth:`_drain_waves` for the
      exactness bound.
    """

    backend = "calendar"

    __slots__ = ("_width", "_inv_width", "_count", "_buckets",
                 "_ring_count", "_cur_abs", "_horizon_abs", "_current",
                 "_cur_pos", "_overflow", "_slabs", "_slab_pending",
                 "_bucket_loads", "_bucket_events", "_fanout_slabs",
                 "_overflow_migrated", "_epoch", "wave_enabled", "_waves",
                 "_wave_streams", "_wave_pending", "_wave_events",
                 "_wave_receivers", "_wave_slabs", "_wave_merges",
                 "_merge_at", "_scalar_fallbacks")

    def __init__(self, backend: str | None = None,
                 bucket_width: float | None = None,
                 bucket_count: int | None = None,
                 waves: bool | None = None) -> None:
        super().__init__()
        width = DEFAULT_BUCKET_WIDTH if bucket_width is None \
            else float(bucket_width)
        if width <= 0:
            raise ConfigError("bucket_width must be positive")
        if bucket_count is None:
            # Cover DEFAULT_HORIZON of simulated time, within bounds that
            # keep both the ring scan and its memory footprint trivial.
            count = int(round(DEFAULT_HORIZON / width))
            count = min(65536, max(256, count))
        else:
            count = int(bucket_count)
            if count < 2:
                raise ConfigError("bucket_count must be at least 2")
        self._width = width
        self._inv_width = 1.0 / width
        self._count = count
        self._buckets: list[list] = [[] for _ in range(count)]
        self._ring_count = 0
        self._cur_abs = 0
        self._horizon_abs = count
        #: Ascending entries of the bucket being drained; entries before
        #: ``_cur_pos`` have executed.
        self._current: list = []
        self._cur_pos = 0
        self._overflow: list = []
        #: Heap of ``(next_time, next_seq, slab)`` for live broadcast
        #: slabs; a slab is ``[index, times, seqs, callback, args, base]``
        #: (``seqs is None`` when sequence numbers are ``base + index``).
        self._slabs: list = []
        self._slab_pending = 0
        self._bucket_loads = 0
        self._bucket_events = 0
        self._fanout_slabs = 0
        self._overflow_migrated = 0
        #: Scalar-insert epoch: bumped by every insert into a scalar
        #: tier (``push``/``_place``/``schedule_fanout``) so the wave
        #: drain loop can cache its scalar time bound between
        #: micro-events and only recompute after a real mutation.
        self._epoch = 0
        self.wave_enabled = DEFAULT_WAVES if waves is None else bool(waves)
        #: Head heap of the wave tier: ``(time, seq, 0, slab)`` for
        #: broadcast slabs, ``(time, seq, 1, deque)`` for per-(node,
        #: lane) FIFO streams, ``(time, seq, 2, callback, arg)`` for
        #: single entries.  Sequence numbers are globally unique, so the
        #: heap never compares past index 1.
        self._waves: list = []
        self._wave_streams: dict[Hashable, deque] = {}
        self._wave_pending = 0
        self._wave_events = 0
        self._wave_receivers = 0
        self._wave_slabs = 0
        self._wave_merges = 0
        self._merge_at = -_INF
        self._scalar_fallbacks = 0

    def set_waves(self, enabled: bool) -> None:
        """Enable or disable the wave-aggregation tier (idempotent)."""
        self.wave_enabled = bool(enabled)

    @property
    def pending(self) -> int:
        """Number of events not yet executed.

        Wave-tier entries are included, so occupancy samples (e.g. the
        time-series ``queue_depth``) are identical with waves on or off.
        """
        return (len(self._current) - self._cur_pos + self._ring_count
                + len(self._overflow) + self._slab_pending
                + self._wave_pending)

    def occupancy(self) -> dict:
        report = super().occupancy()
        report.update(
            bucket_width=self._width,
            bucket_count=self._count,
            bucket_loads=self._bucket_loads,
            bucket_events=self._bucket_events,
            fanout_slabs=self._fanout_slabs,
            active_slabs=len(self._slabs),
            slab_pending=self._slab_pending,
            overflow_migrated=self._overflow_migrated,
            waves=self.wave_enabled,
            wave_events=self._wave_events,
            wave_receivers=self._wave_receivers,
            wave_slabs=self._wave_slabs,
            wave_merges=self._wave_merges,
            wave_pending=self._wave_pending,
            scalar_fallbacks=self._scalar_fallbacks,
        )
        return report

    # -- inserts --------------------------------------------------------

    def _place(self, entry: tuple) -> None:
        """Route one validated entry to the tier its bucket falls in."""
        self._epoch += 1
        b = int(entry[0] * self._inv_width)
        if b > self._cur_abs:
            if b < self._horizon_abs:
                self._buckets[b % self._count].append(entry)
                self._ring_count += 1
            else:
                heappush(self._overflow, entry)
        else:
            # The cursor's own bucket (or, after the cursor fast-forwards
            # past empty buckets, anything up to it): splice into the
            # not-yet-drained suffix so ordering never depends on the
            # bucket map.
            insort(self._current, entry, self._cur_pos)

    def push(self, when: float, callback: Callable, arg: object) -> None:
        """Unchecked-fast-path insert shared by all scalar scheduling.

        The body is :meth:`_place` inlined — this is the hottest call in
        a simulation (one per rx/CPU completion and per timer re-arm),
        and the extra frame costs ~15% of the scheduler budget at
        n = 300 saturation.  Keep the two in sync.
        """
        if when < self._now:
            when = self._late(when)
        sequence = self._sequence + 1
        self._sequence = sequence
        self._epoch += 1
        entry = (when, sequence, callback, arg)
        b = int(when * self._inv_width)
        if b > self._cur_abs:
            if b < self._horizon_abs:
                self._buckets[b % self._count].append(entry)
                self._ring_count += 1
            else:
                heappush(self._overflow, entry)
        else:
            insort(self._current, entry, self._cur_pos)

    def schedule_many(
            self,
            events: Iterable[tuple[float, Callable[[], None]]]) -> int:
        """Schedule a batch of ``(when, callback)`` events in one call.

        Semantics match :meth:`HeapEventQueue.schedule_many`: sequence
        numbers follow iteration order and a too-late timestamp rejects
        the whole batch before anything is scheduled.
        """
        now = self._now
        sequence = self._sequence
        clamped = 0
        batch: list[tuple[float, int, Callable, object]] = []
        for when, callback in events:
            if when < now:
                if now - when > LATE_TOLERANCE:
                    raise SimulationError(
                        f"cannot schedule event at {when} before now={now}")
                when = now
                clamped += 1
            sequence += 1
            batch.append((when, sequence, callback, _NO_ARG))
        self._late_clamped += clamped
        self._sequence = sequence  # validated: the batch is committed
        place = self._place
        for entry in batch:
            place(entry)
        pend = self.pending
        if pend > self._max_pending:
            self._max_pending = pend
        return len(batch)

    def schedule_fanout(self, times: Sequence[float], callback: Callable,
                        args: Sequence) -> int:
        """Coalesce a multicast's arrivals into one pre-sorted slab.

        This is the arrival-coalescing fast path: the cumsum egress ramp
        hands the whole arrival vector over as one numpy array, and the
        *entire broadcast* becomes a single slab — ``(times, args)``
        plus a reserved block of sequence numbers — registered in the
        slab tier with one heap push.  No per-arrival entry tuple is
        ever materialised and no per-arrival insert happens at all; the
        run loop merges the slab tier against the bucket tier by the
        same global ``(time, sequence)`` key, so execution order is
        bit-identical to the heap backend's per-entry scheduling.

        Egress ramps usually arrive already sorted; when jitter breaks
        monotonicity a single stable argsort restores it with ties in
        fan-out order (sequence numbers follow the original index, so
        the ``(time, sequence)`` total order is unchanged).
        """
        count = len(times)
        if count == 0:
            return 0
        if count < 4:
            # Tiny fan-outs (retrieval subsets, unit tests): scalar
            # pushes in index order assign the same sequence numbers.
            # Validate first — a too-late timestamp must reject the whole
            # batch with nothing scheduled, as on every fanout path.
            if min(times) < self._now - LATE_TOLERANCE:
                raise SimulationError(
                    f"cannot schedule event at {min(times)} before "
                    f"now={self._now}")
            for when, arg in zip(times, args):
                self.push(float(when), callback, arg)
            return count
        now = self._now
        arr = np.asarray(times, dtype=np.float64)
        low = float(arr.min())
        if low < now:
            if now - low > LATE_TOLERANCE:
                raise SimulationError(
                    f"cannot schedule event at {low} before now={now}")
            late = arr < now
            self._late_clamped += int(late.sum())
            arr = np.where(late, now, arr)
        sequence = self._sequence
        self._sequence = sequence + count
        base = sequence + 1
        if arr[-1] >= arr[0] and not (arr[1:] < arr[:-1]).any():
            slab = [0, arr.tolist(), None, callback, args, base]
            head_seq = base
        else:
            order = np.argsort(arr, kind="stable")
            order_list = order.tolist()
            seqs = (order + base).tolist()
            slab = [0, arr[order].tolist(), seqs, callback,
                    [args[i] for i in order_list], base]
            head_seq = seqs[0]
        heappush(self._slabs, (slab[1][0], head_seq, slab))
        self._epoch += 1
        self._slab_pending += count
        self._fanout_slabs += 1
        pend = self.pending
        if pend > self._max_pending:
            self._max_pending = pend
        return count

    # -- the wave tier --------------------------------------------------

    def schedule_wave(self, times: Sequence[float], batch_callback,
                      args: Sequence, single_callback=None) -> int:
        """Register a broadcast's arrival vector as one wave stream.

        Validation, clamping and sequence-number allocation are
        identical to :meth:`schedule_fanout` (index ``i`` always gets
        the ``i``-th reserved sequence number), so a wave-registered
        broadcast executes the exact event sequence the scalar slab
        tier would.  The difference is the calling convention at drain
        time: ``batch_callback(times, args, start, stop)`` receives a
        contiguous segment of the (sorted) wave, advances the queue
        clock element-by-element itself, and returns how many elements
        it consumed — which lets the whole segment run as part of one
        counted wave event.

        ``single_callback(args[i])`` is the one-element sibling of the
        batch callback; providing it makes the slab *mergeable*: when
        many concurrent waves interleave their arrival ramps (every
        batch degenerates to one element), the drain loop coalesces
        their near-horizon prefixes into one merged slab and dispatches
        per element through this callback (see :meth:`_merge_slabs`).
        It must return the timestamp of the follow-on wave event it
        created, or ``None`` when there is none or it fell back to the
        scalar tier.
        """
        count = len(times)
        if count == 0:
            return 0
        now = self._now
        arr = np.asarray(times, dtype=np.float64)
        low = float(arr.min())
        if low < now:
            if now - low > LATE_TOLERANCE:
                raise SimulationError(
                    f"cannot schedule event at {low} before now={now}")
            late = arr < now
            self._late_clamped += int(late.sum())
            arr = np.where(late, now, arr)
        sequence = self._sequence
        self._sequence = sequence + count
        base = sequence + 1
        if count == 1 or (arr[-1] >= arr[0]
                          and not (arr[1:] < arr[:-1]).any()):
            slab = [0, arr.tolist(), None, batch_callback, args, base,
                    single_callback]
            head_seq = base
        else:
            order = np.argsort(arr, kind="stable")
            order_list = order.tolist()
            seqs = (order + base).tolist()
            slab = [0, arr[order].tolist(), seqs, batch_callback,
                    [args[i] for i in order_list], base, single_callback]
            head_seq = seqs[0]
        heappush(self._waves, (slab[1][0], head_seq, 0, slab))
        self._wave_pending += count
        self._wave_slabs += 1
        pend = self.pending
        if pend > self._max_pending:
            self._max_pending = pend
        return count

    def wave_push(self, when: float, callback: Callable, arg: object,
                  stream: Hashable) -> None:
        """Append one event to a monotone per-stream wave FIFO.

        ``stream`` keys a deque (CPU lanes use ``node_id * 2 + lane``;
        recurring timer ticks use ``("t", node_id, key)``); within a
        stream timestamps must be non-decreasing — true for CPU-lane
        completion times, which are FIFO-monotone per lane, and for a
        timer re-armed from its own fire time.  A non-monotone push
        (e.g. a timer re-armed scalar-side mid-stream)
        routes the already-sequenced entry to the scalar tier instead,
        which preserves exact ordering at the cost of one scalar event.
        Only an empty stream touches the head heap, so the steady-state
        cost is one deque append.
        """
        if when < self._now:
            when = self._late(when)
        sequence = self._sequence + 1
        self._sequence = sequence
        streams = self._wave_streams
        dq = streams.get(stream)
        if dq is None:
            dq = streams[stream] = deque()
        if dq:
            if when < dq[-1][0]:
                self._scalar_fallbacks += 1
                self._place((when, sequence, callback, arg))
                return
            dq.append((when, sequence, callback, arg))
        else:
            dq.append((when, sequence, callback, arg))
            heappush(self._waves, (when, sequence, 1, dq))
        self._wave_pending += 1

    def wave_push_heap(self, when: float, callback: Callable,
                       arg: object) -> None:
        """Register one standalone wave entry (jitter-inverted unicasts).

        Per-sender unicast arrival times are *not* monotone (propagation
        jitter dominates small-message serialization), so quorum-vote
        fan-in rides the head heap directly rather than a FIFO stream.
        """
        if when < self._now:
            when = self._late(when)
        sequence = self._sequence + 1
        self._sequence = sequence
        heappush(self._waves, (when, sequence, 2, callback, arg))
        self._wave_pending += 1

    def _run_merged(self, times: list, args: tuple, start: int,
                    stop: int) -> int:
        """Batch runner for a merged slab: per-element dispatch.

        ``args`` is a ``(callbacks, payloads)`` pair of parallel lists;
        each callback reads its arrival time from the queue clock
        (stepped here) and returns its follow-on wave timestamp, or
        ``None`` when it created none — or fell back to the scalar
        tier, in which case the batch must stop so the drain loop
        re-checks its bounds.  ``min_follow`` mirrors the
        batch-callback contract: a follow-on landing strictly before
        the next element interrupts the batch (a tie goes to the
        element, whose sequence number is older).
        """
        callbacks, payloads = args
        i = start
        min_follow = _INF
        while i < stop:
            t = times[i]
            if min_follow < t:
                break
            self._now = t
            callback = callbacks[i]
            payload = payloads[i]
            i += 1
            follow = callback(payload)
            if follow is None:
                break
            if follow < min_follow:
                min_follow = follow
        return i - start

    def _merge_slabs(self, horizon: float) -> bool:
        """Coalesce every mergeable slab's prefix below ``horizon``.

        Interleave collapse: with hundreds of concurrent broadcasts
        whose egress ramps share one serialization quantum, the global
        arrival order round-robins across slabs and every per-slab
        batch stops after one element at the next slab's head.  This
        round extracts, from each slab that provided a
        ``single_callback``, the elements with ``time < horizon``,
        orders the union by the global ``(time, sequence)`` key (one
        stable lexsort), and registers it as a single merged slab whose
        runner dispatches per element — restoring long contiguous
        batches.  Every extracted element keeps its exact time and
        sequence number, so execution order is unchanged; only the
        number of competing heap heads drops.  Slab remainders re-enter
        the heap at their advanced heads (and may join a later round,
        which the window keeps rare).
        """
        waves = self._waves
        grabbed = []
        keep = []
        for entry in waves:
            if (entry[2] == 0 and entry[0] < horizon
                    and entry[3][6] is not None):
                grabbed.append(entry)
            else:
                keep.append(entry)
        if len(grabbed) < 2:
            return False
        times_parts: list = []
        seqs_parts: list = []
        callbacks: list = []
        payloads: list = []
        for entry in grabbed:
            slab = entry[3]
            times = slab[1]
            index = slab[0]
            j = bisect_left(times, horizon, index)
            seqs = slab[2]
            base = slab[5]
            times_parts.append(times[index:j])
            if seqs is None:
                seqs_parts.append(range(base + index, base + j))
            else:
                seqs_parts.append(seqs[index:j])
            single = slab[6]
            args = slab[4]
            if single is _MERGED:
                callbacks.extend(args[0][index:j])
                payloads.extend(args[1][index:j])
            else:
                callbacks.extend(repeat(single, j - index))
                payloads.extend(args[index:j])
            if j < len(times):
                slab[0] = j
                keep.append((times[j],
                             base + j if seqs is None else seqs[j],
                             0, slab))
        t = np.concatenate(
            [np.asarray(p, dtype=np.float64) for p in times_parts])
        s = np.concatenate(
            [np.fromiter(p, dtype=np.int64, count=len(p))
             for p in seqs_parts])
        order = np.lexsort((s, t))
        order_list = order.tolist()
        merged = [0, t[order].tolist(), s[order].tolist(),
                  self._run_merged,
                  ([callbacks[i] for i in order_list],
                   [payloads[i] for i in order_list]),
                  0, _MERGED]
        keep.append((merged[1][0], merged[2][0], 0, merged))
        waves[:] = keep
        heapq.heapify(waves)
        self._wave_merges += 1
        return True

    def _drain_waves(self, deadline: float) -> int:
        """Drain one maximal run of wave micro-events; return the count.

        Exactness bound: a wave micro-event may execute only while its
        ``(time, seq)`` key is strictly below every *visible* scalar
        candidate — the current bucket's next entry, the scalar slab
        head, the overflow head — and its time is strictly below the
        first unloaded ring bucket ``(cur_abs + 1) * width`` (every
        not-yet-loaded ring entry lands at or past that boundary) and at
        most ``deadline``.  The minimum candidate *time* is cached and
        revalidated against the scalar-insert epoch — callbacks can
        insert scalar work mid-run, and every insert site bumps
        ``_epoch`` — so the common case is one float compare per
        micro-event; a time tie falls into the exact per-candidate
        ``(time, seq)`` checks, where ties always yield to the scalar
        tier (conservative: sequence numbers are unique, so a tie means
        the hidden side could win).  Slab streams drain as contiguous
        batch segments under the same bound via one bisect; the batch
        callback breaks early the moment a follow-on event it created
        would precede the next element.
        """
        waves = self._waves
        micro = 0
        epoch = -1
        bound = _INF
        while waves:
            head = waves[0]
            w_when = head[0]
            if w_when > deadline:
                break
            if epoch != self._epoch:
                # (Re)compute the conservative scalar bound: the minimum
                # candidate time.  Stale-small bounds are safe — they
                # only force the exact slow path below.
                epoch = self._epoch
                bound = _INF
                if self._ring_count:
                    bound = (self._cur_abs + 1) * self._width
                current = self._current
                pos = self._cur_pos
                if pos < len(current):
                    t = current[pos][0]
                    if t < bound:
                        bound = t
                if self._overflow:
                    t = self._overflow[0][0]
                    if t < bound:
                        bound = t
                if self._slabs:
                    t = self._slabs[0][0]
                    if t < bound:
                        bound = t
            if w_when >= bound:
                # Slow path: a time tie (or stale bound) — resolve with
                # the exact (time, seq) comparisons.
                if self._ring_count \
                        and w_when >= (self._cur_abs + 1) * self._width:
                    break
                w_seq = head[1]
                current = self._current
                pos = self._cur_pos
                if pos < len(current):
                    entry = current[pos]
                    if (w_when > entry[0]
                            or (w_when == entry[0] and w_seq > entry[1])):
                        break
                overflow = self._overflow
                if overflow:
                    first = overflow[0]
                    if (w_when > first[0]
                            or (w_when == first[0] and w_seq > first[1])):
                        break
                slabs = self._slabs
                if slabs:
                    shead = slabs[0]
                    if (w_when > shead[0]
                            or (w_when == shead[0] and w_seq > shead[1])):
                        break
            if micro >= WAVE_RUN_CAP:
                break
            kind = head[2]
            if kind == 0:
                # Broadcast slab: hand over the longest contiguous
                # segment that fits under every bound (strict on times;
                # a tie re-enters through the per-entry key checks).
                # The next-best wave key is a child of the heap root, so
                # it can be peeked without popping the head.
                slab = head[3]
                times = slab[1]
                index = slab[0]
                stop_t = bound
                if len(waves) > 1:
                    nxt = waves[1][0]
                    if len(waves) > 2 and waves[2][0] < nxt:
                        nxt = waves[2][0]
                    if nxt < stop_t:
                        stop_t = nxt
                if deadline < stop_t:
                    stop = bisect_right(times, deadline, index)
                else:
                    stop = bisect_left(times, stop_t, index)
                if stop - index <= 1 and w_when >= self._merge_at:
                    # Thrash: another wave head sits within one element.
                    # Try one merge round; suppress re-scans for half a
                    # window either way so a failed attempt stays cheap.
                    self._merge_at = w_when + WAVE_MERGE_WINDOW * 0.5
                    if self._merge_slabs(w_when + WAVE_MERGE_WINDOW):
                        continue
                cap = index + WAVE_RUN_CAP - micro
                if cap < stop:
                    stop = cap
                if stop <= index:
                    # A tie landed exactly on the head (equal time,
                    # smaller head seq): run the head element alone.
                    stop = index + 1
                consumed = slab[3](times, slab[4], index, stop)
                if consumed == 0:
                    # Defensive: a batch callback must consume at least
                    # its head element; bail out rather than spin.
                    break
                micro += consumed
                self._wave_pending -= consumed
                index += consumed
                slab[0] = index
                if index < len(times):
                    seqs = slab[2]
                    heapreplace(
                        waves,
                        (times[index],
                         slab[5] + index if seqs is None else seqs[index],
                         0, slab))
                else:
                    heappop(waves)
            elif kind == 1:
                dq = head[3]
                entry = dq.popleft()
                if dq:
                    nxt = dq[0]
                    heapreplace(waves, (nxt[0], nxt[1], 1, dq))
                else:
                    heappop(waves)
                self._wave_pending -= 1
                micro += 1
                self._now = w_when
                entry[2](entry[3])
            else:
                heappop(waves)
                self._wave_pending -= 1
                micro += 1
                self._now = w_when
                head[3](head[4])
        return micro

    # -- the run loop ---------------------------------------------------

    def _migrate(self) -> None:
        """Move ripe overflow entries into the (just widened) ring."""
        overflow = self._overflow
        inv_width = self._inv_width
        horizon = self._horizon_abs
        place = self._place
        moved = 0
        # Popping in ascending time order keeps per-bucket appends sorted.
        # Entries here satisfy b < horizon by the loop condition, so
        # _place routes them to the ring (or the cursor's own bucket).
        while overflow and overflow[0][0] * inv_width < horizon:
            place(heappop(overflow))
            moved += 1
        self._overflow_migrated += moved

    def _advance(self, deadline: float) -> bool:
        """Step the cursor to the next populated bucket and load it.

        Returns True when ``_current`` holds undrained events again,
        False when nothing pending can execute at or before ``deadline``.
        """
        count = self._count
        buckets = self._buckets
        while True:
            if self._ring_count == 0:
                overflow = self._overflow
                if not overflow:
                    self._current = []
                    self._cur_pos = 0
                    return False
                first = overflow[0][0]
                if first > deadline:
                    self._current = []
                    self._cur_pos = 0
                    return False
                # The ring is empty: fast-forward the window so the first
                # far-future event's bucket sits just inside it, then let
                # migration repopulate the ring.
                b = int(first * self._inv_width)
                if b - 1 > self._cur_abs:
                    self._horizon_abs += b - 1 - self._cur_abs
                    self._cur_abs = b - 1
                self._cur_abs += 1
                self._horizon_abs += 1
                self._migrate()
                slot = self._cur_abs % count
                if not buckets[slot]:
                    # Migration routed the ripe entries into the cursor's
                    # own bucket (b <= cur_abs) rather than a ring slot.
                    if self._cur_pos < len(self._current):
                        return True
                    continue
            else:
                cur = self._cur_abs
                for step in range(1, count + 1):
                    slot = (cur + step) % count
                    if buckets[slot]:
                        break
                self._cur_abs = cur + step
                self._horizon_abs += step
                overflow = self._overflow
                if overflow and (overflow[0][0] * self._inv_width
                                 < self._horizon_abs):
                    self._migrate()
            bucket = buckets[slot]
            buckets[slot] = []
            self._ring_count -= len(bucket)
            self._bucket_loads += 1
            self._bucket_events += len(bucket)
            if self._cur_pos < len(self._current):
                # Rare: migration deposited entries for the cursor's own
                # bucket before the load — merge with the undrained tail.
                merged = self._current[self._cur_pos:]
                merged.extend(bucket)
                merged.sort()
                self._current = merged
            else:
                # Timsort exploits the existing runs: an adopted slab (or
                # appends that arrived in time order) verify in one pass.
                bucket.sort()
                self._current = bucket
            self._cur_pos = 0
            return True

    def run_until(self, deadline: float, max_events: int | None = None
                  ) -> int:
        """Run events with timestamps ``<= deadline`` (heap-identical)."""
        return self._run(deadline, max_events, True)

    def run_until_idle(self, max_events: int = 10_000_000) -> int:
        """Run until the queue drains (bounded by ``max_events``).

        The clock is left at the last executed event, as with the heap
        backend.
        """
        return self._run(float("inf"), max_events, False)

    def _run(self, deadline: float, max_events: int | None,
             advance_clock: bool) -> int:
        """The two-tier merge loop: bucket tier × slab tier.

        Each iteration executes the global ``(time, sequence)`` minimum
        over the scalar tier (the current bucket, the ring, overflow)
        and the slab tier (live broadcast fan-outs).  Popping a slab
        event is an index bump plus one C ``heapreplace`` keyed by the
        slab's next ``(time, seq)``; scalar entries drain through the
        bucket index pointer.
        """
        executed = 0
        no_arg = _NO_ARG
        slabs = self._slabs
        waves = self._waves
        pend = self.pending
        if pend > self._max_pending:
            self._max_pending = pend
        while True:
            if waves and (max_events is None or executed < max_events):
                # Wave tier first: a maximal run of consecutive wave
                # micro-events (strictly below every scalar candidate)
                # counts as ONE processed event.
                micro = self._drain_waves(deadline)
                if micro:
                    self._wave_events += 1
                    self._wave_receivers += micro
                    self._processed += 1
                    executed += 1
                    continue
            current = self._current
            pos = self._cur_pos
            use_slab = False
            if pos < len(current):
                entry = current[pos]
                when = entry[0]
                if slabs:
                    shead = slabs[0]
                    s_when = shead[0]
                    if s_when < when or (s_when == when
                                         and shead[1] < entry[1]):
                        use_slab = True
                        when = s_when
            elif slabs:
                # The current bucket is drained; the next ring bucket
                # could still precede the slab head, so load it first.
                # (_advance returning False leaves the scalar tier empty
                # — both False paths reset ``_current``.)
                if self._advance(deadline):
                    continue
                shead = slabs[0]
                use_slab = True
                when = shead[0]
            else:
                if self._advance(deadline):
                    continue
                if advance_clock and self._now < deadline:
                    self._now = deadline
                return executed
            if when > deadline:
                if advance_clock and self._now < deadline:
                    self._now = deadline
                return executed
            if max_events is not None and executed >= max_events:
                return executed
            self._now = when
            self._processed += 1
            executed += 1
            if use_slab:
                slab = shead[2]
                index = slab[0]
                arg = slab[4][index]
                index += 1
                slab[0] = index
                times = slab[1]
                if index < len(times):
                    seqs = slab[2]
                    heapreplace(
                        slabs,
                        (times[index],
                         slab[5] + index if seqs is None else seqs[index],
                         slab))
                else:
                    heappop(slabs)
                self._slab_pending -= 1
                slab[3](arg)
            else:
                self._cur_pos = pos + 1
                arg = entry[3]
                if arg is no_arg:
                    entry[2]()
                else:
                    entry[2](arg)


_BACKENDS: dict[str, type[EventQueue]] = {
    "heap": HeapEventQueue,
    "calendar": CalendarEventQueue,
}


