"""Deterministic discrete-event engine.

A single binary heap of ``(time, sequence, callback)`` entries.  The
``sequence`` tiebreaker makes execution order fully deterministic for equal
timestamps, which in turn makes every experiment in this repository
reproducible bit-for-bit from its seed (DESIGN.md §5).
"""

from __future__ import annotations

import heapq
from typing import Callable

from repro.errors import SimulationError


class EventQueue:
    """A minimal, fast discrete-event scheduler."""

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, Callable[[], None]]] = []
        self._sequence = 0
        self._now = 0.0
        self._processed = 0

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def pending(self) -> int:
        """Number of events not yet executed."""
        return len(self._heap)

    @property
    def processed(self) -> int:
        """Number of events executed so far."""
        return self._processed

    def schedule(self, when: float, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` to run at absolute time ``when``.

        Raises:
            SimulationError: if ``when`` is in the past.
        """
        if when < self._now:
            raise SimulationError(
                f"cannot schedule event at {when} before now={self._now}")
        self._sequence += 1
        heapq.heappush(self._heap, (when, self._sequence, callback))

    def schedule_in(self, delay: float, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` to run ``delay`` seconds from now."""
        self.schedule(self._now + delay, callback)

    def run_until(self, deadline: float, max_events: int | None = None
                  ) -> int:
        """Run events with timestamps ``<= deadline``.

        Args:
            deadline: simulated time to stop at (the clock is advanced to
                ``deadline`` even if the queue drains earlier).
            max_events: optional hard cap on events executed, as a runaway
                guard for property tests.

        Returns:
            Number of events executed during this call.
        """
        executed = 0
        heap = self._heap
        while heap and heap[0][0] <= deadline:
            if max_events is not None and executed >= max_events:
                break
            when, _, callback = heapq.heappop(heap)
            self._now = when
            self._processed += 1
            executed += 1
            callback()
        if not heap or heap[0][0] > deadline:
            self._now = max(self._now, deadline)
        return executed

    def run_until_idle(self, max_events: int = 10_000_000) -> int:
        """Run until the queue drains (bounded by ``max_events``)."""
        executed = 0
        heap = self._heap
        while heap and executed < max_events:
            when, _, callback = heapq.heappop(heap)
            self._now = when
            self._processed += 1
            executed += 1
            callback()
        return executed
