"""Deterministic discrete-event engine with selectable scheduler backends.

Every entry is a ``(time, sequence, callback, arg)`` tuple.  The
``sequence`` tiebreaker makes execution order fully deterministic for equal
timestamps, which in turn makes every experiment in this repository
reproducible bit-for-bit from its seed (DESIGN.md §5).  Two backends
implement the same contract and execute *identical* event sequences (same
callbacks, same timestamps, same tiebreaks — property-tested in
``tests/sim/test_queue_equivalence.py``):

* ``backend="heap"`` — a single binary heap, the measured reference
  engine.  At paper-scale saturation (n = 300) the heap holds ~65k
  pending arrivals, so every push/pop pair pays ``log(65k)`` tuple
  comparisons.
* ``backend="calendar"`` (default) — a two-tier calendar/ladder queue:
  a rotating ring of fixed-width time buckets covers the near horizon
  (``bucket_width`` is sized from the NIC serialization quantum), and
  an overflow heap stages far-future events (timers, view-change
  alarms, pre-GST delays) that migrate into the ring as the horizon
  advances.  Inserts into the ring are O(1) appends; a bucket is
  ordered lazily — one Timsort pass — only when the clock enters it,
  and drains through an index pointer with no heap discipline at all.
  A broadcast's coalesced arrival slab (see
  :meth:`CalendarEventQueue.schedule_fanout`) enters pre-sorted, so its
  lazy sort degenerates to a single verify pass.

Determinism argument for the calendar backend: bucket ``k`` covers the
half-open interval ``[k·w, (k+1)·w)``, so every entry in bucket ``k``
precedes every entry in bucket ``k+1``; within a bucket, entries are
ordered by the same global ``(time, sequence)`` key the heap uses; and
overflow entries migrate into the ring strictly before the cursor reaches
their bucket.  Concatenating per-bucket order over the bucket sequence is
therefore exactly the global ``(time, sequence)`` order.

Three allocation-control mechanisms keep the engine out of the profile at
paper scale (n = 300–1000, where one broadcast is ~n-1 events):

* **Payload-carrying entries**: every entry carries an optional argument
  for its callback (:meth:`EventQueue.schedule_call` and the unchecked
  hot-path :meth:`EventQueue.push`), so hot paths enqueue a *shared*
  bound method plus a small payload instead of binding a fresh closure
  per event.
* **Typed event records** (:class:`EventRecord`): per-transmission state
  lives in one ``__slots__`` record whose bound methods are the queue
  callbacks — a broadcast allocates one record for all n-1 copies.
* **Bulk scheduling** (:meth:`EventQueue.schedule_fanout` /
  :meth:`EventQueue.schedule_many`): a multicast enqueues all its
  arrival events in one call; the calendar backend slices the already
  cumsum-sorted arrival slab into per-bucket segments with zero
  per-event Python work.
"""

from __future__ import annotations

import heapq
from bisect import insort
from collections import deque
from heapq import heappop, heappush, heapreplace
from itertools import repeat
from typing import Callable, Iterable, Sequence

import numpy as np

from repro.errors import ConfigError, SimulationError

#: Sentinel marking an entry whose callback takes no argument.
_NO_ARG = object()

#: How far before ``now`` a timestamp may land and still be *clamped* to
#: ``now`` instead of rejected.  Float accumulation along the vectorized
#: egress ramp (``start + per_copy * ramp``) can round an arrival a few
#: ulps below the clock when the first copy's departure is re-derived
#: through a different association order; 1 ns of simulated time is far
#: below every modelled delay (propagation is ~1 ms) yet many orders of
#: magnitude above ulp noise, so clamping inside this band is physically
#: meaningless while anything beyond it is a real scheduling bug.
LATE_TOLERANCE = 1e-9

#: Backend chosen by ``EventQueue()`` when none is requested (see
#: :func:`set_default_backend`).
DEFAULT_BACKEND = "calendar"

#: Default calendar bucket width in seconds.  Sized around the NIC
#: serialization quantum at paper defaults (one ~256 KB datablock copy
#: serializes in ~340 µs at 6 Gbps effective): a bucket must be narrow
#: enough that a message's *follow-on* events (rx completion + CPU-lane
#: occupancy) land in a later bucket, keeping the running bucket
#: append-only while it drains.
DEFAULT_BUCKET_WIDTH = 2.5e-4

#: Simulated seconds the bucket ring should span when ``bucket_count``
#: is not given: ``count = clamp(HORIZON / width, 256, 65536)``.  Sized
#: to cover the NIC egress backlog a saturating workload builds up (the
#: cumsum ramps push arrivals several simulated seconds ahead), so those
#: arrivals are cheap ring appends rather than overflow-heap round
#: trips.  Anything beyond the ring (protocol timers, view-change
#: alarms, pre-GST adversarial deliveries) stages in the overflow heap
#: and migrates in as the horizon advances.
DEFAULT_HORIZON = 8.0


def set_default_backend(backend: str) -> None:
    """Select the backend ``EventQueue()`` constructs by default.

    The harness CLI's ``--queue-backend`` flag routes here so whole
    experiment grids can be replayed on the reference heap engine.
    """
    global DEFAULT_BACKEND
    if backend not in _BACKENDS:
        raise ConfigError(
            f"unknown event-queue backend {backend!r}; "
            f"choose from {sorted(_BACKENDS)}")
    DEFAULT_BACKEND = backend


class EventRecord:
    """Base class for typed, allocation-light event payloads.

    Subclasses declare ``__slots__`` for their state; their bound methods
    (or the instance itself, via ``__call__``) go into the queue where a
    closure would otherwise be allocated.  The queue never compares
    callbacks (the sequence number always breaks timestamp ties first),
    so records need no ordering methods.
    """

    __slots__ = ()


class EventQueue:
    """A minimal, fast discrete-event scheduler (backend factory).

    ``EventQueue(backend="heap")`` returns the binary-heap reference
    engine, ``EventQueue(backend="calendar")`` the two-tier calendar
    queue; with no backend argument the process-wide default applies
    (:func:`set_default_backend`).  Both expose one API, so hosts and
    the network model stay backend-agnostic.
    """

    #: Name reported by :meth:`occupancy` (overridden per backend).
    backend = "abstract"

    __slots__ = ("_sequence", "_now", "_processed", "_late_clamped",
                 "_max_pending")

    def __new__(cls, backend: str | None = None, **kwargs):
        if cls is EventQueue:
            name = DEFAULT_BACKEND if backend is None else backend
            try:
                cls = _BACKENDS[name]
            except KeyError:
                raise ConfigError(
                    f"unknown event-queue backend {name!r}; "
                    f"choose from {sorted(_BACKENDS)}") from None
        return object.__new__(cls)

    def __init__(self, backend: str | None = None, **kwargs) -> None:
        self._sequence = 0
        self._now = 0.0
        self._processed = 0
        self._late_clamped = 0
        self._max_pending = 0

    # -- shared surface -------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def processed(self) -> int:
        """Number of events executed so far."""
        return self._processed

    @property
    def late_clamped(self) -> int:
        """Events whose timestamp was clamped up to ``now`` (ulp noise)."""
        return self._late_clamped

    def schedule_in(self, delay: float, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` to run ``delay`` seconds from now."""
        self.schedule(self._now + delay, callback)

    def schedule(self, when: float, callback: Callable[[], None]) -> None:
        """Schedule zero-argument ``callback`` at absolute time ``when``.

        Raises:
            SimulationError: if ``when`` is in the past by more than
                :data:`LATE_TOLERANCE` (timestamps inside the tolerance
                band are clamped to ``now`` and counted).
        """
        self.push(when, callback, _NO_ARG)

    def schedule_call(self, when: float, callback: Callable,
                      arg: object) -> None:
        """Schedule ``callback(arg)`` at absolute time ``when``.

        The allocation-light sibling of :meth:`schedule`: the payload
        rides in the queue entry itself, so hot paths pass a shared bound
        method plus an argument instead of binding a closure per event.

        Raises:
            SimulationError: as :meth:`schedule`.
        """
        self.push(when, callback, arg)

    def _late(self, when: float) -> float:
        """Clamp a barely-late timestamp to ``now``, or reject it."""
        now = self._now
        if now - when <= LATE_TOLERANCE:
            self._late_clamped += 1
            return now
        raise SimulationError(
            f"cannot schedule event at {when} before now={now}")

    def occupancy(self) -> dict:
        """Queue-occupancy counters for the run report (sampled).

        ``max_pending`` is a high-water mark sampled at bulk-insert and
        run boundaries, not per push.  Calendar-specific counters are
        ``None``/0 on the heap backend so both emit identical keys.
        """
        return {
            "backend": self.backend,
            "pending": self.pending,
            "max_pending": self._max_pending,
            "late_clamped": self._late_clamped,
            "bucket_width": None,
            "bucket_count": None,
            "bucket_loads": 0,
            "bucket_events": 0,
            "fanout_slabs": 0,
            "active_slabs": 0,
            "slab_pending": 0,
            "overflow_migrated": 0,
        }


class HeapEventQueue(EventQueue):
    """The binary-heap reference backend (one global heap)."""

    backend = "heap"

    __slots__ = ("_heap",)

    def __init__(self, backend: str | None = None,
                 bucket_width: float | None = None,
                 bucket_count: int | None = None) -> None:
        # Calendar sizing hints are accepted (and ignored) so callers can
        # thread one parameter set through either backend.
        super().__init__()
        self._heap: list[tuple[float, int, Callable, object]] = []

    @property
    def pending(self) -> int:
        """Number of events not yet executed."""
        return len(self._heap)

    def push(self, when: float, callback: Callable, arg: object) -> None:
        """Unchecked-fast-path insert shared by all scalar scheduling."""
        if when < self._now:
            when = self._late(when)
        sequence = self._sequence + 1
        self._sequence = sequence
        heappush(self._heap, (when, sequence, callback, arg))

    def _bulk_insert(self, batch: list[tuple[float, int, Callable, object]]
                     ) -> None:
        heap = self._heap
        # heapify is O(len(heap) + m); m pushes are O(m log len(heap)).
        if len(batch) > 8 and len(batch) * 10 >= len(heap):
            heap.extend(batch)
            heapq.heapify(heap)
        else:
            # Drive the push loop from C (map over the C heappush).
            deque(map(heapq.heappush, repeat(heap), batch), maxlen=0)
        if len(heap) > self._max_pending:
            self._max_pending = len(heap)

    def schedule_many(
            self,
            events: Iterable[tuple[float, Callable[[], None]]]) -> int:
        """Schedule a batch of ``(when, callback)`` events in one call.

        Sequence numbers are assigned in iteration order, so equal
        timestamps within a batch execute in the order given — identical
        to a loop of :meth:`schedule` calls.  Large batches (relative to
        the pending heap) are appended and re-heapified in one pass.

        Returns:
            Number of events scheduled.

        Raises:
            SimulationError: if any ``when`` is in the past beyond the
                clamp tolerance (no events from the batch are scheduled).
        """
        now = self._now
        sequence = self._sequence
        clamped = 0
        batch: list[tuple[float, int, Callable, object]] = []
        for when, callback in events:
            if when < now:
                if now - when > LATE_TOLERANCE:
                    raise SimulationError(
                        f"cannot schedule event at {when} before now={now}")
                when = now
                clamped += 1
            sequence += 1
            batch.append((when, sequence, callback, _NO_ARG))
        self._sequence = sequence
        self._late_clamped += clamped
        self._bulk_insert(batch)
        return len(batch)

    def schedule_fanout(self, times: Sequence[float], callback: Callable,
                        args: Sequence) -> int:
        """Schedule ``callback(args[i])`` at ``times[i]`` for every ``i``.

        The broadcast fast path: one shared callback (typically a bound
        method of an :class:`EventRecord`), one batch of timestamps, one
        batch of per-event payloads — zero per-event closures, one bulk
        heap insert.  Sequence order follows index order, so equal
        timestamps fire in fan-out order.

        Raises:
            SimulationError: if any time is in the past beyond the clamp
                tolerance (nothing is scheduled).
        """
        count = len(times)
        if count == 0:
            return 0
        if isinstance(times, np.ndarray):
            times = times.tolist()
        now = self._now
        low = min(times)
        if low < now:
            if now - low > LATE_TOLERANCE:
                raise SimulationError(
                    f"cannot schedule event at {low} before now={now}")
            self._late_clamped += sum(1 for t in times if t < now)
            times = [t if t >= now else now for t in times]
        sequence = self._sequence
        # zip builds the heap entries entirely in C.
        batch = list(zip(times, range(sequence + 1, sequence + 1 + count),
                         repeat(callback), args))
        self._sequence = sequence + count
        self._bulk_insert(batch)
        return count

    def run_until(self, deadline: float, max_events: int | None = None
                  ) -> int:
        """Run events with timestamps ``<= deadline``.

        Args:
            deadline: simulated time to stop at (the clock is advanced to
                ``deadline`` even if the queue drains earlier).
            max_events: optional hard cap on events executed, as a runaway
                guard for property tests.

        Returns:
            Number of events executed during this call.
        """
        executed = 0
        heap = self._heap
        pop = heapq.heappop
        no_arg = _NO_ARG
        if len(heap) > self._max_pending:
            self._max_pending = len(heap)
        while heap and heap[0][0] <= deadline:
            if max_events is not None and executed >= max_events:
                break
            when, _, callback, arg = pop(heap)
            self._now = when
            self._processed += 1
            executed += 1
            if arg is no_arg:
                callback()
            else:
                callback(arg)
        if not heap or heap[0][0] > deadline:
            self._now = max(self._now, deadline)
        return executed

    def run_until_idle(self, max_events: int = 10_000_000) -> int:
        """Run until the queue drains (bounded by ``max_events``)."""
        executed = 0
        heap = self._heap
        pop = heapq.heappop
        no_arg = _NO_ARG
        if len(heap) > self._max_pending:
            self._max_pending = len(heap)
        while heap and executed < max_events:
            when, _, callback, arg = pop(heap)
            self._now = when
            self._processed += 1
            executed += 1
            if arg is no_arg:
                callback()
            else:
                callback(arg)
        return executed


class CalendarEventQueue(EventQueue):
    """Two-tier calendar/ladder backend: bucket ring + overflow heap.

    Structure (see the module docstring for the determinism argument):

    * ``_buckets`` — ring of ``bucket_count`` append-only lists; the
      absolute bucket of a timestamp is ``int(t / width)``, mapping to
      slot ``b % bucket_count``.  The ring covers absolute buckets
      ``(_cur_abs, _horizon_abs)``; scalar inserts are plain appends
      with **no ordering discipline at insert time**.
    * ``_current`` — the bucket the cursor is in, as an *ascending*
      ``(time, seq)`` list drained by an index pointer (``_cur_pos``) —
      O(1) per event, no heap sift, no element shifting.  The list is
      Timsort-ed once when the clock enters the bucket; since appends
      arrive in near-time-order (and coalesced broadcast slabs arrive
      fully sorted), that sort mostly degenerates to a single verify
      pass.  The rare insert *into* the already-running bucket (a CPU
      lane completing within the same bucket) is a C-level
      ``bisect.insort`` bounded below by the drain pointer.
    * ``_overflow`` — heap of events at or beyond the horizon (protocol
      timers, view-change alarms, pre-GST deliveries).  Whenever the
      cursor advances the horizon follows, and ripe overflow entries
      migrate into the ring — always strictly before the clock can
      reach their bucket.
    """

    backend = "calendar"

    __slots__ = ("_width", "_inv_width", "_count", "_buckets",
                 "_ring_count", "_cur_abs", "_horizon_abs", "_current",
                 "_cur_pos", "_overflow", "_slabs", "_slab_pending",
                 "_bucket_loads", "_bucket_events", "_fanout_slabs",
                 "_overflow_migrated")

    def __init__(self, backend: str | None = None,
                 bucket_width: float | None = None,
                 bucket_count: int | None = None) -> None:
        super().__init__()
        width = DEFAULT_BUCKET_WIDTH if bucket_width is None \
            else float(bucket_width)
        if width <= 0:
            raise ConfigError("bucket_width must be positive")
        if bucket_count is None:
            # Cover DEFAULT_HORIZON of simulated time, within bounds that
            # keep both the ring scan and its memory footprint trivial.
            count = int(round(DEFAULT_HORIZON / width))
            count = min(65536, max(256, count))
        else:
            count = int(bucket_count)
            if count < 2:
                raise ConfigError("bucket_count must be at least 2")
        self._width = width
        self._inv_width = 1.0 / width
        self._count = count
        self._buckets: list[list] = [[] for _ in range(count)]
        self._ring_count = 0
        self._cur_abs = 0
        self._horizon_abs = count
        #: Ascending entries of the bucket being drained; entries before
        #: ``_cur_pos`` have executed.
        self._current: list = []
        self._cur_pos = 0
        self._overflow: list = []
        #: Heap of ``(next_time, next_seq, slab)`` for live broadcast
        #: slabs; a slab is ``[index, times, seqs, callback, args, base]``
        #: (``seqs is None`` when sequence numbers are ``base + index``).
        self._slabs: list = []
        self._slab_pending = 0
        self._bucket_loads = 0
        self._bucket_events = 0
        self._fanout_slabs = 0
        self._overflow_migrated = 0

    @property
    def pending(self) -> int:
        """Number of events not yet executed."""
        return (len(self._current) - self._cur_pos + self._ring_count
                + len(self._overflow) + self._slab_pending)

    def occupancy(self) -> dict:
        report = super().occupancy()
        report.update(
            bucket_width=self._width,
            bucket_count=self._count,
            bucket_loads=self._bucket_loads,
            bucket_events=self._bucket_events,
            fanout_slabs=self._fanout_slabs,
            active_slabs=len(self._slabs),
            slab_pending=self._slab_pending,
            overflow_migrated=self._overflow_migrated,
        )
        return report

    # -- inserts --------------------------------------------------------

    def _place(self, entry: tuple) -> None:
        """Route one validated entry to the tier its bucket falls in."""
        b = int(entry[0] * self._inv_width)
        if b > self._cur_abs:
            if b < self._horizon_abs:
                self._buckets[b % self._count].append(entry)
                self._ring_count += 1
            else:
                heappush(self._overflow, entry)
        else:
            # The cursor's own bucket (or, after the cursor fast-forwards
            # past empty buckets, anything up to it): splice into the
            # not-yet-drained suffix so ordering never depends on the
            # bucket map.
            insort(self._current, entry, self._cur_pos)

    def push(self, when: float, callback: Callable, arg: object) -> None:
        """Unchecked-fast-path insert shared by all scalar scheduling.

        The body is :meth:`_place` inlined — this is the hottest call in
        a simulation (one per rx/CPU completion and per timer re-arm),
        and the extra frame costs ~15% of the scheduler budget at
        n = 300 saturation.  Keep the two in sync.
        """
        if when < self._now:
            when = self._late(when)
        sequence = self._sequence + 1
        self._sequence = sequence
        entry = (when, sequence, callback, arg)
        b = int(when * self._inv_width)
        if b > self._cur_abs:
            if b < self._horizon_abs:
                self._buckets[b % self._count].append(entry)
                self._ring_count += 1
            else:
                heappush(self._overflow, entry)
        else:
            insort(self._current, entry, self._cur_pos)

    def schedule_many(
            self,
            events: Iterable[tuple[float, Callable[[], None]]]) -> int:
        """Schedule a batch of ``(when, callback)`` events in one call.

        Semantics match :meth:`HeapEventQueue.schedule_many`: sequence
        numbers follow iteration order and a too-late timestamp rejects
        the whole batch before anything is scheduled.
        """
        now = self._now
        sequence = self._sequence
        clamped = 0
        batch: list[tuple[float, int, Callable, object]] = []
        for when, callback in events:
            if when < now:
                if now - when > LATE_TOLERANCE:
                    raise SimulationError(
                        f"cannot schedule event at {when} before now={now}")
                when = now
                clamped += 1
            sequence += 1
            batch.append((when, sequence, callback, _NO_ARG))
        self._late_clamped += clamped
        self._sequence = sequence  # validated: the batch is committed
        place = self._place
        for entry in batch:
            place(entry)
        pend = self.pending
        if pend > self._max_pending:
            self._max_pending = pend
        return len(batch)

    def schedule_fanout(self, times: Sequence[float], callback: Callable,
                        args: Sequence) -> int:
        """Coalesce a multicast's arrivals into one pre-sorted slab.

        This is the arrival-coalescing fast path: the cumsum egress ramp
        hands the whole arrival vector over as one numpy array, and the
        *entire broadcast* becomes a single slab — ``(times, args)``
        plus a reserved block of sequence numbers — registered in the
        slab tier with one heap push.  No per-arrival entry tuple is
        ever materialised and no per-arrival insert happens at all; the
        run loop merges the slab tier against the bucket tier by the
        same global ``(time, sequence)`` key, so execution order is
        bit-identical to the heap backend's per-entry scheduling.

        Egress ramps usually arrive already sorted; when jitter breaks
        monotonicity a single stable argsort restores it with ties in
        fan-out order (sequence numbers follow the original index, so
        the ``(time, sequence)`` total order is unchanged).
        """
        count = len(times)
        if count == 0:
            return 0
        if count < 4:
            # Tiny fan-outs (retrieval subsets, unit tests): scalar
            # pushes in index order assign the same sequence numbers.
            # Validate first — a too-late timestamp must reject the whole
            # batch with nothing scheduled, as on every fanout path.
            if min(times) < self._now - LATE_TOLERANCE:
                raise SimulationError(
                    f"cannot schedule event at {min(times)} before "
                    f"now={self._now}")
            for when, arg in zip(times, args):
                self.push(float(when), callback, arg)
            return count
        now = self._now
        arr = np.asarray(times, dtype=np.float64)
        low = float(arr.min())
        if low < now:
            if now - low > LATE_TOLERANCE:
                raise SimulationError(
                    f"cannot schedule event at {low} before now={now}")
            late = arr < now
            self._late_clamped += int(late.sum())
            arr = np.where(late, now, arr)
        sequence = self._sequence
        self._sequence = sequence + count
        base = sequence + 1
        if arr[-1] >= arr[0] and not (arr[1:] < arr[:-1]).any():
            slab = [0, arr.tolist(), None, callback, args, base]
            head_seq = base
        else:
            order = np.argsort(arr, kind="stable")
            order_list = order.tolist()
            seqs = (order + base).tolist()
            slab = [0, arr[order].tolist(), seqs, callback,
                    [args[i] for i in order_list], base]
            head_seq = seqs[0]
        heappush(self._slabs, (slab[1][0], head_seq, slab))
        self._slab_pending += count
        self._fanout_slabs += 1
        pend = self.pending
        if pend > self._max_pending:
            self._max_pending = pend
        return count

    # -- the run loop ---------------------------------------------------

    def _migrate(self) -> None:
        """Move ripe overflow entries into the (just widened) ring."""
        overflow = self._overflow
        inv_width = self._inv_width
        horizon = self._horizon_abs
        place = self._place
        moved = 0
        # Popping in ascending time order keeps per-bucket appends sorted.
        # Entries here satisfy b < horizon by the loop condition, so
        # _place routes them to the ring (or the cursor's own bucket).
        while overflow and overflow[0][0] * inv_width < horizon:
            place(heappop(overflow))
            moved += 1
        self._overflow_migrated += moved

    def _advance(self, deadline: float) -> bool:
        """Step the cursor to the next populated bucket and load it.

        Returns True when ``_current`` holds undrained events again,
        False when nothing pending can execute at or before ``deadline``.
        """
        count = self._count
        buckets = self._buckets
        while True:
            if self._ring_count == 0:
                overflow = self._overflow
                if not overflow:
                    self._current = []
                    self._cur_pos = 0
                    return False
                first = overflow[0][0]
                if first > deadline:
                    self._current = []
                    self._cur_pos = 0
                    return False
                # The ring is empty: fast-forward the window so the first
                # far-future event's bucket sits just inside it, then let
                # migration repopulate the ring.
                b = int(first * self._inv_width)
                if b - 1 > self._cur_abs:
                    self._horizon_abs += b - 1 - self._cur_abs
                    self._cur_abs = b - 1
                self._cur_abs += 1
                self._horizon_abs += 1
                self._migrate()
                slot = self._cur_abs % count
                if not buckets[slot]:
                    # Migration routed the ripe entries into the cursor's
                    # own bucket (b <= cur_abs) rather than a ring slot.
                    if self._cur_pos < len(self._current):
                        return True
                    continue
            else:
                cur = self._cur_abs
                for step in range(1, count + 1):
                    slot = (cur + step) % count
                    if buckets[slot]:
                        break
                self._cur_abs = cur + step
                self._horizon_abs += step
                overflow = self._overflow
                if overflow and (overflow[0][0] * self._inv_width
                                 < self._horizon_abs):
                    self._migrate()
            bucket = buckets[slot]
            buckets[slot] = []
            self._ring_count -= len(bucket)
            self._bucket_loads += 1
            self._bucket_events += len(bucket)
            if self._cur_pos < len(self._current):
                # Rare: migration deposited entries for the cursor's own
                # bucket before the load — merge with the undrained tail.
                merged = self._current[self._cur_pos:]
                merged.extend(bucket)
                merged.sort()
                self._current = merged
            else:
                # Timsort exploits the existing runs: an adopted slab (or
                # appends that arrived in time order) verify in one pass.
                bucket.sort()
                self._current = bucket
            self._cur_pos = 0
            return True

    def run_until(self, deadline: float, max_events: int | None = None
                  ) -> int:
        """Run events with timestamps ``<= deadline`` (heap-identical)."""
        return self._run(deadline, max_events, True)

    def run_until_idle(self, max_events: int = 10_000_000) -> int:
        """Run until the queue drains (bounded by ``max_events``).

        The clock is left at the last executed event, as with the heap
        backend.
        """
        return self._run(float("inf"), max_events, False)

    def _run(self, deadline: float, max_events: int | None,
             advance_clock: bool) -> int:
        """The two-tier merge loop: bucket tier × slab tier.

        Each iteration executes the global ``(time, sequence)`` minimum
        over the scalar tier (the current bucket, the ring, overflow)
        and the slab tier (live broadcast fan-outs).  Popping a slab
        event is an index bump plus one C ``heapreplace`` keyed by the
        slab's next ``(time, seq)``; scalar entries drain through the
        bucket index pointer.
        """
        executed = 0
        no_arg = _NO_ARG
        slabs = self._slabs
        pend = self.pending
        if pend > self._max_pending:
            self._max_pending = pend
        while True:
            current = self._current
            pos = self._cur_pos
            use_slab = False
            if pos < len(current):
                entry = current[pos]
                when = entry[0]
                if slabs:
                    shead = slabs[0]
                    s_when = shead[0]
                    if s_when < when or (s_when == when
                                         and shead[1] < entry[1]):
                        use_slab = True
                        when = s_when
            elif slabs:
                # The current bucket is drained; the next ring bucket
                # could still precede the slab head, so load it first.
                # (_advance returning False leaves the scalar tier empty
                # — both False paths reset ``_current``.)
                if self._advance(deadline):
                    continue
                shead = slabs[0]
                use_slab = True
                when = shead[0]
            else:
                if self._advance(deadline):
                    continue
                if advance_clock and self._now < deadline:
                    self._now = deadline
                return executed
            if when > deadline:
                if advance_clock and self._now < deadline:
                    self._now = deadline
                return executed
            if max_events is not None and executed >= max_events:
                return executed
            self._now = when
            self._processed += 1
            executed += 1
            if use_slab:
                slab = shead[2]
                index = slab[0]
                arg = slab[4][index]
                index += 1
                slab[0] = index
                times = slab[1]
                if index < len(times):
                    seqs = slab[2]
                    heapreplace(
                        slabs,
                        (times[index],
                         slab[5] + index if seqs is None else seqs[index],
                         slab))
                else:
                    heappop(slabs)
                self._slab_pending -= 1
                slab[3](arg)
            else:
                self._cur_pos = pos + 1
                arg = entry[3]
                if arg is no_arg:
                    entry[2]()
                else:
                    entry[2](arg)


_BACKENDS: dict[str, type[EventQueue]] = {
    "heap": HeapEventQueue,
    "calendar": CalendarEventQueue,
}


