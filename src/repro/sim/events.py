"""Deterministic discrete-event engine.

A single binary heap of ``(time, sequence, callback, arg)`` entries.  The
``sequence`` tiebreaker makes execution order fully deterministic for equal
timestamps, which in turn makes every experiment in this repository
reproducible bit-for-bit from its seed (DESIGN.md §5).

Three allocation-control mechanisms keep the engine out of the profile at
paper scale (n = 300–600, where one broadcast is ~600 events):

* **Payload-carrying entries**: every heap entry carries an optional
  argument for its callback (:meth:`EventQueue.schedule_call`), so hot
  paths enqueue a *shared* bound method plus a small payload (a
  destination id, a ``(sender, msg)`` pair) instead of binding a fresh
  closure per event.
* **Typed event records** (:class:`EventRecord`): per-transmission state
  lives in one ``__slots__`` record whose bound methods are the heap
  callbacks — a broadcast allocates one record for all n-1 copies, not
  two closures per copy.
* **Bulk scheduling** (:meth:`EventQueue.schedule_fanout` /
  :meth:`EventQueue.schedule_many`): a multicast enqueues all its
  arrival events in one call; large batches are appended and
  re-heapified in one C-level pass instead of n-1 ``heappush`` rounds.
"""

from __future__ import annotations

import heapq
from collections import deque
from itertools import repeat
from typing import Callable, Iterable, Sequence

from repro.errors import SimulationError

#: Sentinel marking an entry whose callback takes no argument.
_NO_ARG = object()


class EventRecord:
    """Base class for typed, allocation-light event payloads.

    Subclasses declare ``__slots__`` for their state; their bound methods
    (or the instance itself, via ``__call__``) go into the heap where a
    closure would otherwise be allocated.  The heap never compares
    callbacks (the sequence number always breaks timestamp ties first),
    so records need no ordering methods.
    """

    __slots__ = ()


class EventQueue:
    """A minimal, fast discrete-event scheduler."""

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, Callable, object]] = []
        self._sequence = 0
        self._now = 0.0
        self._processed = 0

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def pending(self) -> int:
        """Number of events not yet executed."""
        return len(self._heap)

    @property
    def processed(self) -> int:
        """Number of events executed so far."""
        return self._processed

    def schedule(self, when: float, callback: Callable[[], None]) -> None:
        """Schedule zero-argument ``callback`` at absolute time ``when``.

        Raises:
            SimulationError: if ``when`` is in the past.
        """
        if when < self._now:
            raise SimulationError(
                f"cannot schedule event at {when} before now={self._now}")
        self._sequence += 1
        heapq.heappush(self._heap, (when, self._sequence, callback, _NO_ARG))

    def schedule_in(self, delay: float, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` to run ``delay`` seconds from now."""
        self.schedule(self._now + delay, callback)

    def schedule_call(self, when: float, callback: Callable,
                      arg: object) -> None:
        """Schedule ``callback(arg)`` at absolute time ``when``.

        The allocation-light sibling of :meth:`schedule`: the payload
        rides in the heap entry itself, so hot paths pass a shared bound
        method plus an argument instead of binding a closure per event.

        Raises:
            SimulationError: if ``when`` is in the past.
        """
        if when < self._now:
            raise SimulationError(
                f"cannot schedule event at {when} before now={self._now}")
        self._sequence += 1
        heapq.heappush(self._heap, (when, self._sequence, callback, arg))

    def _bulk_insert(self, batch: list[tuple[float, int, Callable, object]]
                     ) -> None:
        heap = self._heap
        # heapify is O(len(heap) + m); m pushes are O(m log len(heap)).
        if len(batch) > 8 and len(batch) * 10 >= len(heap):
            heap.extend(batch)
            heapq.heapify(heap)
        else:
            # Drive the push loop from C (map over the C heappush).
            deque(map(heapq.heappush, repeat(heap), batch), maxlen=0)

    def schedule_many(
            self,
            events: Iterable[tuple[float, Callable[[], None]]]) -> int:
        """Schedule a batch of ``(when, callback)`` events in one call.

        Sequence numbers are assigned in iteration order, so equal
        timestamps within a batch execute in the order given — identical
        to a loop of :meth:`schedule` calls.  Large batches (relative to
        the pending heap) are appended and re-heapified in one pass.

        Returns:
            Number of events scheduled.

        Raises:
            SimulationError: if any ``when`` is in the past (no events
                from the batch are scheduled).
        """
        now = self._now
        sequence = self._sequence
        batch: list[tuple[float, int, Callable, object]] = []
        for when, callback in events:
            if when < now:
                raise SimulationError(
                    f"cannot schedule event at {when} before now={now}")
            sequence += 1
            batch.append((when, sequence, callback, _NO_ARG))
        self._sequence = sequence
        self._bulk_insert(batch)
        return len(batch)

    def schedule_fanout(self, times: Sequence[float], callback: Callable,
                        args: Sequence) -> int:
        """Schedule ``callback(args[i])`` at ``times[i]`` for every ``i``.

        The broadcast fast path: one shared callback (typically a bound
        method of an :class:`EventRecord`), one batch of timestamps, one
        batch of per-event payloads — zero per-event closures, one bulk
        heap insert.  Sequence order follows index order, so equal
        timestamps fire in fan-out order.

        Raises:
            SimulationError: if any time is in the past (nothing is
                scheduled).
        """
        count = len(times)
        if count == 0:
            return 0
        if min(times) < self._now:
            raise SimulationError(
                f"cannot schedule event at {min(times)} before "
                f"now={self._now}")
        sequence = self._sequence
        # zip builds the heap entries entirely in C.
        batch = list(zip(times, range(sequence + 1, sequence + 1 + count),
                         repeat(callback), args))
        self._sequence = sequence + count
        self._bulk_insert(batch)
        return count

    def run_until(self, deadline: float, max_events: int | None = None
                  ) -> int:
        """Run events with timestamps ``<= deadline``.

        Args:
            deadline: simulated time to stop at (the clock is advanced to
                ``deadline`` even if the queue drains earlier).
            max_events: optional hard cap on events executed, as a runaway
                guard for property tests.

        Returns:
            Number of events executed during this call.
        """
        executed = 0
        heap = self._heap
        pop = heapq.heappop
        no_arg = _NO_ARG
        while heap and heap[0][0] <= deadline:
            if max_events is not None and executed >= max_events:
                break
            when, _, callback, arg = pop(heap)
            self._now = when
            self._processed += 1
            executed += 1
            if arg is no_arg:
                callback()
            else:
                callback(arg)
        if not heap or heap[0][0] > deadline:
            self._now = max(self._now, deadline)
        return executed

    def run_until_idle(self, max_events: int = 10_000_000) -> int:
        """Run until the queue drains (bounded by ``max_events``)."""
        executed = 0
        heap = self._heap
        pop = heapq.heappop
        no_arg = _NO_ARG
        while heap and executed < max_events:
            when, _, callback, arg = pop(heap)
            self._now = when
            self._processed += 1
            executed += 1
            if arg is no_arg:
                callback()
            else:
                callback(arg)
        return executed
