"""Discrete-event simulation substrate (the paper's EC2 testbed stand-in)."""

from repro.sim.events import EventQueue, EventRecord
from repro.sim.metrics import (
    MetricsCollector,
    bandwidth_report,
    node_bandwidth_bps,
    utilization_breakdown,
)
from repro.sim.network import Network, Nic, NicStats
from repro.sim.node import SimNode, zero_cpu
from repro.sim.runner import Simulation

__all__ = [
    "EventQueue",
    "EventRecord",
    "MetricsCollector",
    "Network",
    "Nic",
    "NicStats",
    "SimNode",
    "Simulation",
    "bandwidth_report",
    "node_bandwidth_bps",
    "utilization_breakdown",
    "zero_cpu",
]
