"""Experiment metrics: throughput, latency, bandwidth breakdowns.

Collects exactly the quantities the paper reports:

* throughput in requests/second over a post-warmup measurement window,
  measured at an honest replica's execution point (server-side, §VI);
* request latency from client submission to acknowledgement (client-side);
* per-node bandwidth, total and bucketed by message class, from
  :class:`repro.sim.network.NicStats` — Tables III, Figs. 2/11;
* latency-phase traces for the Table IV breakdown;
* data-plane wall-clock breakdowns (erasure coding, hashing) via an
  attached :class:`repro.perf.PerfCounters` — cluster builders hand the
  collector's counters to each replica so experiment runs report
  coding/hashing time alongside protocol metrics.

:func:`standard_report` renders all of it into the backend-neutral report
schema shared by the simulator and the live TCP runtime
(:mod:`repro.net.live`), which is what makes simulated and real-socket
runs directly comparable.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.perf.counters import PerfCounters
from repro.sim.network import Network, NicStats


@dataclass
class LatencySample:
    """One acknowledged client bundle."""

    submitted_at: float
    acked_at: float

    @property
    def latency(self) -> float:
        """Seconds from submission to acknowledgement."""
        return self.acked_at - self.submitted_at


@dataclass
class MetricsCollector:
    """Mutable sink the simulation writes into while running.

    Attributes:
        warmup: executions/acks before this simulated time are ignored so
            that steady state, not ramp-up, is measured (paper: "each
            lasting until the measurement is stabilized").
    """

    warmup: float = 0.0
    executed_requests: dict[int, int] = field(default_factory=dict)
    first_execution: dict[int, float] = field(default_factory=dict)
    last_execution: dict[int, float] = field(default_factory=dict)
    latencies: list[LatencySample] = field(default_factory=list)
    phase_durations: dict[str, float] = field(default_factory=dict)
    phase_counts: dict[str, int] = field(default_factory=dict)
    #: Data-plane instrumentation (coding/hashing wall-clock) shared with
    #: every component the cluster builder attaches it to.
    perf: PerfCounters = field(default_factory=PerfCounters)

    def record_execution(self, node_id: int, count: int, now: float) -> None:
        """Record ``count`` requests executed at ``node_id``."""
        if now < self.warmup:
            return
        self.executed_requests[node_id] = (
            self.executed_requests.get(node_id, 0) + count)
        self.first_execution.setdefault(node_id, now)
        self.last_execution[node_id] = now

    def record_ack(self, submitted_at: float, now: float) -> None:
        """Record a client acknowledgement (one bundle)."""
        if now < self.warmup:
            return
        self.latencies.append(LatencySample(submitted_at, now))

    def record_phase(self, phase: str, duration: float, now: float) -> None:
        """Accumulate time attributed to a protocol phase (Table IV)."""
        if now < self.warmup:
            return
        self.phase_durations[phase] = (
            self.phase_durations.get(phase, 0.0) + duration)
        self.phase_counts[phase] = self.phase_counts.get(phase, 0) + 1

    def throughput(self, node_id: int, duration: float) -> float:
        """Requests/second executed at ``node_id`` over ``duration`` seconds."""
        if duration <= 0:
            return 0.0
        return self.executed_requests.get(node_id, 0) / duration

    def mean_latency(self) -> float:
        """Mean client latency in seconds (NaN when no samples)."""
        if not self.latencies:
            return math.nan
        return sum(s.latency for s in self.latencies) / len(self.latencies)

    def latency_percentile(self, pct: float) -> float:
        """Latency percentile in seconds (NaN when no samples)."""
        if not self.latencies:
            return math.nan
        ordered = sorted(s.latency for s in self.latencies)
        rank = min(len(ordered) - 1,
                   max(0, int(round(pct / 100.0 * (len(ordered) - 1)))))
        return ordered[rank]

    def phase_breakdown(self) -> dict[str, float]:
        """Fraction of total phase time per phase (sums to 1.0)."""
        total = sum(self.phase_durations.values())
        if total <= 0:
            return {}
        return {phase: duration / total
                for phase, duration in self.phase_durations.items()}


def bandwidth_report(network: Network, node_id: int, duration: float
                     ) -> dict[str, dict[str, float]]:
    """Per-message-class send/receive bandwidth at ``node_id`` in bps."""
    stats = network.stats(node_id)
    if duration <= 0:
        duration = 1.0
    return {
        "send": {cls: bytes_ * 8.0 / duration
                 for cls, bytes_ in stats.sent_bytes.items()},
        "recv": {cls: bytes_ * 8.0 / duration
                 for cls, bytes_ in stats.recv_bytes.items()},
    }


def utilization_breakdown(network: Network, node_id: int
                          ) -> dict[str, dict[str, float]]:
    """Table III-style breakdown: share of the node's total traffic.

    Returns ``{"send": {class: fraction}, "recv": {class: fraction}}`` where
    fractions are of the node's combined (send + receive) bytes.
    """
    stats = network.stats(node_id)
    total = stats.total_sent() + stats.total_recv()
    if total == 0:
        return {"send": {}, "recv": {}}
    return {
        "send": {cls: bytes_ / total
                 for cls, bytes_ in stats.sent_bytes.items()},
        "recv": {cls: bytes_ / total
                 for cls, bytes_ in stats.recv_bytes.items()},
    }


def node_bandwidth_bps(network: Network, node_id: int, duration: float
                       ) -> float:
    """Total (send + receive) bandwidth utilization of a node in bps."""
    stats = network.stats(node_id)
    if duration <= 0:
        return 0.0
    return (stats.total_sent() + stats.total_recv()) * 8.0 / duration


#: Version of the backend-neutral run-report schema below.
REPORT_SCHEMA = 1


def standard_report(*, backend: str, protocol: str, n: int,
                    duration: float, metrics: MetricsCollector,
                    byte_stats: dict[int, NicStats],
                    measure_replica: int) -> dict:
    """The run report shared by the simulated and live backends.

    Args:
        backend: ``"sim"`` or ``"live"`` — how the cluster executed.
        protocol: ``"leopard"`` / ``"hotstuff"`` / ``"pbft"``.
        n: replica count.
        duration: measurement-window seconds (post warmup).
        metrics: the run's collector.
        byte_stats: per-node byte counters — modelled NIC stats for the
            simulator, real socket counters for the live transport.
        measure_replica: honest non-leader replica whose execution point
            defines throughput (paper §VI).

    Identical keys from both backends make a live localhost run directly
    comparable with a simulated one of the same shape.
    """
    return {
        "schema": REPORT_SCHEMA,
        "backend": backend,
        "protocol": protocol,
        "n": n,
        "duration_s": duration,
        "measure_replica": measure_replica,
        "throughput_rps": metrics.throughput(measure_replica, duration),
        "executed_requests": dict(metrics.executed_requests),
        "acked_bundles": len(metrics.latencies),
        "latency_s": {
            "mean": metrics.mean_latency(),
            "p50": metrics.latency_percentile(50),
            "p90": metrics.latency_percentile(90),
            "p99": metrics.latency_percentile(99),
        },
        "bytes_by_class": {
            node_id: {"sent": dict(stats.sent_bytes),
                      "recv": dict(stats.recv_bytes)}
            for node_id, stats in sorted(byte_stats.items())
        },
        "perf": metrics.perf.snapshot(),
    }
