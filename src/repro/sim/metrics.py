"""Experiment metrics: throughput, latency, bandwidth breakdowns.

Collects exactly the quantities the paper reports:

* throughput in requests/second over a post-warmup measurement window,
  measured at an honest replica's execution point (server-side, §VI);
* request latency from client submission to acknowledgement (client-side);
* per-node bandwidth, total and bucketed by message class, from
  :class:`repro.stats.NicStats` — Tables III, Figs. 2/11;
* latency-phase traces for the Table IV breakdown;
* data-plane wall-clock breakdowns (erasure coding, hashing) via an
  attached :class:`repro.perf.PerfCounters` — cluster builders hand the
  collector's counters to each replica so experiment runs report
  coding/hashing time alongside protocol metrics.

The backend-neutral pieces — :class:`MetricsCollector`,
:class:`LatencySample`, :class:`NicStats` and :func:`standard_report` —
live in :mod:`repro.stats` (shared with the live TCP runtime, which must
not import simulator machinery for accounting) and are re-exported here
for the simulator-facing callers.  This module keeps only the helpers
coupled to the modelled :class:`repro.sim.network.Network`.
"""

from __future__ import annotations

from repro.sim.network import Network
from repro.stats import (  # noqa: F401  (re-exported sim-facing API)
    REPORT_SCHEMA,
    LatencySample,
    MetricsCollector,
    NicStats,
    percentile,
    standard_report,
)


def bandwidth_report(network: Network, node_id: int, duration: float
                     ) -> dict[str, dict[str, float]]:
    """Per-message-class send/receive bandwidth at ``node_id`` in bps."""
    stats = network.stats(node_id)
    if duration <= 0:
        duration = 1.0
    return {
        "send": {cls: bytes_ * 8.0 / duration
                 for cls, bytes_ in stats.sent_bytes.items()},
        "recv": {cls: bytes_ * 8.0 / duration
                 for cls, bytes_ in stats.recv_bytes.items()},
    }


def utilization_breakdown(network: Network, node_id: int
                          ) -> dict[str, dict[str, float]]:
    """Table III-style breakdown: share of the node's total traffic.

    Returns ``{"send": {class: fraction}, "recv": {class: fraction}}`` where
    fractions are of the node's combined (send + receive) bytes.
    """
    stats = network.stats(node_id)
    total = stats.total_sent() + stats.total_recv()
    if total == 0:
        return {"send": {}, "recv": {}}
    return {
        "send": {cls: bytes_ / total
                 for cls, bytes_ in stats.sent_bytes.items()},
        "recv": {cls: bytes_ / total
                 for cls, bytes_ in stats.recv_bytes.items()},
    }


def node_bandwidth_bps(network: Network, node_id: int, duration: float
                       ) -> float:
    """Total (send + receive) bandwidth utilization of a node in bps."""
    stats = network.stats(node_id)
    if duration <= 0:
        return 0.0
    return (stats.total_sent() + stats.total_recv()) * 8.0 / duration
