"""Hosts: the glue between a sans-io protocol core and the simulator.

A :class:`SimNode` owns one protocol core and interprets its effects —
sends become NIC transmissions, timers become queue events — while applying
two cross-cutting models:

* a **CPU cost model** (callable ``(msg, receiving) -> seconds``): each node
  has a single modelled CPU whose busy time delays message handling; this is
  what caps throughput when bandwidth is plentiful (see
  :mod:`repro.analysis.calibration`);
* a **fault behaviour** (:mod:`repro.sim.faults`) that can rewrite outgoing
  effects and drop incoming messages, realising the paper's Byzantine
  adversary.
"""

from __future__ import annotations

from typing import Callable, Hashable, Iterable

from repro.interfaces import (
    Broadcast,
    CancelTimer,
    Effect,
    Executed,
    Message,
    ProtocolCore,
    Send,
    SetTimer,
    Trace,
)
from repro.sim.events import EventQueue
from repro.sim.faults import HONEST, FaultBehavior
from repro.sim.metrics import MetricsCollector
from repro.sim.network import Network

CpuModel = Callable[[Message, bool], float]

#: Message classes processed on the data plane.  Modelled nodes have two
#: processing lanes (the paper's c5.xlarge instances have 4 vCPUs): heavy
#: per-request payload work (datablock/client/chunk processing) must not
#: head-of-line-block the consensus-critical control messages (votes,
#: proofs, readies), exactly as a threaded implementation separates them.
DATA_PLANE_CLASSES = frozenset({"datablock", "client", "resp", "block"})


def zero_cpu(msg: Message, receiving: bool) -> float:
    """A CPU model that charges nothing."""
    return 0.0


class SimNode:
    """One simulated node (replica or client).

    Args:
        core: the sans-io protocol core to host.
        network: shared network model.
        queue: shared event queue.
        metrics: shared metrics sink.
        replica_ids: ids that :class:`Broadcast` effects expand to.
        cpu_model: per-message CPU cost model.
        fault: Byzantine behaviour wrapper (honest by default).
    """

    def __init__(self, core: ProtocolCore, network: Network,
                 queue: EventQueue, metrics: MetricsCollector,
                 replica_ids: Iterable[int],
                 cpu_model: CpuModel = zero_cpu,
                 fault: FaultBehavior = HONEST) -> None:
        self.core = core
        self.node_id = core.node_id
        self.network = network
        self.queue = queue
        self.metrics = metrics
        self.replica_ids = tuple(replica_ids)
        self.cpu_model = cpu_model
        self.fault = fault
        self.data_busy_until = 0.0
        self.ctrl_busy_until = 0.0
        self._timer_generation: dict[Hashable, int] = {}
        # Give cores that pace themselves (datablock generators) a view of
        # their own NIC backlog, without coupling core code to the simulator.
        if hasattr(core, "backlog_probe"):
            core.backlog_probe = (
                lambda: network.backlog(self.node_id, queue.now))

    def boot(self) -> None:
        """Schedule the core's start at the current simulated time."""
        self.queue.schedule(self.queue.now, self._start)

    def _start(self) -> None:
        self._apply(self.core.start(self.queue.now))

    def _charge_cpu(self, cost: float, msg_class: str) -> float:
        """Occupy the matching CPU lane for ``cost`` seconds.

        Returns the time the work completes.
        """
        now = self.queue.now
        if msg_class in DATA_PLANE_CLASSES:
            start = self.data_busy_until if self.data_busy_until > now \
                else now
            self.data_busy_until = start + cost
            return self.data_busy_until
        start = self.ctrl_busy_until if self.ctrl_busy_until > now else now
        self.ctrl_busy_until = start + cost
        return self.ctrl_busy_until

    def deliver(self, sender: int, msg: Message) -> None:
        """Called by the transport when a message finishes arriving."""
        now = self.queue.now
        if self.fault.crashed:
            return
        if self.fault.drop_incoming(sender, msg, now):
            return
        cost = self.cpu_model(msg, True)
        ready_at = self._charge_cpu(cost, msg.msg_class)
        if ready_at <= now:
            self._apply(self.core.on_message(sender, msg, now))
        else:
            self.queue.schedule(
                ready_at,
                lambda: self._apply(
                    self.core.on_message(sender, msg, self.queue.now)))

    def _fire_timer(self, key: Hashable, generation: int) -> None:
        if self._timer_generation.get(key) != generation:
            return  # re-armed or cancelled since scheduling
        del self._timer_generation[key]
        if self.fault.crashed:
            return
        self._apply(self.core.on_timer(key, self.queue.now))

    def _apply(self, effects: list[Effect]) -> None:
        now = self.queue.now
        effects = self.fault.filter_effects(effects, now)
        for effect in effects:
            if isinstance(effect, Send):
                self._transmit(effect.dest, effect.msg)
            elif isinstance(effect, Broadcast):
                excluded = set(effect.exclude)
                excluded.add(self.node_id)
                for dest in self.replica_ids:
                    if dest not in excluded:
                        self._transmit(dest, effect.msg)
            elif isinstance(effect, SetTimer):
                generation = self._timer_generation.get(effect.key, 0) + 1
                self._timer_generation[effect.key] = generation
                key = effect.key
                self.queue.schedule_in(
                    effect.delay,
                    lambda k=key, g=generation: self._fire_timer(k, g))
            elif isinstance(effect, CancelTimer):
                self._timer_generation.pop(effect.key, None)
            elif isinstance(effect, Executed):
                self.metrics.record_execution(
                    self.node_id, effect.count, now)
            elif isinstance(effect, Trace):
                self._record_trace(effect, now)
            else:
                raise TypeError(f"unknown effect {effect!r}")

    def _record_trace(self, effect: Trace, now: float) -> None:
        if effect.kind == "ack":
            self.metrics.record_ack(effect.data["submitted_at"], now)
        elif effect.kind == "phase":
            self.metrics.record_phase(
                effect.data["phase"], effect.data["duration"], now)
        # Unknown trace kinds are allowed and ignored: cores may emit extra
        # diagnostics that only specific tests look at.

    def _transmit(self, dest: int, msg: Message) -> None:
        self._charge_cpu(self.cpu_model(msg, False), msg.msg_class)
        arrival = self.network.send_phase(self.node_id, msg, self.queue.now)
        router = self.router
        if router is None:
            return
        src = self.node_id
        network = self.network
        queue = self.queue

        def _arrive() -> None:
            delivered = network.receive_phase(dest, msg, queue.now)
            queue.schedule(delivered, lambda: router.deliver(src, dest, msg))

        queue.schedule(arrival, _arrive)

    #: Set by :class:`repro.sim.runner.Simulation`; routes delivered
    #: messages to the destination host. ``None`` in host-less unit tests.
    router = None
