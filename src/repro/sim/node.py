"""Hosts: the glue between a sans-io protocol core and the simulator.

A :class:`SimNode` owns one protocol core and interprets its effects —
sends become NIC transmissions, timers become queue events — while applying
two cross-cutting models:

* a **CPU cost model** (callable ``(msg, receiving) -> seconds``): each node
  has a single modelled CPU whose busy time delays message handling; this is
  what caps throughput when bandwidth is plentiful (see
  :mod:`repro.analysis.calibration`);
* a **fault behaviour** (:mod:`repro.sim.faults`) that can rewrite outgoing
  effects and drop incoming messages, realising the paper's Byzantine
  adversary.
"""

from __future__ import annotations

from typing import Callable, Hashable, Iterable

from repro.faults import HONEST, FaultBehavior
from repro.interfaces import (
    DATA_PLANE_CLASSES,
    Broadcast,
    CancelTimer,
    Delayed,
    Effect,
    Executed,
    Message,
    ProtocolCore,
    Send,
    SetTimer,
    Trace,
)
from repro.sim.events import EventQueue
from repro.sim.metrics import MetricsCollector
from repro.sim.network import Network

CpuModel = Callable[[Message, bool], float]


def zero_cpu(msg: Message, receiving: bool) -> float:
    """A CPU model that charges nothing."""
    return 0.0


class SimNode:
    """One simulated node (replica or client).

    Args:
        core: the sans-io protocol core to host.
        network: shared network model.
        queue: shared event queue.
        metrics: shared metrics sink.
        replica_ids: ids that :class:`Broadcast` effects expand to.
        cpu_model: per-message CPU cost model.
        fault: Byzantine behaviour wrapper (honest by default).
    """

    #: Engine selector.  ``True`` (default) routes transmissions through
    #: the batched pipeline (:meth:`Network.send_broadcast` /
    #: :meth:`Network.send_unicast`, typed event records, bulk heap
    #: inserts).  ``False`` falls back to the pre-batching per-copy
    #: closure engine (:meth:`_transmit`), kept as the measured reference
    #: implementation for ``benchmarks/run_sim_bench.py`` — the same
    #: pattern the coding plane uses (scalar gf256 kernels stay
    #: importable for ``run_micro.py``).  Class attribute so the bench
    #: can flip one global switch.
    batched = True

    __slots__ = ("core", "node_id", "network", "queue", "metrics",
                 "replica_ids", "cpu_model", "fault", "_honest",
                 "data_busy_until", "ctrl_busy_until", "_timer_generation",
                 "router", "wave_ok")

    def __init__(self, core: ProtocolCore, network: Network,
                 queue: EventQueue, metrics: MetricsCollector,
                 replica_ids: Iterable[int],
                 cpu_model: CpuModel = zero_cpu,
                 fault: FaultBehavior = HONEST) -> None:
        self.core = core
        self.node_id = core.node_id
        self.network = network
        self.queue = queue
        self.metrics = metrics
        self.replica_ids = tuple(replica_ids)
        self.cpu_model = cpu_model
        self.fault = fault
        #: Fast-path flag: honest nodes skip the crash/drop checks and
        #: the effect-rewrite hook on every delivery.
        self._honest = fault is HONEST
        #: Wave-tier eligibility (with :attr:`_honest`, re-checked at
        #: every wave fire): cleared when a tracer wraps the core, so
        #: traced requests always take the exact scalar path and
        #: lifecycle traces stay complete.
        self.wave_ok = True
        self.data_busy_until = 0.0
        self.ctrl_busy_until = 0.0
        self._timer_generation: dict[Hashable, int] = {}
        #: Set by :class:`repro.sim.runner.Simulation`; routes delivered
        #: messages to the destination host. ``None`` in host-less tests.
        self.router = None
        # Give cores that pace themselves (datablock generators) a view of
        # their own NIC backlog, without coupling core code to the simulator.
        if hasattr(core, "backlog_probe"):
            core.backlog_probe = self._backlog_probe

    def install_tracer(self, tracer) -> None:
        """Enable lifecycle tracing by wrapping the hosted core.

        Tracing lives entirely in the :class:`repro.obs.tracer.
        TracedCore` wrapper at the sans-io boundary, so a node that
        never installs a tracer pays nothing — no flag checks on the
        delivery or effect hot paths (the <2% disabled-overhead policy
        gated by ``benchmarks/run_sim_bench.py``).  Idempotent per
        core: call again after swapping :attr:`core` (restarts).
        """
        from repro.obs.tracer import TracedCore

        if not isinstance(self.core, TracedCore):
            self.core = TracedCore(self.core, tracer)
        self.wave_ok = False

    def _backlog_probe(self) -> float:
        """Seconds of queued egress work at this node's NIC (one frame).

        Called on every generation tick by pacing cores, so the NIC
        lookup is inlined rather than routed through
        :meth:`Network.backlog`.
        """
        remaining = (self.network.nics[self.node_id].tx_busy_until
                     - self.queue._now)
        return remaining if remaining > 0 else 0.0

    def boot(self) -> None:
        """Schedule the core's start at the current simulated time."""
        self.queue.schedule(self.queue.now, self._start)

    def _start(self) -> None:
        self._apply(self.core.start(self.queue.now))

    def _charge_cpu(self, cost: float, msg_class: str) -> float:
        """Occupy the matching CPU lane for ``cost`` seconds.

        Returns the time the work completes.
        """
        now = self.queue._now
        if msg_class in DATA_PLANE_CLASSES:
            start = self.data_busy_until if self.data_busy_until > now \
                else now
            self.data_busy_until = start + cost
            return self.data_busy_until
        start = self.ctrl_busy_until if self.ctrl_busy_until > now else now
        self.ctrl_busy_until = start + cost
        return self.ctrl_busy_until

    def deliver(self, sender: int, msg: Message) -> None:
        """Called when a message finishes arriving *now*.

        The delivery entry point of the legacy two-phase pipeline (and of
        direct test/prime injections): CPU-lane reservation happens at
        delivery-complete time, and the ready callback binds a closure —
        kept structurally seed-faithful so the sim macro-benchmark's
        reference mode measures the pre-refactor cost profile.  Batched
        transmissions enter through :meth:`receive_at` instead.
        """
        now = self.queue.now
        if self.fault.crashed:
            return
        if self.fault.drop_incoming(sender, msg, now):
            return
        cost = self.cpu_model(msg, True)
        ready_at = self._charge_cpu(cost, msg.msg_class)
        if ready_at <= now:
            self._apply(self.core.on_message(sender, msg, now))
        else:
            self.queue.schedule(
                ready_at,
                lambda: self._apply(
                    self.core.on_message(sender, msg, self.queue.now)))

    def receive_at(self, sender: int, msg: Message, delivered: float
                   ) -> None:
        """Reserve the CPU lane for a message that completes at ``delivered``.

        Called at wire-*arrival* time by the batched pipeline
        (:meth:`repro.sim.network.Transmission.arrive`), which merges the
        rx-completion and CPU-ready events into one: the lane is reserved
        immediately from ``max(lane_busy, delivered)`` and a single event
        fires the core when the work completes.  Lane reservations made
        in arrival order are the schedule the two-phase pipeline produces
        — delivery-complete times are FIFO-monotone per node — so the
        cost model is unchanged; only the event count per message drops
        from three to two.

        Fault timing: crash/drop checks run at arrival time (and a
        crashed node re-checks at the core callback), which brackets the
        legacy check at delivery-complete time.
        """
        queue = self.queue
        if not self._honest:
            if self.fault.crashed:
                return
            if self.fault.drop_incoming(sender, msg, queue._now):
                return
        cost = self.cpu_model(msg, True)
        if msg.msg_class in DATA_PLANE_CLASSES:
            busy = self.data_busy_until
            start = busy if busy > delivered else delivered
            ready_at = self.data_busy_until = start + cost
        else:
            busy = self.ctrl_busy_until
            start = busy if busy > delivered else delivered
            ready_at = self.ctrl_busy_until = start + cost
        queue.push(ready_at, self._deliver_ready, (sender, msg))

    def _deliver_ready(self, pending: tuple[int, Message]) -> None:
        """CPU-lane completion: run the core on a delayed message."""
        sender, msg = pending
        if not self._honest and self.fault.crashed:
            return
        effects = self.core.on_message(sender, msg, self.queue._now)
        if effects or not self._honest:
            self._apply(effects)

    def _deliver_ready_wave(self, pending: tuple[int, Message]) -> None:
        """Wave-tier CPU-lane completion (batched quorum advancement).

        Runs inside a drained wave run: the core is invoked at the
        exact time and sequence the scalar engine would use, so quorum
        counters (e.g. :class:`repro.core.datablock_pool.ReadyTracker`)
        advance identically — the wave merely keeps the whole chain
        counted as one processed event.  A node faulted *after* this
        continuation was queued (mid-run chaos injection) demotes to
        the exact scalar delivery, which applies the crash/rewrite
        semantics.
        """
        if not self._honest:
            self.queue._scalar_fallbacks += 1
            self._deliver_ready(pending)
            return
        effects = self.core.on_message(pending[0], pending[1],
                                       self.queue._now)
        if effects:
            self._interpret_wave(effects)

    def _fire_timer(self, armed: tuple[Hashable, int]) -> None:
        key, generation = armed
        generations = self._timer_generation
        if generations.get(key) != generation:
            return  # re-armed or cancelled since scheduling
        if self.fault.crashed:
            del generations[key]
            return
        effects = self.core.on_timer(key, self.queue._now)
        # Recurring-tick fast path: an *honest* core that answers its
        # own timer with exactly one re-arm of the same key (the
        # generation / proposal / progress heartbeat pattern, the bulk
        # of all timer traffic at paper scale) skips the full effect
        # interpreter.  Faulty nodes always go through ``_apply`` so
        # time-dependent behaviours (``Crash``) see every tick.
        if self.batched and self._honest and len(effects) == 1:
            effect = effects[0]
            if (type(effect) is SetTimer and effect.key == key
                    and effect.delay >= 0.0):
                generation += 1
                generations[key] = generation
                queue = self.queue
                if queue.wave_enabled and self.wave_ok:
                    # Recurring ticks are FIFO-monotone per (node, key),
                    # so they ride the wave tier's per-lane streams; the
                    # callback is the scalar one, so crash and
                    # generation checks at fire time are unchanged.
                    queue.wave_push(queue._now + effect.delay,
                                    self._fire_timer, (key, generation),
                                    ("t", self.node_id, key))
                else:
                    queue.push(queue._now + effect.delay,
                               self._fire_timer, (key, generation))
                return
        del generations[key]
        self._apply(effects)

    def _interpret_wave(self, effects: list[Effect]) -> None:
        """Interpret effects from a wave continuation.

        The dominant shape — one :class:`Send` (a quorum vote or an
        ack) — stays inside the wave tier via
        :meth:`Network.send_unicast_wave`, with CPU charging identical
        to :meth:`_interpret`.  Every other effect list takes the
        standard interpreter (broadcasts re-enter the wave tier through
        :meth:`Network.send_broadcast` on their own).
        """
        if len(effects) == 1:
            effect = effects[0]
            if type(effect) is Send:
                msg = effect.msg
                self._charge_cpu(
                    self.cpu_model(msg, False), msg.msg_class)
                self.network.send_unicast_wave(
                    self.node_id, effect.dest, msg, self.queue._now,
                    self.queue, self.router)
                return
        self._interpret(effects)

    def _apply(self, effects: list[Effect]) -> None:
        batched = self.batched
        if not self._honest or not batched:
            # Honest pass-through is the identity; the batched engine
            # skips it, the reference engine keeps the seed's
            # unconditional rewrite hook.
            effects = self.fault.filter_effects(effects, self.queue._now)
        if not effects:
            return
        self._interpret(effects)

    def _interpret(self, effects: list[Effect]) -> None:
        """Execute already-filtered effects (no fault rewrite pass)."""
        batched = self.batched
        now = self.queue._now
        for effect in effects:
            if isinstance(effect, Send):
                if batched:
                    msg = effect.msg
                    self._charge_cpu(
                        self.cpu_model(msg, False), msg.msg_class)
                    self.network.send_unicast(
                        self.node_id, effect.dest, msg, self.queue.now,
                        self.queue, self.router)
                else:
                    self._transmit(effect.dest, effect.msg)
            elif isinstance(effect, Broadcast):
                msg = effect.msg
                excluded = set(effect.exclude)
                excluded.add(self.node_id)
                dests = [dest for dest in self.replica_ids
                         if dest not in excluded]
                if not dests:
                    continue
                if batched:
                    # All copies charge the same cost back-to-back on the
                    # same lane, so one combined charge is equivalent to
                    # the per-copy loop.
                    self._charge_cpu(
                        self.cpu_model(msg, False) * len(dests),
                        msg.msg_class)
                    self.network.send_broadcast(
                        self.node_id, dests, msg, self.queue.now,
                        self.queue, self.router)
                else:
                    for dest in dests:
                        self._transmit(dest, msg)
            elif isinstance(effect, SetTimer):
                generation = self._timer_generation.get(effect.key, 0) + 1
                self._timer_generation[effect.key] = generation
                if batched and effect.delay >= 0.0:
                    # Payload-carrying push for the recurring-timer churn
                    # (the delay is non-negative, so never in the past).
                    self.queue.push(now + effect.delay, self._fire_timer,
                                    (effect.key, generation))
                else:
                    key = effect.key
                    self.queue.schedule_in(
                        effect.delay,
                        lambda k=key, g=generation: self._fire_timer((k, g)))
            elif isinstance(effect, CancelTimer):
                self._timer_generation.pop(effect.key, None)
            elif isinstance(effect, Executed):
                self.metrics.record_execution(
                    self.node_id, effect.count, now)
            elif isinstance(effect, Trace):
                self._record_trace(effect, now)
            elif isinstance(effect, Delayed):
                # A fault wrapped this effect in a lag (DelaySend).  The
                # inner effect is interpreted raw at the later time — NOT
                # re-filtered, or the fault would delay it again forever.
                self.queue.schedule(now + effect.delay,
                                    lambda e=effect.effect:
                                    self._interpret_delayed(e))
            else:
                raise TypeError(f"unknown effect {effect!r}")

    def _interpret_delayed(self, effect: Effect) -> None:
        """Fire one lag-released effect (unless the node crashed since)."""
        if not self._honest and self.fault.crashed:
            return
        self._interpret([effect])

    def _record_trace(self, effect: Trace, now: float) -> None:
        if effect.kind == "ack":
            self.metrics.record_ack(effect.data["submitted_at"], now)
        elif effect.kind == "phase":
            self.metrics.record_phase(
                effect.data["phase"], effect.data["duration"], now)
        elif effect.kind == "retransmit":
            self.metrics.record_retransmission()
        # Unknown trace kinds are allowed and ignored: cores may emit extra
        # diagnostics that only specific tests look at.

    def _transmit(self, dest: int, msg: Message) -> None:
        """The pre-batching per-copy transmission path (reference engine).

        Two closures and three scalar heap inserts per message copy; only
        used when :attr:`batched` is False, which the sim macro-benchmark
        does to measure the batched pipeline's speedup against it.
        """
        self._charge_cpu(self.cpu_model(msg, False), msg.msg_class)
        arrival = self.network.send_phase(self.node_id, msg, self.queue.now)
        router = self.router
        if router is None:
            return
        src = self.node_id
        network = self.network
        queue = self.queue

        def _arrive() -> None:
            delivered = network.receive_phase(dest, msg, queue.now)
            queue.schedule(delivered, lambda: router.deliver(src, dest, msg))

        queue.schedule(arrival, _arrive)
