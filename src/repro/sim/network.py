"""Bandwidth-accurate network model.

This is the substitute for the paper's EC2 testbed (DESIGN.md §2).  Each
node owns a NIC modelled as a single *shared* (half-duplex) serializer of
capacity ``bandwidth_bps``: every bit sent or received occupies the NIC for
``1/bandwidth`` seconds.  This matches the paper's cost accounting, where a
replica's communication cost ``c_i`` sums bits in *and* out (§I, §V-B) — and
it is what produces Eq. (1)'s leader bottleneck: a leader multicasting a
block serializes ``(n-1)`` copies one after another.

Propagation uses the partial-synchrony model of Dwork et al. adopted by the
paper (§III-A): after GST messages take ``base_delay`` (plus small jitter);
before GST an adversarial extra delay of up to ``pre_gst_extra_delay`` is
added.  Whether a message is "before GST" is judged by its **wire-departure
time** — a message that queues behind a NIC backlog and only departs after
GST is *not* subject to the adversarial delay (the adversary controls the
network, not a sender's local queue).

Every transmission is tagged with its message class, feeding the byte
accounting behind Tables III and Figs. 2/11/12/13 via the shared
:class:`repro.stats.NicStats` counters (the live TCP transport records
into the identical structure).

Determinism (draw-order version 2): jitter comes from one
``numpy.random.Generator`` seeded per network.  Scalar sends draw one
uniform for jitter (plus one for the pre-GST extra when departing before
GST); :meth:`Network.send_broadcast` draws one *batch* of n-1 jitter
samples (plus one batch of pre-GST extras if any copy departs before GST).
Runs are bit-reproducible for a fixed seed and workload, but the stream
differs from draw-order version 1 (per-copy ``random.Random`` draws), so
seed-sensitive expectations were re-baselined when v2 landed.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError
from repro.interfaces import DATA_PLANE_CLASSES, Message
from repro.sim.events import EventQueue, EventRecord
from repro.stats import NicStats, intern_class

__all__ = [
    "DEFAULT_BANDWIDTH_BPS",
    "DEFAULT_BASE_DELAY",
    "DRAW_ORDER_VERSION",
    "Network",
    "Nic",
    "NicStats",
    "Transmission",
]

#: Default per-node NIC capacity — *total*, split half per direction.
#: Calibrated against the paper's c5.xlarge instances (nominal 9.8 Gbps
#: full duplex): 6 Gbps effective per direction reproduces the paper's
#: HotStuff throughput-vs-n curve (e.g. ~20 Kreq/s at n = 300, Fig. 9).
DEFAULT_BANDWIDTH_BPS = 12e9

#: Default one-way propagation delay (single-datacenter, as in the paper).
DEFAULT_BASE_DELAY = 1e-3

#: Version of the jitter draw-order policy (see module docstring).
DRAW_ORDER_VERSION = 2


class Nic:
    """One node's network interface: egress + ingress serializers.

    ``bandwidth_bps`` is the node's *total* communication capacity — the
    quantity the paper's cost model divides a replica's combined sent+
    received bits by (C in §I and §V-B).  Each direction gets half of it,
    so a node whose traffic is all one-directional (a HotStuff leader
    sending blocks) can use at most C/2, while a node with symmetric
    traffic (a Leopard non-leader relaying datablocks) saturates the full
    C — which is exactly what makes the paper's scaling-up fraction γ
    approach 1/2 for Leopard (Eq. (4)) and 1/(n-1) for leader-based
    dissemination.
    """

    __slots__ = ("bandwidth_bps", "tx_busy_until", "rx_busy_until", "stats")

    def __init__(self, bandwidth_bps: float) -> None:
        if bandwidth_bps <= 0:
            raise ConfigError("NIC bandwidth must be positive")
        self.bandwidth_bps = bandwidth_bps
        self.tx_busy_until = 0.0
        self.rx_busy_until = 0.0
        self.stats = NicStats()

    @property
    def directional_bps(self) -> float:
        """Per-direction capacity (half the total)."""
        return self.bandwidth_bps / 2.0

    def occupy_tx(self, now: float, size_bytes: int) -> float:
        """Serialize an outgoing message; returns wire-departure time."""
        start = self.tx_busy_until if self.tx_busy_until > now else now
        # size * 8 / (bandwidth / 2), with the division folded in.
        self.tx_busy_until = start + (size_bytes * 16.0) / self.bandwidth_bps
        return self.tx_busy_until

    def occupy_rx(self, arrival_start: float, size_bytes: int) -> float:
        """Serialize an incoming message; returns delivery-complete time."""
        start = self.rx_busy_until if self.rx_busy_until > arrival_start \
            else arrival_start
        self.rx_busy_until = start + (size_bytes * 16.0) / self.bandwidth_bps
        return self.rx_busy_until

    def backlog(self, now: float) -> float:
        """Seconds of queued egress work (0 when idle)."""
        remaining = self.tx_busy_until - now
        return remaining if remaining > 0 else 0.0


class Transmission(EventRecord):
    """Typed event record for one message in flight to 1..n-1 destinations.

    *One* record is allocated per send — unicast or whole multicast —
    and its bound methods serve as the heap callbacks for every copy,
    with the destination id riding in the heap entry's payload slot:

    * :meth:`arrive` fires at a copy's wire-arrival time, reserves the
      destination's ingress serializer and re-enqueues :meth:`deliver`
      at delivery-complete time;
    * :meth:`deliver` hands the copy to the router.

    ``size`` and the interned stats class id are captured once at send
    time, so ``msg.size_bytes()`` and the class-name lookup happen once
    per *transmission*, not once per phase per destination.

    :meth:`arrive` fires at a copy's wire-arrival time: it reserves the
    destination's ingress serializer and hands the copy — together with
    its computed delivery-complete time — to the router, which reserves
    the destination's CPU lane and schedules the core callback in one
    event.  Reserving in arrival order is equivalent to the two-phase
    reserve-at-delivery pipeline: both the rx serializer and the CPU
    lanes are FIFO, so a node's delivery-complete times are monotone in
    arrival order and the resulting schedules coincide.
    """

    __slots__ = ("network", "nics", "queue", "router", "nodes", "src",
                 "msg", "size", "class_id", "data_plane", "cost_model",
                 "recv_cost")

    def __init__(self, network: Network, queue: EventQueue, router,
                 src: int, msg: Message, size: int) -> None:
        self.network = network
        self.nics = network.nics
        self.queue = queue
        self.router = router
        # Routers exposing a ``nodes`` map (the Simulation does) get the
        # flat fast path: arrivals hand off to the destination host with
        # no per-copy router dispatch.
        self.nodes = getattr(router, "nodes", None)
        self.src = src
        self.msg = msg
        self.size = size
        self.class_id = intern_class(msg.msg_class)
        self.data_plane = msg.msg_class in DATA_PLANE_CLASSES
        # Per-flight CPU-cost memo: every copy of a multicast lands on
        # hosts sharing one cost model, so the model runs once.
        self.cost_model = None
        self.recv_cost = 0.0

    def arrive(self, dest: int) -> None:
        """One copy reached ``dest``'s NIC: serialize in, then deliver.

        This is the innermost per-copy frame of the batched pipeline: rx
        serialization, byte accounting, CPU-lane reservation and the
        core-callback heap insert all happen here, against the host's
        documented hot-path fields (``_honest``, the two lane clocks,
        ``_deliver_ready``).  Faulty hosts and routers without a
        ``nodes`` map take the general :meth:`SimNode.receive_at` path.
        """
        nic = self.nics[dest]
        queue = self.queue
        now = queue._now
        size = self.size
        busy = nic.rx_busy_until
        start = busy if busy > now else now
        delivered = nic.rx_busy_until = (
            start + size * 16.0 / nic.bandwidth_bps)
        stats = nic.stats
        class_id = self.class_id
        try:
            stats._recv_bytes[class_id] += size
            stats._recv_msgs[class_id] += 1
        except IndexError:
            # First message of a newly interned class at this NIC: take
            # the growing path (the failed += left nothing applied).
            stats.bump_recv(class_id, size)
        nodes = self.nodes
        if nodes is None:
            self.router.deliver_at(self.src, dest, self.msg, delivered)
            return
        node = nodes.get(dest)
        if node is None:
            return
        if not node._honest:
            node.receive_at(self.src, self.msg, delivered)
            return
        msg = self.msg
        model = node.cpu_model
        if model is self.cost_model:
            cost = self.recv_cost
        else:
            cost = model(msg, True)
            self.cost_model = model
            self.recv_cost = cost
        if self.data_plane:
            busy = node.data_busy_until
            start = busy if busy > delivered else delivered
            ready_at = node.data_busy_until = start + cost
        else:
            busy = node.ctrl_busy_until
            start = busy if busy > delivered else delivered
            ready_at = node.ctrl_busy_until = start + cost
        queue.push(ready_at, node._deliver_ready, (self.src, msg))

    # -- wave-aggregated delivery (calendar backend, waves=True) --------

    def arrive_wave(self, dest: int) -> float | None:
        """Wave-tier sibling of :meth:`arrive` for a single arrival.

        Identical rx serialization, byte accounting and CPU-lane
        reservation at the identical ``(time, seq)`` — the only change
        is where the delivery continuation is queued: an honest,
        wave-eligible destination continues inside the wave tier
        (:meth:`SimNode._deliver_ready_wave` on its per-lane FIFO
        stream); everything else — faulty, crashed, shaped-by-fault or
        traced nodes — transparently falls back to the scalar path,
        which also demotes waves already registered before a chaos
        scenario faulted the node (eligibility is re-checked at *fire*
        time, never cached at send time).

        Returns the wave continuation's timestamp, or ``None`` when the
        arrival took a scalar or router path — the merged-slab runner
        (:meth:`CalendarEventQueue._run_merged`) uses this to stop its
        batch exactly where the batch callback would.
        """
        nic = self.nics[dest]
        queue = self.queue
        now = queue._now
        size = self.size
        busy = nic.rx_busy_until
        start = busy if busy > now else now
        delivered = nic.rx_busy_until = (
            start + size * 16.0 / nic.bandwidth_bps)
        stats = nic.stats
        class_id = self.class_id
        try:
            stats._recv_bytes[class_id] += size
            stats._recv_msgs[class_id] += 1
        except IndexError:
            stats.bump_recv(class_id, size)
        nodes = self.nodes
        if nodes is None:
            self.router.deliver_at(self.src, dest, self.msg, delivered)
            return None
        node = nodes.get(dest)
        if node is None:
            return None
        if not node._honest:
            queue._scalar_fallbacks += 1
            node.receive_at(self.src, self.msg, delivered)
            return None
        msg = self.msg
        model = node.cpu_model
        if model is self.cost_model:
            cost = self.recv_cost
        else:
            cost = model(msg, True)
            self.cost_model = model
            self.recv_cost = cost
        if self.data_plane:
            busy = node.data_busy_until
            start = busy if busy > delivered else delivered
            ready_at = node.data_busy_until = start + cost
            lane = dest * 2
        else:
            busy = node.ctrl_busy_until
            start = busy if busy > delivered else delivered
            ready_at = node.ctrl_busy_until = start + cost
            lane = dest * 2 + 1
        if node.wave_ok:
            queue.wave_push(ready_at, node._deliver_ready_wave,
                            (self.src, msg), lane)
            return ready_at
        queue._scalar_fallbacks += 1
        queue.push(ready_at, node._deliver_ready, (self.src, msg))
        return None

    def arrive_wave_many(self, times: list, dests: list, start: int,
                         stop: int) -> int:
        """Batch segment of a wave slab: arrivals ``start..stop-1``.

        Called by :meth:`CalendarEventQueue._drain_waves` with a
        contiguous run of arrivals already proven to precede every
        other pending event.  Each element executes at its exact
        timestamp (the clock is stepped per element) against
        *disjoint* per-destination state, so processing them
        back-to-back is order-exact — with two stop conditions the
        queue cannot see:

        * a follow-on continuation this batch created would fire before
          the next arrival (``min_follow``), or
        * an element fell back to the scalar path with an unknown
          follow-on time (faulty destination).

        Returns the number of elements consumed (>= 1).
        """
        queue = self.queue
        nics = self.nics
        nodes = self.nodes
        size = self.size
        ser = size * 16.0
        class_id = self.class_id
        data_plane = self.data_plane
        src = self.src
        msg = self.msg
        min_follow = float("inf")
        i = start
        while i < stop:
            t = times[i]
            if min_follow < t:
                break
            dest = dests[i]
            queue._now = t
            i += 1
            nic = nics[dest]
            busy = nic.rx_busy_until
            rx_start = busy if busy > t else t
            delivered = nic.rx_busy_until = rx_start + ser / nic.bandwidth_bps
            stats = nic.stats
            try:
                stats._recv_bytes[class_id] += size
                stats._recv_msgs[class_id] += 1
            except IndexError:
                stats.bump_recv(class_id, size)
            node = nodes.get(dest)
            if node is None:
                continue
            if not node._honest:
                queue._scalar_fallbacks += 1
                node.receive_at(src, msg, delivered)
                break
            model = node.cpu_model
            if model is self.cost_model:
                cost = self.recv_cost
            else:
                cost = model(msg, True)
                self.cost_model = model
                self.recv_cost = cost
            if data_plane:
                busy = node.data_busy_until
                s = busy if busy > delivered else delivered
                ready_at = node.data_busy_until = s + cost
                lane = dest * 2
            else:
                busy = node.ctrl_busy_until
                s = busy if busy > delivered else delivered
                ready_at = node.ctrl_busy_until = s + cost
                lane = dest * 2 + 1
            if node.wave_ok:
                queue.wave_push(ready_at, node._deliver_ready_wave,
                                (src, msg), lane)
            else:
                queue._scalar_fallbacks += 1
                queue.push(ready_at, node._deliver_ready, (src, msg))
            if ready_at < min_follow:
                min_follow = ready_at
        return i - start


class Network:
    """The modelled network connecting all nodes (replicas and clients).

    Args:
        node_count: total number of nodes; node ids are ``0..node_count-1``.
        bandwidth_bps: default NIC capacity applied to every node (override
            per node with :meth:`set_bandwidth`).
        base_delay: one-way propagation delay after GST.
        jitter: uniform extra delay in ``[0, jitter]`` applied per message.
        gst: global stabilization time; before it, messages suffer an extra
            uniform delay in ``[0, pre_gst_extra_delay]``.
        seed: determinism seed for jitter.
    """

    def __init__(self, node_count: int,
                 bandwidth_bps: float = DEFAULT_BANDWIDTH_BPS,
                 base_delay: float = DEFAULT_BASE_DELAY,
                 jitter: float = 2e-4,
                 gst: float = 0.0,
                 pre_gst_extra_delay: float = 0.5,
                 seed: int = 0) -> None:
        if node_count < 1:
            raise ConfigError("network needs at least one node")
        self.node_count = node_count
        self.base_delay = base_delay
        self.jitter = jitter
        self.gst = gst
        self.pre_gst_extra_delay = pre_gst_extra_delay
        self.nics = [Nic(bandwidth_bps) for _ in range(node_count)]
        self._rng = np.random.default_rng(seed)
        # Reusable 1..m ramp for broadcast departure cumsums (sliced per
        # call; grown on demand).
        self._ramp = np.arange(1.0, float(node_count) + 1.0)

    def set_bandwidth(self, node_id: int, bandwidth_bps: float) -> None:
        """Throttle (or boost) one node's NIC — the NetEm stand-in (§VI-B)."""
        if bandwidth_bps <= 0:
            raise ConfigError("NIC bandwidth must be positive")
        self.nics[node_id].bandwidth_bps = bandwidth_bps

    def set_all_bandwidth(self, bandwidth_bps: float) -> None:
        """Throttle every node's NIC, as the paper does for Fig. 10."""
        for node_id in range(self.node_count):
            self.set_bandwidth(node_id, bandwidth_bps)

    def propagation_delay(self, departure: float) -> float:
        """Sample the one-way delay for a message *departing* at ``departure``.

        The pre-GST adversarial extra applies only when the wire-departure
        time is before GST; a message that queued through GST behind a NIC
        backlog propagates at the post-GST delay.
        """
        delay = self.base_delay
        if self.jitter > 0:
            delay += float(self._rng.random()) * self.jitter
        if departure < self.gst:
            delay += float(self._rng.random()) * self.pre_gst_extra_delay
        return delay

    # ------------------------------------------------------------------
    # Scalar two-phase transmission (unicast + tests)
    # ------------------------------------------------------------------

    def send_phase(self, src: int, msg: Message, now: float) -> float:
        """Egress half of a unicast: serialize at the sender, propagate.

        Returns the time the message *arrives* at the destination NIC.
        The ingress half (:meth:`receive_phase`) must be invoked at that
        time so receiver-side queueing is reserved in arrival order.
        """
        size = msg.size_bytes()
        src_nic = self.nics[src]
        departed = src_nic.occupy_tx(now, size)
        src_nic.stats.record_send(msg.msg_class, size)
        return departed + self.propagation_delay(departed)

    def receive_phase(self, dst: int, msg: Message, now: float) -> float:
        """Ingress half: serialize through the receiver's NIC at arrival.

        Returns the delivery-complete time (when the payload is fully in).
        """
        size = msg.size_bytes()
        dst_nic = self.nics[dst]
        delivered = dst_nic.occupy_rx(now, size)
        dst_nic.stats.record_recv(msg.msg_class, size)
        return delivered

    # ------------------------------------------------------------------
    # Batched transmission fast path
    # ------------------------------------------------------------------

    def send_unicast(self, src: int, dest: int, msg: Message, now: float,
                     queue: EventQueue, router) -> float:
        """Full unicast pipeline: egress, propagation, arrival scheduling.

        Computes ``size_bytes()`` once and enqueues a single
        :class:`Transmission` record covering both receiver-side phases.
        ``router is None`` (host-less unit tests) accounts egress only.
        Returns the wire-departure time.
        """
        size = msg.size_bytes()
        src_nic = self.nics[src]
        departed = src_nic.occupy_tx(now, size)
        src_nic.stats.record_send(msg.msg_class, size)
        if router is not None:
            arrival = departed + self.propagation_delay(departed)
            flight = Transmission(self, queue, router, src, msg, size)
            queue.schedule_call(arrival, flight.arrive, dest)
        return departed

    def send_unicast_wave(self, src: int, dest: int, msg: Message,
                          now: float, queue: EventQueue, router) -> float:
        """Wave-tier unicast: identical pipeline, wave-registered arrival.

        Egress serialization, byte accounting and the propagation-delay
        RNG draw are exactly :meth:`send_unicast` (same draw order, same
        NIC state); only the arrival event rides the wave tier's head
        heap instead of the scalar queue.  This keeps a quorum wave's
        vote fan-in — the n-1 Ready unicasts a datablock broadcast
        triggers — inside the aggregated tier, so the whole
        (datablock, round) chain counts a handful of processed events.
        """
        size = msg.size_bytes()
        src_nic = self.nics[src]
        departed = src_nic.occupy_tx(now, size)
        src_nic.stats.record_send(msg.msg_class, size)
        if router is not None:
            arrival = departed + self.propagation_delay(departed)
            flight = Transmission(self, queue, router, src, msg, size)
            if queue.wave_enabled and flight.nodes is not None:
                queue.wave_push_heap(arrival, flight.arrive_wave, dest)
            else:
                queue.schedule_call(arrival, flight.arrive, dest)
        return departed

    def send_broadcast(self, src: int, dests: list[int], msg: Message,
                       now: float, queue: EventQueue, router) -> float:
        """Serialize one message to every destination in a single pass.

        The batched counterpart of n-1 :meth:`send_unicast` calls, with
        identical cost-model semantics:

        * ``size_bytes()`` is computed **once** for the whole multicast;
        * egress departure times are the running cumulative sum over the
          copies' serialization times (Eq. (1)'s leader bottleneck),
          computed as one vectorized ramp;
        * propagation jitter (and the pre-GST extra for copies departing
          before GST) is sampled in one batched RNG draw;
        * byte accounting is two array increments
          (:meth:`repro.stats.NicStats.record_send_many`);
        * all arrival events enqueue through one
          :meth:`EventQueue.schedule_fanout` call sharing a single
          :class:`Transmission` record.

        Returns the wire-departure time of the last copy.
        """
        count = len(dests)
        if count == 0:
            return now
        size = msg.size_bytes()
        src_nic = self.nics[src]
        per_copy = (size * 16.0) / src_nic.bandwidth_bps
        busy = src_nic.tx_busy_until
        start = busy if busy > now else now
        ramp = self._ramp
        if count > len(ramp):
            ramp = self._ramp = np.arange(1.0, float(count) + 1.0)
        departures = start + per_copy * ramp[:count]
        src_nic.tx_busy_until = float(departures[-1])
        src_nic.stats.record_send_many(msg.msg_class, size, count)
        if router is None:
            return src_nic.tx_busy_until
        arrivals = departures + self.base_delay
        if self.jitter > 0:
            arrivals += self._rng.random(count) * self.jitter
        if departures[0] < self.gst:
            extra = self._rng.random(count) * self.pre_gst_extra_delay
            arrivals += np.where(departures < self.gst, extra, 0.0)
        flight = Transmission(self, queue, router, src, msg, size)
        if queue.wave_enabled and flight.nodes is not None:
            # Wave eligibility is decided per *receiver* at fire time
            # (arrive_wave_many), so the whole broadcast registers as
            # one wave unconditionally — faulty or traced receivers
            # demote their own copies to the scalar path when the wave
            # reaches them.
            queue.schedule_wave(arrivals, flight.arrive_wave_many, dests,
                                flight.arrive_wave)
            return src_nic.tx_busy_until
        # The arrival vector is handed over as-is: the calendar backend
        # slices it into per-bucket pre-sorted slabs (arrival coalescing),
        # the heap backend materialises a list and bulk-inserts.
        queue.schedule_fanout(arrivals, flight.arrive, dests)
        return src_nic.tx_busy_until

    def stats(self, node_id: int) -> NicStats:
        """Byte counters for ``node_id``."""
        return self.nics[node_id].stats

    def backlog(self, node_id: int, now: float) -> float:
        """Seconds of queued NIC work at ``node_id`` (backpressure signal)."""
        return self.nics[node_id].backlog(now)
