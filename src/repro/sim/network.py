"""Bandwidth-accurate network model.

This is the substitute for the paper's EC2 testbed (DESIGN.md §2).  Each
node owns a NIC modelled as a single *shared* (half-duplex) serializer of
capacity ``bandwidth_bps``: every bit sent or received occupies the NIC for
``1/bandwidth`` seconds.  This matches the paper's cost accounting, where a
replica's communication cost ``c_i`` sums bits in *and* out (§I, §V-B) — and
it is what produces Eq. (1)'s leader bottleneck: a leader multicasting a
block serializes ``(n-1)`` copies one after another.

Propagation uses the partial-synchrony model of Dwork et al. adopted by the
paper (§III-A): after GST messages take ``base_delay`` (plus small jitter);
before GST an adversarial extra delay of up to ``pre_gst_extra_delay`` is
added.

Every transmission is tagged with its message class, feeding the byte
accounting behind Tables III and Figs. 2/11/12/13.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.errors import ConfigError
from repro.interfaces import Message

#: Default per-node NIC capacity — *total*, split half per direction.
#: Calibrated against the paper's c5.xlarge instances (nominal 9.8 Gbps
#: full duplex): 6 Gbps effective per direction reproduces the paper's
#: HotStuff throughput-vs-n curve (e.g. ~20 Kreq/s at n = 300, Fig. 9).
DEFAULT_BANDWIDTH_BPS = 12e9

#: Default one-way propagation delay (single-datacenter, as in the paper).
DEFAULT_BASE_DELAY = 1e-3


@dataclass
class NicStats:
    """Byte counters for one node, bucketed by message class."""

    sent_bytes: dict[str, int] = field(default_factory=dict)
    recv_bytes: dict[str, int] = field(default_factory=dict)
    sent_msgs: dict[str, int] = field(default_factory=dict)
    recv_msgs: dict[str, int] = field(default_factory=dict)

    def record_send(self, msg_class: str, size: int) -> None:
        """Account one outgoing message."""
        self.sent_bytes[msg_class] = self.sent_bytes.get(msg_class, 0) + size
        self.sent_msgs[msg_class] = self.sent_msgs.get(msg_class, 0) + 1

    def record_recv(self, msg_class: str, size: int) -> None:
        """Account one incoming message."""
        self.recv_bytes[msg_class] = self.recv_bytes.get(msg_class, 0) + size
        self.recv_msgs[msg_class] = self.recv_msgs.get(msg_class, 0) + 1

    def total_sent(self) -> int:
        """Total bytes sent across all classes."""
        return sum(self.sent_bytes.values())

    def total_recv(self) -> int:
        """Total bytes received across all classes."""
        return sum(self.recv_bytes.values())


class Nic:
    """One node's network interface: egress + ingress serializers.

    ``bandwidth_bps`` is the node's *total* communication capacity — the
    quantity the paper's cost model divides a replica's combined sent+
    received bits by (C in §I and §V-B).  Each direction gets half of it,
    so a node whose traffic is all one-directional (a HotStuff leader
    sending blocks) can use at most C/2, while a node with symmetric
    traffic (a Leopard non-leader relaying datablocks) saturates the full
    C — which is exactly what makes the paper's scaling-up fraction γ
    approach 1/2 for Leopard (Eq. (4)) and 1/(n-1) for leader-based
    dissemination.
    """

    __slots__ = ("bandwidth_bps", "tx_busy_until", "rx_busy_until", "stats")

    def __init__(self, bandwidth_bps: float) -> None:
        if bandwidth_bps <= 0:
            raise ConfigError("NIC bandwidth must be positive")
        self.bandwidth_bps = bandwidth_bps
        self.tx_busy_until = 0.0
        self.rx_busy_until = 0.0
        self.stats = NicStats()

    @property
    def directional_bps(self) -> float:
        """Per-direction capacity (half the total)."""
        return self.bandwidth_bps / 2.0

    def occupy_tx(self, now: float, size_bytes: int) -> float:
        """Serialize an outgoing message; returns wire-departure time."""
        start = self.tx_busy_until if self.tx_busy_until > now else now
        self.tx_busy_until = start + (size_bytes * 8.0) / self.directional_bps
        return self.tx_busy_until

    def occupy_rx(self, arrival_start: float, size_bytes: int) -> float:
        """Serialize an incoming message; returns delivery-complete time."""
        start = self.rx_busy_until if self.rx_busy_until > arrival_start \
            else arrival_start
        self.rx_busy_until = start + (size_bytes * 8.0) / self.directional_bps
        return self.rx_busy_until

    def backlog(self, now: float) -> float:
        """Seconds of queued egress work (0 when idle)."""
        remaining = self.tx_busy_until - now
        return remaining if remaining > 0 else 0.0


class Network:
    """The modelled network connecting all nodes (replicas and clients).

    Args:
        node_count: total number of nodes; node ids are ``0..node_count-1``.
        bandwidth_bps: default NIC capacity applied to every node (override
            per node with :meth:`set_bandwidth`).
        base_delay: one-way propagation delay after GST.
        jitter: uniform extra delay in ``[0, jitter]`` applied per message.
        gst: global stabilization time; before it, messages suffer an extra
            uniform delay in ``[0, pre_gst_extra_delay]``.
        seed: determinism seed for jitter.
    """

    def __init__(self, node_count: int,
                 bandwidth_bps: float = DEFAULT_BANDWIDTH_BPS,
                 base_delay: float = DEFAULT_BASE_DELAY,
                 jitter: float = 2e-4,
                 gst: float = 0.0,
                 pre_gst_extra_delay: float = 0.5,
                 seed: int = 0) -> None:
        if node_count < 1:
            raise ConfigError("network needs at least one node")
        self.node_count = node_count
        self.base_delay = base_delay
        self.jitter = jitter
        self.gst = gst
        self.pre_gst_extra_delay = pre_gst_extra_delay
        self.nics = [Nic(bandwidth_bps) for _ in range(node_count)]
        self._rng = random.Random(seed)

    def set_bandwidth(self, node_id: int, bandwidth_bps: float) -> None:
        """Throttle (or boost) one node's NIC — the NetEm stand-in (§VI-B)."""
        if bandwidth_bps <= 0:
            raise ConfigError("NIC bandwidth must be positive")
        self.nics[node_id].bandwidth_bps = bandwidth_bps

    def set_all_bandwidth(self, bandwidth_bps: float) -> None:
        """Throttle every node's NIC, as the paper does for Fig. 10."""
        for node_id in range(self.node_count):
            self.set_bandwidth(node_id, bandwidth_bps)

    def propagation_delay(self, now: float) -> float:
        """Sample the one-way propagation delay for a message sent at ``now``."""
        delay = self.base_delay
        if self.jitter > 0:
            delay += self._rng.uniform(0.0, self.jitter)
        if now < self.gst:
            delay += self._rng.uniform(0.0, self.pre_gst_extra_delay)
        return delay

    def send_phase(self, src: int, msg: Message, now: float) -> float:
        """Egress half of a unicast: serialize at the sender, propagate.

        Returns the time the message *arrives* at the destination NIC.
        The ingress half (:meth:`receive_phase`) must be invoked at that
        time so receiver-side queueing is reserved in arrival order.
        """
        size = msg.size_bytes()
        src_nic = self.nics[src]
        departed = src_nic.occupy_tx(now, size)
        src_nic.stats.record_send(msg.msg_class, size)
        return departed + self.propagation_delay(now)

    def receive_phase(self, dst: int, msg: Message, now: float) -> float:
        """Ingress half: serialize through the receiver's NIC at arrival.

        Returns the delivery-complete time (when the payload is fully in).
        """
        size = msg.size_bytes()
        dst_nic = self.nics[dst]
        delivered = dst_nic.occupy_rx(now, size)
        dst_nic.stats.record_recv(msg.msg_class, size)
        return delivered

    def stats(self, node_id: int) -> NicStats:
        """Byte counters for ``node_id``."""
        return self.nics[node_id].stats

    def backlog(self, node_id: int, now: float) -> float:
        """Seconds of queued NIC work at ``node_id`` (backpressure signal)."""
        return self.nics[node_id].backlog(now)
