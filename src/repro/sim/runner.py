"""Simulation assembly and run loop.

``Simulation`` owns the event queue, the network, the metrics sink and the
node table, and routes completed transmissions to destination hosts.  The
protocol-specific cluster builders in :mod:`repro.harness.cluster` populate
it with Leopard / HotStuff / PBFT replicas and client nodes.
"""

from __future__ import annotations

import time

from repro.errors import SimulationError
from repro.faults import HONEST, FaultBehavior
from repro.interfaces import Message, ProtocolCore
from repro.sim.events import EventQueue
from repro.sim.metrics import MetricsCollector
from repro.sim.network import Network
from repro.sim.node import CpuModel, SimNode, zero_cpu


class Simulation:
    """A full simulated deployment: network + nodes + metrics.

    Args:
        network: the network model (sized for replicas + clients).
        replica_count: how many of the low node ids are replicas; broadcasts
            expand to exactly this id range.
        metrics: optional pre-configured metrics sink.
        queue_backend: event-queue backend (``"calendar"`` / ``"heap"``);
            defaults to the process-wide default
            (:func:`repro.sim.events.set_default_backend`).
        bucket_width: calendar bucket width in seconds; cluster builders
            size it from the NIC serialization quantum so one bucket
            spans roughly one broadcast egress ramp.  Ignored by the
            heap backend.
        waves: enable the calendar backend's wave-aggregation tier
            (``None`` inherits the process default,
            :func:`repro.sim.events.set_default_waves`).  Execution is
            event-for-event identical; only ``events_processed``
            collapses (one event per drained wave run).
    """

    def __init__(self, network: Network, replica_count: int,
                 metrics: MetricsCollector | None = None,
                 queue_backend: str | None = None,
                 bucket_width: float | None = None,
                 waves: bool | None = None) -> None:
        if replica_count > network.node_count:
            raise SimulationError("more replicas than network nodes")
        self.network = network
        self.queue = EventQueue(backend=queue_backend,
                                bucket_width=bucket_width,
                                waves=waves)
        self.metrics = metrics if metrics is not None else MetricsCollector()
        self.replica_count = replica_count
        self.nodes: dict[int, SimNode] = {}
        #: Wall-clock seconds spent inside :meth:`run` (the engine-speed
        #: denominator of :meth:`events_per_sec`).
        self.wall_seconds = 0.0

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self.queue.now

    def add_node(self, core: ProtocolCore,
                 cpu_model: CpuModel = zero_cpu,
                 fault: FaultBehavior = HONEST) -> SimNode:
        """Register and boot-schedule a node hosting ``core``."""
        if core.node_id in self.nodes:
            raise SimulationError(f"duplicate node id {core.node_id}")
        if not 0 <= core.node_id < self.network.node_count:
            raise SimulationError(f"node id {core.node_id} outside network")
        node = SimNode(core, self.network, self.queue, self.metrics,
                       range(self.replica_count), cpu_model, fault)
        node.router = self
        self.nodes[core.node_id] = node
        node.boot()
        return node

    def deliver(self, src: int, dest: int, msg: Message) -> None:
        """Route a completed transmission to the destination host."""
        node = self.nodes.get(dest)
        if node is not None:
            node.deliver(src, msg)

    def deliver_at(self, src: int, dest: int, msg: Message,
                   delivered: float) -> None:
        """Route a transmission that completes at ``delivered`` (batched path).

        Called at wire-arrival time by
        :meth:`repro.sim.network.Transmission.arrive`; the destination
        host reserves its CPU lane against the delivery-complete time and
        fires the core in a single event (:meth:`SimNode.receive_at`).
        """
        node = self.nodes.get(dest)
        if node is not None:
            node.receive_at(src, msg, delivered)

    def run(self, duration: float, max_events: int | None = None) -> int:
        """Advance the simulation ``duration`` seconds of virtual time.

        Returns:
            Number of events executed during this call.
        """
        started = time.perf_counter()
        executed = self.queue.run_until(self.queue.now + duration,
                                        max_events)
        self.wall_seconds += time.perf_counter() - started
        return executed

    @property
    def events_processed(self) -> int:
        """Total events executed since construction."""
        return self.queue.processed

    def events_per_sec(self) -> float:
        """Engine throughput: events executed per wall-clock second."""
        if self.wall_seconds <= 0:
            return 0.0
        return self.queue.processed / self.wall_seconds

    def node(self, node_id: int) -> SimNode:
        """Look up a host by node id."""
        return self.nodes[node_id]

    def core(self, node_id: int):
        """Look up the protocol core hosted at ``node_id``."""
        return self.nodes[node_id].core
