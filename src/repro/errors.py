"""Exception hierarchy for the repro package."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class ConfigError(ReproError):
    """Invalid protocol or simulation configuration."""


class ProtocolViolation(ReproError):
    """A message failed protocol-level validation.

    Honest replicas *drop* invalid messages rather than crash; this exception
    is raised only by strict validation helpers that tests call directly.
    """


class SimulationError(ReproError):
    """The simulator was driven into an inconsistent state."""
