"""Checkpointing and garbage collection (paper Algorithm 4, Appendix A).

Every ``checkpoint_period`` executed serial numbers, replicas send a
threshold-signature share over ⟨checkpoint, sn, H(st)⟩ to the leader, which
combines 2f+1 shares into a checkpoint certificate and multicasts it.  A
valid certificate advances the low watermark ``lw`` (unblocking new serial
numbers, Algorithm 2 line 37) and lets replicas drop executed requests.
"""

from __future__ import annotations

from repro.crypto.threshold import (
    SignatureShare,
    ThresholdError,
    ThresholdScheme,
    ThresholdSignature,
    message_element,
)
from repro.messages.leopard import (
    CheckpointProof,
    CheckpointShare,
    checkpoint_payload,
)


class CheckpointManager:
    """Per-replica checkpoint state; the leader also aggregates shares."""

    def __init__(self, period: int, scheme: ThresholdScheme) -> None:
        self.period = period
        self.scheme = scheme
        self.stable_sn = 0
        self.latest_proof: CheckpointProof | None = None
        self._last_share_sn = 0
        self._shares: dict[tuple[int, bytes], dict[int, SignatureShare]] = {}
        self._elements: dict[tuple[int, bytes], int] = {}
        self._issued: set[tuple[int, bytes]] = set()

    def due(self, executed_sn: int) -> bool:
        """Whether an executed prefix ending at ``executed_sn`` needs a share."""
        if executed_sn <= self._last_share_sn:
            return False
        return executed_sn % self.period == 0

    def make_share(self, replica_id: int, secret_signer, executed_sn: int,
                   state_digest: bytes) -> CheckpointShare:
        """Produce this replica's checkpoint share (Algorithm 4, lines 2-6)."""
        self._last_share_sn = executed_sn
        payload = checkpoint_payload(executed_sn, state_digest)
        return CheckpointShare(
            executed_sn, state_digest, secret_signer.sign(payload))

    def on_share(self, sender: int, share: CheckpointShare
                 ) -> CheckpointProof | None:
        """Leader-side aggregation; returns the certificate on quorum."""
        key = (share.sn, share.state_digest)
        if key in self._issued or share.sn <= self.stable_sn:
            return None
        if sender != share.share.signer:
            return None
        payload = checkpoint_payload(share.sn, share.state_digest)
        element = self._elements.get(key)
        if element is None:
            element = message_element(payload)
        if not self.scheme.verify_share(share.share, payload,
                                        element=element):
            return None
        # Cache only for valid shares, so _elements keys mirror _shares
        # buckets (and get the same stale-cleanup in on_proof).
        self._elements.setdefault(key, element)
        bucket = self._shares.setdefault(key, {})
        bucket[sender] = share.share
        if len(bucket) < self.scheme.threshold:
            return None
        try:
            # Shares were verified on arrival; skip the one-by-one recheck.
            combined = self.scheme.combine(list(bucket.values()), payload,
                                           preverified=True)
        except ThresholdError:
            return None
        self._elements.pop(key, None)
        self._issued.add(key)
        self._shares.pop(key, None)
        return CheckpointProof(share.sn, share.state_digest, combined)

    def on_proof(self, proof: CheckpointProof) -> bool:
        """Validate and adopt a checkpoint certificate; True if it advanced."""
        if proof.sn <= self.stable_sn:
            return False
        payload = checkpoint_payload(proof.sn, proof.state_digest)
        if not self.scheme.verify(proof.signature, payload):
            return False
        self.stable_sn = proof.sn
        self.latest_proof = proof
        stale = [key for key in self._shares if key[0] <= proof.sn]
        for key in stale:
            del self._shares[key]
            self._elements.pop(key, None)
        return True
