"""The replicated log: ordering, execution, acknowledgements (paper §IV-A2).

Confirmed BFTblocks are stored by serial number; execution applies the
longest consecutive prefix whose datablocks are all locally present (a
confirmed block can be waiting on a retrieval).  Requests within a block
execute in the paper's canonical order (links in block order, requests in
datablock order).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.datablock_pool import DatablockPool
from repro.messages.leopard import BFTblock, BundleSpan


@dataclass(frozen=True)
class ExecutedBlock:
    """One executed log position (what safety compares across replicas)."""

    sn: int
    block_digest: bytes
    links: tuple[bytes, ...]
    request_count: int


@dataclass
class ExecutionResult:
    """Output of one execution sweep."""

    blocks: list[ExecutedBlock] = field(default_factory=list)
    executed_requests: int = 0
    acked_spans: list[BundleSpan] = field(default_factory=list)


class Ledger:
    """Confirmed-block storage plus the execution cursor."""

    def __init__(self, pool: DatablockPool, replica_id: int) -> None:
        self._pool = pool
        self._replica_id = replica_id
        self._confirmed: dict[int, BFTblock] = {}
        self.last_executed = 0
        self.log: list[ExecutedBlock] = []
        #: sn -> links, retained for checkpoint-time garbage collection.
        self._executed_links: dict[int, tuple[bytes, ...]] = {}

    def confirm(self, block: BFTblock) -> bool:
        """Record a confirmed BFTblock; idempotent per serial number."""
        if block.sn in self._confirmed or block.sn <= self.last_executed:
            return False
        self._confirmed[block.sn] = block
        return True

    def is_confirmed(self, sn: int) -> bool:
        """Whether ``sn`` is confirmed (or already executed)."""
        return sn in self._confirmed or sn <= self.last_executed

    def pending_confirmed(self) -> int:
        """Confirmed blocks not yet executed (waiting on order/datablocks)."""
        return len(self._confirmed)

    def missing_for_execution(self) -> list[bytes]:
        """Datablock digests blocking the next executable position."""
        block = self._confirmed.get(self.last_executed + 1)
        if block is None:
            return []
        return [link for link in block.links if link not in self._pool]

    def execute_ready(self) -> ExecutionResult:
        """Execute the longest ready consecutive prefix.

        Returns executed blocks, the total requests applied, and the spans
        this replica must acknowledge (spans of datablocks it created).
        """
        result = ExecutionResult()
        while True:
            next_sn = self.last_executed + 1
            block = self._confirmed.get(next_sn)
            if block is None:
                break
            datablocks = []
            missing = False
            for link in block.links:
                datablock = self._pool.get(link)
                if datablock is None:
                    missing = True
                    break
                datablocks.append(datablock)
            if missing:
                break
            request_count = sum(db.request_count for db in datablocks)
            entry = ExecutedBlock(
                next_sn, block.digest(), block.links, request_count)
            self.log.append(entry)
            self._executed_links[next_sn] = block.links
            result.blocks.append(entry)
            result.executed_requests += request_count
            for datablock in datablocks:
                if datablock.creator == self._replica_id:
                    result.acked_spans.extend(datablock.spans)
            del self._confirmed[next_sn]
            self.last_executed = next_sn
        return result

    def segment_entries(self, start: int, end: int):
        """Executed positions with ``start < sn <= end`` (recovery serve).

        Returns backend-neutral :class:`repro.messages.recovery.SegmentEntry`
        projections of the executed log.
        """
        from repro.messages.recovery import SegmentEntry
        return [SegmentEntry(entry.sn, entry.block_digest,
                             entry.request_count)
                for entry in self.log if start < entry.sn <= end]

    def install_entries(self, entries) -> int:
        """Install a verified transferred prefix (recovery catch-up).

        Installed positions carry no datablock links — the payload below
        the catch-up target is summarized by the checkpoint, not
        replayed — so they never gate execution or garbage collection.
        Confirmed blocks at or below the new tip are dropped (already
        covered by the transfer).  Returns positions installed.
        """
        installed = 0
        for entry in entries:
            if entry.sn <= self.last_executed:
                continue
            self.log.append(ExecutedBlock(
                entry.sn, entry.digest, (), entry.request_count))
            self.last_executed = entry.sn
            self._confirmed.pop(entry.sn, None)
            installed += 1
        for sn in [sn for sn in self._confirmed
                   if sn <= self.last_executed]:
            del self._confirmed[sn]
        return installed

    def tail(self, count: int = 32) -> list[tuple[int, str]]:
        """Trailing ``(sn, digest_hex)`` pairs (convergence checking)."""
        return [(entry.sn, entry.block_digest.hex())
                for entry in self.log[-count:]]

    def collect_garbage(self, checkpoint_sn: int) -> int:
        """Drop datablocks linked by executed blocks ≤ ``checkpoint_sn``.

        Returns the number of datablocks removed (Appendix A, garbage
        collection after a stable checkpoint).
        """
        removed = 0
        stale = [sn for sn in self._executed_links if sn <= checkpoint_sn]
        for sn in stale:
            for link in self._executed_links.pop(sn):
                self._pool.remove(link)
                removed += 1
        return removed

    def state_digest(self) -> bytes:
        """H(st): a digest of the executed log (checkpoint payload)."""
        from repro.crypto.hashing import combine
        return combine(*[entry.block_digest for entry in self.log[-64:]],
                       self.last_executed.to_bytes(8, "big"))
