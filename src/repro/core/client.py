"""Leopard clients (paper §IV-A1).

A client submits pending requests to one designated non-leader replica —
the deterministic assignment µ(req) of §IV-A1 is realised by
:func:`assign_replica` — and waits for acknowledgements of confirmation.
If no acknowledgement arrives before ``client_timeout``, it re-submits the
requests to the next responsible replica with the time-out tag that can
ultimately trigger a view-change (Appendix A); after at most f re-routes an
honest replica is reached.
"""

from __future__ import annotations

import random
from typing import Hashable

from repro.core.config import LeopardConfig
from repro.interfaces import Effect, Send, SetTimer, Trace
from repro.messages.client import Ack, RequestBundle


def assign_replica(key: int, n: int, leader: int, attempt: int = 0) -> int:
    """µ(req): deterministic, leader-avoiding replica assignment.

    Args:
        key: client identity (or request hash) driving the assignment.
        n: number of replicas.
        leader: current leader id, skipped by the assignment.
        attempt: re-submission attempt number (rotates the target).
    """
    candidates = [replica for replica in range(n) if replica != leader]
    return candidates[(key + attempt) % len(candidates)]


class LeopardClient:
    """A load-generating client submitting request bundles to one replica.

    Args:
        node_id: this client's node id (above the replica id range).
        config: the cluster's protocol configuration.
        rate: request submission rate in requests/second.
        bundle_size: requests per submitted bundle.
        stop_at: stop submitting at this simulated time (0 = never).
        resubmit: enable time-out driven re-submission (off for saturated
            throughput runs, where duplicates would skew accounting).
        fanout: submit each bundle to this many distinct replicas (up to
            f+1 per §IV-A1 — "more replicas lower latency whereas fewer
            replicas increase throughput", since other replicas cannot
            de-duplicate each other's copies).
        client_timeout: how long to wait for an ack before re-submitting.
            Retries back off exponentially with deterministic per-client
            jitter (seeded on the node id), so a stalled cluster sees a
            decaying — not synchronized — retry wave.
        max_retries: re-submissions per bundle before giving up (bounds
            duplicate load in long sim workloads).
        trace_phases: emit the Table IV "response to the client" phase.
    """

    def __init__(self, node_id: int, config: LeopardConfig, rate: float,
                 bundle_size: int = 500, stop_at: float = 0.0,
                 resubmit: bool = False, client_timeout: float = 4.0,
                 max_retries: int = 5,
                 trace_phases: bool = False, fanout: int = 1) -> None:
        if rate <= 0:
            raise ValueError("client rate must be positive")
        if not 1 <= fanout <= config.f + 1:
            raise ValueError("fanout must be in [1, f+1] (paper §IV-A1)")
        self.node_id = node_id
        self.config = config
        self.rate = rate
        self.bundle_size = bundle_size
        self.stop_at = stop_at
        self.resubmit = resubmit
        self.client_timeout = client_timeout
        self.max_retries = max_retries
        self._rng = random.Random((node_id + 1) * 0x9E3779B1)
        self.trace_phases = trace_phases
        self.fanout = fanout
        self.submit_interval = bundle_size / rate
        self.next_bundle_id = 1
        self.acked_requests = 0
        self.submitted_requests = 0
        self.resubmissions = 0
        #: bundle_id -> (unacked count, submitted_at, attempt)
        self._outstanding: dict[int, list] = {}
        self._view_leader_guess = 1 % config.n

    @property
    def primary(self) -> int:
        """The replica this client currently submits to."""
        return assign_replica(
            self.node_id, self.config.n, self._view_leader_guess)

    def start(self, now: float) -> list[Effect]:
        """Begin the periodic submission loop."""
        return [SetTimer("submit", self.submit_interval)]

    def on_timer(self, key: Hashable, now: float) -> list[Effect]:
        """Submit on schedule; re-submit timed-out bundles."""
        if key == "submit":
            return self._submit(now)
        if isinstance(key, tuple) and key[0] == "timeout":
            return self._resubmit(key[1], now)
        return []

    def _submit(self, now: float) -> list[Effect]:
        effects: list[Effect] = []
        if not self.stop_at or now < self.stop_at:
            effects.append(SetTimer("submit", self.submit_interval))
            bundle = RequestBundle(
                self.node_id, self.next_bundle_id, self.bundle_size,
                self.config.payload_size, now)
            for attempt in range(self.fanout):
                target = assign_replica(
                    self.node_id, self.config.n,
                    self._view_leader_guess, attempt)
                effects.append(Send(target, bundle))
            self.submitted_requests += self.bundle_size
            if self.resubmit:
                self._outstanding[self.next_bundle_id] = [
                    self.bundle_size, now, 0]
                effects.append(SetTimer(
                    ("timeout", self.next_bundle_id), self.client_timeout))
            self.next_bundle_id += 1
        return effects

    def _retry_delay(self, attempt: int) -> float:
        """Jittered exponential backoff for re-submission ``attempt``."""
        return (self.client_timeout * (1.5 ** attempt)
                * (0.75 + 0.5 * self._rng.random()))

    def _resubmit(self, bundle_id: int, now: float) -> list[Effect]:
        entry = self._outstanding.get(bundle_id)
        if entry is None or entry[0] <= 0:
            return []
        remaining, submitted_at, attempt = entry
        if attempt >= self.max_retries:
            # Retry budget exhausted: stop chasing this bundle.
            del self._outstanding[bundle_id]
            return []
        attempt += 1
        entry[2] = attempt
        self.resubmissions += 1
        target = assign_replica(
            self.node_id, self.config.n, self._view_leader_guess, attempt)
        bundle = RequestBundle(
            self.node_id, bundle_id, remaining, self.config.payload_size,
            submitted_at, timeout_flagged=True)
        return [
            Trace("retransmit", {"bundle_id": bundle_id,
                                 "attempt": attempt, "count": remaining}),
            Send(target, bundle),
            SetTimer(("timeout", bundle_id), self._retry_delay(attempt)),
        ]

    def on_message(self, sender: int, msg, now: float) -> list[Effect]:
        """Absorb acknowledgements."""
        if not isinstance(msg, Ack):
            return []
        self.acked_requests += msg.count
        effects: list[Effect] = [Trace("ack", {
            "submitted_at": msg.submitted_at, "count": msg.count})]
        if self.trace_phases:
            effects.append(Trace("phase", {
                "phase": "response",
                "duration": max(0.0, now - msg.executed_at)}))
        entry = self._outstanding.get(msg.bundle_id)
        if entry is not None:
            entry[0] -= msg.count
        return effects
