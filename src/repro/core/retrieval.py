"""Datablock retrieval (paper Algorithm 3, Fig. 5).

When a replica discovers — via a BFTblock link — a datablock it never
received (a faulty creator ran the *selective attack* of §IV-A2), it arms a
timer; if the block still hasn't arrived at expiry it multicasts a Query.
Every holder answers with **one** Reed--Solomon chunk of the encoded block
(the chunk indexed by its own replica id) plus a Merkle proof binding the
chunk to a root; ``f+1`` verified chunks under one root reconstruct the
datablock.  The ready round guarantees ≥ f+1 honest holders for anything an
honest leader links, so recovery always completes after GST (Theorem 2) —
at an amortized per-replica cost of O(α/f) instead of re-centralising O(α)
on the leader (§V-B cases (b)/(c)).

Fast path: a responder answers a multi-block query by batching every
requested datablock through one fused :meth:`ReedSolomonCode.encode_many`
kernel pass (plus a small LRU of recent encodings), and the decoder side
benefits from the coder's decode-plan cache — the same f+1 fast responders
keep producing the same survivor set, so the inverted decode matrix is
computed once.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

from repro.core.datablock_pool import DatablockPool
from repro.crypto.merkle import MerkleTree, verify_proof
from repro.crypto.reed_solomon import ReedSolomonError, leopard_code
from repro.messages.leopard import ChunkResponse, Datablock, Query
from repro.perf.counters import PerfCounters


@dataclass
class _PendingRecovery:
    """Chunks collected for one missing datablock, grouped by Merkle root."""

    chunks_by_root: dict[bytes, dict[int, bytes]] = field(
        default_factory=dict)
    meta_by_root: dict[bytes, Datablock] = field(default_factory=dict)
    queried: bool = False


class RetrievalManager:
    """One replica's view of all in-flight datablock recoveries."""

    #: Responders cache this many recent (chunks, tree) encodings.
    ENCODE_CACHE = 4

    #: Cap on datablock-body bytes batched through one encode_many call,
    #: bounding transient kernel memory (the kernel makes an 8x intp
    #: index copy of its input) against arbitrarily large queries.
    ENCODE_BATCH_BYTES = 8 * 1024 * 1024

    def __init__(self, n: int, f: int, replica_id: int) -> None:
        self.n = n
        self.f = f
        self.replica_id = replica_id
        self._code = leopard_code(f, n)
        self._pending: dict[bytes, _PendingRecovery] = {}
        self._answered: set[tuple[bytes, int]] = set()
        self._encode_cache: OrderedDict[
            bytes, tuple[list, MerkleTree]] = OrderedDict()
        self.recovered_count = 0
        self.responses_sent = 0
        self._missing_since: dict[bytes, float] = {}
        #: (digest, seconds-from-detection-to-recovery) samples (Table V).
        self.recovery_times: list[tuple[bytes, float]] = []
        #: Coding/hashing wall-clock instrumentation.  Cluster builders
        #: replace this with the run's shared ``MetricsCollector.perf`` so
        #: experiment reports break out data-plane time.
        self.perf = PerfCounters()

    def awaiting(self, block_digest: bytes) -> bool:
        """Whether a recovery is in flight for ``block_digest``."""
        return block_digest in self._pending

    def note_missing(self, block_digest: bytes, now: float = 0.0) -> bool:
        """Register a missing linked datablock; True if newly registered."""
        if block_digest in self._pending:
            return False
        self._pending[block_digest] = _PendingRecovery()
        self._missing_since[block_digest] = now
        return True

    def cancel(self, block_digest: bytes) -> None:
        """The datablock arrived by normal dissemination; drop the recovery."""
        self._pending.pop(block_digest, None)
        self._missing_since.pop(block_digest, None)

    def build_query(self, now: float = 0.0) -> Query | None:
        """Query for every registered-missing datablock not yet queried."""
        digests = tuple(sorted(
            d for d, p in self._pending.items() if not p.queried))
        if not digests:
            return None
        for block_digest in digests:
            self._pending[block_digest].queried = True
            # Recovery time (Table V) is measured from the query, as the
            # paper does, not from the detection timer.
            self._missing_since[block_digest] = now
        return Query(digests)

    def _encode_batch(self, datablocks: list[Datablock]
                      ) -> dict[bytes, tuple[list, MerkleTree]]:
        """Encode a set of datablocks through one fused kernel pass.

        Cached encodings are reused; the uncached remainder goes through
        :meth:`ReedSolomonCode.encode_many` in a single invocation (one
        parity-kernel pass for the whole query) and lands in the bounded
        encode cache.  Returns every requested encoding by digest, even
        when the batch exceeds the cache bound.
        """
        out: dict[bytes, tuple[list, MerkleTree]] = {}
        fresh: list[Datablock] = []
        seen: set[bytes] = set()
        for datablock in datablocks:
            block_digest = datablock.digest()
            if block_digest in seen:
                continue
            seen.add(block_digest)
            cached = self._encode_cache.get(block_digest)
            if cached is not None:
                self._encode_cache.move_to_end(block_digest)
                out[block_digest] = cached
            else:
                fresh.append(datablock)
        for group in self._batched_by_bytes(fresh):
            with self.perf.timed("coding/encode"):
                encoded = self._code.encode_many(
                    [datablock.body() for datablock in group])
            self.perf.incr("coding/encoded_datablocks", len(group))
            for datablock, chunks in zip(group, encoded):
                with self.perf.timed("hashing/merkle"):
                    tree = MerkleTree([chunk.data for chunk in chunks])
                entry = (chunks, tree)
                out[datablock.digest()] = entry
                self._encode_cache[datablock.digest()] = entry
        while len(self._encode_cache) > self.ENCODE_CACHE:
            self._encode_cache.popitem(last=False)
        return out

    def _batched_by_bytes(self, datablocks: list[Datablock]
                          ) -> list[list[Datablock]]:
        """Split a batch so each kernel pass stays under the byte cap."""
        groups: list[list[Datablock]] = []
        group: list[Datablock] = []
        group_bytes = 0
        for datablock in datablocks:
            if group and group_bytes + datablock.body_size() > (
                    self.ENCODE_BATCH_BYTES):
                groups.append(group)
                group, group_bytes = [], 0
            group.append(datablock)
            group_bytes += datablock.body_size()
        if group:
            groups.append(group)
        return groups

    def mark_answered(self, block_digest: bytes, requester: int) -> bool:
        """Record a (datablock, requester) answer; False on repeats.

        Used by the non-erasure retrieval modes (ablations) which respond
        with whole datablock copies instead of chunks.
        """
        if (block_digest, requester) in self._answered:
            return False
        self._answered.add((block_digest, requester))
        self.responses_sent += 1
        return True

    def make_responses(self, requester: int, query: Query,
                       pool: DatablockPool) -> list[ChunkResponse]:
        """Answer a query with this replica's chunk per held datablock.

        Each (datablock, requester) pair is answered at most once
        (Algorithm 3, "Response" precondition), bounding the cost a
        Byzantine querier can impose.
        """
        if self.replica_id >= self._code.total_shards:
            # Past the GF(256) striping cap (n > 256): this replica holds
            # no chunk, so it has nothing to answer with.
            return []
        to_answer: list[tuple[bytes, Datablock]] = []
        for block_digest in query.block_digests:
            if (block_digest, requester) in self._answered:
                continue
            datablock = pool.get(block_digest)
            if datablock is None:
                continue
            self._answered.add((block_digest, requester))
            to_answer.append((block_digest, datablock))
        # One fused erasure-coding pass for every datablock in the query.
        encoded = self._encode_batch([db for _, db in to_answer])
        responses = []
        for block_digest, datablock in to_answer:
            chunks, tree = encoded[block_digest]
            chunk = chunks[self.replica_id]
            responses.append(ChunkResponse(
                block_digest=block_digest,
                root=tree.root,
                chunk_index=self.replica_id,
                chunk_data=chunk.data,
                proof=tree.proof(self.replica_id),
                meta=datablock,
            ))
            self.responses_sent += 1
        return responses

    def on_response(self, response: ChunkResponse, now: float = 0.0
                    ) -> Datablock | None:
        """Absorb one chunk; returns the datablock once reconstructed.

        Verification per Algorithm 3: the Merkle proof must bind the chunk
        to the response's root; decoding happens once f+1 chunks agree on a
        root; the decoded body and restated metadata must re-hash to the
        queried digest (rejecting fabricated chunk sets).
        """
        pending = self._pending.get(response.block_digest)
        if pending is None:
            return None
        with self.perf.timed("hashing/verify_proof"):
            proof_ok = verify_proof(response.root, response.chunk_data,
                                    response.proof)
        if not proof_ok:
            return None
        if response.meta.digest() != response.block_digest:
            return None
        by_root = pending.chunks_by_root.setdefault(response.root, {})
        by_root[response.chunk_index] = response.chunk_data
        pending.meta_by_root.setdefault(response.root, response.meta)
        if len(by_root) < self.f + 1:
            return None
        from repro.crypto.reed_solomon import Chunk
        try:
            with self.perf.timed("coding/decode"):
                body = self._code.decode(
                    [Chunk(i, data) for i, data in by_root.items()])
        except ReedSolomonError:
            return None
        self.perf.incr("coding/decoded_datablocks")
        meta = pending.meta_by_root[response.root]
        if body != meta.body():
            # A coalition of faulty responders fabricated a consistent
            # chunk set; discard that root and keep waiting for honest ones.
            del pending.chunks_by_root[response.root]
            del pending.meta_by_root[response.root]
            return None
        del self._pending[response.block_digest]
        started = self._missing_since.pop(response.block_digest, None)
        if started is not None:
            self.recovery_times.append(
                (response.block_digest, now - started))
        self.recovered_count += 1
        return meta
